//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset `pdc-bench`'s benches use — benchmark
//! groups, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `sample_size`, and the `criterion_group!`/`criterion_main!` macros —
//! with a deliberately simple measurement loop: per sample, one timed
//! invocation of the routine; the report prints min/median/max to
//! stdout. There is no statistical analysis, HTML report, or CLI-flag
//! parsing; the point is that `cargo bench` runs offline and the
//! benches stay executable documentation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form (the group name provides context).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted where a benchmark id is expected (`&str`, `String`,
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Convert to the canonical id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing loop handed to bench routines.
pub struct Bencher {
    samples: u32,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark (min 2, like
    /// upstream's min 10 this is just clamped, not an error).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), |b| f(b));
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut routine: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        routine(&mut b);
        b.durations.sort_unstable();
        let (min, med, max) = if b.durations.is_empty() {
            (Duration::ZERO, Duration::ZERO, Duration::ZERO)
        } else {
            (
                b.durations[0],
                b.durations[b.durations.len() / 2],
                *b.durations.last().unwrap(),
            )
        };
        println!(
            "bench {}/{}: median {:?} (min {:?}, max {:?}, n={})",
            self.name,
            id,
            med,
            min,
            max,
            b.durations.len()
        );
    }

    /// Finish the group (report-flush point upstream; a no-op here).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Bundle bench functions into one callable group, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_warmup_plus_samples() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        let mut calls = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert_eq!(calls, 6, "1 warm-up + 5 samples");
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 8).into_id(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("lru").into_id(), "lru");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &p| {
            b.iter(|| {
                seen = p;
            })
        });
        g.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        fn target(c: &mut Criterion) {
            let mut g = c.benchmark_group("macro");
            g.sample_size(2);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        criterion_group!(demo, target);
        demo();
    }
}
