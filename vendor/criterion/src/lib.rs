//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset `pdc-bench`'s benches use — benchmark
//! groups, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `sample_size`, and the `criterion_group!`/`criterion_main!` macros —
//! with a deliberately simple measurement loop: per sample, one timed
//! invocation of the routine. The report prints min/median/max to
//! stdout after discarding IQR outliers (Tukey fences at `1.5·IQR`),
//! so a stray scheduler hiccup doesn't poison the medians.
//!
//! ## Baselines
//!
//! Unlike the original stand-in, medians are also collected in a
//! process-wide table so [`finalize`] (called by `criterion_main!`,
//! or explicitly from a custom `fn main`) can persist or check them:
//!
//! * `--save-baseline <name>` writes each bench's median to
//!   `<dir>/<name>.baseline`;
//! * `--baseline <name>` compares against a saved baseline and exits
//!   non-zero if any bench's median regressed by more than the
//!   threshold (`--regress-threshold <pct>`, default 25%);
//! * `<dir>` is `$CRITERION_BASELINE_DIR` when set, else
//!   `target/criterion-baselines` relative to the bench's working
//!   directory (the *package* directory under `cargo bench`).
//!
//! Unknown flags (e.g. the `--bench` cargo appends) are ignored, as
//! upstream does. There is still no HTML report; the point is that
//! `cargo bench` runs offline, stays executable documentation, and can
//! gate CI on performance regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Medians recorded by every benchmark run in this process, in run
/// order, as `(full_id, median_nanos)`. [`finalize`] drains this.
static RESULTS: Mutex<Vec<(String, u128)>> = Mutex::new(Vec::new());

/// Drop samples outside the Tukey fences `[q1 − 1.5·IQR, q3 + 1.5·IQR]`.
/// Needs at least 4 sorted samples to estimate quartiles; below that the
/// input is returned untrimmed.
fn iqr_trim(sorted: &[Duration]) -> Vec<Duration> {
    let n = sorted.len();
    if n < 4 {
        return sorted.to_vec();
    }
    let q1 = sorted[n / 4];
    let q3 = sorted[(3 * n) / 4];
    let fence = (q3 - q1) * 3 / 2;
    let lo = q1.checked_sub(fence).unwrap_or(Duration::ZERO);
    let hi = q3 + fence;
    sorted
        .iter()
        .copied()
        .filter(|d| lo <= *d && *d <= hi)
        .collect()
}

/// CLI flags [`finalize`] understands; everything else is ignored.
#[derive(Debug, Default, PartialEq)]
struct Cli {
    save_baseline: Option<String>,
    baseline: Option<String>,
    /// Median regression tolerated before compare mode fails, percent.
    threshold: f64,
}

fn parse_cli(args: impl Iterator<Item = String>) -> Cli {
    let mut cli = Cli {
        threshold: 25.0,
        ..Cli::default()
    };
    let args: Vec<String> = args.collect();
    let mut i = 0;
    while i < args.len() {
        let (flag, mut inline) = match args[i].split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (args[i].as_str(), None),
        };
        match flag {
            "--save-baseline" | "--baseline" | "--regress-threshold" => {
                let value = inline.take().or_else(|| {
                    i += 1;
                    args.get(i).cloned()
                });
                match flag {
                    "--save-baseline" => cli.save_baseline = value,
                    "--baseline" => cli.baseline = value,
                    _ => {
                        if let Some(pct) = value.and_then(|v| v.parse::<f64>().ok()) {
                            cli.threshold = pct;
                        }
                    }
                }
            }
            _ => {} // unknown flags (--bench, filters, ...) are ignored
        }
        i += 1;
    }
    cli
}

/// Resolve the baseline directory: `$CRITERION_BASELINE_DIR` when set,
/// else `target/criterion-baselines` under the current directory.
fn baseline_dir() -> std::path::PathBuf {
    std::env::var_os("CRITERION_BASELINE_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/criterion-baselines"))
}

/// Write `results` to `<dir>/<name>.baseline` as `id\tmedian_ns` lines.
fn save_baseline(dir: &Path, name: &str, results: &[(String, u128)]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut out = String::new();
    for (id, med) in results {
        out.push_str(&format!("{id}\t{med}\n"));
    }
    std::fs::write(dir.join(format!("{name}.baseline")), out)
}

/// Read a baseline file written by [`save_baseline`].
fn load_baseline(dir: &Path, name: &str) -> std::io::Result<Vec<(String, u128)>> {
    let text = std::fs::read_to_string(dir.join(format!("{name}.baseline")))?;
    Ok(text
        .lines()
        .filter_map(|l| {
            let (id, med) = l.rsplit_once('\t')?;
            Some((id.to_string(), med.parse().ok()?))
        })
        .collect())
}

/// Compare `results` against `baseline`; return one message per bench
/// whose median regressed by more than `threshold` percent. Benches
/// missing from either side are skipped (new or removed benches are
/// not regressions).
fn find_regressions(
    results: &[(String, u128)],
    baseline: &[(String, u128)],
    threshold: f64,
) -> Vec<String> {
    let mut bad = Vec::new();
    for (id, new_med) in results {
        let Some((_, old_med)) = baseline.iter().find(|(b, _)| b == id) else {
            continue;
        };
        if *old_med == 0 {
            continue;
        }
        let pct = (*new_med as f64 - *old_med as f64) / *old_med as f64 * 100.0;
        if pct > threshold {
            bad.push(format!(
                "{id}: median {new_med}ns vs baseline {old_med}ns (+{pct:.1}%, threshold {threshold}%)"
            ));
        }
    }
    bad
}

/// Process baseline flags against the medians recorded so far.
///
/// `criterion_main!` calls this after the groups run; benches with a
/// custom `fn main` must call it themselves (last). With
/// `--save-baseline <name>` the medians are persisted; with
/// `--baseline <name>` they are checked and the process **exits
/// non-zero** if any bench regressed beyond `--regress-threshold`
/// percent (default 25). Without either flag this is a no-op.
pub fn finalize() {
    let cli = parse_cli(std::env::args().skip(1));
    let results = std::mem::take(&mut *RESULTS.lock().unwrap());
    let dir = baseline_dir();
    if let Some(name) = &cli.save_baseline {
        save_baseline(&dir, name, &results)
            .unwrap_or_else(|e| panic!("cannot save baseline '{name}' in {dir:?}: {e}"));
        println!(
            "criterion: saved baseline '{name}' ({} benches) to {dir:?}",
            results.len()
        );
    }
    if let Some(name) = &cli.baseline {
        let baseline = match load_baseline(&dir, name) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("criterion: cannot load baseline '{name}' from {dir:?}: {e}");
                std::process::exit(2);
            }
        };
        let bad = find_regressions(&results, &baseline, cli.threshold);
        if !bad.is_empty() {
            for line in &bad {
                eprintln!("criterion: REGRESSION {line}");
            }
            std::process::exit(1);
        }
        println!(
            "criterion: {} benches within {}% of baseline '{name}'",
            results.len(),
            cli.threshold
        );
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form (the group name provides context).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted where a benchmark id is expected (`&str`, `String`,
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Convert to the canonical id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing loop handed to bench routines.
pub struct Bencher {
    samples: u32,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark (min 2, like
    /// upstream's min 10 this is just clamped, not an error).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), |b| f(b));
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut routine: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        routine(&mut b);
        b.durations.sort_unstable();
        let kept = iqr_trim(&b.durations);
        let outliers = b.durations.len() - kept.len();
        let (min, med, max) = if kept.is_empty() {
            (Duration::ZERO, Duration::ZERO, Duration::ZERO)
        } else {
            (kept[0], kept[kept.len() / 2], *kept.last().unwrap())
        };
        let full_id = format!("{}/{}", self.name, id);
        RESULTS
            .lock()
            .unwrap()
            .push((full_id.clone(), med.as_nanos()));
        println!(
            "bench {}: median {:?} (min {:?}, max {:?}, n={}, {} outliers trimmed)",
            full_id,
            med,
            min,
            max,
            kept.len(),
            outliers
        );
    }

    /// Finish the group (report-flush point upstream; a no-op here).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Bundle bench functions into one callable group, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the given groups, then [`finalize`]
/// (baseline save/compare).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_warmup_plus_samples() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        let mut calls = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert_eq!(calls, 6, "1 warm-up + 5 samples");
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 8).into_id(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("lru").into_id(), "lru");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &p| {
            b.iter(|| {
                seen = p;
            })
        });
        g.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        fn target(c: &mut Criterion) {
            let mut g = c.benchmark_group("macro");
            g.sample_size(2);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        criterion_group!(demo, target);
        demo();
    }

    #[test]
    fn iqr_trim_drops_extreme_outliers_only() {
        let ms = Duration::from_millis;
        // Tight cluster plus one absurd spike.
        let mut v = vec![ms(10), ms(11), ms(11), ms(12), ms(12), ms(13), ms(500)];
        v.sort_unstable();
        let kept = iqr_trim(&v);
        assert_eq!(kept.len(), 6);
        assert_eq!(*kept.last().unwrap(), ms(13));
        // Uniform data: nothing trimmed.
        let flat = vec![ms(5); 10];
        assert_eq!(iqr_trim(&flat).len(), 10);
        // Too few samples to estimate quartiles: untouched.
        let tiny = vec![ms(1), ms(1000), ms(2000)];
        assert_eq!(iqr_trim(&tiny).len(), 3);
    }

    #[test]
    fn cli_parses_baseline_flags_and_ignores_unknown() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let cli = parse_cli(args(&["--bench", "--save-baseline", "main"]).into_iter());
        assert_eq!(cli.save_baseline.as_deref(), Some("main"));
        assert_eq!(cli.baseline, None);
        assert_eq!(cli.threshold, 25.0);

        let cli = parse_cli(
            args(&["--baseline=main", "--regress-threshold=5.5", "somefilter"]).into_iter(),
        );
        assert_eq!(cli.baseline.as_deref(), Some("main"));
        assert_eq!(cli.threshold, 5.5);
        assert_eq!(cli.save_baseline, None);
    }

    #[test]
    fn baseline_roundtrip_and_regression_detection() {
        let dir = std::env::temp_dir().join(format!("pdc-criterion-test-{}", std::process::id()));
        let results = vec![
            ("g/fast".to_string(), 1_000u128),
            ("g/slow".to_string(), 2_000u128),
        ];
        save_baseline(&dir, "t", &results).unwrap();
        let loaded = load_baseline(&dir, "t").unwrap();
        assert_eq!(loaded, results);

        // Within threshold: clean.
        let now = vec![
            ("g/fast".to_string(), 1_100u128),
            ("g/slow".to_string(), 1_900u128),
        ];
        assert!(find_regressions(&now, &loaded, 25.0).is_empty());
        // 2x slower: flagged, and the message names the bench.
        let now = vec![("g/fast".to_string(), 2_000u128)];
        let bad = find_regressions(&now, &loaded, 25.0);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("g/fast"), "{}", bad[0]);
        // New bench with no baseline entry is not a regression.
        let now = vec![("g/brand_new".to_string(), 9_999u128)];
        assert!(find_regressions(&now, &loaded, 25.0).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn benches_record_medians_for_finalize() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("recorded");
        g.sample_size(3);
        g.bench_function("probe", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
        let results = RESULTS.lock().unwrap();
        assert!(results.iter().any(|(id, _)| id == "recorded/probe"));
    }
}
