//! Value-generation strategies: `any::<T>()`, integer ranges, tuples.
//!
//! A [`Strategy`] produces values two ways: `pick` draws pseudo-randomly
//! from a deterministic RNG, and `specials` lists boundary values the
//! runner enumerates combinatorially before random sampling begins.

use crate::test_runner::TestRng;

/// A source of test values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value: Clone + std::fmt::Debug;

    /// Draw one pseudo-random value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Boundary values worth exercising deterministically (may be empty).
    fn specials(&self) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy `any` returns for this type.
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain integer strategy returned by `any::<int>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyInt<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Full-domain `bool` strategy returned by `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn pick(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn specials(&self) -> Vec<bool> {
        vec![false, true]
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! unsigned_any {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }

            fn specials(&self) -> Vec<$t> {
                vec![0, 1, <$t>::MAX, <$t>::MAX - 1]
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> AnyInt<$t> {
                AnyInt { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

macro_rules! signed_any {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }

            fn specials(&self) -> Vec<$t> {
                vec![0, 1, -1, <$t>::MIN, <$t>::MAX]
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> AnyInt<$t> {
                AnyInt { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

unsigned_any!(u8, u16, u32, u64, usize);
signed_any!(i8, i16, i32, i64, isize);

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }

            fn specials(&self) -> Vec<$t> {
                let (lo, hi) = (self.start, self.end - 1);
                let mut s = vec![lo, hi];
                if hi > lo {
                    s.push(hi - 1);
                }
                s.dedup();
                s
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }

            fn specials(&self) -> Vec<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                let mut s = vec![lo, hi];
                if hi > lo {
                    s.push(hi - 1);
                }
                s.dedup();
                s
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.pick(rng), self.1.pick(rng))
    }

    fn specials(&self) -> Vec<Self::Value> {
        let a = self.0.specials();
        let b = self.1.specials();
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        b.iter()
            .enumerate()
            .map(|(i, bv)| (a[i % a.len()].clone(), bv.clone()))
            .collect()
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.pick(rng), self.1.pick(rng), self.2.pick(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_specials_include_minus_one() {
        let s = any::<i64>().specials();
        assert!(s.contains(&-1));
        assert!(s.contains(&i64::MIN));
        assert!(s.contains(&i64::MAX));
    }

    #[test]
    fn inclusive_range_specials_hit_both_ends_and_penultimate() {
        let s = (1u32..=64).specials();
        assert_eq!(s, vec![1, 64, 63]);
    }

    #[test]
    fn range_pick_stays_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (-50i64..50).pick(&mut rng);
            assert!((-50..50).contains(&v));
            let w = (1usize..8).pick(&mut rng);
            assert!((1..8).contains(&w));
        }
    }

    #[test]
    fn full_domain_pick_covers_sign_bit() {
        let mut rng = TestRng::new(42);
        let vs: Vec<i64> = (0..64).map(|_| any::<i64>().pick(&mut rng)).collect();
        assert!(vs.iter().any(|&v| v < 0));
        assert!(vs.iter().any(|&v| v > 0));
    }
}
