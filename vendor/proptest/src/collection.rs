//! Collection strategies: `prop::collection::vec(elem, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length range for [`vec`], convertible from `usize`, `a..b`, and
/// `a..=b` like upstream's `SizeRange`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec<S::Value>` with length in a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// Build a vector strategy: `vec(any::<i64>(), 0..400)`,
/// `vec(0u8..4, 12)`, etc.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.elem.pick(rng)).collect()
    }

    fn specials(&self) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        if self.size.min == 0 {
            out.push(Vec::new());
        }
        if let Some(first) = self.elem.specials().into_iter().next() {
            let n = self.size.min.max(1);
            if n <= self.size.max {
                out.push(vec![first; n]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_respect_bounds() {
        let s = vec(any::<u64>(), 3..10);
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = s.pick(&mut rng);
            assert!((3..10).contains(&v.len()));
        }
    }

    #[test]
    fn exact_size_from_usize() {
        let s = vec(0u8..4, 12usize);
        let mut rng = TestRng::new(2);
        assert_eq!(s.pick(&mut rng).len(), 12);
    }

    #[test]
    fn specials_include_empty_when_allowed() {
        let s = vec(any::<i64>(), 0..5);
        let sp = s.specials();
        assert!(sp.contains(&Vec::new()));
        assert!(sp.iter().any(|v| v.len() == 1));
        let s1 = vec(any::<i64>(), 1..5);
        assert!(!s1.specials().contains(&Vec::new()));
    }
}
