//! The deterministic case runner behind the [`proptest!`](crate::proptest)
//! macro.
//!
//! Case schedule (for a config of `N` cases):
//!
//! 1. **Boundary phase** — the first `min(N/4, 32)` cases enumerate
//!    combinations of each argument's [`Strategy::specials`] values in
//!    mixed-radix order (argument 1 varies fastest). This is what makes
//!    recorded regressions like `v = -1, bits = 63` re-run on every
//!    invocation without parsing seed files.
//! 2. **Random phase** — remaining cases draw from a fixed-seed
//!    SplitMix64 stream, with a 1-in-4 chance per draw of substituting a
//!    random special value so boundaries also mix with random partners.
//!
//! Failures panic with the case number and every drawn input. There is
//! no shrinking.

use crate::strategy::Strategy;

/// Deterministic SplitMix64 generator (public so strategies can draw).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Mirror of upstream's `ProptestConfig`: only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives the cases of one property.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    boundary_cases: u32,
    case: u32,
    started: bool,
    rng: TestRng,
    /// Mixed-radix divisor consumed by special draws within one case.
    radix: u128,
    /// Debug renderings of this case's drawn inputs, for failure reports.
    inputs: Vec<String>,
}

impl TestRunner {
    /// Create a runner for `cfg.cases` cases.
    pub fn new(cfg: ProptestConfig) -> Self {
        let cases = cfg.cases.max(1);
        TestRunner {
            cases,
            boundary_cases: (cases / 4).min(32),
            case: 0,
            started: false,
            rng: TestRng::new(0x5DEE_CE66_D012_DEAD),
            radix: 1,
            inputs: Vec::new(),
        }
    }

    /// Advance to the next case; returns `false` when done.
    pub fn next_case(&mut self) -> bool {
        if self.started {
            self.case += 1;
        }
        self.started = true;
        self.radix = 1;
        self.inputs.clear();
        self.case < self.cases
    }

    /// Draw a value from `strategy` for the current case.
    pub fn draw<S: Strategy>(&mut self, strategy: &S) -> S::Value {
        let specials = strategy.specials();
        if !specials.is_empty() && self.case < self.boundary_cases {
            let idx = ((self.case as u128 / self.radix) % specials.len() as u128) as usize;
            self.radix = self.radix.saturating_mul(specials.len() as u128);
            return specials[idx].clone();
        }
        if !specials.is_empty() && self.rng.next_u64().is_multiple_of(4) {
            let idx = (self.rng.next_u64() % specials.len() as u64) as usize;
            return specials[idx].clone();
        }
        strategy.pick(&mut self.rng)
    }

    /// Record an input's debug rendering for failure reports.
    pub fn note_input(&mut self, name: &str, value: &dyn std::fmt::Debug) {
        self.inputs.push(format!("{name} = {value:?}"));
    }

    /// Consume the body's outcome: `Ok(Ok(()))` passes, `Ok(Err(msg))`
    /// is an assertion failure, `Err(panic)` is a panic in the body —
    /// both failure modes report the case number and drawn inputs.
    pub fn finish_case(&mut self, outcome: std::thread::Result<Result<(), String>>) {
        let header = format!(
            "proptest case {}/{} failed with inputs:\n  {}",
            self.case + 1,
            self.cases,
            self.inputs.join("\n  ")
        );
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => panic!("{header}\n{msg}"),
            Err(payload) => {
                eprintln!("{header}\n(body panicked; unwinding with original panic)");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn boundary_phase_enumerates_combinations() {
        // Reproduce the layout of the datarep regression test:
        // (v in any::<i64>(), bits in 1u32..=64). The recorded regression
        // v = -1, bits = 63 must appear among the boundary cases.
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        let mut seen = Vec::new();
        while runner.next_case() {
            let v = runner.draw(&any::<i64>());
            let bits = runner.draw(&(1u32..=64));
            seen.push((v, bits));
        }
        assert!(
            seen.contains(&(-1, 63)),
            "boundary enumeration must cover the recorded regression"
        );
        assert!(seen.contains(&(i64::MIN, 64)));
        assert!(seen.contains(&(i64::MAX, 1)));
    }

    #[test]
    fn runner_is_deterministic() {
        let run = || {
            let mut r = TestRunner::new(ProptestConfig::with_cases(32));
            let mut out = Vec::new();
            while r.next_case() {
                out.push(r.draw(&any::<u64>()));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn runs_exactly_n_cases() {
        let mut r = TestRunner::new(ProptestConfig::with_cases(10));
        let mut n = 0;
        while r.next_case() {
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failure_reports_inputs() {
        let mut r = TestRunner::new(ProptestConfig::with_cases(4));
        r.next_case();
        let v = r.draw(&any::<i32>());
        r.note_input("v", &v);
        r.finish_case(Ok(Err("deliberate".into())));
    }
}
