//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! implements the exact surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, `name in
//!   strategy` bindings (including `mut` bindings), and test bodies that
//!   use [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`];
//! * [`any::<T>()`] for integers and `bool`, integer range strategies
//!   (`lo..hi`, `lo..=hi`), tuple strategies, and
//!   [`collection::vec`](collection::vec);
//! * a deterministic [`test_runner::TestRunner`]: the first quarter of
//!   the cases enumerate *boundary-value combinations* of every
//!   argument's special values in mixed-radix order (so recorded
//!   regressions like `v = -1, bits = 63` are re-exercised on every
//!   run), and the remainder are seeded pseudo-random draws.
//!
//! There is no shrinking: failures report the exact drawn inputs, which
//! for boundary-combination cases are already minimal in practice.
//! `proptest-regressions` seed files are honoured in spirit rather than
//! parsed: boundary enumeration deterministically covers the recorded
//! edge classes (value ∈ {0, ±1, MIN, MAX} × width ∈ {lo, hi, hi−1}).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Strategy};

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias so `prop::collection::vec(...)` works as upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests.
///
/// ```ignore
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in any::<i32>(), b in -10i32..10) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(cfg);
                while runner.next_case() {
                    $(
                        let __proptest_drawn = runner.draw(&($strat));
                        runner.note_input(stringify!($arg), &__proptest_drawn);
                        let $arg = __proptest_drawn;
                    )+
                    let __proptest_result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::core::result::Result<(), ::std::string::String> {
                                $body
                                ::core::result::Result::Ok(())
                            },
                        ),
                    );
                    runner.finish_case(__proptest_result);
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Assert a condition inside a [`proptest!`] body; on failure the case
/// (with its drawn inputs) is reported and the test fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Assert two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert_eq failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert_eq failed: {}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                __l,
                __r
            ));
        }
    }};
}

/// Assert two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert_ne failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert_ne failed: {}\n  both: {:?}",
                ::std::format!($($fmt)+),
                __l
            ));
        }
    }};
}
