//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the *exact API subset* it consumes:
//!
//! * [`channel`] — `unbounded()` MPSC channels (`pdc-mpi`'s rank inboxes
//!   and the in-process KV server). Backed by `std::sync::mpsc`, whose
//!   channels have been the crossbeam implementation since Rust 1.67.
//! * [`deque`] — `Injector`/`Worker`/`Stealer` work-stealing deques
//!   (`pdc-threads`' `WorkStealingPool`). Backed by mutex-protected
//!   `VecDeque`s: the *scheduling behaviour* (LIFO local pop, FIFO
//!   steal, batched injector steals) matches `crossbeam-deque`; only the
//!   lock-free internals are simplified, which is fine at curriculum
//!   scale and keeps the semantics observable.
//!
//! Upstream types not used by this workspace are intentionally absent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod deque;
