//! Work-stealing deques with the `crossbeam_deque` surface used by
//! `pdc-threads`: a global [`Injector`], per-worker [`Worker`] deques
//! (LIFO pop), and [`Stealer`] handles (FIFO steal from the opposite
//! end), with [`Injector::steal_batch_and_pop`] moving a batch into the
//! thief's local deque.
//!
//! The implementation is a mutex-protected `VecDeque` rather than the
//! lock-free Chase–Lev deque; the *scheduling policy* — which end each
//! operation touches, and how batches migrate — is identical, which is
//! what the pool's steal counters observe.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Maximum tasks moved per batched injector steal (crossbeam uses 32).
const BATCH: usize = 32;

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The source was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The operation lost a race and may be retried.
    Retry,
}

/// A worker's own deque: LIFO for the owner (depth-first, cache-warm),
/// FIFO for thieves.
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Create a deque whose owner pops in LIFO order.
    pub fn new_lifo() -> Self {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Push a task onto the owner end.
    pub fn push(&self, task: T) {
        self.inner.lock().unwrap().push_back(task);
    }

    /// Pop from the owner end (most recently pushed first).
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_back()
    }

    /// A handle thieves use to steal from the opposite end.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Number of queued tasks (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A thief-side handle onto some worker's deque.
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal one task from the victim's FIFO end (oldest task).
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().unwrap().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Number of tasks in the victim's deque (approximate under
    /// concurrency; exact under a controlled scheduler). Real
    /// crossbeam exposes the same accessor, which schedulers use to
    /// pick a non-empty victim instead of probing blindly.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the victim's deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The global injection queue tasks enter the pool through.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Create an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Push a task (FIFO).
    pub fn push(&self, task: T) {
        self.queue.lock().unwrap().push_back(task);
    }

    /// Steal one task.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().unwrap().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steal a batch of tasks, moving all but the first into `dest` and
    /// returning the first. Takes at most half the queue (capped at
    /// [`BATCH`]) so concurrent thieves each find work.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = self.queue.lock().unwrap();
        let take = q.len().div_ceil(2).min(BATCH);
        let Some(first) = q.pop_front() else {
            return Steal::Empty;
        };
        let mut d = dest.inner.lock().unwrap();
        for _ in 1..take {
            match q.pop_front() {
                Some(t) => d.push_back(t),
                None => break,
            }
        }
        Steal::Success(first)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_pops_lifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn thief_steals_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1), "thief takes the oldest");
        assert_eq!(w.pop(), Some(2), "owner keeps the newest");
        assert_eq!(s.steal(), Steal::<i32>::Empty);
    }

    #[test]
    fn injector_batch_moves_half() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        // Takes ceil(10/2) = 5: returns the first, moves 4 into `w`.
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert_eq!(w.len(), 4);
        let mut q = inj.queue.lock().unwrap();
        assert_eq!(q.len(), 5);
        assert_eq!(q.pop_front(), Some(5));
    }

    #[test]
    fn injector_empty_reports_empty() {
        let inj: Injector<u8> = Injector::new();
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Empty);
        assert_eq!(inj.steal(), Steal::Empty);
    }

    #[test]
    fn concurrent_producers_and_thieves_lose_nothing() {
        let inj = Arc::new(Injector::new());
        let w = Worker::new_lifo();
        let stealer = w.stealer();
        let produced = 1000;
        std::thread::scope(|s| {
            let inj2 = Arc::clone(&inj);
            s.spawn(move || {
                for i in 0..produced {
                    inj2.push(i);
                }
            });
            let mut got = 0usize;
            while got < produced {
                match inj.steal_batch_and_pop(&w) {
                    Steal::Success(_) => got += 1,
                    _ => {
                        if let Steal::Success(_) = stealer.steal() {
                            got += 1;
                        }
                    }
                }
            }
        });
        assert!(inj.is_empty());
    }
}
