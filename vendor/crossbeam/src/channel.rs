//! Unbounded MPSC channels with the `crossbeam_channel` surface used by
//! this workspace: `unbounded()`, cloneable `Sender`s, and a blocking
//! `Receiver::recv`.
//!
//! `std::sync::mpsc` has used the crossbeam channel algorithm since Rust
//! 1.67 and its `Sender` is `Sync + Clone`, so re-exporting it preserves
//! both the semantics and the threading ergonomics callers rely on.

pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

/// The sending half of an unbounded channel (cloneable, thread-safe).
pub type Sender<T> = std::sync::mpsc::Sender<T>;

/// The receiving half of an unbounded channel.
pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

/// Create an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::channel()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_producer() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn clone_senders_across_threads() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            for t in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        tx.send(t * 100 + i).unwrap();
                    }
                });
            }
        });
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got.len(), 200);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
