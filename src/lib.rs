//! # pdc — Parallel & Distributed Computing curriculum library
//!
//! A Rust reproduction of the technical content behind *Integrating
//! Parallel and Distributed Computing Topics into an Undergraduate CS
//! Curriculum* (Danner & Newhall, EduPar/IPDPSW 2013): every system,
//! model of computation, algorithm, and experiment the Swarthmore
//! curriculum teaches across CS31 (systems), CS41 (algorithms), CS40
//! (graphics/GPU), CS45 (OS), and CS87 (parallel & distributed).
//!
//! This crate is a facade: it re-exports the workspace's subsystem
//! crates under stable module names. See `DESIGN.md` for the full
//! inventory and `EXPERIMENTS.md` for the paper-table reproductions.
//!
//! ## Quick start
//!
//! ```
//! use pdc::life::{Grid, Boundary};
//! use pdc::life::parallel::parallel_step_generations;
//!
//! let board = Grid::random(64, 64, Boundary::Torus, 0.3, 42);
//! let (next, stats) = parallel_step_generations(&board, 10, 4);
//! assert_eq!(stats.barrier_episodes, 10);
//! assert_eq!(next.rows(), 64);
//! ```
//!
//! ## Subsystem map
//!
//! | module | contents | course |
//! |---|---|---|
//! | [`core`] | speedup laws, work/span, task graphs, machine model | CS31/CS41 |
//! | [`arch`] | data representation, gate-level ALU, PDC-1 ISA, bomb | CS31 |
//! | [`sync`] | locks, semaphores, barriers, classic problems | CS31/CS45 |
//! | [`threads`] | fork-join, parallel-for, slice data-parallelism | CS31/CS87 |
//! | [`pram`] | PRAM simulator + classic algorithms | CS41 |
//! | [`extmem`] | I/O model: external sort, buffer pool, blocking | CS41 |
//! | [`memsim`] | caches, hierarchy, MSI/MESI coherence | CS31 |
//! | [`os`] | processes, schedulers, paging, shell | CS31/CS45 |
//! | [`mpi`] | message passing, collectives, MapReduce, KV store | CS87/CS45 |
//! | [`gpu`] | SIMT simulator, reduction ladder | CS40 |
//! | [`life`] | Game of Life: seq/threaded/simulated/distributed | CS31 |
//! | [`algos`] | sorting, selection, matrix, scan applications | CS41 |
//! | [`analyze`] | race/lockset/deadlock/MPI analysis over traces | CS31/CS87 |
//! | [`check`] | schedule-exploration model checker, record/replay | CS31/CS87 |

#![warn(missing_docs)]

pub use pdc_algos as algos;
pub use pdc_analyze as analyze;
pub use pdc_arch as arch;
pub use pdc_check as check;
pub use pdc_core as core;
pub use pdc_db as db;
pub use pdc_extmem as extmem;
pub use pdc_gpu as gpu;
pub use pdc_life as life;
pub use pdc_memsim as memsim;
pub use pdc_mpi as mpi;
pub use pdc_os as os;
pub use pdc_pram as pram;
pub use pdc_ray as ray;
pub use pdc_sync as sync;
pub use pdc_threads as threads;
