//! Property-based tests over the pdc-trace observability layer: counter
//! snapshots taken *while* other threads are incrementing must be
//! pointwise monotone, and `Snapshot::diff` must never underflow.

use pdc::core::trace::TraceSession;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One writer thread per counter races a reader taking repeated
    /// snapshots. Every snapshot must dominate the previous one
    /// (monotone counters never move backwards), every diff against an
    /// earlier snapshot must be exactly the pointwise difference (no
    /// saturating-sub masking an underflow), and the final snapshot
    /// must equal the planned totals.
    #[test]
    fn snapshots_are_monotone_and_diffs_never_underflow(
        increments in prop::collection::vec(1u64..500, 2..5),
        reads in 2usize..8,
    ) {
        let session = TraceSession::new();
        let names: Vec<String> =
            (0..increments.len()).map(|i| format!("prop.c{i}")).collect();
        let done = AtomicBool::new(false);

        std::thread::scope(|s| {
            for (name, &n) in names.iter().zip(&increments) {
                let counter = session.counter(name);
                s.spawn(move || {
                    for _ in 0..n {
                        counter.inc();
                    }
                });
            }
            // Reader: interleaved snapshots while the writers run.
            let mut prev = session.snapshot();
            for _ in 0..reads {
                let next = session.snapshot();
                for name in &names {
                    assert!(
                        next.get(name) >= prev.get(name),
                        "counter {name} moved backwards: {} -> {}",
                        prev.get(name),
                        next.get(name)
                    );
                }
                let delta = next.diff(&prev);
                for name in &names {
                    assert_eq!(
                        delta.get(name),
                        next.get(name) - prev.get(name),
                        "diff for {name} is not the exact pointwise difference"
                    );
                }
                prev = next;
                std::thread::yield_now();
            }
            done.store(true, Ordering::SeqCst);
        });

        prop_assert!(done.load(Ordering::SeqCst));
        // After all writers joined, totals are exact.
        let finished = session.snapshot();
        for (name, &n) in names.iter().zip(&increments) {
            prop_assert_eq!(finished.get(name), n);
        }
        // A diff against the empty baseline reproduces the totals; a
        // diff of a snapshot against itself is all zeros.
        let self_diff = finished.diff(&finished.clone());
        for name in &names {
            prop_assert_eq!(self_diff.get(name), 0);
        }
    }

    /// Two threads hammer the *same* counter; the sum is conserved and
    /// intermediate snapshots never exceed the final total.
    #[test]
    fn shared_counter_conserves_increments(a in 1u64..1000, b in 1u64..1000) {
        let session = TraceSession::new();
        let c1 = session.counter("prop.shared");
        let c2 = session.counter("prop.shared");
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..a {
                    c1.inc();
                }
            });
            s.spawn(|| {
                for _ in 0..b {
                    c2.inc();
                }
            });
            let mid = session.snapshot();
            prop_assert!(mid.get("prop.shared") <= a + b);
            Ok(())
        })?;
        prop_assert_eq!(session.snapshot().get("prop.shared"), a + b);
    }
}
