//! Property-based tests over the pdc-trace observability layer: counter
//! snapshots taken *while* other threads are incrementing must be
//! pointwise monotone, `Snapshot::diff` must never underflow, and for
//! every traced model (`gpu.*`, `io.*`, `cache.*`) the registry view
//! must agree exactly with the model's own private statistics — the
//! bridge echoes, it never re-derives.

use pdc::core::trace::TraceSession;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One writer thread per counter races a reader taking repeated
    /// snapshots. Every snapshot must dominate the previous one
    /// (monotone counters never move backwards), every diff against an
    /// earlier snapshot must be exactly the pointwise difference (no
    /// saturating-sub masking an underflow), and the final snapshot
    /// must equal the planned totals.
    #[test]
    fn snapshots_are_monotone_and_diffs_never_underflow(
        increments in prop::collection::vec(1u64..500, 2..5),
        reads in 2usize..8,
    ) {
        let session = TraceSession::new();
        let names: Vec<String> =
            (0..increments.len()).map(|i| format!("prop.c{i}")).collect();
        let done = AtomicBool::new(false);

        std::thread::scope(|s| {
            for (name, &n) in names.iter().zip(&increments) {
                let counter = session.counter(name);
                s.spawn(move || {
                    for _ in 0..n {
                        counter.inc();
                    }
                });
            }
            // Reader: interleaved snapshots while the writers run.
            let mut prev = session.snapshot();
            for _ in 0..reads {
                let next = session.snapshot();
                for name in &names {
                    assert!(
                        next.get(name) >= prev.get(name),
                        "counter {name} moved backwards: {} -> {}",
                        prev.get(name),
                        next.get(name)
                    );
                }
                let delta = next.diff(&prev);
                for name in &names {
                    assert_eq!(
                        delta.get(name),
                        next.get(name) - prev.get(name),
                        "diff for {name} is not the exact pointwise difference"
                    );
                }
                prev = next;
                std::thread::yield_now();
            }
            done.store(true, Ordering::SeqCst);
        });

        prop_assert!(done.load(Ordering::SeqCst));
        // After all writers joined, totals are exact.
        let finished = session.snapshot();
        for (name, &n) in names.iter().zip(&increments) {
            prop_assert_eq!(finished.get(name), n);
        }
        // A diff against the empty baseline reproduces the totals; a
        // diff of a snapshot against itself is all zeros.
        let self_diff = finished.diff(&finished.clone());
        for name in &names {
            prop_assert_eq!(self_diff.get(name), 0);
        }
    }

    /// Two threads hammer the *same* counter; the sum is conserved and
    /// intermediate snapshots never exceed the final total.
    #[test]
    fn shared_counter_conserves_increments(a in 1u64..1000, b in 1u64..1000) {
        let session = TraceSession::new();
        let c1 = session.counter("prop.shared");
        let c2 = session.counter("prop.shared");
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..a {
                    c1.inc();
                }
            });
            s.spawn(|| {
                for _ in 0..b {
                    c2.inc();
                }
            });
            let mid = session.snapshot();
            prop_assert!(mid.get("prop.shared") <= a + b);
            Ok(())
        })?;
        prop_assert_eq!(session.snapshot().get("prop.shared"), a + b);
    }

    /// Random GPU launches on a traced device: the `gpu.*` registry
    /// counters equal the sum of every launch's own [`KernelStats`],
    /// and repeated launches keep the counters monotone.
    #[test]
    fn traced_gpu_counters_equal_summed_kernel_stats(
        launches in prop::collection::vec((1usize..4, 1usize..64), 1..5),
    ) {
        use pdc::gpu::device::Phase;
        use pdc::gpu::{Device, ThreadCtx};

        let session = TraceSession::new();
        let mut dev = Device::new(512);
        dev.attach_trace(&session);
        let mut issue = 0u64;
        let mut ops = 0u64;
        let mut global = 0u64;
        let mut shared = 0u64;
        let mut conflicts = 0u64;
        let mut prev = session.snapshot();
        for &(grid, block) in &launches {
            let phases: Vec<Phase<'_>> = vec![Box::new(move |t: &mut ThreadCtx<'_>| {
                let v = t.read_global(t.gtid() % 256);
                t.write_shared(t.tid(), v + 1);
            })];
            let stats = dev.launch(grid, block, block, &phases);
            issue += stats.issue_cycles;
            ops += stats.executed_ops;
            global += stats.global_accesses;
            shared += stats.shared_cycles;
            conflicts += stats.bank_conflict_cycles;
            let next = session.snapshot();
            for key in ["gpu.launches", "gpu.executed_ops", "gpu.global_accesses"] {
                prop_assert!(next.get(key) >= prev.get(key), "{key} moved backwards");
            }
            prev = next;
        }
        let snap = session.snapshot();
        prop_assert_eq!(snap.get("gpu.launches"), launches.len() as u64);
        prop_assert_eq!(snap.get("gpu.issue_cycles"), issue);
        prop_assert_eq!(snap.get("gpu.executed_ops"), ops);
        prop_assert_eq!(snap.get("gpu.global_accesses"), global);
        prop_assert_eq!(snap.get("gpu.shared_cycles"), shared);
        prop_assert_eq!(snap.get("gpu.bank_conflict_cycles"), conflicts);
    }

    /// Random reads/writes through a traced buffer pool: the `io.pool_*`
    /// registry counters equal the pool's own [`PoolStats`], and the
    /// pool invariant `accesses == hits + fetches` holds in both views.
    #[test]
    fn traced_buffer_pool_mirrors_pool_stats(
        frames in 2usize..8,
        ops in prop::collection::vec((0usize..256, any::<bool>()), 1..200),
    ) {
        use pdc::extmem::CachedArray;

        let session = TraceSession::new();
        let mut arr = CachedArray::new((0..256i64).collect(), 16, frames);
        arr.attach_trace(&session);
        for &(idx, write) in &ops {
            if write {
                arr.set(idx, idx as i64);
            } else {
                arr.get(idx);
            }
        }
        arr.flush();
        let stats = arr.stats();
        let snap = session.snapshot();
        prop_assert_eq!(snap.get("io.pool_accesses"), stats.accesses);
        prop_assert_eq!(snap.get("io.pool_hits"), stats.hits);
        prop_assert_eq!(snap.get("io.pool_fetches"), stats.fetches);
        prop_assert_eq!(snap.get("io.pool_writebacks"), stats.writebacks);
        prop_assert_eq!(snap.get("io.pool_evictions"), stats.evictions);
        prop_assert_eq!(stats.accesses, stats.hits + stats.fetches);
    }

    /// Random accesses through a traced cache: every `cache.*` registry
    /// counter equals the cache's own [`CacheStats`] field, and the 3C
    /// split `compulsory + refill == misses` holds in both views.
    #[test]
    fn traced_cache_mirrors_cache_stats(
        addrs in prop::collection::vec((0u64..4096, any::<bool>()), 1..300),
    ) {
        use pdc::memsim::{Cache, CacheConfig};

        let session = TraceSession::new();
        let mut cache = Cache::new(CacheConfig::direct_mapped(64, 8));
        cache.attach_trace(&session);
        let mut prev = session.snapshot();
        for (i, &(addr, write)) in addrs.iter().enumerate() {
            cache.access(addr, write);
            if i % 50 == 0 {
                let next = session.snapshot();
                for key in ["cache.hits", "cache.misses", "cache.evictions"] {
                    prop_assert!(next.get(key) >= prev.get(key), "{key} moved backwards");
                }
                prev = next;
            }
        }
        let stats = cache.stats();
        let snap = session.snapshot();
        prop_assert_eq!(snap.get("cache.hits"), stats.hits);
        prop_assert_eq!(snap.get("cache.misses"), stats.misses);
        prop_assert_eq!(snap.get("cache.misses_compulsory"), stats.compulsory_misses);
        prop_assert_eq!(snap.get("cache.misses_refill"), stats.refill_misses());
        prop_assert_eq!(snap.get("cache.evictions"), stats.evictions);
        prop_assert_eq!(snap.get("cache.writebacks"), stats.writebacks);
        prop_assert_eq!(snap.get("cache.write_throughs"), stats.write_throughs);
        prop_assert_eq!(
            stats.compulsory_misses + stats.refill_misses(),
            stats.misses
        );
        prop_assert_eq!(stats.hits + stats.misses, addrs.len() as u64);
    }
}
