//! "Semester" integration tests: each test walks one course's story
//! through multiple crates, the way the curriculum threads a concept
//! from circuits up to distributed systems.

use pdc::core::laws;
use pdc::core::machine::SimMachine;
use pdc::mpi::coll;
use pdc::mpi::world::{Rank, World};
use pdc::sync::{BoundedBuffer, SenseBarrier};
use std::sync::Arc;

/// CS31's vertical slice: bits -> gates -> ISA -> threads.
#[test]
fn cs31_vertical_slice() {
    use pdc::arch::alu::{Alu, AluOp};
    use pdc::arch::isa::{assemble, Vm};
    use pdc::arch::logic::{to_bits, Circuit};

    // Layer 1: data representation.
    let a: i64 = -42;
    let pattern = pdc::arch::datarep::to_twos_complement(a, 16).unwrap();

    // Layer 2: a NAND-gate adder computes with that pattern.
    let mut circ = Circuit::new();
    let xa = circ.input_bus("a", 16);
    let xb = circ.input_bus("b", 16);
    let cin = circ.constant(false);
    let (sum, _) = circ.kogge_stone_adder(&xa, &xb, cin);
    let mut inputs = to_bits(pattern, 16);
    inputs.extend(to_bits(100, 16));
    let gate_result = circ.eval_bus_u64(&inputs, &sum);

    // Layer 3: the word-level ALU agrees with the gates.
    let alu = Alu::new(16);
    let (alu_result, _) = alu.exec(AluOp::Add, pattern, 100);
    assert_eq!(gate_result, alu_result);
    assert_eq!(
        pdc::arch::datarep::from_twos_complement(alu_result, 16).unwrap(),
        58
    );

    // Layer 4: the same arithmetic runs as a program on the VM.
    let prog = assemble("in\npush 100\nadd\nout\nhalt").unwrap();
    let mut vm = Vm::new(prog, 4).with_input([a]);
    vm.run(100).unwrap();
    assert_eq!(vm.output, vec![58]);

    // Layer 5: and as a threaded computation with a barrier.
    let barrier = Arc::new(SenseBarrier::new(4));
    let results: Vec<i64> = std::thread::scope(|s| {
        (0..4)
            .map(|i| {
                let b = Arc::clone(&barrier);
                s.spawn(move || {
                    let local = a + 100 + i; // each worker's variant
                    b.wait();
                    local
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(results, vec![58, 59, 60, 61]);
}

/// CS31's synchronization story: producer-consumer between stages.
#[test]
fn cs31_pipeline_of_stages() {
    // Stage 1 produces squares; stage 2 filters; stage 3 sums.
    let q1 = Arc::new(BoundedBuffer::new(8));
    let q2 = Arc::new(BoundedBuffer::new(8));
    let total = std::thread::scope(|s| {
        let (q1a, q1b) = (Arc::clone(&q1), Arc::clone(&q1));
        let (q2a, q2b) = (Arc::clone(&q2), Arc::clone(&q2));
        s.spawn(move || {
            for i in 1..=100i64 {
                q1a.put(i * i);
            }
            q1a.put(-1); // poison pill
        });
        s.spawn(move || loop {
            let v = q1b.take();
            if v == -1 {
                q2a.put(-1);
                break;
            }
            if v % 2 == 0 {
                q2a.put(v);
            }
        });
        let h = s.spawn(move || {
            let mut sum = 0i64;
            loop {
                let v = q2b.take();
                if v == -1 {
                    return sum;
                }
                sum += v;
            }
        });
        h.join().unwrap()
    });
    let want: i64 = (1..=100i64).map(|i| i * i).filter(|v| v % 2 == 0).sum();
    assert_eq!(total, want);
}

/// CS41's analysis story: predict with work/span, then observe the
/// prediction hold on the simulated machine and the PRAM.
#[test]
fn cs41_predict_then_measure() {
    let n = 4096usize;
    // Prediction: reduce has span ceil(log2 n), so even unlimited
    // processors cannot beat that.
    let input: Vec<i64> = (0..n as i64).collect();
    let (_, pram) = pdc::pram::algos::reduce_sum(&input).unwrap();
    let ws = pram.work_span();
    assert_eq!(ws.span, 12); // log2(4096)
    let unlimited = pram.time_on(1 << 20);
    assert_eq!(unlimited, ws.span, "span is the floor");
    // Speedup curve bends exactly where Brent says.
    let t1 = pram.time_on(1);
    for p in [2usize, 8, 64] {
        let tp = pram.time_on(p);
        let measured = t1 as f64 / tp as f64;
        let bound = ws.parallelism().min(p as f64);
        assert!(measured <= bound + 1e-9, "p={p}: {measured} > {bound}");
    }
}

/// CS87's distributed story: SPMD program mixing collectives, verified
/// against the sequential spec, with Amdahl bookkeeping.
#[test]
fn cs87_spmd_program() {
    let p = 6;
    let n = 600usize;
    let data: Vec<i64> = (0..n as i64).map(|i| (i * 7) % 23).collect();
    let want_sum: i64 = data.iter().sum();
    let want_max = *data.iter().max().unwrap();

    let chunks: Vec<Vec<i64>> = data.chunks(n / p).map(<[i64]>::to_vec).collect();
    let (results, traffic) = World::run(p, |r: &mut Rank<i64>| {
        let mine = &chunks[r.id()];
        let local_sum: i64 = mine.iter().sum();
        let local_max = *mine.iter().max().unwrap();
        let sum = coll::allreduce(r, local_sum, |a, b| a + b);
        let max = coll::allreduce(r, local_max, i64::max);
        coll::barrier(r);
        (sum, max)
    });
    for (sum, max) in results {
        assert_eq!(sum, want_sum);
        assert_eq!(max, want_max);
    }
    // Traffic: 2 allreduces (2*2*(p-1)) + barrier (p*ceil(log2 p)).
    let expect = 2 * 2 * (p as u64 - 1) + (p as u64) * 3;
    assert_eq!(traffic.messages, expect);
}

/// The curriculum's quantitative throughline: measured speedups always
/// respect Amdahl once you know the serial fraction.
#[test]
fn amdahl_governs_the_simulated_machine() {
    // A program with an explicitly serial setup phase.
    let serial_ops = 10_000u64;
    let parallel_ops = 90_000u64;
    let s = serial_ops as f64 / (serial_ops + parallel_ops) as f64;
    let time = |p: usize| {
        let mut m = SimMachine::new(pdc::core::machine::MachineConfig::ideal(p));
        m.serial(serial_ops);
        m.parallel_even(parallel_ops, p);
        m.finish().elapsed()
    };
    let t1 = time(1);
    for p in [2usize, 4, 8, 16, 100] {
        let measured = t1 / time(p);
        let predicted = laws::amdahl_speedup(s, p);
        assert!(
            (measured - predicted).abs() / predicted < 0.01,
            "p={p}: measured {measured} vs Amdahl {predicted}"
        );
    }
}
