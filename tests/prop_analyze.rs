//! Property-based tests over `pdc-analyze`: randomized *data-race-free*
//! executions on real threads must always come back clean (the
//! false-positive direction CI cannot grep for), and the known-defect
//! fixtures must always be flagged (the false-negative direction) —
//! soundness in both directions, through the `pdc::` facade.

use pdc::analyze::{analyze, fixtures, DefectKind};
use pdc::core::trace::{self, TraceSession};
use pdc::sync::PdcMutex;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Each shared variable is owned by its own mutex, every thread
    /// follows a randomized access schedule taking exactly one lock at
    /// a time, and every access happens inside the right guard. No
    /// schedule of this shape can race, violate a lockset, or nest
    /// locks — the analyzer must report clean every time.
    #[test]
    fn randomized_drf_schedules_analyze_clean(
        schedules in proptest::collection::vec(
            proptest::collection::vec(0usize..3, 1..40),
            2..5,
        ),
    ) {
        let session = TraceSession::new();
        let locks: Vec<PdcMutex<u64>> = (0..3).map(|_| PdcMutex::new(0)).collect();
        let vars: Vec<u64> = (0..3).map(|_| trace::next_site_id()).collect();
        std::thread::scope(|s| {
            for (t, schedule) in schedules.iter().enumerate() {
                let (session, locks, vars) = (&session, &locks, &vars);
                s.spawn(move || {
                    trace::install_sync_trace(session.thread(t as u32));
                    for &v in schedule {
                        let mut g = locks[v].lock();
                        trace::record_var_read(vars[v]);
                        let cur = *g;
                        trace::record_var_write(vars[v]);
                        *g = cur + 1;
                    }
                    trace::clear_sync_trace();
                });
            }
        });
        let report = analyze(&session);
        prop_assert!(report.clean(), "false positive on a DRF schedule: {:?}", report.defects);
        prop_assert!(report.gated_cycles.is_empty());
        prop_assert_eq!(report.dropped, 0);
        let total: u64 = schedules.iter().map(|s| s.len() as u64).sum();
        let sum: u64 = locks.into_iter().map(PdcMutex::into_inner).sum();
        prop_assert_eq!(sum, total, "the schedule itself must have run to completion");
    }

    /// Threads acquire random *runs* of locks, always in ascending
    /// index order (the global-ordering discipline), touching each
    /// lock's variable while holding it. Nesting is real, but the
    /// order is consistent — the lock-order analysis must never
    /// manufacture a cycle, and the accesses must stay clean.
    #[test]
    fn consistent_nested_order_never_reports_a_cycle(
        runs in proptest::collection::vec(
            proptest::collection::vec((0usize..4, 1usize..4), 1..12),
            2..4,
        ),
    ) {
        const NLOCKS: usize = 6;
        let session = TraceSession::new();
        let locks: Vec<PdcMutex<u64>> = (0..NLOCKS).map(|_| PdcMutex::new(0)).collect();
        let vars: Vec<u64> = (0..NLOCKS).map(|_| trace::next_site_id()).collect();
        std::thread::scope(|s| {
            for (t, run) in runs.iter().enumerate() {
                let (session, locks, vars) = (&session, &locks, &vars);
                s.spawn(move || {
                    trace::install_sync_trace(session.thread(t as u32));
                    for &(start, len) in run {
                        let end = (start + len).min(NLOCKS);
                        // Ascending acquisition; guards drop in reverse.
                        let guards: Vec<_> = (start..end)
                            .map(|i| (i, locks[i].lock()))
                            .collect();
                        for (i, g) in &guards {
                            trace::record_var_read(vars[*i]);
                            std::hint::black_box(**g);
                            trace::record_var_write(vars[*i]);
                        }
                        drop(guards);
                    }
                    trace::clear_sync_trace();
                });
            }
        });
        let report = analyze(&session);
        prop_assert!(report.clean(), "false positive under global ordering: {:?}", report.defects);
        prop_assert_eq!(report.count_kind(DefectKind::LockOrderCycle), 0);
    }
}

// -- Soundness direction: the known-defect fixtures must be flagged. --

#[test]
fn racy_counter_is_flagged_by_both_detectors() {
    let report = analyze(&fixtures::racy_counter_session());
    assert!(
        report.count_kind(DefectKind::DataRace) >= 1,
        "happens-before missed the racy counter: {:?}",
        report.defects
    );
    assert!(
        report.count_kind(DefectKind::LocksetViolation) >= 1,
        "lockset missed the racy counter: {:?}",
        report.defects
    );
}

#[test]
fn fixed_counter_is_clean() {
    let report = analyze(&fixtures::fixed_counter_session());
    assert!(report.clean(), "{:?}", report.defects);
}

#[test]
fn deadlocky_philosophers_yield_a_lock_order_cycle() {
    let (session, sim) = fixtures::deadlocky_philosophers_session(5);
    assert!(
        !sim.outcome.deadlocked,
        "prediction must come from a run that completed"
    );
    let report = analyze(&session);
    assert_eq!(report.count_kind(DefectKind::LockOrderCycle), 1);
    let cycle = &report
        .defects
        .iter()
        .find(|d| d.kind == DefectKind::LockOrderCycle)
        .unwrap()
        .sites;
    let mut got = cycle.clone();
    got.sort_unstable();
    let mut want = sim.fork_sites.clone();
    want.sort_unstable();
    assert_eq!(got, want, "the cycle is the fork ring itself");
}

#[test]
fn both_philosopher_fixes_are_clean() {
    let (ordered, _) = fixtures::ordered_philosophers_session(5);
    let report = analyze(&ordered);
    assert!(report.clean(), "ordered: {:?}", report.defects);
    assert!(
        report.gated_cycles.is_empty(),
        "ordering leaves no ring at all"
    );

    let (arbitrated, _) = fixtures::arbitrator_philosophers_session(5);
    let report = analyze(&arbitrated);
    assert!(report.clean(), "arbitrator: {:?}", report.defects);
    assert_eq!(
        report.gated_cycles.len(),
        1,
        "the arbitrator keeps the ring but gates it"
    );
}

#[test]
fn mpi_mismatch_fixture_is_fully_linted() {
    let report = analyze(&fixtures::mpi_mismatch_session());
    assert_eq!(report.count_kind(DefectKind::MpiUnmatchedSend), 1);
    assert_eq!(report.count_kind(DefectKind::MpiCollectiveOrder), 1);
    assert_eq!(report.count_kind(DefectKind::MpiUnmatchedCollective), 1);
}

#[test]
fn report_json_is_grep_stable() {
    let report = analyze(&fixtures::racy_counter_session());
    let json = report.to_json();
    assert!(json.contains("\"schema\":\"pdc-analyze/1\""));
    assert!(json.contains("\"clean\":false"));
    assert!(json.contains("\"kind\":\"data_race\""));
    assert!(json.contains("\"kind\":\"lockset_violation\""));
}
