//! Property-based tests over the algorithm suite: every sorting,
//! selection, scan, and merge implementation must agree with its
//! specification on arbitrary inputs.

use pdc::algos::mergesort::{merge, merge_sort, parallel_merge, parallel_merge_sort_pmerge};
use pdc::algos::scanapps::{max_subarray_sum, radix_sort_u64};
use pdc::algos::selection::{median_of_medians, parallel_select, quickselect};
use pdc::algos::sorting::{parallel_quicksort, quicksort, sample_sort};
use pdc::threads::sliceops::{par_exclusive_scan, par_filter, par_map, par_reduce};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_sorts_match_std(data in prop::collection::vec(any::<i64>(), 0..400)) {
        let mut want = data.clone();
        want.sort();
        prop_assert_eq!(merge_sort(&data), want.clone());
        prop_assert_eq!(parallel_merge_sort_pmerge(&data, 3), want.clone());
        let mut q = data.clone();
        quicksort(&mut q);
        prop_assert_eq!(q, want.clone());
        let mut pq = data.clone();
        parallel_quicksort(&mut pq, 3);
        prop_assert_eq!(pq, want.clone());
        let (ss, _) = sample_sort(&data, 4, 2, 0);
        prop_assert_eq!(ss, want);
    }

    #[test]
    fn radix_sort_matches_std(data in prop::collection::vec(any::<u64>(), 0..300)) {
        let mut want = data.clone();
        want.sort_unstable();
        prop_assert_eq!(radix_sort_u64(&data, 2), want);
    }

    #[test]
    fn merge_of_sorted_inputs_is_sorted_union(
        mut a in prop::collection::vec(any::<i32>(), 0..200),
        mut b in prop::collection::vec(any::<i32>(), 0..200),
    ) {
        a.sort();
        b.sort();
        let m = merge(&a, &b);
        prop_assert_eq!(m.len(), a.len() + b.len());
        prop_assert!(m.windows(2).all(|w| w[0] <= w[1]));
        // Multiset equality.
        let mut all: Vec<i32> = a.iter().chain(b.iter()).copied().collect();
        all.sort();
        let mut got = m.clone();
        got.sort();
        prop_assert_eq!(got, all);
        // Parallel merge agrees as a multiset and is sorted.
        let pm = parallel_merge(&a, &b, 3);
        prop_assert!(pm.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(pm.len(), m.len());
    }

    #[test]
    fn selection_equals_sorted_index(
        data in prop::collection::vec(any::<i64>(), 1..300),
        k_seed in any::<u64>(),
    ) {
        let k = (k_seed % data.len() as u64) as usize;
        let mut sorted = data.clone();
        sorted.sort();
        prop_assert_eq!(quickselect(&data, k, 1), sorted[k]);
        prop_assert_eq!(median_of_medians(&data, k), sorted[k]);
        prop_assert_eq!(parallel_select(&data, k, 3, 1), sorted[k]);
    }

    #[test]
    fn par_map_filter_reduce_match_serial(
        data in prop::collection::vec(-1000i64..1000, 0..500),
        workers in 1usize..6,
    ) {
        let mapped = par_map(&data, workers, |&x| x * 2 + 1);
        let want: Vec<i64> = data.iter().map(|&x| x * 2 + 1).collect();
        prop_assert_eq!(mapped, want);

        let filtered = par_filter(&data, workers, |&x| x % 3 == 0);
        let want: Vec<i64> = data.iter().copied().filter(|&x| x % 3 == 0).collect();
        prop_assert_eq!(filtered, want);

        let sum = par_reduce(&data, workers, 0i64, |&x| x, |a, b| a + b);
        prop_assert_eq!(sum, data.iter().sum::<i64>());
    }

    #[test]
    fn exclusive_scan_spec(
        data in prop::collection::vec(-500i64..500, 0..400),
        workers in 1usize..6,
    ) {
        let (scan, total) = par_exclusive_scan(&data, workers, 0i64, |a, b| a + b);
        let mut acc = 0i64;
        for (i, &x) in data.iter().enumerate() {
            prop_assert_eq!(scan[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn max_subarray_matches_kadane(data in prop::collection::vec(-50i64..50, 1..300)) {
        let mut best = 0i64;
        let mut cur = 0i64;
        for &x in &data {
            cur = (cur + x).max(0);
            best = best.max(cur);
        }
        prop_assert_eq!(max_subarray_sum(&data, 3), best);
    }
}
