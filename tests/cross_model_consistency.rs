//! Cross-crate consistency: the same computation, implemented on
//! different substrates (sequential, fork-join threads, PRAM, GPU,
//! message passing, external memory), must produce identical results.
//! This is the repo-wide invariant that makes the "models of
//! computation" story trustworthy.

use pdc::algos::mergesort::{merge_sort, parallel_merge_sort, parallel_merge_sort_pmerge};
use pdc::algos::scanapps::radix_sort_u64;
use pdc::algos::sorting::{parallel_quicksort, quicksort, sample_sort};
use pdc::core::rng::Rng;
use pdc::extmem::device::Disk;
use pdc::extmem::extsort::{external_merge_sort, SortConfig};
use pdc::gpu::kernels::{
    block_exclusive_scan, reduce_global, reduce_shared_interleaved, reduce_shared_sequential,
};
use pdc::life::dist::dist_step_generations;
use pdc::life::{Boundary, Grid};
use pdc::mpi::coll;
use pdc::mpi::world::{Rank, World};
use pdc::pram::algos::{reduce_sum, scan_blelloch, scan_hillis_steele};
use pdc::threads::sliceops::{par_exclusive_scan, par_inclusive_scan, par_reduce};

#[test]
fn six_sorting_algorithms_agree() {
    let mut rng = Rng::new(0xBEEF);
    let data_u64 = rng.u64_vec(8_000);
    let data: Vec<i64> = data_u64.iter().map(|&x| (x % 100_000) as i64).collect();
    let small_u64: Vec<u64> = data.iter().map(|&x| x as u64).collect();

    let mut want = data.clone();
    want.sort();

    assert_eq!(merge_sort(&data), want);
    assert_eq!(parallel_merge_sort(&data, 4), want);
    assert_eq!(parallel_merge_sort_pmerge(&data, 4), want);
    let mut q = data.clone();
    quicksort(&mut q);
    assert_eq!(q, want);
    let mut pq = data.clone();
    parallel_quicksort(&mut pq, 4);
    assert_eq!(pq, want);
    let (ss, _) = sample_sort(&data, 8, 4, 1);
    assert_eq!(ss, want);

    // Radix (u64 view) and external sort agree too.
    let mut want_u = small_u64.clone();
    want_u.sort_unstable();
    assert_eq!(radix_sort_u64(&small_u64, 4), want_u);
    let mut disk = Disk::new(32);
    let f = disk.create_file(small_u64);
    let sorted = external_merge_sort(&mut disk, f, SortConfig { memory: 512 });
    assert_eq!(disk.contents(sorted), &want_u[..]);
}

#[test]
fn reduce_agrees_across_five_substrates() {
    let mut rng = Rng::new(7);
    let data: Vec<i64> = (0..4096)
        .map(|_| rng.gen_range(1000) as i64 - 500)
        .collect();
    let want: i64 = data.iter().sum();

    // Threads.
    assert_eq!(
        par_reduce(&data, 4, 0i64, |&x| x, |a, b| a + b),
        want,
        "threads"
    );
    // PRAM.
    let (pram_sum, _) = reduce_sum(&data).unwrap();
    assert_eq!(pram_sum, want, "pram");
    // GPU, all three kernel variants.
    assert_eq!(reduce_global(&data, 256).0, want, "gpu global");
    assert_eq!(reduce_shared_interleaved(&data, 256).0, want, "gpu inter");
    assert_eq!(reduce_shared_sequential(&data, 256).0, want, "gpu seq");
    // Message passing: scatter the data, allreduce partial sums.
    let chunks: Vec<Vec<i64>> = data.chunks(1024).map(<[i64]>::to_vec).collect();
    let p = chunks.len();
    let (results, _) = World::run(p, |r: &mut Rank<i64>| {
        let mine: i64 = chunks[r.id()].iter().sum();
        coll::allreduce(r, mine, |a, b| a + b)
    });
    assert!(results.iter().all(|&v| v == want), "mpi");
}

#[test]
fn scan_agrees_across_four_substrates() {
    let n = 256usize;
    let data: Vec<i64> = (0..n as i64).map(|i| (i * 13) % 29 - 14).collect();
    // Serial exclusive scan reference.
    let mut acc = 0;
    let want_ex: Vec<i64> = data
        .iter()
        .map(|&x| {
            let v = acc;
            acc += x;
            v
        })
        .collect();
    let want_in: Vec<i64> = data
        .iter()
        .scan(0i64, |s, &x| {
            *s += x;
            Some(*s)
        })
        .collect();

    // Threads.
    let (ex, total) = par_exclusive_scan(&data, 4, 0i64, |a, b| a + b);
    assert_eq!(ex, want_ex, "threads exclusive");
    assert_eq!(total, acc);
    assert_eq!(
        par_inclusive_scan(&data, 4, 0i64, |a, b| a + b),
        want_in,
        "threads inclusive"
    );
    // PRAM (both algorithms).
    let (hs, _) = scan_hillis_steele(&data).unwrap();
    assert_eq!(hs, want_in, "pram hillis-steele (inclusive)");
    let (bl, bl_total, _) = scan_blelloch(&data).unwrap();
    assert_eq!(bl, want_ex, "pram blelloch (exclusive)");
    assert_eq!(bl_total, acc);
    // GPU block scan.
    let (gpu, _) = block_exclusive_scan(&data);
    assert_eq!(gpu, want_ex, "gpu blelloch");
    // MPI exclusive scan over per-rank values.
    let (mpi_scan, _) = World::run(8, |r: &mut Rank<i64>| {
        coll::exclusive_scan(r, 0, (r.id() as i64 + 1) * 3, |a, b| a + b)
    });
    let want_mpi: Vec<i64> = (0..8).map(|i| (0..i).map(|j| (j + 1) * 3).sum()).collect();
    assert_eq!(mpi_scan, want_mpi, "mpi scan");
}

#[test]
fn life_agrees_across_three_engines() {
    let board = Grid::random(32, 24, Boundary::Torus, 0.4, 555);
    let gens = 12;
    let (seq, _) = pdc::life::engine::step_generations(&board, gens);
    for workers in [2usize, 5] {
        let (par, _) = pdc::life::parallel::parallel_step_generations(&board, gens, workers);
        assert_eq!(par, seq, "threads w={workers}");
    }
    for ranks in [2usize, 3, 8] {
        let (dist, _) = dist_step_generations(&board, gens, ranks);
        assert_eq!(dist, seq, "mpi ranks={ranks}");
    }
}

#[test]
fn alu_agrees_with_isa_vm_arithmetic() {
    // The word-level ALU and the PDC-1 VM implement the same arithmetic.
    use pdc::arch::alu::{Alu, AluOp};
    use pdc::arch::isa::{assemble, Vm};
    let alu = Alu::new(64);
    let prog = assemble("in\nin\nadd\nout\nin\nin\nmul\nout\nhalt").unwrap();
    let cases = [(3i64, 4i64, 10i64, -7i64), (-1, 1, i64::MAX, 2)];
    for (a, b, c, d) in cases {
        let mut vm = Vm::new(prog.clone(), 4).with_input([a, b, c, d]);
        vm.run(100).unwrap();
        let (sum_alu, _) = alu.exec(AluOp::Add, a as u64, b as u64);
        assert_eq!(vm.output[0], sum_alu as i64, "add {a}+{b}");
        assert_eq!(vm.output[1], c.wrapping_mul(d), "mul {c}*{d}");
    }
}

#[test]
fn histogram_threads_vs_mapreduce() {
    use pdc::mpi::mapreduce::run_job;
    use pdc::threads::sliceops::par_histogram;
    let mut rng = Rng::new(99);
    let data: Vec<u64> = (0..10_000).map(|_| rng.gen_range(32)).collect();
    let hist = par_histogram(&data, 4, 32, |&x| x as usize);
    // Same histogram via MapReduce.
    let (mr, _) = run_job(
        data.chunks(500).map(<[u64]>::to_vec).collect(),
        4,
        4,
        |chunk: Vec<u64>| chunk.into_iter().map(|x| (x, 1u64)).collect(),
        |_k, vs| vs.iter().sum::<u64>(),
    );
    for (k, count) in mr {
        assert_eq!(hist[k as usize], count, "bin {k}");
    }
}
