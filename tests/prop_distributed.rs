//! Property-based tests over the distributed and memory-system
//! substrates: collectives on arbitrary values, external sort vs std
//! sort, coherence protocol invariants on random traces, DHT stability,
//! 2PC atomicity, scheduler conservation laws.

use pdc::db::dht::HashRing;
use pdc::db::twopc::{Coordinator, Fault};
use pdc::extmem::device::Disk;
use pdc::extmem::extsort::{external_merge_sort, SortConfig};
use pdc::memsim::coherence::{CoherenceSim, Protocol};
use pdc::mpi::coll;
use pdc::mpi::world::{Rank, World};
use pdc::os::sched::{simulate as sched_sim, Job, SchedPolicy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn allreduce_sum_any_values(
        values in prop::collection::vec(-10_000i64..10_000, 2..9),
    ) {
        let p = values.len();
        let want: i64 = values.iter().sum();
        let vals = values.clone();
        let (results, stats) = World::run(p, move |r: &mut Rank<i64>| {
            coll::allreduce(r, vals[r.id()], |a, b| a + b)
        });
        prop_assert!(results.iter().all(|&v| v == want));
        prop_assert_eq!(stats.messages, 2 * (p as u64 - 1));
    }

    #[test]
    fn gather_scatter_roundtrip(
        values in prop::collection::vec(any::<u64>(), 2..9),
        root_seed in any::<u64>(),
    ) {
        let p = values.len();
        let root = (root_seed % p as u64) as usize;
        let vals = values.clone();
        let (results, _) = World::run(p, move |r: &mut Rank<u64>| {
            // Gather everyone's value at root, then scatter it back.
            let gathered = coll::gather(r, root, vals[r.id()]);
            coll::scatter(r, root, gathered)
        });
        prop_assert_eq!(results, values);
    }

    #[test]
    fn exclusive_scan_any_op_values(
        values in prop::collection::vec(0u64..1000, 2..9),
    ) {
        let p = values.len();
        let vals = values.clone();
        let (results, _) = World::run(p, move |r: &mut Rank<u64>| {
            coll::exclusive_scan(r, 0, vals[r.id()], |a, b| a + b)
        });
        let mut acc = 0;
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(results[i], acc, "rank {}", i);
            acc += v;
        }
    }

    #[test]
    fn external_sort_equals_std_sort(
        data in prop::collection::vec(any::<u64>(), 0..600),
        mem_pow in 5usize..9, // memory 32..256 records
    ) {
        let memory = 1 << mem_pow;
        let mut want = data.clone();
        want.sort_unstable();
        let mut disk = Disk::new(8);
        let input = disk.create_file(data);
        let out = external_merge_sort(&mut disk, input, SortConfig { memory });
        prop_assert_eq!(disk.contents(out), &want[..]);
    }

    #[test]
    fn coherence_invariants_hold_on_random_traces(
        events in prop::collection::vec((0usize..4, 0u64..512, any::<bool>()), 1..300),
        mesi in any::<bool>(),
    ) {
        let protocol = if mesi { Protocol::Mesi } else { Protocol::Msi };
        let mut sim = CoherenceSim::new(protocol, 4, 64);
        for (i, &(c, a, w)) in events.iter().enumerate() {
            sim.access(c, a, w);
            if let Some(violation) = sim.check_invariants() {
                prop_assert!(false, "after event {i}: {violation}");
            }
        }
        // Conservation: hits + misses = accesses.
        let s = sim.stats();
        prop_assert_eq!(s.hits + s.misses, events.len() as u64);
    }

    #[test]
    fn dht_total_and_stable(
        node_count in 2u64..8,
        key_count in 1usize..300,
    ) {
        let mut ring = HashRing::new(32);
        for n in 0..node_count {
            ring.add_node(n);
        }
        let keys: Vec<String> = (0..key_count).map(|i| format!("key{i}")).collect();
        // Total: every key routes somewhere valid.
        for k in &keys {
            let n = ring.node_for(k).unwrap();
            prop_assert!(n < node_count);
        }
        // Stability: removing an unrelated node never reroutes keys that
        // were not on it.
        let victim = node_count - 1;
        let before: Vec<_> = keys.iter().map(|k| ring.node_for(k).unwrap()).collect();
        let mut after = ring.clone();
        after.remove_node(victim);
        for (k, &b) in keys.iter().zip(&before) {
            if b != victim {
                prop_assert_eq!(after.node_for(k), Some(b), "stable key {}", k);
            } else {
                prop_assert_ne!(after.node_for(k), Some(victim));
            }
        }
    }

    #[test]
    fn twopc_always_atomic(
        fault_codes in prop::collection::vec(0u8..4, 1..7),
    ) {
        let faults: Vec<Fault> = fault_codes
            .iter()
            .map(|&c| match c {
                0 => Fault::None,
                1 => Fault::VoteNo,
                2 => Fault::CrashBeforeVote,
                _ => Fault::CrashAfterVote,
            })
            .collect();
        let mut coord = Coordinator::new(&faults);
        let d = coord.run();
        coord.recover_all();
        prop_assert!(coord.is_atomic());
        for p in &coord.participants {
            prop_assert_eq!(p.outcome(), Some(d));
        }
    }

    #[test]
    fn schedulers_conserve_cpu_time(
        bursts in prop::collection::vec(1u64..30, 1..12),
        arrivals in prop::collection::vec(0u64..50, 12),
        quantum in 1u64..8,
    ) {
        let jobs: Vec<Job> = bursts
            .iter()
            .zip(&arrivals)
            .map(|(&b, &a)| Job::new(a, b))
            .collect();
        let total: u64 = jobs.iter().map(|j| j.burst).sum();
        for policy in [
            SchedPolicy::Fcfs,
            SchedPolicy::Sjf,
            SchedPolicy::RoundRobin { quantum },
            SchedPolicy::Priority,
            SchedPolicy::Mlfq { base_quantum: quantum },
        ] {
            let m = sched_sim(policy, &jobs);
            // Makespan >= total work; every job finishes after arrival+burst.
            prop_assert!(m.makespan >= total, "{policy:?}");
            for (j, job) in m.jobs.iter().zip(&jobs) {
                prop_assert!(j.completion >= job.arrival + job.burst, "{policy:?}");
                prop_assert_eq!(j.turnaround, j.waiting + job.burst);
                prop_assert!(j.response <= j.waiting);
            }
            // CPU never idles while work is available: makespan equals
            // total burst plus idle gaps, which only occur before the
            // last arrival; we check the weaker but universal bound.
            let last_arrival = jobs.iter().map(|j| j.arrival).max().unwrap();
            prop_assert!(m.makespan <= last_arrival + total, "{policy:?}");
        }
    }
}
