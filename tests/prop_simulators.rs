//! Property-based tests over the simulators: machine-level invariants
//! that must hold for *any* input — determinism, conservation, bounds.

use pdc::arch::datarep;
use pdc::arch::isa::{assemble, Instr, Program, Vm};
use pdc::core::taskgraph::TaskGraph;
use pdc::memsim::cache::{Cache, CacheConfig};
use pdc::os::vm::{run as page_run, ReplacePolicy};
use pdc::pram::algos::reduce_sum;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn twos_complement_roundtrips(v in any::<i64>(), bits in 1u32..=64) {
        let min = datarep::signed_min(bits);
        let max = datarep::signed_max(bits);
        let v = v.clamp(min, max);
        let p = datarep::to_twos_complement(v, bits).unwrap();
        prop_assert_eq!(datarep::from_twos_complement(p, bits).unwrap(), v);
        // Sign extension to 64 bits preserves the value.
        let wide = datarep::sign_extend(p, bits, 64).unwrap();
        prop_assert_eq!(wide as i64, v);
    }

    #[test]
    fn add_with_flags_matches_wrapping(a in any::<u64>(), b in any::<u64>(), bits in 1u32..=64) {
        let mask = datarep::unsigned_max(bits);
        let (a, b) = (a & mask, b & mask);
        let r = datarep::add_with_flags(a, b, bits);
        prop_assert_eq!(r.pattern, a.wrapping_add(b) & mask);
        // Carry iff true sum exceeds the width.
        prop_assert_eq!(r.carry, (a as u128 + b as u128) > mask as u128);
    }

    #[test]
    fn cache_conservation_laws(
        addrs in prop::collection::vec(0u64..4096, 1..500),
        ways_pow in 0u32..3,
        sets_pow in 0u32..5,
    ) {
        let cfg = CacheConfig {
            line_size: 64,
            sets: 1 << sets_pow,
            ways: 1 << ways_pow,
            replacement: pdc::memsim::cache::ReplacementPolicy::Lru,
            write: pdc::memsim::cache::WritePolicy::WriteBackAllocate,
        };
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.read(a);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
        // Evictions never exceed misses; distinct lines bound compulsory
        // misses from below.
        prop_assert!(s.evictions <= s.misses);
        let mut lines: Vec<u64> = addrs.iter().map(|a| a / 64).collect();
        lines.sort_unstable();
        lines.dedup();
        prop_assert!(s.misses >= lines.len() as u64);
        // Reads never write back (nothing is dirty).
        prop_assert_eq!(s.writebacks, 0);
    }

    #[test]
    fn bigger_lru_cache_never_misses_more(
        addrs in prop::collection::vec(0u64..2048, 1..400),
    ) {
        // LRU is a stack algorithm: inclusion holds for fully-assoc
        // caches of growing size.
        let mut last = u64::MAX;
        for lines in [2usize, 4, 8, 16] {
            let mut c = Cache::new(CacheConfig::fully_associative(64, lines));
            for &a in &addrs {
                c.read(a);
            }
            let misses = c.stats().misses;
            prop_assert!(misses <= last, "lru anomaly at {lines} lines");
            last = misses;
        }
    }

    #[test]
    fn opt_paging_is_optimal(
        refs in prop::collection::vec(0u64..12, 1..200),
        frames in 1usize..8,
    ) {
        let opt = page_run(ReplacePolicy::Opt, frames, &refs).faults;
        for policy in [ReplacePolicy::Fifo, ReplacePolicy::Lru, ReplacePolicy::Clock] {
            let f = page_run(policy, frames, &refs).faults;
            prop_assert!(opt <= f, "{policy:?} beat OPT");
        }
        // Even OPT pays the compulsory miss for each distinct page.
        let mut distinct = refs.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(opt >= distinct.len() as u64);
    }

    #[test]
    fn vm_is_deterministic(inputs in prop::collection::vec(-1000i64..1000, 2..10)) {
        let prog = assemble("in\nin\nadd\ndup\nmul\nout\nhalt").unwrap();
        let run = |inp: &[i64]| {
            let mut vm = Vm::new(prog.clone(), 4).with_input(inp.to_vec());
            vm.run(1000).unwrap();
            (vm.output.clone(), vm.steps())
        };
        let a = run(&inputs);
        let b = run(&inputs);
        prop_assert_eq!(&a, &b, "same input, same trace");
        let expect = (inputs[0] + inputs[1]).wrapping_mul(inputs[0] + inputs[1]);
        prop_assert_eq!(a.0[0], expect);
    }

    #[test]
    fn random_dags_respect_brent(
        costs in prop::collection::vec(1u64..20, 2..40),
        edge_seed in any::<u64>(),
        p in 1usize..9,
    ) {
        // Build a random DAG: edges only from lower to higher index.
        let mut g = TaskGraph::new();
        let ids: Vec<_> = costs.iter().map(|&c| g.add_task(c)).collect();
        let mut x = edge_seed | 1;
        for j in 1..ids.len() {
            for i in 0..j {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if x >> 62 == 0 {
                    g.add_dep(ids[i], ids[j]);
                }
            }
        }
        let ws = g.work_span();
        let sched = g.schedule(p);
        let t = sched.makespan as f64;
        prop_assert!(t >= ws.brent_lower(p) - 1e-9);
        prop_assert!(t <= ws.brent_upper(p) + 1e-9);
        // One worker executes exactly the work.
        prop_assert_eq!(g.schedule(1).makespan, ws.work);
    }

    #[test]
    fn pram_reduce_any_input(data in prop::collection::vec(-10_000i64..10_000, 1..200)) {
        let (sum, pram) = reduce_sum(&data).unwrap();
        prop_assert_eq!(sum, data.iter().sum::<i64>());
        if data.len() > 1 {
            // Work is always exactly n-1 combines.
            prop_assert_eq!(pram.work(), data.len() as u64 - 1);
        }
    }

    #[test]
    fn assembler_roundtrips_random_programs(
        ops in prop::collection::vec(0usize..8, 1..50),
        imms in prop::collection::vec(any::<i32>(), 50),
    ) {
        // Build a random straight-line program from a safe opcode menu.
        let mut code = Vec::new();
        for (i, &op) in ops.iter().enumerate() {
            let imm = i64::from(imms[i % imms.len()]);
            code.push(match op {
                0 => Instr::Push(imm),
                1 => Instr::Nop,
                2 => Instr::Push(imm),
                3 => Instr::Out,
                4 => Instr::Dup,
                5 => Instr::Add,
                6 => Instr::Swap,
                _ => Instr::Neg,
            });
        }
        code.push(Instr::Halt);
        let text: Vec<String> = code.iter().map(|&i| pdc::arch::isa::disassemble(i)).collect();
        let prog2: Program = assemble(&text.join("\n")).unwrap();
        prop_assert_eq!(prog2.code, code);
    }
}
