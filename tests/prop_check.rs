//! Property-based tests over the pdc-check record/replay contract.
//!
//! The checker's whole value rests on two promises: (1) a recorded
//! schedule is a *complete* description of a run, so replaying it
//! reproduces the canonical trace byte for byte; (2) the shrinker only
//! ever hands back schedules that still fail, so the minimized artifact
//! a student opens is a real counterexample, not a near miss. Both are
//! exercised here over randomized schedules and seeds rather than the
//! handful of fixtures the unit tests pin down.

use pdc::check::{
    enumerate_dfs, enumerate_dpor, explore_pct, fixtures, replay, Config, Schedule, ScheduleSummary,
};
use pdc::core::trace;
use pdc::sync::PdcMutex;
use proptest::prelude::*;
use std::sync::Arc;

fn quiet_cfg(seed: u64) -> Config {
    Config {
        seed,
        max_schedules: 64,
        shrink_budget: 32,
        ..Config::default()
    }
}

/// A randomized small checked body: two tasks, each running a short
/// program over one shared mutex-guarded counter and one bare shared
/// variable. The op alphabet deliberately mixes clean (locked) and
/// racy (bare) accesses plus pure yields, so the generated bodies span
/// clean, racy, and mixed verdicts.
fn random_body(specs: [Vec<u8>; 2]) -> impl Fn() + Send + Sync + 'static {
    move || {
        let counter = Arc::new(PdcMutex::new(0u64));
        let locked_var = trace::next_site_id();
        let bare_var = trace::next_site_id();
        let handles: Vec<_> = specs
            .iter()
            .cloned()
            .map(|ops| {
                let counter = Arc::clone(&counter);
                pdc::check::spawn(move || {
                    for op in ops {
                        match op % 4 {
                            0 => {
                                let mut g = counter.lock();
                                trace::record_var_read(locked_var);
                                let v = *g;
                                trace::record_var_write(locked_var);
                                *g = v + 1;
                            }
                            1 => trace::record_var_write(bare_var),
                            2 => trace::record_var_read(bare_var),
                            _ => pdc::check::yield_now(),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
    }
}

/// The distinct verdicts (outcome class + sorted defect kinds) a
/// schedule set exhibits.
fn verdict_set(set: &[ScheduleSummary]) -> Vec<(bool, Vec<String>)> {
    let mut v: Vec<(bool, Vec<String>)> =
        set.iter().map(|s| (s.ok, s.defect_kinds.clone())).collect();
    v.sort();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replay is a fixed point: running an *arbitrary* choice sequence
    /// through the lenient replayer records some actual schedule; that
    /// recorded schedule, replayed again, must reproduce the same
    /// recorded choices, the same outcome class, and a byte-identical
    /// canonical `pdc-trace/2` JSONL trace. The input choices are junk
    /// on purpose — ids that are never enabled fall back to the first
    /// enabled task, and the recorded schedule must absorb that.
    fn replaying_a_recorded_schedule_is_byte_identical(
        raw_choices in prop::collection::vec(0u32..6, 0..24),
        ops in 1u64..3,
    ) {
        let cfg = Config { shrink_budget: 0, ..quiet_cfg(1) };
        let arbitrary = Schedule {
            strategy: "replay".to_string(),
            seed: 0,
            choices: raw_choices,
        };
        let first = replay(fixtures::racy_counter_body(ops), &arbitrary, &cfg);
        let second = replay(fixtures::racy_counter_body(ops), &first.schedule, &cfg);
        prop_assert_eq!(&second.schedule.choices, &first.schedule.choices);
        prop_assert_eq!(
            format!("{:?}", second.outcome),
            format!("{:?}", first.outcome)
        );
        prop_assert_eq!(&second.trace_jsonl, &first.trace_jsonl,
            "replay of a recorded schedule diverged from the recording");
        prop_assert!(!first.trace_jsonl.is_empty());
    }

    /// Whatever PCT finds, the shrinker must preserve: the minimized
    /// schedule is no longer than the original, still fails when
    /// replayed, and survives a round-trip through its `pdc-check/1`
    /// JSON encoding with the verdict and trace intact.
    fn shrunk_failing_schedules_still_fail(seed in 1u64..2_000_000) {
        let cfg = quiet_cfg(seed);
        let report = explore_pct(fixtures::racy_counter_body(2), &cfg);
        let found = report.failure.expect("the racy counter must be caught");
        prop_assert!(
            found.minimal.choices.len() <= found.run.schedule.choices.len()
        );
        prop_assert!(found.minimal_run.failed(&cfg),
            "shrinker returned a schedule that no longer fails");

        let json = found.minimal.to_json();
        let parsed = Schedule::parse(&json).expect("schedule JSON round-trip");
        let rerun = replay(fixtures::racy_counter_body(2), &parsed, &cfg);
        prop_assert!(rerun.failed(&cfg),
            "replay of the JSON round-tripped minimal schedule passed");
        prop_assert_eq!(&rerun.trace_jsonl, &found.minimal_run.trace_jsonl);
    }

    /// DPOR's soundness contract, both directions, over random small
    /// bodies: every schedule DPOR executes is one plain DFS also
    /// reaches (DPOR runs each branch through the same forced-prefix
    /// `Dfs` strategy, so its choice vectors must be a subset of the
    /// full enumeration), and when both explorations are complete the
    /// *verdict sets* are identical — pruning may drop redundant
    /// interleavings but never a behaviour class. A reduction that
    /// explores something DFS cannot is unsound; one that misses a
    /// verdict DFS finds is broken.
    fn dpor_is_a_sound_reduction_of_dfs(
        ops_a in prop::collection::vec(0u8..8, 0..4),
        ops_b in prop::collection::vec(0u8..8, 0..4),
    ) {
        let cfg = Config {
            max_schedules: 4_096,
            ..Config::default()
        };
        let specs = [ops_a, ops_b];
        let (dfs, dfs_complete) = enumerate_dfs(random_body(specs.clone()), &cfg);
        let (dpor, dpor_complete, _pruned) = enumerate_dpor(random_body(specs), &cfg);
        for s in &dpor {
            prop_assert!(
                dfs.iter().any(|d| d.choices == s.choices),
                "dpor executed a schedule plain dfs cannot reach: {:?}",
                s.choices
            );
        }
        prop_assert!(dpor.len() <= dfs.len());
        if dfs_complete && dpor_complete {
            prop_assert_eq!(
                verdict_set(&dfs),
                verdict_set(&dpor),
                "complete reductions must preserve the verdict set"
            );
        }
    }
}
