//! Property-based tests over the pdc-check record/replay contract.
//!
//! The checker's whole value rests on two promises: (1) a recorded
//! schedule is a *complete* description of a run, so replaying it
//! reproduces the canonical trace byte for byte; (2) the shrinker only
//! ever hands back schedules that still fail, so the minimized artifact
//! a student opens is a real counterexample, not a near miss. Both are
//! exercised here over randomized schedules and seeds rather than the
//! handful of fixtures the unit tests pin down.

use pdc::check::{explore_pct, fixtures, replay, Config, Schedule};
use proptest::prelude::*;

fn quiet_cfg(seed: u64) -> Config {
    Config {
        seed,
        max_schedules: 64,
        shrink_budget: 32,
        ..Config::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replay is a fixed point: running an *arbitrary* choice sequence
    /// through the lenient replayer records some actual schedule; that
    /// recorded schedule, replayed again, must reproduce the same
    /// recorded choices, the same outcome class, and a byte-identical
    /// canonical `pdc-trace/2` JSONL trace. The input choices are junk
    /// on purpose — ids that are never enabled fall back to the first
    /// enabled task, and the recorded schedule must absorb that.
    fn replaying_a_recorded_schedule_is_byte_identical(
        raw_choices in prop::collection::vec(0u32..6, 0..24),
        ops in 1u64..3,
    ) {
        let cfg = Config { shrink_budget: 0, ..quiet_cfg(1) };
        let arbitrary = Schedule {
            strategy: "replay".to_string(),
            seed: 0,
            choices: raw_choices,
        };
        let first = replay(fixtures::racy_counter_body(ops), &arbitrary, &cfg);
        let second = replay(fixtures::racy_counter_body(ops), &first.schedule, &cfg);
        prop_assert_eq!(&second.schedule.choices, &first.schedule.choices);
        prop_assert_eq!(
            format!("{:?}", second.outcome),
            format!("{:?}", first.outcome)
        );
        prop_assert_eq!(&second.trace_jsonl, &first.trace_jsonl,
            "replay of a recorded schedule diverged from the recording");
        prop_assert!(!first.trace_jsonl.is_empty());
    }

    /// Whatever PCT finds, the shrinker must preserve: the minimized
    /// schedule is no longer than the original, still fails when
    /// replayed, and survives a round-trip through its `pdc-check/1`
    /// JSON encoding with the verdict and trace intact.
    fn shrunk_failing_schedules_still_fail(seed in 1u64..2_000_000) {
        let cfg = quiet_cfg(seed);
        let report = explore_pct(fixtures::racy_counter_body(2), &cfg);
        let found = report.failure.expect("the racy counter must be caught");
        prop_assert!(
            found.minimal.choices.len() <= found.run.schedule.choices.len()
        );
        prop_assert!(found.minimal_run.failed(&cfg),
            "shrinker returned a schedule that no longer fails");

        let json = found.minimal.to_json();
        let parsed = Schedule::parse(&json).expect("schedule JSON round-trip");
        let rerun = replay(fixtures::racy_counter_body(2), &parsed, &cfg);
        prop_assert!(rerun.failed(&cfg),
            "replay of the JSON round-tripped minimal schedule passed");
        prop_assert_eq!(&rerun.trace_jsonl, &found.minimal_run.trace_jsonl);
    }
}
