//! Property tests for the `Scenario`×`Backend` seam: for random seeds
//! and sizes, every scenario's `Outcome` digest is invariant across all
//! backends it supports, the real `pdc-analyze` pass is clean on every
//! run, and the speedup tables contain no NaN or zero-duration rows.

use pdc::core::scenario::{run_scenario, AnalyzeVerdict, Scenario, ScenarioConfig};
use pdc::core::trace::TraceSession;
use proptest::prelude::*;

/// The real analyzer, condensed to the seam's verdict type.
fn analyzer(session: &TraceSession) -> AnalyzeVerdict {
    let report = pdc::analyze::analyze(session);
    AnalyzeVerdict {
        clean: report.clean(),
        defects: report.defects.len(),
        events: report.events_analyzed,
    }
}

/// The shared property: sweep the scenario at one size, then assert the
/// seam's three contracts.
fn check(scenario: &dyn Scenario, seed: u64, size: usize) {
    let cfg = ScenarioConfig::new(seed, &[size]);
    let report = run_scenario(scenario, &cfg, &analyzer);
    assert!(
        report.runs.len() >= 2,
        "{} must run on at least two backends",
        scenario.name()
    );
    assert!(
        report.outcomes_agree(),
        "digest mismatch: {:?}",
        report.mismatches()
    );
    assert!(report.all_clean(), "pdc-analyze flagged a run");
    assert!(
        report.rows_valid(),
        "table rows must have positive durations and finite speedups"
    );
    for r in &report.runs {
        assert_eq!(r.dropped, 0, "{} dropped trace events", r.backend);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn life_digest_invariant_across_backends(seed in any::<u64>(), size in 8usize..24) {
        check(&pdc::life::LifeScenario, seed, size);
    }

    #[test]
    fn ray_digest_invariant_across_backends(seed in any::<u64>(), width in 8usize..20) {
        check(&pdc::ray::RayScenario, seed, width);
    }

    #[test]
    fn extsort_digest_and_io_schedule_invariant(seed in any::<u64>(), n in 64usize..512) {
        check(&pdc::extmem::ExtsortScenario, seed, n);
    }

    #[test]
    fn wordcount_digest_invariant_across_backends(seed in any::<u64>(), docs in 1usize..5) {
        check(&pdc::db::WordCountScenario::new(), seed, docs);
    }
}
