//! Property tests for the work/span profiler (`pdc_analyze::span`):
//! for randomly generated fork-join schedules the reconstructed DAG
//! must obey the textbook laws — span never exceeds work, parallelism
//! never exceeds the number of strands, a serial chain has span equal
//! to work, and the `pdc-span/1` report of a fixed schedule is
//! byte-identical across analyses.

use pdc::analyze::analyze_span_session;
use pdc::core::trace::{EventKind, TraceSession, MARK_STEPS};
use proptest::prelude::*;

/// Record a fork-join schedule onto a fresh session: a driver strand
/// forks one task per entry of `tasks`, each task strand joins its
/// fork handle, runs its weighted marks, and publishes a completion
/// fork the driver joins — the same handle discipline the real
/// work-stealing pool traces.
fn record_fork_join(tasks: &[Vec<u64>], driver_marks: &[u64]) -> TraceSession {
    let session = TraceSession::with_capacity(1 << 14);
    let driver = session.thread(1);
    for w in driver_marks {
        driver.record(EventKind::Mark, MARK_STEPS, *w);
    }
    for (i, _) in tasks.iter().enumerate() {
        driver.record(EventKind::Fork, i as u64, 0);
    }
    for (i, weights) in tasks.iter().enumerate() {
        let strand = session.thread(100 + i as u32);
        strand.record(EventKind::Join, i as u64, 0);
        for w in weights {
            strand.record(EventKind::Mark, MARK_STEPS, *w);
        }
        strand.record(EventKind::Fork, 1_000 + i as u64, 0);
    }
    for (i, _) in tasks.iter().enumerate() {
        driver.record(EventKind::Join, 1_000 + i as u64, 0);
    }
    session
}

/// Weighted-step lists for a random task set.
fn tasks_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(1u64..50, 0..8), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn span_never_exceeds_work(tasks in tasks_strategy(), driver in prop::collection::vec(1u64..50, 0..4)) {
        let session = record_fork_join(&tasks, &driver);
        let report = analyze_span_session(&session);
        prop_assert!(report.span <= report.work, "span {} > work {}", report.span, report.work);
        // Everything recorded is accounted: work is the sum of all
        // event weights, so it is at least the marks' total.
        let marks: u64 = driver.iter().sum::<u64>()
            + tasks.iter().flatten().sum::<u64>();
        prop_assert!(report.work >= marks);
    }

    #[test]
    fn parallelism_never_exceeds_strands(tasks in tasks_strategy()) {
        let session = record_fork_join(&tasks, &[]);
        let report = analyze_span_session(&session);
        // Each strand's whole program order is a path in the DAG, so
        // the span is at least the heaviest strand and W/S can never
        // beat the strand count (driver + one per spawned task).
        let strands = (tasks.len() + 1) as f64;
        prop_assert!(
            report.parallelism() <= strands + 1e-9,
            "parallelism {} > {} strands",
            report.parallelism(),
            strands
        );
    }

    #[test]
    fn serial_chain_span_equals_work(weights in prop::collection::vec(1u64..100, 1..32)) {
        let session = TraceSession::with_capacity(1 << 10);
        let strand = session.thread(7);
        for w in &weights {
            strand.record(EventKind::Mark, MARK_STEPS, *w);
        }
        let report = analyze_span_session(&session);
        let total: u64 = weights.iter().sum();
        prop_assert_eq!(report.work, total);
        prop_assert_eq!(report.span, total, "one strand has no parallelism to find");
        prop_assert_eq!(report.parallelism(), 1.0);
    }

    #[test]
    fn same_schedule_yields_byte_identical_report(tasks in tasks_strategy(), driver in prop::collection::vec(1u64..50, 0..4)) {
        // The same recorded schedule analyzed twice — and re-recorded
        // identically — must serialize to byte-identical pdc-span/1.
        let first = analyze_span_session(&record_fork_join(&tasks, &driver));
        let again = first.to_json();
        let rerecorded = analyze_span_session(&record_fork_join(&tasks, &driver));
        prop_assert_eq!(first.to_json(), again, "re-serialization drifted");
        prop_assert_eq!(first.to_json(), rerecorded.to_json(), "re-recorded schedule drifted");
    }
}
