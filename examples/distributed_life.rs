//! Distributed Game of Life: the halo-exchange pattern on the
//! message-passing runtime, with traffic accounting — the CS87 version
//! of the CS31 lab.
//!
//! ```text
//! cargo run --example distributed_life
//! ```

use pdc::life::dist::dist_step_generations;
use pdc::life::{Boundary, Grid};
use pdc::mpi::cost::AlphaBeta;

fn main() {
    println!("== Distributed Game of Life (ghost-row exchange) ==\n");
    let board = Grid::random(64, 64, Boundary::Torus, 0.3, 99);
    let generations = 30;

    // Sequential reference.
    let (reference, _) = pdc::life::engine::step_generations(&board, generations);

    println!("ranks  messages  bytes     matches-sequential");
    for ranks in [1usize, 2, 4, 8] {
        let (out, traffic) = dist_step_generations(&board, generations, ranks);
        println!(
            "{ranks:5}  {:8}  {:8}  {}",
            traffic.messages,
            traffic.bytes,
            out == reference
        );
        assert_eq!(out, reference);
    }

    // What would this cost on a real cluster? Halo volume per rank per
    // generation is 2 rows; apply the alpha-beta model.
    let m = AlphaBeta::cluster();
    println!("\nmodeled halo cost per generation per rank (64-byte rows):");
    let halo = 2.0 * m.p2p(64);
    println!("  2 x (alpha + beta*64B) = {:.2} us", halo * 1e6);
    println!("compute per rank shrinks with p while halo cost stays constant —");
    println!("the surface-to-volume argument for why bigger boards scale better.");
}
