//! The CS31 capstone lab, end to end: run the parallel Game of Life,
//! verify it, sweep worker counts on the deterministic machine model,
//! and produce the lab-report tables (speedup, efficiency, Karp–Flatt,
//! Amdahl fit) — exactly the deliverable the paper's Table I describes
//! as "designing and carrying out scalability experiments; analyzing
//! data and explaining results in written report".
//!
//! ```text
//! cargo run --example scalability_study --release
//! ```

use pdc::core::report::f;
use pdc::core::scaling::{scaling_table, weak_scaling, weak_scaling_table};
use pdc::core::stats::time_op;
use pdc::life::scaling::modeled_strong_scaling;
use pdc::life::{Boundary, Grid};

fn main() {
    println!("== Parallel Game of Life: the scalability study ==\n");

    // Step 1: correctness. Never benchmark wrong code.
    let board = Grid::random(128, 128, Boundary::Torus, 0.35, 1234);
    let (seq, _) = pdc::life::engine::step_generations(&board, 20);
    let (par, _) = pdc::life::parallel::parallel_step_generations(&board, 20, 4);
    assert_eq!(seq, par);
    println!("[1] threaded engine verified against sequential (128x128, 20 gens)\n");

    // Step 2: wall-clock timing of the real threaded engine.
    println!("[2] wall-clock timing (this host):");
    for workers in [1usize, 2, 4] {
        let t = time_op(3, || {
            pdc::life::parallel::parallel_step_generations(&board, 10, workers)
        });
        println!(
            "    {workers} worker(s): min {:?} median {:?}",
            t.min, t.median
        );
    }
    println!("    (on a single-core host the curve is flat — that's data too)\n");

    // Step 3: strong scaling on the deterministic machine model.
    let ps = [1usize, 2, 4, 8, 16, 32];
    for (rows, cols, gens) in [(256usize, 256usize, 100usize), (1024, 1024, 100)] {
        let curve = modeled_strong_scaling(rows, cols, gens, &ps);
        println!(
            "{}",
            scaling_table(
                &format!("[3] modeled strong scaling — {rows}x{cols}, {gens} generations"),
                &curve
            )
            .render()
        );
        if let Some(s) = curve.fit_serial_fraction() {
            println!(
                "    Amdahl fit: serial fraction ~ {} -> ceiling ~ {}x\n",
                f(s, 4),
                f(1.0 / s.max(1e-9), 0)
            );
        }
    }

    // Step 4: weak scaling — grow the board with the workers.
    let weak = weak_scaling(&[1, 2, 4, 8, 16], |p| {
        // rows scale with p so per-worker work is constant.
        let rows = 128 * p;
        let mut m = pdc::core::machine::SimMachine::with_cores(p);
        m.spawn_workers(p);
        for _ in 0..100 {
            m.parallel_even((rows * 256) as u64, p);
            m.barrier(p);
        }
        m.finish().elapsed()
    });
    println!(
        "{}",
        weak_scaling_table("[4] modeled weak scaling — 128 rows per worker", &weak).render()
    );

    println!("Writeup prompts: where does efficiency fall below 0.9? What does the");
    println!("rising Karp–Flatt column tell you about *why*? (sync, not serial code)");
}
