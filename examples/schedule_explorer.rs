//! The model checker, end to end: explore thread interleavings of a
//! racy counter until it breaks, shrink the failing schedule to a
//! minimal counterexample, replay it deterministically, and then prove
//! the mutex-fixed twin correct by exhausting every schedule — the
//! CS31 "your test passed 1000 times and is still wrong" lecture as a
//! runnable artifact.
//!
//! ```text
//! cargo run --example schedule_explorer
//! ```

use pdc::check::{explore_dfs, explore_pct, fixtures, replay, Config, Outcome, Schedule};

fn main() {
    println!("== pdc-check: explore schedules until the bug has nowhere to hide ==\n");

    // PCT exploration: randomized priorities with forced change points.
    // The lost-update assertion only trips on *some* interleavings, but
    // the controlled scheduler hunts them instead of hoping.
    let cfg = Config {
        max_schedules: 1000,
        ..Config::default()
    };
    println!("racy counter (2 tasks x 2 unsynchronised increments), PCT search:");
    let report = explore_pct(fixtures::racy_counter_body(2), &cfg);
    let found = report.failure.expect("the race must be found");
    println!(
        "  caught after {} schedule(s): {}",
        report.schedules_run, found.description
    );
    println!(
        "  original failing schedule: {} choices; shrunk to {}",
        found.run.schedule.choices.len(),
        found.minimal.choices.len()
    );

    // The minimal schedule is a portable artifact: serialize it, parse
    // it back, replay it — same verdict, byte-identical trace.
    let json = found.minimal.to_json();
    println!("\n  pdc-check/1 schedule file:\n    {json}");
    let parsed = Schedule::parse(&json).expect("round-trip");
    let rerun = replay(fixtures::racy_counter_body(2), &parsed, &cfg);
    assert!(rerun.failed(&cfg), "replay must reproduce the failure");
    assert_eq!(
        rerun.trace_jsonl, found.minimal_run.trace_jsonl,
        "replay must reproduce the exact canonical trace"
    );
    println!(
        "  replayed: verdict reproduced, trace byte-identical ({} events)",
        rerun.events.len()
    );

    // Exhaustive DFS: for a bounded body, "no schedule fails" is a
    // proof, not a statistic. The fixed counter has dozens of
    // interleavings; every one of them is clean.
    let dfs_cfg = Config {
        max_schedules: 50_000,
        ..Config::default()
    };
    println!("\nfixed counter (same increments inside a PdcMutex), exhaustive DFS:");
    let fixed = explore_dfs(fixtures::fixed_counter_body(2, 1), &dfs_cfg);
    assert!(fixed.complete, "the bounded body must be exhaustible");
    assert!(fixed.passed());
    println!(
        "  {} schedules enumerated, search complete, all clean — a proof for this body",
        fixed.schedules_run
    );

    // Deadlock as a schedule, not a hang: the AB-BA lock order is
    // driven into the fatal interleaving and reported as a precise
    // deterministic deadlock with the blocked task set.
    let dl_cfg = Config {
        max_schedules: 50_000,
        fail_on_defects: false,
        ..Config::default()
    };
    println!("\nAB-BA locks, DFS until the deadlock schedule:");
    let dl = explore_dfs(fixtures::abba_deadlock_body(), &dl_cfg);
    let found = dl.failure.expect("the deadlock must be reachable");
    match &found.minimal_run.outcome {
        Outcome::Deadlock(live) => println!(
            "  found after {} schedule(s): tasks {live:?} blocked with no enabled task",
            dl.schedules_run
        ),
        other => panic!("expected a deadlock, got {other:?}"),
    }

    println!("\nAll verdicts as expected: found, shrunk, replayed, and proven.");
}
