//! MapReduce word count — the CS87 "Hadoop lab" substitute, plus an
//! inverted index built with the generic API.
//!
//! ```text
//! cargo run --example mapreduce_wordcount
//! ```

use pdc::mpi::mapreduce::{run_job, word_count};

const GETTYSBURG: &str = "Four score and seven years ago our fathers brought forth on this \
continent a new nation conceived in Liberty and dedicated to the proposition that all men \
are created equal Now we are engaged in a great civil war testing whether that nation or \
any nation so conceived and so dedicated can long endure";

fn main() {
    println!("== MapReduce word count ==\n");
    // Split the text into per-line "documents".
    let docs: Vec<String> = GETTYSBURG
        .split_whitespace()
        .collect::<Vec<_>>()
        .chunks(8)
        .map(|c| c.join(" "))
        .collect();
    println!(
        "{} documents, {} words total\n",
        docs.len(),
        GETTYSBURG.split_whitespace().count()
    );

    let (mut counts, stats) = word_count(docs.clone(), 4, 3);
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("top words:");
    for (w, c) in counts.iter().take(8) {
        println!("  {c:3}  {w}");
    }
    println!(
        "\njob stats: {} map tasks, {} pairs shuffled, {} distinct keys, {} reducers\n",
        stats.map_tasks, stats.shuffle_pairs, stats.distinct_keys, stats.reduce_tasks
    );

    // The generic API: an inverted index (word -> documents containing it).
    let numbered: Vec<(usize, String)> = docs.into_iter().enumerate().collect();
    let (index, _) = run_job(
        numbered,
        4,
        2,
        |(id, text): (usize, String)| {
            text.split_whitespace()
                .map(|w| (w.to_lowercase(), id))
                .collect()
        },
        |_word, mut ids: Vec<usize>| {
            ids.sort_unstable();
            ids.dedup();
            ids
        },
    );
    let nation = index.iter().find(|(w, _)| w == "nation").unwrap();
    println!(
        "inverted index: 'nation' appears in documents {:?}",
        nation.1
    );
}
