//! A line-protocol KV session over real loopback TCP (Table II
//! "TCP-IP sockets"), including a client that disconnects mid-request:
//! the server must drop the truncated command — never execute it —
//! count it in `kv.conn_errors`, and keep serving everyone else.

use pdc::mpi::kv_tcp::TcpKvServer;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn request(stream: &mut TcpStream, line: &str) -> String {
    writeln!(stream, "{line}").expect("send");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    let reply = reply.trim_end().to_string();
    println!("  > {line}\n  < {reply}");
    reply
}

fn main() {
    let server = TcpKvServer::start().expect("bind loopback");
    let addr = server.addr();
    println!("kv_tcp server on {addr}");

    println!("\n-- well-behaved client --");
    let mut good = TcpStream::connect(addr).expect("connect");
    request(&mut good, "PUT course cs87");
    request(&mut good, "GET course");
    request(&mut good, "QUIT");

    println!("\n-- rude client: sends a truncated DEL, then vanishes --");
    let mut rude = TcpStream::connect(addr).expect("connect");
    rude.write_all(b"DEL course").expect("half request");
    drop(rude); // no trailing newline, no QUIT
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.conn_errors() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("  server counted kv.conn_errors = {}", server.conn_errors());

    println!("\n-- the store is intact and the server still serves --");
    let mut after = TcpStream::connect(addr).expect("connect");
    let reply = request(&mut after, "GET course");
    assert_eq!(reply, "VALUE 1 cs87", "truncated DEL must not execute");
    request(&mut after, "QUIT");

    server.shutdown();
    println!("\nok: truncated request dropped, store intact, server survived");
}
