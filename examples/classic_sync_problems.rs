//! The classic synchronization problems, end to end: dining
//! philosophers (deadlock demonstrated, then fixed two ways), the
//! condvar bounded buffer, and the banker's algorithm — CS31/CS45's
//! synchronization unit as one runnable tour.
//!
//! ```text
//! cargo run --example classic_sync_problems
//! ```

use pdc::os::deadlock::{Banker, RequestOutcome};
use pdc::sync::problems::{all_grab_left_schedule, run_threaded, simulate, Strategy};
use pdc::sync::{PdcCondvar, PdcMutex};
use std::collections::VecDeque;
use std::sync::Arc;

fn main() {
    println!("== 1. Dining philosophers ==\n");
    let n = 5;
    let sched = all_grab_left_schedule(n);
    for (name, strat) in [
        ("naive (everyone grabs left first)", Strategy::Naive),
        ("global resource ordering", Strategy::Ordered),
        ("arbitrator (at most n-1 seated)", Strategy::Arbitrator),
    ] {
        let out = simulate(strat, n, 2, &sched, 100_000);
        if out.deadlocked {
            println!(
                "  {name}: DEADLOCK after {} steps — wait-for cycle {:?}",
                out.steps,
                out.cycle.unwrap()
            );
        } else {
            println!(
                "  {name}: all fed ({} meals), no deadlock",
                out.meals.iter().sum::<u32>()
            );
        }
    }
    println!("\n  (the two fixes, on real threads with real locks:)");
    for (name, strat) in [
        ("ordering", Strategy::Ordered),
        ("arbitrator", Strategy::Arbitrator),
    ] {
        let out = run_threaded(strat, n, 100);
        println!(
            "  {name}: {} total meals across {n} threads",
            out.meals.iter().sum::<u32>()
        );
    }

    println!("\n== 2. Producer-consumer on a hand-built condition variable ==\n");
    struct Q {
        items: PdcMutex<VecDeque<u64>>,
        not_full: PdcCondvar,
        not_empty: PdcCondvar,
    }
    let q = Arc::new(Q {
        items: PdcMutex::new(VecDeque::new()),
        not_full: PdcCondvar::new(),
        not_empty: PdcCondvar::new(),
    });
    let cap = 8;
    let n_items = 10_000u64;
    let q2 = Arc::clone(&q);
    let producer = std::thread::spawn(move || {
        for i in 0..n_items {
            let g = q2.items.lock();
            let mut g = q2.not_full.wait_while(g, |items| items.len() >= cap);
            g.push_back(i);
            drop(g);
            q2.not_empty.notify_one();
        }
    });
    let q3 = Arc::clone(&q);
    let consumer = std::thread::spawn(move || {
        let mut sum = 0u64;
        for _ in 0..n_items {
            let g = q3.items.lock();
            let mut g = q3.not_empty.wait_while(g, VecDeque::is_empty);
            sum += g.pop_front().unwrap();
            drop(g);
            q3.not_full.notify_one();
        }
        sum
    });
    producer.join().unwrap();
    let sum = consumer.join().unwrap();
    assert_eq!(sum, n_items * (n_items - 1) / 2);
    println!("  moved {n_items} items through a {cap}-slot buffer; checksum OK");
    println!(
        "  condvar notifies issued: {} / {}",
        q.not_empty.notify_count(),
        q.not_full.notify_count()
    );

    println!("\n== 3. Banker's algorithm (deadlock avoidance) ==\n");
    let mut b = Banker::new(
        vec![3, 3, 2],
        vec![
            vec![7, 5, 3],
            vec![3, 2, 2],
            vec![9, 0, 2],
            vec![2, 2, 2],
            vec![4, 3, 3],
        ],
        vec![
            vec![0, 1, 0],
            vec![2, 0, 0],
            vec![3, 0, 2],
            vec![2, 1, 1],
            vec![0, 0, 2],
        ],
    );
    println!("  safe sequence: {:?}", b.safe_sequence().unwrap());
    println!("  P1 requests (1,0,2): {:?}", b.request(1, &[1, 0, 2]));
    let denied = b.request(0, &[0, 2, 0]);
    assert_eq!(denied, RequestOutcome::DeniedUnsafe);
    println!("  P0 requests (0,2,0): {denied:?} — the banker refuses to gamble");
}
