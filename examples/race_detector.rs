//! The race detector, end to end: run a racy two-thread counter and
//! its mutex-fixed twin under tracing, analyze both, and print the
//! verdicts — the CS31 "why your counter lost updates" lecture as a
//! runnable artifact, plus the philosophers' deadlock *predicted from
//! a run that succeeded*.
//!
//! ```text
//! cargo run --example race_detector
//! ```

use pdc::analyze::{analyze, fixtures, DefectKind};

fn verdict(name: &str, report: &pdc::analyze::Report) {
    println!(
        "  {name}: {} ({} events, {} defect(s), {} gated cycle(s))",
        if report.clean() { "CLEAN" } else { "FLAGGED" },
        report.events_analyzed,
        report.defects.len(),
        report.gated_cycles.len(),
    );
    for d in &report.defects {
        println!("    - [{}] {}", d.kind.name(), d.detail);
    }
}

fn main() {
    println!("== pdc-analyze: find the race, prove the fix ==\n");

    // A counter incremented by two threads with no synchronisation.
    // The schedule may even produce the right answer — the *trace*
    // still convicts it, twice over: no happens-before edge between
    // the accesses (vector clocks) and no common lock (lockset).
    println!("racy counter (two threads, no lock):");
    let racy = analyze(&fixtures::racy_counter_session());
    verdict("verdict", &racy);
    assert!(racy.count_kind(DefectKind::DataRace) >= 1);
    assert!(racy.count_kind(DefectKind::LocksetViolation) >= 1);

    // The same counter behind a PdcMutex: the lock site both orders
    // the accesses and is the consistent candidate lock.
    println!("\nfixed counter (same accesses inside a PdcMutex):");
    let fixed = analyze(&fixtures::fixed_counter_session());
    verdict("verdict", &fixed);
    assert!(fixed.clean());

    // Deadlock prediction: the naive philosophers under a LUCKY
    // schedule — every meal eaten, no deadlock at runtime — yet the
    // cyclic fork order is in the trace, so the lock-order analysis
    // convicts the strategy, not the schedule.
    println!("\nnaive philosophers under a lucky schedule (run succeeded!):");
    let (session, sim) = fixtures::deadlocky_philosophers_session(5);
    assert!(!sim.outcome.deadlocked, "the run itself completes");
    let predicted = analyze(&session);
    verdict("verdict", &predicted);
    assert_eq!(predicted.count_kind(DefectKind::LockOrderCycle), 1);

    // And the arbitrator fix: the ring is still there, but every
    // nested acquisition happens inside the room semaphore, so the
    // cycle is gate-suppressed to informational.
    println!("\narbitrator philosophers (room semaphore admits n-1):");
    let (session, _) = fixtures::arbitrator_philosophers_session(5);
    let gated = analyze(&session);
    verdict("verdict", &gated);
    assert!(gated.clean());
    assert_eq!(gated.gated_cycles.len(), 1);

    println!("\nAll verdicts as expected: the detector flags the bugs and trusts the fixes.");
}
