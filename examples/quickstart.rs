//! Quickstart: a five-minute tour of the workspace.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pdc::core::laws;
use pdc::core::taskgraph::TaskGraph;
use pdc::life::{Boundary, Grid};
use pdc::pram::algos::scan_blelloch;
use pdc::threads::sliceops::par_reduce;

fn main() {
    println!("== pdc quickstart ==\n");

    // 1. Data parallelism: a parallel reduction over a slice.
    let xs: Vec<u64> = (1..=1_000_000).collect();
    let sum = par_reduce(&xs, 4, 0u64, |&x| x, |a, b| a + b);
    println!("parallel sum of 1..=1e6          = {sum}");
    assert_eq!(sum, 500_000_500_000);

    // 2. Performance laws: what speedup should we expect?
    let s = 0.05; // 5% serial
    println!(
        "Amdahl: s = {s}, p = 8   -> speedup {:.2}x (ceiling {:.0}x)",
        laws::amdahl_speedup(s, 8),
        laws::amdahl_ceiling(s)
    );

    // 3. Work/span: analyze a computation as a task DAG.
    let g = TaskGraph::reduction_tree(1024);
    let ws = g.work_span();
    println!(
        "reduction tree n=1024: work={}, span={}, parallelism={:.0}",
        ws.work,
        ws.span,
        ws.parallelism()
    );
    let sched = g.schedule(8);
    println!(
        "greedy schedule on 8 workers: makespan={} (Brent bounds [{:.0}, {:.0}])",
        sched.makespan,
        ws.brent_lower(8),
        ws.brent_upper(8)
    );

    // 4. A PRAM algorithm with exact cost accounting.
    let input: Vec<i64> = (0..256).collect();
    let (_, total, pram) = scan_blelloch(&input).unwrap();
    println!(
        "Blelloch scan on EREW PRAM: total={total}, steps={}, work={}",
        pram.steps(),
        pram.work()
    );

    // 5. The flagship lab: parallel Game of Life.
    let board = Grid::random(64, 64, Boundary::Torus, 0.3, 42);
    let (seq, _) = pdc::life::engine::step_generations(&board, 50);
    let (par, stats) = pdc::life::parallel::parallel_step_generations(&board, 50, 4);
    assert_eq!(seq, par, "threaded result must match sequential");
    println!(
        "Game of Life 64x64, 50 generations on 4 threads: population {} ({} barriers), matches sequential",
        par.population(),
        stats.barrier_episodes
    );

    println!("\nAll good. Next: `cargo run -p pdc-bench --bin experiments`.");
}
