//! The Unix-shell lab: a scripted job-control session against the
//! simulated process table (fork/exec/wait, background jobs, signals,
//! zombies, orphan reparenting).
//!
//! ```text
//! cargo run --example shell_session
//! ```

use pdc::os::process::{ProcessState, Signal};
use pdc::os::shell::Shell;

fn main() {
    println!("== pdc-sh: a simulated shell session ==\n");
    let mut sh = Shell::new();
    println!("booted: shell pid {} (child of init)\n", sh.pid());

    println!("$ make all");
    let pid = sh.run("make all", 0).unwrap();
    println!("  [{pid}] completed rc=0");

    println!("$ ./server &");
    let server = sh.spawn_bg("./server").unwrap();
    println!("  [{}] {}", server.job_no, server.pid);

    println!("$ ./worker &");
    let worker = sh.spawn_bg("./worker").unwrap();
    println!("  [{}] {}", worker.job_no, worker.pid);

    println!("$ jobs");
    for j in sh.jobs() {
        println!("  [{}]  running  {} ({})", j.job_no, j.command, j.pid);
    }

    // The worker exits on its own -> zombie until the next prompt.
    sh.background_finishes(worker.pid, 0).unwrap();
    println!("\n(worker exits; before the prompt it is a zombie:)");
    println!(
        "  state of {}: {:?}",
        worker.pid,
        sh.table().get(worker.pid).unwrap().state
    );
    assert_eq!(
        sh.table().get(worker.pid).unwrap().state,
        ProcessState::Zombie
    );
    sh.prompt();
    println!("$ (prompt reaps it)");
    for e in &sh.events {
        println!("  event: {e:?}");
    }

    println!("\n$ kill -TERM {}", server.pid);
    sh.kill(server.pid, Signal::Term).unwrap();
    sh.prompt();
    println!("$ jobs");
    if sh.jobs().is_empty() {
        println!("  (none)");
    }

    println!("\nprocess table at exit: pids {:?}", sh.table().pids());
}
