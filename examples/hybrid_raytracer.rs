//! The paper's proposed CS40 capstone: "a hybrid MPI/CUDA ray tracer to
//! run on GPU clusters". This example renders the demo scene three ways
//! (sequential, threaded with different loop schedules, distributed with
//! row gathering), verifies all outputs are identical, reports the
//! distribution traffic, and writes `raytrace.ppm`.
//!
//! ```text
//! cargo run --example hybrid_raytracer --release
//! ```

use pdc::ray::render::{render_distributed, render_sequential, render_threaded};
use pdc::ray::scene::{Camera, Scene};
use pdc::threads::parfor::Schedule;

fn main() {
    let (w, h, depth) = (320usize, 240usize, 3u32);
    let scene = Scene::demo();
    let cam = Camera::demo();
    println!("== hybrid ray tracer: {w}x{h}, reflection depth {depth} ==\n");

    let t0 = std::time::Instant::now();
    let seq = render_sequential(&scene, &cam, w, h, depth);
    println!(
        "sequential:        {:>8.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    for (name, sched) in [
        ("static", Schedule::Static),
        ("dynamic(4)", Schedule::Dynamic { chunk: 4 }),
        ("guided", Schedule::Guided { min_chunk: 2 }),
    ] {
        let t0 = std::time::Instant::now();
        let img = render_threaded(&scene, &cam, w, h, depth, 4, sched);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(img, seq, "threaded({name}) must match");
        println!("threads x4 {name:11}: {ms:>6.1} ms  (identical image)");
    }

    for ranks in [2usize, 4] {
        let t0 = std::time::Instant::now();
        let (img, traffic) = render_distributed(&scene, &cam, w, h, depth, ranks);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(img, seq, "distributed must match");
        println!(
            "distributed p={ranks}:    {ms:>6.1} ms  ({} row messages, {} KiB gathered)",
            traffic.messages,
            traffic.bytes / 1024
        );
    }

    std::fs::write("raytrace.ppm", seq.to_ppm()).expect("write image");
    println!(
        "\nwrote raytrace.ppm ({} KiB); mean luminance {:.1}",
        seq.to_ppm().len() / 1024,
        seq.mean_luminance()
    );
    println!("rows near the spheres cost more than sky rows — compare the");
    println!("schedules' times on a multicore machine to see why ray tracing");
    println!("is the canonical dynamic-scheduling workload.");
}
