//! The binary-bomb lab on the PDC-1 ISA: generate a seeded bomb,
//! "disassemble" it the way a student would, and defuse it.
//!
//! ```text
//! cargo run --example binary_bomb
//! ```

use pdc::arch::bomb::{Bomb, Phase};
use pdc::arch::isa::disassemble;

fn main() {
    println!("== Binary bomb lab ==\n");

    // Each student gets a different bomb from their seed.
    let student_id = 31337;
    let bomb = Bomb::generate(student_id, 3);
    println!("bomb for student {student_id}: 3 phases\n");

    // Step 1: read the disassembly (the lab's core skill).
    println!("-- disassembly (first 24 instructions) --");
    for (addr, &instr) in bomb.program().code.iter().take(24).enumerate() {
        println!("{addr:4}: {}", disassemble(instr));
    }
    println!("      ...\n");

    // Step 2: a wrong guess explodes.
    let attempt = bomb.attempt(&[0, 0, 0]).expect("vm runs");
    println!(
        "guessing [0, 0, 0]: defused {} phase(s), exploded = {}",
        attempt.phases_defused, attempt.exploded
    );

    // Step 3: derive the answer from the disassembly (here: the key).
    let key = bomb.answer_key();
    println!("derived inputs from reading the code: {key:?}");
    let win = bomb.attempt(&key).expect("vm runs");
    assert!(win.fully_defused && !win.exploded);
    println!("defused all {} phases. BOOM averted.\n", win.phases_defused);

    // Bonus: a bomb whose phase computes Fibonacci inside the VM.
    let fancy = Bomb::new(vec![Phase::Fibonacci(30), Phase::IncreasingTriple]);
    let key = fancy.answer_key();
    println!("bonus bomb wants [fib(30), a<b<c] = {key:?}");
    assert!(fancy.attempt(&key).unwrap().fully_defused);
    println!("bonus bomb defused.");
}
