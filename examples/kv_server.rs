//! Client-server key-value store: the request/reply pattern with
//! versioned writes and CAS — the distributed-systems introduction
//! (CS45) and C socket client-server lab (CS87) rolled into one.
//!
//! ```text
//! cargo run --example kv_server
//! ```

use pdc::mpi::kv::{Reply, Request, Server};

fn main() {
    println!("== client-server KV store ==\n");
    let (server, client) = Server::start();

    // Basic reads and writes.
    println!(
        "put inventory:gold = 100 -> v{}",
        client.put("inventory:gold", "100")
    );
    println!(
        "put inventory:gold = 95  -> v{}",
        client.put("inventory:gold", "95")
    );
    println!(
        "get inventory:gold       -> {:?}",
        client.get("inventory:gold")
    );
    println!(
        "get missing-key          -> {:?}\n",
        client.get("missing-key")
    );

    // Four concurrent clients race a CAS: exactly one wins.
    println!("4 clients race CAS(expect v2):");
    let winners: Vec<bool> = std::thread::scope(|s| {
        (0..4)
            .map(|i| {
                let c = client.clone();
                s.spawn(move || {
                    matches!(
                        c.call(Request::Cas {
                            key: "inventory:gold".into(),
                            expect_version: 2,
                            value: format!("claimed-by-{i}"),
                        }),
                        Reply::Ok { .. }
                    )
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let wins = winners.iter().filter(|&&w| w).count();
    println!("  winners: {wins} (linearized by the server)\n");
    assert_eq!(wins, 1);

    println!("final value: {:?}", client.get("inventory:gold"));
    let stats = server.shutdown();
    println!(
        "\nserver stats: {} requests, {} get hits, {} CAS conflicts",
        stats.requests, stats.hits, stats.cas_conflicts
    );
}
