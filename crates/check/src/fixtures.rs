//! Checked test bodies that keep the model checker honest in both
//! directions: a body whose bug *must* be found, the repaired body
//! that *must* come back clean under exhaustive enumeration, and a
//! schedule-dependent deadlock.
//!
//! Each fixture returns a re-runnable closure (one invocation per
//! explored schedule) that builds fresh shared state, spawns checked
//! tasks via [`crate::spawn`], and records variable accesses so the
//! `pdc-analyze` passes can judge each interleaving's trace.

use pdc_core::trace;
use pdc_sync::{channel, Fairness, PdcMutex, Semaphore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The canonical lost-update bug: two tasks read-modify-write a shared
/// counter with no synchronisation, and a [`crate::yield_now`] between
/// the read and the write marks the window. Every schedule's trace has
/// a data race; interleaved schedules additionally lose an update and
/// fail the final assertion.
pub fn racy_counter_body(ops_per_task: u64) -> impl Fn() + Send + Sync + 'static {
    move || {
        let counter = Arc::new(AtomicU64::new(0));
        let var = trace::next_site_id();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                crate::spawn(move || {
                    for _ in 0..ops_per_task {
                        trace::record_var_read(var);
                        let v = counter.load(Ordering::Relaxed);
                        crate::yield_now();
                        trace::record_var_write(var);
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        let total = counter.load(Ordering::Relaxed);
        assert_eq!(total, 2 * ops_per_task, "lost update: {total}");
    }
}

/// The repaired counter: every read-modify-write inside a [`PdcMutex`]
/// critical section. Exhaustive DFS over this body must complete with
/// zero failing schedules — the clean direction of the gate.
pub fn fixed_counter_body(tasks: u32, ops_per_task: u64) -> impl Fn() + Send + Sync + 'static {
    move || {
        let counter = Arc::new(PdcMutex::new(0u64));
        let var = trace::next_site_id();
        let handles: Vec<_> = (0..tasks)
            .map(|_| {
                let counter = Arc::clone(&counter);
                crate::spawn(move || {
                    for _ in 0..ops_per_task {
                        let mut g = counter.lock();
                        trace::record_var_read(var);
                        let v = *g;
                        trace::record_var_write(var);
                        *g = v + 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(*counter.lock(), tasks as u64 * ops_per_task);
    }
}

/// Embarrassingly-parallel workers: each task owns a *private* mutex
/// and counter, increments it, and asserts locally; the root only
/// joins. No two tasks ever touch the same resource, so every
/// interleaving is equivalent — DPOR proves the body clean in ~one
/// schedule, while plain DFS still enumerates the full factorial tree
/// and cannot finish a modest size within any reasonable budget. This
/// is the scaling fixture for the DPOR-vs-DFS gate.
pub fn independent_counters_body(
    tasks: u32,
    ops_per_task: u64,
) -> impl Fn() + Send + Sync + 'static {
    move || {
        let handles: Vec<_> = (0..tasks)
            .map(|_| {
                crate::spawn(move || {
                    let counter = PdcMutex::new(0u64);
                    let var = trace::next_site_id();
                    for _ in 0..ops_per_task {
                        let mut g = counter.lock();
                        trace::record_var_read(var);
                        let v = *g;
                        crate::yield_now();
                        trace::record_var_write(var);
                        *g = v + 1;
                    }
                    assert_eq!(*counter.lock(), ops_per_task);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
    }
}

/// A clean producer/consumer handoff over the checked channel: the
/// producer writes message `i`'s variable, then sends `i`; the
/// consumer receives `i`, then reads that variable. Each write/read
/// pair is ordered *only* by the channel's per-message FIFO
/// happens-before edge, so this body is clean if and only if the
/// `chan_send`/`chan_recv` HB rule works end to end. (One variable
/// shared across messages would genuinely race: the consumer's read
/// of message `i` is concurrent with the producer writing `i+1`.)
pub fn channel_handoff_body(messages: usize) -> impl Fn() + Send + Sync + 'static {
    move || {
        let (tx, rx) = channel::<u64>();
        let vars: Arc<Vec<u64>> = Arc::new((0..messages).map(|_| trace::next_site_id()).collect());
        let producer = {
            let vars = Arc::clone(&vars);
            crate::spawn(move || {
                for (i, &var) in vars.iter().enumerate() {
                    trace::record_var_write(var);
                    tx.send(i as u64).unwrap();
                }
            })
        };
        let consumer = crate::spawn(move || {
            for (i, &var) in vars.iter().enumerate() {
                let got = rx.recv().unwrap();
                trace::record_var_read(var);
                assert_eq!(got, i as u64, "FIFO order");
            }
        });
        producer.join();
        consumer.join();
    }
}

/// The racy variant of the handoff: the consumer reads the shared
/// variable *before* receiving, so the channel edge does not cover the
/// access pair and every schedule's trace carries a data race.
pub fn channel_racy_body() -> impl Fn() + Send + Sync + 'static {
    || {
        let (tx, rx) = channel::<u64>();
        let var = trace::next_site_id();
        let producer = crate::spawn(move || {
            trace::record_var_write(var);
            tx.send(1).unwrap();
        });
        let consumer = crate::spawn(move || {
            // Read outside the channel's ordering: racy.
            trace::record_var_read(var);
            let _ = rx.recv();
        });
        producer.join();
        consumer.join();
    }
}

/// Two waiters block on a zero-permit semaphore; the root releases two
/// permits one at a time. With [`Fairness::Adversarial`] the wake
/// order at each release is a schedulable choice point, so exploration
/// covers wake orders FIFO alone can never produce. The body is clean
/// under every wake order — the point is the extra coverage, not a
/// bug.
pub fn semaphore_wake_order_body(fairness: Fairness) -> impl Fn() + Send + Sync + 'static {
    move || {
        let sem = Arc::new(Semaphore::with_fairness(0, fairness));
        let woken = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (sem, woken) = (Arc::clone(&sem), Arc::clone(&woken));
                crate::spawn(move || {
                    sem.acquire();
                    woken.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        sem.release();
        sem.release();
        for h in handles {
            h.join();
        }
        assert_eq!(woken.load(Ordering::Relaxed), 2);
    }
}

/// The AB–BA deadlock: two tasks take two mutexes in opposite orders,
/// with a yield between the acquisitions so the fatal interleaving is
/// reachable. Most schedules complete; the one where both tasks hold
/// their first lock deadlocks, and the checker must report it as a
/// [`crate::Outcome::Deadlock`] — precisely, from an empty enabled
/// set, not a timeout.
pub fn abba_deadlock_body() -> impl Fn() + Send + Sync + 'static {
    || {
        let m1 = Arc::new(PdcMutex::new(()));
        let m2 = Arc::new(PdcMutex::new(()));
        let a = {
            let (m1, m2) = (Arc::clone(&m1), Arc::clone(&m2));
            crate::spawn(move || {
                let g1 = m1.lock();
                crate::yield_now();
                let g2 = m2.lock();
                drop(g2);
                drop(g1);
            })
        };
        let b = {
            let (m1, m2) = (Arc::clone(&m1), Arc::clone(&m2));
            crate::spawn(move || {
                let g2 = m2.lock();
                crate::yield_now();
                let g1 = m1.lock();
                drop(g1);
                drop(g2);
            })
        };
        a.join();
        b.join();
    }
}
