//! Checked test bodies that keep the model checker honest in both
//! directions: a body whose bug *must* be found, the repaired body
//! that *must* come back clean under exhaustive enumeration, and a
//! schedule-dependent deadlock.
//!
//! Each fixture returns a re-runnable closure (one invocation per
//! explored schedule) that builds fresh shared state, spawns checked
//! tasks via [`crate::spawn`], and records variable accesses so the
//! `pdc-analyze` passes can judge each interleaving's trace.

use pdc_core::trace;
use pdc_sync::PdcMutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The canonical lost-update bug: two tasks read-modify-write a shared
/// counter with no synchronisation, and a [`crate::yield_now`] between
/// the read and the write marks the window. Every schedule's trace has
/// a data race; interleaved schedules additionally lose an update and
/// fail the final assertion.
pub fn racy_counter_body(ops_per_task: u64) -> impl Fn() + Send + Sync + 'static {
    move || {
        let counter = Arc::new(AtomicU64::new(0));
        let var = trace::next_site_id();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                crate::spawn(move || {
                    for _ in 0..ops_per_task {
                        trace::record_var_read(var);
                        let v = counter.load(Ordering::Relaxed);
                        crate::yield_now();
                        trace::record_var_write(var);
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        let total = counter.load(Ordering::Relaxed);
        assert_eq!(total, 2 * ops_per_task, "lost update: {total}");
    }
}

/// The repaired counter: every read-modify-write inside a [`PdcMutex`]
/// critical section. Exhaustive DFS over this body must complete with
/// zero failing schedules — the clean direction of the gate.
pub fn fixed_counter_body(tasks: u32, ops_per_task: u64) -> impl Fn() + Send + Sync + 'static {
    move || {
        let counter = Arc::new(PdcMutex::new(0u64));
        let var = trace::next_site_id();
        let handles: Vec<_> = (0..tasks)
            .map(|_| {
                let counter = Arc::clone(&counter);
                crate::spawn(move || {
                    for _ in 0..ops_per_task {
                        let mut g = counter.lock();
                        trace::record_var_read(var);
                        let v = *g;
                        trace::record_var_write(var);
                        *g = v + 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(*counter.lock(), tasks as u64 * ops_per_task);
    }
}

/// The AB–BA deadlock: two tasks take two mutexes in opposite orders,
/// with a yield between the acquisitions so the fatal interleaving is
/// reachable. Most schedules complete; the one where both tasks hold
/// their first lock deadlocks, and the checker must report it as a
/// [`crate::Outcome::Deadlock`] — precisely, from an empty enabled
/// set, not a timeout.
pub fn abba_deadlock_body() -> impl Fn() + Send + Sync + 'static {
    || {
        let m1 = Arc::new(PdcMutex::new(()));
        let m2 = Arc::new(PdcMutex::new(()));
        let a = {
            let (m1, m2) = (Arc::clone(&m1), Arc::clone(&m2));
            crate::spawn(move || {
                let g1 = m1.lock();
                crate::yield_now();
                let g2 = m2.lock();
                drop(g2);
                drop(g1);
            })
        };
        let b = {
            let (m1, m2) = (Arc::clone(&m1), Arc::clone(&m2));
            crate::spawn(move || {
                let g2 = m2.lock();
                crate::yield_now();
                let g1 = m1.lock();
                drop(g1);
                drop(g2);
            })
        };
        a.join();
        b.join();
    }
}
