//! Dynamic partial-order reduction: exhaustive checking over provably
//! fewer schedules.
//!
//! Plain DFS ([`crate::explore::explore_dfs`]) enumerates every branch
//! of the schedule tree — `n!`-ish growth that makes "prove this body
//! clean" infeasible beyond toy sizes even when most interleavings are
//! equivalent. DPOR (Flanagan–Godefroid 2005) executes one schedule,
//! computes which steps actually *conflicted* (via
//! [`pdc_analyze::deps`] — the same dependence vocabulary the HB race
//! detector uses), and only backtracks where reordering could change
//! behaviour:
//!
//! * **persistent/backtrack sets** — for every pair of steps that race
//!   (conflict, not already ordered through an intermediate step, and
//!   reversible), the earlier step's node must also try the later
//!   step's task. Nodes whose steps conflict with nothing keep exactly
//!   one child.
//! * **sleep sets** — a choice whose entire subtree was explored goes
//!   to sleep; it stays redundant at later siblings until some executed
//!   step conflicts with it. A backtrack candidate found asleep is
//!   skipped and counted in [`ExploreReport::pruned`].
//!
//! A step's *footprint* is everything observable it touched: accesses
//! the controller noted at the hooks (failed lock probes, park tokens,
//! site wake-ups, task exits) plus every trace event the step's task
//! recorded during its execution window — attributed exactly, because
//! under the baton only the running task records, and the controller
//! stamps each decision with the session's logical clock.
//!
//! `complete == true` is therefore still a proof, but **relative to the
//! instrumented footprint**: two steps whose interaction is invisible
//! to both the hooks and the trace (e.g. raw `static mut` touched
//! without `record_var_*`) are treated as independent. That is the
//! same observability contract `pdc-analyze`'s verdicts already rest
//! on — DPOR proves "no defect any instrumented interleaving can
//! exhibit", which is exactly what DFS proves, over fewer runs.
//!
//! Every DPOR run is executed through [`crate::strategy::Dfs`] with a
//! forced branch prefix, so each explored schedule is by construction
//! one plain DFS would also reach — the property tests lean on that to
//! check the schedule set is a subset of full DFS's with identical
//! verdicts.

use crate::explore::{self, Body, Config, ExploreReport, RunResult, ScheduleSummary};
use crate::strategy::Dfs;
use pdc_analyze::deps::{self, Access};
use pdc_sync::hooks::{ChoiceKind, TaskId};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// One frame of the DPOR search stack — a decision point of the
/// currently-forced schedule prefix.
struct Node {
    /// Choices available here: enabled task ids, or pseudo-ids `0..n`
    /// at a data node (steal victim / wake order).
    enabled: Vec<TaskId>,
    kind: ChoiceKind,
    /// The choice the current branch follows.
    chosen: TaskId,
    /// Footprint of `chosen`'s step, from the run that executed it.
    foot: Vec<Access>,
    /// Choices whose subtrees are fully explored (or slept away), with
    /// the footprint each had when it was the chosen step.
    done: Vec<(TaskId, Vec<Access>)>,
    /// Choices this node must try (the persistent-set seeds). Starts
    /// as `{chosen}` for scheduling nodes, everything for data nodes,
    /// and grows as races land here.
    backtrack: BTreeSet<TaskId>,
}

impl Node {
    fn is_done(&self, t: TaskId) -> bool {
        self.done.iter().any(|(d, _)| *d == t)
    }

    fn has_untried(&self) -> bool {
        self.backtrack
            .iter()
            .any(|t| *t != self.chosen && !self.is_done(*t))
    }
}

/// Full footprint of every decision in `run`: the controller's hook
/// accesses plus the trace events recorded in each decision's logical
/// clock window `[ts_k, ts_{k+1})`. Events before the first decision
/// are the deterministic preamble every schedule shares — no conflict
/// there is reversible, so they are dropped.
fn footprints(run: &RunResult) -> Vec<Vec<Access>> {
    let infos = &run.step_infos;
    let mut foots: Vec<Vec<Access>> = infos.iter().map(|si| si.accesses.clone()).collect();
    if foots.is_empty() {
        return foots;
    }
    for e in &run.raw_events {
        if e.ts < infos[0].ts {
            continue;
        }
        // Last k with infos[k].ts <= e.ts (timestamps are nondecreasing
        // in decision order: both come from one monotone clock).
        let k = infos.partition_point(|si| si.ts <= e.ts) - 1;
        foots[k].extend(deps::event_accesses(e));
    }
    foots
}

/// Seed backtrack sets from the races of one executed run.
///
/// A pair `(j, k)` races when the steps conflict reversibly and `j` is
/// an *immediate* predecessor of `k` — no other predecessor of `k`
/// already orders `j` before `k`, so the two could have run in the
/// opposite order. For each race, node `j` must additionally try
/// `task(k)` (or, if `task(k)` was not enabled there, every task that
/// was — the coarse Flanagan–Godefroid fallback).
///
/// The immediacy ("covered") filter is sound only because every
/// conflict edge contributing to `hb` is either a reversible race pair
/// (which gets seeded itself, so the suppressed outer pair is reached
/// through it) or a genuinely forced ordering that holds in *every*
/// execution (exit → join-wake, fork → join). Orderings that merely
/// happened to hold this run but carry no forcing — a joiner's "is the
/// child still alive?" probe, say — must not appear in step footprints
/// at all, or they would cover real races with an edge that can never
/// be reversed (see `Controller::join_wait`).
fn seed_backtracks(stack: &mut [Node], run: &RunResult, foots: &[Vec<Access>]) {
    let infos = &run.step_infos;
    let n = stack.len().min(infos.len()).min(foots.len());
    let mut hb: Vec<HashSet<usize>> = Vec::with_capacity(n);
    let mut last_by_task: HashMap<TaskId, usize> = HashMap::new();
    for k in 0..n {
        let mut preds: Vec<usize> = Vec::new();
        if let Some(&j) = last_by_task.get(&infos[k].task) {
            preds.push(j);
        }
        for j in 0..k {
            if infos[j].task != infos[k].task
                && !preds.contains(&j)
                && deps::footprints_conflict(&foots[j], &foots[k])
            {
                preds.push(j);
            }
        }
        let mut h: HashSet<usize> = HashSet::new();
        for &m in &preds {
            h.insert(m);
            h.extend(hb[m].iter().copied());
        }
        for &j in &preds {
            if infos[j].task == infos[k].task {
                continue;
            }
            if !deps::footprints_race(&foots[j], &foots[k]) {
                continue;
            }
            let covered = preds.iter().any(|&m| m != j && hb[m].contains(&j));
            if !covered {
                seed_one(stack, j, infos[k].task);
            }
        }
        hb.push(h);
        last_by_task.insert(infos[k].task, k);
    }
}

/// Add `t` to the backtrack set of the scheduling node governing
/// decision `j`. Data nodes are not reversible scheduling points (the
/// baton holder is fixed there), so a race landing on one walks back
/// to the nearest earlier `Task`-kind node — the point where running
/// the other task first becomes expressible.
fn seed_one(stack: &mut [Node], mut j: usize, t: TaskId) {
    while j > 0 && stack[j].kind != ChoiceKind::Task {
        j -= 1;
    }
    if stack[j].kind != ChoiceKind::Task {
        return; // race before the first scheduling decision: unreachable order
    }
    if stack[j].enabled.contains(&t) {
        stack[j].backtrack.insert(t);
    } else {
        let all: Vec<TaskId> = stack[j].enabled.clone();
        stack[j].backtrack.extend(all);
    }
}

/// The sleep set on entry to node `i`: fully-explored sibling choices
/// of every ancestor, minus any woken by a conflicting step on the way
/// down. A task asleep here has its entire subtree proven equivalent
/// to one already explored. Only `Task`-kind choices sleep — data
/// pseudo-ids live in a different namespace and are always enumerated.
fn sleep_at(stack: &[Node], i: usize) -> Vec<(TaskId, Vec<Access>)> {
    let mut sleep: Vec<(TaskId, Vec<Access>)> = Vec::new();
    for node in &stack[..i] {
        if node.kind == ChoiceKind::Task {
            for (t, f) in &node.done {
                if *t != node.chosen && !sleep.iter().any(|(s, _)| s == t) {
                    sleep.push((*t, f.clone()));
                }
            }
            sleep.retain(|(t, f)| *t != node.chosen && !deps::footprints_conflict(f, &node.foot));
        } else {
            // Crossing a data step only wakes by footprint: its
            // pseudo-id `chosen` must not alias a sleeping task id.
            sleep.retain(|(_, f)| !deps::footprints_conflict(f, &node.foot));
        }
    }
    sleep
}

/// DPOR exploration: like [`crate::explore::explore_dfs`] — stops and
/// shrinks at the first failure, sets [`ExploreReport::complete`] when
/// the reduced tree is exhausted — but visits only one schedule per
/// equivalence class of independent-step reorderings (plus the
/// sound-side slack of the coarse footprint vocabulary).
pub fn explore_dpor(body: impl Fn() + Send + Sync + 'static, cfg: &Config) -> ExploreReport {
    let body: Body = Arc::new(body);
    let _lock = explore::exploration_lock();
    let _quiet = explore::QuietPanics::install();
    dpor_locked(&body, cfg, true).0
}

/// Every schedule DPOR executes, summarized — the counterpart of
/// [`crate::explore::enumerate_dfs`] for set-comparison property
/// tests. Does not stop at failures. Returns `(summaries, complete,
/// pruned)`.
pub fn enumerate_dpor(
    body: impl Fn() + Send + Sync + 'static,
    cfg: &Config,
) -> (Vec<ScheduleSummary>, bool, usize) {
    let body: Body = Arc::new(body);
    let _lock = explore::exploration_lock();
    let _quiet = explore::QuietPanics::install();
    let (report, summaries) = dpor_locked(&body, cfg, false);
    (summaries, report.complete, report.pruned)
}

fn dpor_locked(
    body: &Body,
    cfg: &Config,
    stop_on_failure: bool,
) -> (ExploreReport, Vec<ScheduleSummary>) {
    let mut stack: Vec<Node> = Vec::new();
    let mut schedules_run = 0usize;
    let mut pruned = 0usize;
    let mut summaries: Vec<ScheduleSummary> = Vec::new();
    let incomplete = |schedules_run, pruned, failure| ExploreReport {
        mode: "dpor",
        schedules_run,
        complete: false,
        pruned,
        failure,
    };
    loop {
        if schedules_run >= cfg.max_schedules {
            return (incomplete(schedules_run, pruned, None), summaries);
        }
        let prefix: Vec<usize> = stack
            .iter()
            .map(|n| n.enabled.iter().position(|t| *t == n.chosen).unwrap_or(0))
            .collect();
        let run = explore::run_schedule_locked(body, Box::new(Dfs::new(prefix)), "dpor", 0, cfg);
        schedules_run += 1;
        if !stop_on_failure {
            summaries.push(ScheduleSummary::of(&run));
        }
        // The forced prefix replays deterministically, so the stack is
        // a prefix of this run's decisions; extend it with the free
        // suffix. (A run can only end early relative to the stack if
        // the body itself is nondeterministic — truncate defensively.)
        stack.truncate(run.decisions.len());
        for k in stack.len()..run.decisions.len() {
            let rec = &run.decisions[k];
            let kind = run
                .step_infos
                .get(k)
                .map(|si| si.kind)
                .unwrap_or(ChoiceKind::Task);
            let chosen = rec.picked_task();
            let mut backtrack = BTreeSet::new();
            if kind == ChoiceKind::Task {
                backtrack.insert(chosen);
            } else {
                // Data choices have no independence structure to
                // exploit: enumerate every alternative, like DFS.
                backtrack.extend(rec.enabled.iter().copied());
            }
            stack.push(Node {
                enabled: rec.enabled.clone(),
                kind,
                chosen,
                foot: Vec::new(),
                done: Vec::new(),
                backtrack,
            });
        }
        let foots = footprints(&run);
        for (k, foot) in foots.iter().enumerate().take(stack.len()) {
            debug_assert_eq!(stack[k].chosen, run.decisions[k].picked_task());
            stack[k].foot = foot.clone();
        }
        seed_backtracks(&mut stack, &run, &foots);
        if stop_on_failure && run.failed(cfg) {
            let failure = Some(explore::found(body, run, cfg));
            return (incomplete(schedules_run, pruned, failure), summaries);
        }
        // Pick the next branch: deepest node with an untried backtrack
        // candidate; abandon everything below it.
        loop {
            let Some(i) = (0..stack.len()).rev().find(|&i| stack[i].has_untried()) else {
                let report = ExploreReport {
                    mode: "dpor",
                    schedules_run,
                    complete: true,
                    pruned,
                    failure: None,
                };
                return (report, summaries);
            };
            stack.truncate(i + 1);
            let node_chosen = stack[i].chosen;
            if !stack[i].is_done(node_chosen) {
                let foot = stack[i].foot.clone();
                stack[i].done.push((node_chosen, foot));
            }
            let sleep = sleep_at(&stack, i);
            let candidates: Vec<TaskId> = stack[i]
                .backtrack
                .iter()
                .copied()
                .filter(|t| !stack[i].is_done(*t))
                .collect();
            let mut picked = None;
            for c in candidates {
                if stack[i].kind == ChoiceKind::Task {
                    if let Some((_, f)) = sleep.iter().find(|(t, _)| *t == c) {
                        // Asleep: this subtree is a reordering of one
                        // already explored from an earlier sibling.
                        stack[i].done.push((c, f.clone()));
                        pruned += 1;
                        continue;
                    }
                }
                picked = Some(c);
                break;
            }
            match picked {
                Some(c) => {
                    stack[i].chosen = c;
                    stack[i].foot = Vec::new();
                    break;
                }
                None => continue, // exhausted by sleeps: pop further up
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{enumerate_dfs, explore_dfs};
    use crate::fixtures;
    use crate::Outcome;
    use pdc_analyze::DefectKind;
    use pdc_sync::Fairness;

    fn cfg(max_schedules: usize) -> Config {
        Config {
            max_schedules,
            ..Config::default()
        }
    }

    #[test]
    fn dpor_proves_fixed_counter_clean_with_strictly_fewer_schedules() {
        let dfs = explore_dfs(fixtures::fixed_counter_body(2, 1), &cfg(50_000));
        let dpor = explore_dpor(fixtures::fixed_counter_body(2, 1), &cfg(50_000));
        assert!(dfs.passed() && dfs.complete, "baseline DFS proof");
        assert!(
            dpor.passed() && dpor.complete,
            "{:?}",
            dpor.failure.map(|f| f.description)
        );
        assert!(
            dpor.schedules_run < dfs.schedules_run,
            "reduction must be real: dpor {} vs dfs {}",
            dpor.schedules_run,
            dfs.schedules_run
        );
    }

    #[test]
    fn dpor_still_convicts_the_racy_counter() {
        let report = explore_dpor(fixtures::racy_counter_body(2), &cfg(50_000));
        let failure = report.failure.expect("racy counter must fail under dpor");
        assert!(
            failure.run.report.count_kind(DefectKind::DataRace) >= 1,
            "{}",
            failure.description
        );
        assert!(failure.minimal_run.failed(&cfg(50_000)));
    }

    #[test]
    fn dpor_still_finds_the_abba_deadlock() {
        let c = Config {
            max_schedules: 50_000,
            fail_on_defects: false,
            ..Config::default()
        };
        let report = explore_dpor(fixtures::abba_deadlock_body(), &c);
        let failure = report.failure.expect("AB-BA must deadlock under dpor");
        assert!(
            matches!(failure.run.outcome, Outcome::Deadlock(_)),
            "{}",
            failure.description
        );
    }

    #[test]
    fn independent_counters_finish_under_dpor_where_dfs_cannot() {
        // 4 tasks with a private mutex each: every interleaving is
        // equivalent. Equal budgets; DFS drowns in the factorial tree,
        // DPOR proves the body clean almost immediately.
        let budget = cfg(200);
        let dfs = explore_dfs(fixtures::independent_counters_body(4, 1), &budget);
        assert!(
            !dfs.complete,
            "DFS should not exhaust this tree in {} schedules (ran {})",
            budget.max_schedules, dfs.schedules_run
        );
        let dpor = explore_dpor(fixtures::independent_counters_body(4, 1), &budget);
        assert!(
            dpor.passed() && dpor.complete,
            "{:?}",
            dpor.failure.map(|f| f.description)
        );
        assert!(
            dpor.schedules_run < budget.max_schedules,
            "completed in {} schedules",
            dpor.schedules_run
        );
    }

    #[test]
    fn channel_handoff_is_clean_and_racy_variant_is_convicted() {
        let clean = explore_dpor(fixtures::channel_handoff_body(2), &cfg(50_000));
        assert!(
            clean.passed() && clean.complete,
            "{:?}",
            clean.failure.map(|f| f.description)
        );
        let racy = explore_dpor(fixtures::channel_racy_body(), &cfg(50_000));
        let failure = racy.failure.expect("unordered read must race");
        assert!(
            failure.run.report.count_kind(DefectKind::DataRace) >= 1,
            "{}",
            failure.description
        );
    }

    #[test]
    fn adversarial_wake_order_explores_more_schedules_than_fifo() {
        // Same body, same budget; the only difference is whether
        // notify/release wake order is a choice point. Both must be
        // clean — the adversarial policy buys coverage, not failures.
        let fifo = explore_dfs(
            fixtures::semaphore_wake_order_body(Fairness::Fifo),
            &cfg(50_000),
        );
        let adv = explore_dfs(
            fixtures::semaphore_wake_order_body(Fairness::Adversarial),
            &cfg(50_000),
        );
        assert!(
            fifo.passed() && fifo.complete,
            "{:?}",
            fifo.failure.map(|f| f.description)
        );
        assert!(
            adv.passed() && adv.complete,
            "{:?}",
            adv.failure.map(|f| f.description)
        );
        assert!(
            adv.schedules_run > fifo.schedules_run,
            "wake-order choice points must add branches: adv {} vs fifo {}",
            adv.schedules_run,
            fifo.schedules_run
        );
    }

    #[test]
    fn dpor_enumerates_a_subset_of_dfs_with_equal_verdicts() {
        let (dfs, dfs_complete) = enumerate_dfs(fixtures::fixed_counter_body(2, 1), &cfg(50_000));
        let (dpor, dpor_complete, _) =
            enumerate_dpor(fixtures::fixed_counter_body(2, 1), &cfg(50_000));
        assert!(dfs_complete && dpor_complete);
        for s in &dpor {
            assert!(
                dfs.iter().any(|d| d.choices == s.choices),
                "dpor schedule {:?} not reachable by dfs",
                s.choices
            );
        }
        let verdicts = |set: &[ScheduleSummary]| {
            let mut v: Vec<(bool, Vec<String>)> =
                set.iter().map(|s| (s.ok, s.defect_kinds.clone())).collect();
            v.sort();
            v.dedup();
            v
        };
        assert_eq!(verdicts(&dfs), verdicts(&dpor));
    }

    #[test]
    fn pct_convicts_racy_counter_despite_a_stale_len_estimate() {
        // A wildly-wrong `k` used to push every priority-change point
        // beyond the end of each schedule for the whole exploration;
        // now only the first run suffers, because later runs derive the
        // estimate from the previous run's observed length. With
        // defects-as-failures off, only a *lost update* (which needs a
        // mid-window preemption) convicts — the symptom stale change
        // points suppress.
        let c = Config {
            pct_len_estimate: 1_000_000,
            fail_on_defects: false,
            max_schedules: 1_000,
            ..Config::default()
        };
        let report = crate::explore_pct(fixtures::racy_counter_body(2), &c);
        let failure = report
            .failure
            .expect("lost update must surface within budget");
        assert!(
            matches!(failure.run.outcome, Outcome::Panic(_)),
            "{}",
            failure.description
        );
    }

    #[test]
    fn checked_pool_body_explores_clean() {
        // Workers are checked tasks and victim selection is a choice
        // point, so a pool body is explorable like spawned tasks.
        let c = cfg(3_000);
        let report = explore_dpor(
            || {
                use std::sync::atomic::{AtomicU64, Ordering};
                use std::sync::Arc;
                let pool = pdc_threads::pool::WorkStealingPool::new(2);
                let hits = Arc::new(AtomicU64::new(0));
                for _ in 0..2 {
                    let hits = Arc::clone(&hits);
                    pool.spawn(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
                pool.wait_idle();
                assert_eq!(hits.load(Ordering::Relaxed), 2);
                drop(pool);
            },
            &c,
        );
        assert!(
            report.passed(),
            "{:?}",
            report.failure.map(|f| f.description)
        );
        assert!(report.schedules_run >= 1);
    }

    #[test]
    fn strict_replay_rejects_schedules_naming_unspawned_tasks() {
        let junk = crate::Schedule {
            strategy: "replay".into(),
            seed: 0,
            choices: vec![0, 99, 1],
        };
        let err = crate::replay_strict(fixtures::fixed_counter_body(2, 1), &junk, &cfg(16))
            .expect_err("task 99 is never spawned");
        assert_eq!(
            err,
            crate::ScheduleError::TaskOutOfRange {
                decision: 1,
                task: 99,
                task_count: 3
            }
        );
        // A well-formed schedule passes the same gate.
        let probe = crate::replay(fixtures::fixed_counter_body(2, 1), &junk_free(), &cfg(16));
        assert!(crate::replay_strict(
            fixtures::fixed_counter_body(2, 1),
            &probe.schedule,
            &cfg(16)
        )
        .is_ok());
    }

    fn junk_free() -> crate::Schedule {
        crate::Schedule {
            strategy: "replay".into(),
            seed: 0,
            choices: vec![],
        }
    }
}
