//! Scheduling strategies and the `pdc-check/1` schedule format.
//!
//! A strategy is consulted at every decision point with the *enabled*
//! task set (sorted by task id) and returns the index of the task to
//! grant. Three strategies cover the checker's three modes:
//!
//! * [`Dfs`] — prefix-then-first, the classic stateless-model-checking
//!   enumeration: follow a forced prefix of branch indices, then always
//!   take index 0. The explorer backtracks by extending the deepest
//!   prefix position that still has an untried sibling, which walks the
//!   schedule tree depth-first and can certify *completeness*.
//! * [`Pct`] — probabilistic concurrency testing (Burckhardt et al.):
//!   random per-task priorities plus `d` random priority-change points.
//!   Finds depth-`d` bugs with probability ≥ 1/(n·k^(d-1)) per run,
//!   which in practice beats naive random walks by orders of magnitude.
//! * [`Replay`] — follow a recorded [`Schedule`]'s task-id choices
//!   exactly; *lenient* (falls back to enabled index 0 when the wanted
//!   task is gone), which is what makes prefix/splice shrinking work.

use pdc_core::rng::Rng;
use pdc_sync::hooks::TaskId;
use std::collections::HashMap;

/// One decision point, as recorded by the controller: which tasks were
/// enabled (sorted by id) and which index the strategy picked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoiceRecord {
    /// Enabled task ids at this point, ascending.
    pub enabled: Vec<TaskId>,
    /// Index into `enabled` that was granted.
    pub picked_index: usize,
}

impl ChoiceRecord {
    /// The task id that was granted.
    pub fn picked_task(&self) -> TaskId {
        self.enabled[self.picked_index]
    }
}

/// A scheduling strategy: picks one index into the enabled set at each
/// decision point. Implementations must be deterministic functions of
/// their own state and the arguments — that is the whole point.
pub trait Decide: Send {
    /// Choose `enabled[return]` at decision `decision_index` (0-based,
    /// global across the schedule). Out-of-range returns are clamped by
    /// the controller.
    fn pick(&mut self, decision_index: usize, enabled: &[TaskId]) -> usize;
}

/// Prefix-then-first enumeration for exhaustive DFS.
pub struct Dfs {
    prefix: Vec<usize>,
}

impl Dfs {
    /// Follow `prefix` (branch indices), then always take index 0.
    pub fn new(prefix: Vec<usize>) -> Self {
        Dfs { prefix }
    }
}

impl Decide for Dfs {
    fn pick(&mut self, decision_index: usize, _enabled: &[TaskId]) -> usize {
        self.prefix.get(decision_index).copied().unwrap_or(0)
    }
}

/// Probabilistic concurrency testing: random priorities, `d − 1`
/// random change points.
pub struct Pct {
    rng: Rng,
    prios: HashMap<TaskId, u64>,
    /// Decision indices at which the running task's priority drops.
    change_at: Vec<usize>,
    /// Decreasing counter for the dropped priorities, so later drops
    /// sink below earlier ones (the PCT priority ladder).
    next_low: u64,
}

impl Pct {
    /// `depth` is PCT's `d` (bug depth to target, ≥ 1); `len_estimate`
    /// is `k`, the expected number of decision points per schedule.
    pub fn new(seed: u64, depth: usize, len_estimate: usize) -> Self {
        let mut rng = Rng::new(seed);
        let mut change_at: Vec<usize> = (1..depth)
            .map(|_| rng.gen_range(len_estimate.max(1) as u64) as usize)
            .collect();
        change_at.sort_unstable();
        change_at.dedup();
        Pct {
            rng,
            prios: HashMap::new(),
            change_at,
            next_low: u64::MAX / 2,
        }
    }
}

impl Decide for Pct {
    fn pick(&mut self, decision_index: usize, enabled: &[TaskId]) -> usize {
        for &t in enabled {
            if !self.prios.contains_key(&t) {
                // High band, above every possible change-point value.
                let p = u64::MAX / 2 + 1 + self.rng.gen_range(u64::MAX / 4);
                self.prios.insert(t, p);
            }
        }
        let idx = enabled
            .iter()
            .enumerate()
            .max_by_key(|(_, t)| self.prios[t])
            .map(|(i, _)| i)
            .unwrap_or(0);
        if self.change_at.binary_search(&decision_index).is_ok() {
            self.next_low -= 1;
            self.prios.insert(enabled[idx], self.next_low);
        }
        idx
    }
}

/// Lenient replay of a recorded choice sequence (task ids).
pub struct Replay {
    choices: Vec<TaskId>,
}

impl Replay {
    /// Replay `choices`; past the end, or when a wanted task is not
    /// enabled, fall back to enabled index 0.
    pub fn new(choices: Vec<TaskId>) -> Self {
        Replay { choices }
    }
}

impl Decide for Replay {
    fn pick(&mut self, decision_index: usize, enabled: &[TaskId]) -> usize {
        match self.choices.get(decision_index) {
            Some(want) => enabled.iter().position(|t| t == want).unwrap_or(0),
            None => 0,
        }
    }
}

/// Why a schedule file could not be parsed or replayed.
///
/// A schedule is external input (a file on disk, possibly hand-edited
/// or from another run): every way it can be wrong must surface as a
/// typed error here, never as a panic mid-replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The `"schema"` tag is present but not `pdc-check/1`.
    UnsupportedSchema(String),
    /// Structurally broken JSON, a missing key, or a bad value.
    Malformed(String),
    /// The schedule names a task id the body never spawned: decision
    /// `decision` wants task `task`, but only `task_count` tasks exist.
    TaskOutOfRange {
        /// 0-based decision index within the schedule.
        decision: usize,
        /// The out-of-range task id the schedule asked for.
        task: TaskId,
        /// How many tasks the body actually spawned (valid ids are
        /// `0..task_count`).
        task_count: usize,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::UnsupportedSchema(s) => {
                write!(
                    f,
                    "unsupported schema {s:?} (expected {:?})",
                    Schedule::SCHEMA
                )
            }
            ScheduleError::Malformed(msg) => write!(f, "malformed schedule: {msg}"),
            ScheduleError::TaskOutOfRange {
                decision,
                task,
                task_count,
            } => write!(
                f,
                "schedule references task {task} at decision {decision}, \
                 but the body only spawned {task_count} tasks"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A recorded schedule: the task-id sequence that reproduces one
/// interleaving, serialised as `pdc-check/1` JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Strategy that produced it (`"dfs"`, `"pct"`, `"replay"`).
    pub strategy: String,
    /// Seed the strategy ran with (0 for deterministic strategies).
    pub seed: u64,
    /// Task id granted at each decision point.
    pub choices: Vec<TaskId>,
}

impl Schedule {
    /// Schema tag all schedule files carry.
    pub const SCHEMA: &'static str = "pdc-check/1";

    /// Build from the controller's decision log.
    pub fn from_records(strategy: &str, seed: u64, records: &[ChoiceRecord]) -> Self {
        Schedule {
            strategy: strategy.to_string(),
            seed,
            choices: records.iter().map(ChoiceRecord::picked_task).collect(),
        }
    }

    /// Render as a one-line `pdc-check/1` JSON object.
    pub fn to_json(&self) -> String {
        let choices: Vec<String> = self.choices.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"schema\":\"{}\",\"strategy\":\"{}\",\"seed\":{},\"choices\":[{}]}}",
            Self::SCHEMA,
            self.strategy,
            self.seed,
            choices.join(",")
        )
    }

    /// Parse a `pdc-check/1` JSON object (the inverse of
    /// [`Schedule::to_json`]; whitespace-tolerant, order-insensitive).
    pub fn parse(text: &str) -> Result<Schedule, ScheduleError> {
        let malformed = ScheduleError::Malformed;
        let mut schema = None;
        let mut strategy = None;
        let mut seed = None;
        let mut choices = None;
        let b = text.as_bytes();
        let mut i = 0usize;
        while i < b.len() {
            if b[i] != b'"' {
                i += 1;
                continue;
            }
            let (key, after_key) = scan_string(b, i).map_err(malformed)?;
            i = skip_ws(b, after_key);
            if i >= b.len() || b[i] != b':' {
                // A string *value* (e.g. the schema tag itself), not a key.
                continue;
            }
            i = skip_ws(b, i + 1);
            match key.as_str() {
                "schema" => {
                    let (v, next) = scan_string(b, i).map_err(malformed)?;
                    schema = Some(v);
                    i = next;
                }
                "strategy" => {
                    let (v, next) = scan_string(b, i).map_err(malformed)?;
                    strategy = Some(v);
                    i = next;
                }
                "seed" => {
                    let (v, next) = scan_u64(b, i).map_err(malformed)?;
                    seed = Some(v);
                    i = next;
                }
                "choices" => {
                    let (v, next) = scan_u32_array(b, i).map_err(malformed)?;
                    choices = Some(v);
                    i = next;
                }
                other => return Err(malformed(format!("unknown key {other:?}"))),
            }
        }
        match schema.as_deref() {
            Some(s) if s == Self::SCHEMA => {}
            Some(s) => return Err(ScheduleError::UnsupportedSchema(s.to_string())),
            None => return Err(malformed("missing \"schema\"".into())),
        }
        Ok(Schedule {
            strategy: strategy.ok_or_else(|| malformed("missing \"strategy\"".into()))?,
            seed: seed.ok_or_else(|| malformed("missing \"seed\"".into()))?,
            choices: choices.ok_or_else(|| malformed("missing \"choices\"".into()))?,
        })
    }

    /// Check every choice against the number of tasks the body actually
    /// spawns. Replay itself is lenient (shrinking depends on that);
    /// this is the up-front validation external schedules go through.
    pub fn validate_tasks(&self, task_count: usize) -> Result<(), ScheduleError> {
        for (decision, &task) in self.choices.iter().enumerate() {
            if task as usize >= task_count {
                return Err(ScheduleError::TaskOutOfRange {
                    decision,
                    task,
                    task_count,
                });
            }
        }
        Ok(())
    }
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && (b[i] as char).is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Scan a quoted string starting at `b[i] == '"'`; returns (content,
/// index past the closing quote). Schedule strings never contain
/// escapes, so a backslash is rejected.
fn scan_string(b: &[u8], i: usize) -> Result<(String, usize), String> {
    debug_assert_eq!(b[i], b'"');
    let start = i + 1;
    let mut j = start;
    while j < b.len() && b[j] != b'"' {
        if b[j] == b'\\' {
            return Err("escapes are not part of pdc-check/1".into());
        }
        j += 1;
    }
    if j >= b.len() {
        return Err("unterminated string".into());
    }
    let s = std::str::from_utf8(&b[start..j])
        .map_err(|e| e.to_string())?
        .to_string();
    Ok((s, j + 1))
}

fn scan_u64(b: &[u8], i: usize) -> Result<(u64, usize), String> {
    let mut j = i;
    while j < b.len() && b[j].is_ascii_digit() {
        j += 1;
    }
    if j == i {
        return Err("expected a number".into());
    }
    let s = std::str::from_utf8(&b[i..j]).map_err(|e| e.to_string())?;
    Ok((s.parse::<u64>().map_err(|e| e.to_string())?, j))
}

fn scan_u32_array(b: &[u8], i: usize) -> Result<(Vec<TaskId>, usize), String> {
    if i >= b.len() || b[i] != b'[' {
        return Err("expected an array".into());
    }
    let mut out = Vec::new();
    let mut j = skip_ws(b, i + 1);
    if j < b.len() && b[j] == b']' {
        return Ok((out, j + 1));
    }
    loop {
        let (v, next) = scan_u64(b, j)?;
        out.push(u32::try_from(v).map_err(|e| e.to_string())?);
        j = skip_ws(b, next);
        match b.get(j) {
            Some(b',') => j = skip_ws(b, j + 1),
            Some(b']') => return Ok((out, j + 1)),
            _ => return Err("expected ',' or ']' in choices".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_json_round_trips() {
        let s = Schedule {
            strategy: "pct".into(),
            seed: 42,
            choices: vec![0, 1, 1, 0, 2],
        };
        let json = s.to_json();
        assert!(json.contains("\"schema\":\"pdc-check/1\""));
        assert_eq!(Schedule::parse(&json).unwrap(), s);
    }

    #[test]
    fn empty_choices_round_trip() {
        let s = Schedule {
            strategy: "dfs".into(),
            seed: 0,
            choices: vec![],
        };
        assert_eq!(Schedule::parse(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn parse_tolerates_whitespace_and_reordering() {
        let text = "{ \"choices\" : [ 1 , 0 ] ,\n  \"seed\" : 7 , \"strategy\" : \"pct\" ,\n  \"schema\" : \"pdc-check/1\" }";
        let s = Schedule::parse(text).unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.choices, vec![1, 0]);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let err = Schedule::parse(
            "{\"schema\":\"pdc-check/9\",\"strategy\":\"pct\",\"seed\":0,\"choices\":[]}",
        )
        .unwrap_err();
        assert!(matches!(err, ScheduleError::UnsupportedSchema(_)), "{err}");
        assert!(err.to_string().contains("unsupported schema"), "{err}");
    }

    #[test]
    fn validate_tasks_rejects_out_of_range_ids() {
        let s = Schedule {
            strategy: "replay".into(),
            seed: 0,
            choices: vec![0, 1, 99],
        };
        let err = s.validate_tasks(3).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::TaskOutOfRange {
                decision: 2,
                task: 99,
                task_count: 3
            }
        );
        assert!(err.to_string().contains("task 99"), "{err}");
        s.validate_tasks(100).unwrap();
    }

    #[test]
    fn dfs_follows_prefix_then_first() {
        let mut d = Dfs::new(vec![2, 1]);
        let en = [0u32, 1, 2];
        assert_eq!(d.pick(0, &en), 2);
        assert_eq!(d.pick(1, &en), 1);
        assert_eq!(d.pick(2, &en), 0);
        assert_eq!(d.pick(99, &en), 0);
    }

    #[test]
    fn replay_is_lenient() {
        let mut r = Replay::new(vec![5, 1]);
        assert_eq!(r.pick(0, &[0, 1]), 0, "missing task falls back to 0");
        assert_eq!(r.pick(1, &[0, 1]), 1);
        assert_eq!(r.pick(2, &[0, 1]), 0, "past the end falls back to 0");
    }

    #[test]
    fn pct_is_deterministic_per_seed() {
        let run = |seed| {
            let mut p = Pct::new(seed, 3, 16);
            (0..12).map(|i| p.pick(i, &[0, 1, 2])).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        // Not a hard guarantee, but with 3 tasks over 12 decisions two
        // seeds agreeing everywhere would be a broken generator.
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn pct_prefers_the_highest_priority_enabled_task() {
        let mut p = Pct::new(1, 1, 8); // depth 1: no change points
        let full = p.pick(0, &[0, 1, 2]);
        let winner = [0u32, 1, 2][full];
        // With the winner absent, some other task is picked; with the
        // winner present again, the same task wins (priorities are
        // stable without change points).
        let rest: Vec<TaskId> = [0u32, 1, 2]
            .iter()
            .copied()
            .filter(|t| *t != winner)
            .collect();
        let second = rest[p.pick(1, &rest)];
        assert_ne!(second, winner);
        assert_eq!([0u32, 1, 2][p.pick(2, &[0, 1, 2])], winner);
    }
}
