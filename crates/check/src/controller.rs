//! The controlled scheduler: serializes every checked task onto one
//! baton, granted at the yield points `pdc_sync::hooks` exposes.
//!
//! Invariant: at most one checked task is ever runnable. Each hook call
//! is a *decision point* — the controller computes the set of enabled
//! tasks, asks its [`Decide`] strategy to pick one, grants that task the
//! baton, and blocks the caller until it is picked again. Because every
//! blocking moment in `pdc-sync` funnels through the hooks, the whole
//! interleaving of the test body becomes a deterministic function of the
//! strategy's choices — which is what makes exhaustive enumeration,
//! randomized PCT search, and exact record/replay possible at all.
//!
//! Enabledness mirrors the primitives' own blocking conditions:
//!
//! * spin waiters are re-enabled by [`Checker::site_changed`] on their
//!   site, tracked with per-site change epochs — sound because the
//!   waiter captures its epoch while holding the baton, so no change
//!   can slip between the failed condition check and the capture;
//! * parked tasks carry a `thread::park` token set by `unpark`;
//! * joiners wait on the child reaching `Finished`.
//!
//! When the enabled set is empty while unfinished tasks remain, the
//! schedule has *deterministically deadlocked* — not a timeout heuristic
//! but a precise statement that no task can make progress.
//!
//! Teardown is panic-driven: once `aborting` is set (deadlock, step
//! budget, or a real panic in the body), every hook entry from forward
//! execution panics with [`AbortSchedule`], unwinding all tasks through
//! their guards; hook calls made *while already unwinding* (guard drops)
//! degrade to no-ops so teardown itself never blocks.

use crate::strategy::{ChoiceRecord, Decide};
use pdc_analyze::deps::Access;
use pdc_core::trace::TraceSession;
pub use pdc_sync::hooks::AbortSchedule;
use pdc_sync::hooks::{Checker, ChoiceKind, TaskId};
use std::collections::HashMap;
use std::panic::panic_any;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{Thread, ThreadId};
use std::time::{Duration, Instant};

/// Per-decision metadata the partial-order reducer consumes: what kind
/// of choice it was, who ran, where the session clock stood at the
/// grant, and which scheduler-level resources the step touched.
///
/// The step's *full* footprint is this hook-level list plus every trace
/// event whose timestamp falls in `[ts, next step's ts)` — the events
/// the granted task recorded while it held the baton. The hook-level
/// accesses cover what the event stream cannot see: failed probes
/// (a spin re-check that found the site still held records no event),
/// park/unpark token traffic, and the exit a joiner resumed on. Without
/// them, blocked steps would have empty footprints and the dependence
/// relation would be unsound.
#[derive(Debug, Clone)]
pub struct StepInfo {
    /// What the decision chose between.
    pub kind: ChoiceKind,
    /// The task that was granted (or, for data choices, kept) the baton.
    pub task: TaskId,
    /// Session logical clock at the grant; events with `ts >= this` and
    /// `< next.ts` were recorded during this step.
    pub ts: u64,
    /// Hook-level accesses accumulated while the step ran.
    pub accesses: Vec<Access>,
}

/// Why a schedule stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Body ran to completion with every task finished.
    Ok,
    /// A real panic in the body (assertion failure, etc.).
    Panic(String),
    /// No task was enabled while these tasks were still unfinished.
    Deadlock(Vec<TaskId>),
    /// The step budget ran out (livelock guard / depth bound).
    Truncated,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Blocked in a spin loop on `site` (`None` = untraced site, any
    /// change re-enables); enabled once the epoch counter advances.
    SpinWaiting {
        site: Option<u64>,
        epoch: u64,
    },
    /// Blocked in `park`; enabled while the unpark token is set.
    Parked,
    /// Blocked joining another task; enabled once it finishes.
    JoinWaiting(TaskId),
    Finished,
}

#[derive(Debug)]
struct TaskState {
    status: Status,
    park_token: bool,
    thread: Option<Thread>,
}

impl TaskState {
    fn new() -> Self {
        TaskState {
            status: Status::Runnable,
            park_token: false,
            thread: None,
        }
    }
}

struct State {
    tasks: Vec<TaskState>,
    /// Holder of the baton; `None` once everything finished or aborted.
    current: Option<TaskId>,
    /// Change epochs for spin-wait enablement.
    site_epoch: HashMap<u64, u64>,
    any_epoch: u64,
    strategy: Box<dyn Decide>,
    choices: Vec<ChoiceRecord>,
    /// One entry per choice record (same indexing).
    step_infos: Vec<StepInfo>,
    steps: usize,
    aborting: bool,
    truncated: bool,
    deadlock: Option<Vec<TaskId>>,
    panic_msg: Option<String>,
}

/// One controlled schedule's scheduler; implements
/// [`pdc_sync::hooks::Checker`] and is installed process-wide for the
/// duration of the schedule (explorations are serialized by
/// [`crate::explore`]'s global lock).
pub struct Controller {
    inner: Mutex<State>,
    cond: Condvar,
    max_steps: usize,
    /// Session clock for attributing trace events to steps; `None`
    /// keeps all step timestamps at 0 (footprints then carry only
    /// hook-level accesses).
    clock: Option<TraceSession>,
}

impl Controller {
    /// A controller with the root body registered as task 0, already
    /// holding the baton.
    pub fn new(strategy: Box<dyn Decide>, max_steps: usize) -> Self {
        Controller::with_clock(strategy, max_steps, None)
    }

    /// As [`Controller::new`], additionally reading `clock`'s logical
    /// clock at every grant so each recorded decision knows which trace
    /// events its step produced.
    pub fn with_clock(
        strategy: Box<dyn Decide>,
        max_steps: usize,
        clock: Option<TraceSession>,
    ) -> Self {
        Controller {
            inner: Mutex::new(State {
                tasks: vec![TaskState::new()],
                current: Some(0),
                site_epoch: HashMap::new(),
                any_epoch: 0,
                strategy,
                choices: Vec::new(),
                step_infos: Vec::new(),
                steps: 0,
                aborting: false,
                truncated: false,
                deadlock: None,
                panic_msg: None,
            }),
            cond: Condvar::new(),
            max_steps,
            clock,
        }
    }

    /// Append a hook-level access to the step currently holding the
    /// baton (the most recent decision). Accesses before the first
    /// decision belong to the root preamble every schedule shares and
    /// are deliberately dropped.
    fn note_access(st: &mut MutexGuard<'_, State>, access: Access) {
        if let Some(info) = st.step_infos.last_mut() {
            info.accesses.push(access);
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record the root body's thread handle (for `unpark` lookups).
    pub fn register_root_thread(&self) {
        let mut st = self.lock();
        st.tasks[0].thread = Some(std::thread::current());
    }

    /// Called by hooks entered from *forward* execution: panic out of
    /// the body when the schedule is aborting. Hooks reached while the
    /// thread is already unwinding (guard drops) must instead degrade to
    /// no-ops — teardown may never block or double-panic.
    fn abort_check(&self, st: &MutexGuard<'_, State>) -> bool {
        if !st.aborting {
            return false;
        }
        if std::thread::panicking() {
            return true; // caller becomes a no-op
        }
        panic_any(AbortSchedule);
    }

    fn is_enabled(st: &State, id: TaskId) -> bool {
        let t = &st.tasks[id as usize];
        match &t.status {
            Status::Runnable => true,
            Status::SpinWaiting { site, epoch } => match site {
                Some(s) => st.site_epoch.get(s).copied().unwrap_or(0) > *epoch,
                None => st.any_epoch > *epoch,
            },
            Status::Parked => t.park_token,
            Status::JoinWaiting(child) => st.tasks[*child as usize].status == Status::Finished,
            Status::Finished => false,
        }
    }

    fn enabled_tasks(st: &State) -> Vec<TaskId> {
        (0..st.tasks.len() as TaskId)
            .filter(|&id| Self::is_enabled(st, id))
            .collect()
    }

    /// Pick the next baton holder. Caller must currently hold the baton
    /// (or be the exiting task that just released it).
    fn decide(&self, st: &mut MutexGuard<'_, State>) {
        let enabled = Self::enabled_tasks(st);
        if enabled.is_empty() {
            let live: Vec<TaskId> = (0..st.tasks.len() as TaskId)
                .filter(|&id| st.tasks[id as usize].status != Status::Finished)
                .collect();
            st.current = None;
            if !live.is_empty() {
                st.deadlock = Some(live);
                st.aborting = true;
            }
            return;
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            st.truncated = true;
            st.aborting = true;
            st.current = None;
            return;
        }
        let decision_index = st.choices.len();
        let idx = st
            .strategy
            .pick(decision_index, &enabled)
            .min(enabled.len() - 1);
        let id = enabled[idx];
        st.choices.push(ChoiceRecord {
            enabled,
            picked_index: idx,
        });
        // Waking from a blocked state *consumes* whatever enabled the
        // task: seed the new step's footprint with it, so the enabling
        // step (release / unpark / exit) and this wake are dependent —
        // the DPOR dependence graph needs that edge to know the pair
        // cannot be freely commuted.
        let wake_access = match &st.tasks[id as usize].status {
            Status::SpinWaiting { site: Some(s), .. } => Some(Access::Site(*s)),
            Status::SpinWaiting { site: None, .. } => Some(Access::AnySite),
            Status::Parked => Some(Access::ParkToken(id)),
            Status::JoinWaiting(child) => Some(Access::TaskExit(*child)),
            Status::Runnable | Status::Finished => None,
        };
        let ts = self.clock.as_ref().map(|c| c.now()).unwrap_or(0);
        st.step_infos.push(StepInfo {
            kind: ChoiceKind::Task,
            task: id,
            ts,
            accesses: wake_access.into_iter().collect(),
        });
        let t = &mut st.tasks[id as usize];
        if t.status == Status::Parked {
            t.park_token = false; // park consumes the token on wake
        }
        t.status = Status::Runnable;
        st.current = Some(id);
    }

    /// Block until `task` holds the baton (or the schedule aborts).
    fn wait_for_grant(&self, mut st: MutexGuard<'_, State>, task: TaskId) {
        while st.current != Some(task) {
            if st.aborting {
                drop(st);
                if std::thread::panicking() {
                    return;
                }
                panic_any(AbortSchedule);
            }
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Common hook body: hand the baton to the strategy's next pick and
    /// wait to be picked again.
    fn block_as(&self, task: TaskId, status: Status) {
        let mut st = self.lock();
        if self.abort_check(&st) {
            return;
        }
        st.tasks[task as usize].status = status;
        self.decide(&mut st);
        self.cond.notify_all();
        self.wait_for_grant(st, task);
    }

    /// Abort the schedule because `msg` escaped a task body. Never
    /// panics or blocks — callers are mid-unwind.
    pub fn abort_for_panic(&self, msg: &str) {
        let mut st = self.lock();
        if st.panic_msg.is_none() {
            st.panic_msg = Some(msg.to_string());
        }
        st.aborting = true;
        st.current = None;
        self.cond.notify_all();
    }

    /// Wait for every registered task to reach `Finished` (teardown
    /// barrier before uninstalling the checker), bounded by `timeout`.
    /// Returns `false` on timeout — a bug in the controller, surfaced
    /// loudly by [`crate::explore`].
    pub fn wait_all_finished(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        loop {
            if st.tasks.iter().all(|t| t.status == Status::Finished) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _) = self
                .cond
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
        }
    }

    /// The schedule's outcome, decision log, per-step metadata, and
    /// step count, read after teardown.
    pub fn summary(&self) -> (Outcome, Vec<ChoiceRecord>, Vec<StepInfo>, usize) {
        let st = self.lock();
        let outcome = if let Some(msg) = &st.panic_msg {
            Outcome::Panic(msg.clone())
        } else if let Some(live) = &st.deadlock {
            Outcome::Deadlock(live.clone())
        } else if st.truncated {
            Outcome::Truncated
        } else {
            Outcome::Ok
        };
        (outcome, st.choices.clone(), st.step_infos.clone(), st.steps)
    }

    /// Total tasks registered during the schedule (the spawned set, root
    /// included). Used by strict replay validation.
    pub fn task_count(&self) -> usize {
        self.lock().tasks.len()
    }
}

impl Checker for Controller {
    fn yield_point(&self, task: TaskId) {
        self.block_as(task, Status::Runnable);
    }

    fn spin_wait(&self, task: TaskId, site: Option<u64>) {
        // Capture the epoch NOW: the caller just observed the resource
        // unavailable, and it holds the baton, so nothing can have
        // changed the site since that observation.
        let mut st = self.lock();
        if self.abort_check(&st) {
            return;
        }
        // The failed probe read the site's state: record it, so the
        // probe conflicts with the release that will change it.
        Self::note_access(
            &mut st,
            match site {
                Some(s) => Access::Site(s),
                None => Access::AnySite,
            },
        );
        let epoch = match site {
            Some(s) => st.site_epoch.get(&s).copied().unwrap_or(0),
            None => st.any_epoch,
        };
        st.tasks[task as usize].status = Status::SpinWaiting { site, epoch };
        self.decide(&mut st);
        self.cond.notify_all();
        self.wait_for_grant(st, task);
    }

    fn site_changed(&self, site: u64) {
        let mut st = self.lock();
        if st.aborting {
            return; // teardown: nothing is spin-waiting anymore
        }
        Self::note_access(&mut st, Access::Site(site));
        *st.site_epoch.entry(site).or_insert(0) += 1;
        st.any_epoch += 1;
        // Not a decision point: the caller continues to its own next
        // yield, where newly-enabled waiters join the enabled set.
    }

    fn park(&self, task: TaskId) {
        let mut st = self.lock();
        if self.abort_check(&st) {
            return;
        }
        Self::note_access(&mut st, Access::ParkToken(task));
        if st.tasks[task as usize].park_token {
            // Token already available: park returns immediately, but it
            // is still a preemption point.
            st.tasks[task as usize].park_token = false;
            st.tasks[task as usize].status = Status::Runnable;
        } else {
            st.tasks[task as usize].status = Status::Parked;
        }
        self.decide(&mut st);
        self.cond.notify_all();
        self.wait_for_grant(st, task);
    }

    fn unpark(&self, thread: &Thread) -> bool {
        let mut st = self.lock();
        if st.aborting {
            // All managed tasks are being woken by the abort broadcast;
            // claiming the unpark is safe and avoids stray real tokens.
            return true;
        }
        let tid: ThreadId = thread.id();
        let Some(idx) = st
            .tasks
            .iter()
            .position(|t| t.thread.as_ref().map(|h| h.id()) == Some(tid))
        else {
            return false; // unmanaged thread: caller does a real unpark
        };
        Self::note_access(&mut st, Access::ParkToken(idx as TaskId));
        st.tasks[idx].park_token = true;
        // Not a decision point (unpark never blocks the caller); the
        // parked task becomes enabled at the caller's next yield.
        true
    }

    fn spawn_task(&self, _parent: TaskId) -> TaskId {
        let mut st = self.lock();
        let id = st.tasks.len() as TaskId;
        st.tasks.push(TaskState::new());
        // The child is Runnable (hence enabled) immediately, but the
        // parent keeps the baton: granting an unstarted task is safe —
        // it blocks nobody — and the parent's post-spawn yield_point is
        // the first real decision.
        id
    }

    fn start_task(&self, task: TaskId) {
        let mut st = self.lock();
        st.tasks[task as usize].thread = Some(std::thread::current());
        self.cond.notify_all();
        self.wait_for_grant(st, task);
    }

    fn exit_task(&self, task: TaskId) {
        // Never panics, never blocks: every task must reach Finished so
        // teardown can complete.
        let mut st = self.lock();
        // The exit is what a joiner's wake consumes: putting it in the
        // final step's footprint chains the child's last step before
        // the joiner's resume in the dependence graph.
        Self::note_access(&mut st, Access::TaskExit(task));
        st.tasks[task as usize].status = Status::Finished;
        if !st.aborting && st.current == Some(task) {
            self.decide(&mut st);
        }
        self.cond.notify_all();
    }

    fn join_wait(&self, waiter: TaskId, child: TaskId) {
        // Deliberately NOT a footprint access: the probe ("is the child
        // still running?") has no observable effect, and noting it would
        // make it conflict with the child's exit. That conflict is
        // excluded from races as irreversible, but it would still count
        // as a happens-before edge — and an edge that can never be
        // reversed must not *cover* (and thereby suppress) the seeding
        // of genuine reversible races across it. Only the exit itself
        // and the wake it grants carry `Access::TaskExit`.
        self.block_as(waiter, Status::JoinWaiting(child));
    }

    fn task_panicked(&self, _task: TaskId, message: &str) {
        self.abort_for_panic(message);
    }

    fn choice_point(&self, task: TaskId, kind: ChoiceKind, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let mut st = self.lock();
        if self.abort_check(&st) {
            return 0;
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            st.truncated = true;
            st.aborting = true;
            st.current = None;
            self.cond.notify_all();
            drop(st);
            if std::thread::panicking() {
                return 0;
            }
            panic_any(AbortSchedule);
        }
        // A data decision: recorded like a scheduling decision (so
        // replay, DFS backtracking and shrinking handle it unchanged)
        // with pseudo-ids 0..n standing in for the alternatives. The
        // baton stays with the calling task.
        let enabled: Vec<TaskId> = (0..n as TaskId).collect();
        let decision_index = st.choices.len();
        let idx = st.strategy.pick(decision_index, &enabled).min(n - 1);
        st.choices.push(ChoiceRecord {
            enabled,
            picked_index: idx,
        });
        let ts = self.clock.as_ref().map(|c| c.now()).unwrap_or(0);
        st.step_infos.push(StepInfo {
            kind,
            task,
            ts,
            accesses: Vec::new(),
        });
        idx
    }
}
