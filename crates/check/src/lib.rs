//! `pdc-check`: a deterministic schedule-exploration model checker for
//! `pdc-sync` programs, with exact record/replay.
//!
//! Concurrency bugs hide in interleavings the OS scheduler rarely
//! produces; running a test a thousand times mostly re-runs the same
//! lucky schedule. This crate takes scheduling away from the OS: a
//! [`controller::Controller`] installs itself into the
//! [`pdc_sync::hooks`] seam and serializes the whole test body onto one
//! runnable task at a time, choosing who runs at every yield point.
//! The interleaving becomes a deterministic function of those choices,
//! which buys three things the curriculum's testing unit is built on:
//!
//! * **systematic search** — [`explore_dfs`] enumerates *every*
//!   schedule of a bounded body (and can certify it clean);
//!   [`explore_dpor`] proves the same completeness while skipping
//!   interleavings the dependence relation shows equivalent (sleep
//!   sets + persistent backtrack sets over per-step footprints);
//!   [`explore_pct`] samples schedules with PCT's randomized-priority
//!   bias toward rare orderings;
//! * **exact replay** — each run's decisions are recorded as a
//!   [`Schedule`] (`pdc-check/1` JSON); [`replay`] re-executes the
//!   same interleaving, reproducing the canonical trace byte for byte;
//! * **shrinking** — a failing schedule is minimized by verified
//!   prefix-truncation and splice-out, so the witness a student reads
//!   is a handful of choices, not thousands.
//!
//! On top of each explored schedule the existing `pdc-analyze` passes
//! (happens-before, lockset, lock order, MPI lint) judge the trace, so
//! "fails" means *panic, deadlock, or analysis defect* — the checker
//! finds races even on schedules where the wrong answer happens not to
//! materialize.
//!
//! Test bodies use [`spawn`]/[`JoinHandle`]/[`yield_now`] from this
//! crate (drop-in `std::thread` shapes that register with the active
//! controller) and any `pdc-sync` primitives, which participate via
//! their hook instrumentation with zero configuration.
//!
//! ```
//! use pdc_check::{explore_pct, fixtures, Config};
//!
//! let cfg = Config { max_schedules: 50, ..Config::default() };
//! let report = explore_pct(fixtures::racy_counter_body(2), &cfg);
//! let failure = report.failure.expect("the racy counter must fail");
//! // The shrunk witness replays to a failing schedule by construction.
//! assert!(failure.minimal_run.failed(&cfg));
//! ```

pub mod canon;
pub mod controller;
pub mod dpor;
pub mod explore;
pub mod fixtures;
pub mod strategy;

pub use controller::{AbortSchedule, Outcome, StepInfo};
pub use dpor::{enumerate_dpor, explore_dpor};
pub use explore::{
    enumerate_dfs, explore_dfs, explore_pct, replay, replay_strict, Config, ExploreReport,
    FoundFailure, RunResult, ScheduleSummary,
};
pub use strategy::{Schedule, ScheduleError};

use pdc_core::trace::{self, EventKind};
use pdc_sync::hooks;
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};

/// A preemption point: under a controller this hands the baton to the
/// strategy's next pick; outside exploration it is a no-op.
pub fn yield_now() {
    hooks::yield_point();
}

enum ChildOutcome<T> {
    Done(T),
    /// The schedule is being torn down; there is no value.
    Aborted,
}

/// Handle to a task started with [`spawn`] (same shape as
/// `std::thread::JoinHandle`, minus the `Result`: panics propagate).
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<ChildOutcome<T>>,
    token: Option<hooks::SpawnToken>,
    h_join: Option<u64>,
}

impl<T> JoinHandle<T> {
    /// Wait for the task and return its value. Under a controller this
    /// blocks through the checker (the exploration keeps running other
    /// tasks); a panic in the child propagates to the joiner.
    pub fn join(self) -> T {
        if let Some(token) = &self.token {
            hooks::join_task(token);
        }
        match self.inner.join() {
            Ok(ChildOutcome::Done(v)) => {
                if let (Some(h), Some(pt)) = (self.h_join, trace::current_sync_trace()) {
                    pt.record(EventKind::Join, h, 0);
                }
                v
            }
            // Only reachable if the abort raced past join_task; keep
            // unwinding this task too.
            Ok(ChildOutcome::Aborted) => panic_any(AbortSchedule),
            Err(payload) => resume_unwind(payload),
        }
    }
}

/// Spawn a task that participates in the active exploration (if any)
/// and inherits the parent's trace as a forked sibling actor. Outside
/// exploration this is `std::thread::spawn` plus the same fork/join
/// trace edges `pdc_threads::join` records.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let token = hooks::checked_spawn();
    let parent_trace = trace::current_sync_trace();
    let (child_trace, handles) = match &parent_trace {
        Some(pt) => {
            let h_fork = trace::next_site_id();
            let h_join = trace::next_site_id();
            pt.record(EventKind::Fork, h_fork, 0);
            (Some(pt.sibling_auto()), Some((h_fork, h_join)))
        }
        None => (None, None),
    };
    let child_token = token;
    let child = std::thread::Builder::new()
        .name("pdc-check-task".into())
        .spawn(move || {
            let run = AssertUnwindSafe(|| {
                if let Some(t) = &child_token {
                    hooks::begin_task(t);
                }
                if let Some(ct) = &child_trace {
                    trace::install_sync_trace(ct.clone());
                    ct.record(EventKind::Join, handles.unwrap().0, 0);
                }
                let v = f();
                if let Some(ct) = &child_trace {
                    ct.record(EventKind::Fork, handles.unwrap().1, 0);
                }
                v
            });
            let out = catch_unwind(run);
            trace::clear_sync_trace();
            let res = match out {
                Ok(v) => Ok(ChildOutcome::Done(v)),
                Err(payload) if payload.downcast_ref::<AbortSchedule>().is_some() => {
                    Ok(ChildOutcome::Aborted)
                }
                Err(payload) => {
                    if let Some(t) = &child_token {
                        hooks::task_panicked(t, &explore_panic_text(payload.as_ref()));
                    }
                    Err(payload)
                }
            };
            // Always reached: the task must be marked Finished whether
            // it completed, aborted, or panicked for real.
            if let Some(t) = &child_token {
                hooks::end_task(t);
            }
            match res {
                Ok(v) => v,
                Err(payload) => resume_unwind(payload),
            }
        })
        .expect("spawn pdc-check task");
    if token.is_some() {
        // First decision where the child is a candidate; only after the
        // OS thread exists, per the hooks contract.
        hooks::yield_point();
    }
    JoinHandle {
        inner: child,
        token,
        h_join: handles.map(|(_, j)| j),
    }
}

fn explore_panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_analyze::DefectKind;
    use pdc_sync::PdcMutex;
    use std::sync::Arc;

    fn small(max_schedules: usize) -> Config {
        Config {
            max_schedules,
            ..Config::default()
        }
    }

    #[test]
    fn spawn_works_outside_exploration() {
        let h = spawn(|| 21 * 2);
        assert_eq!(h.join(), 42);
    }

    #[test]
    fn pct_finds_the_racy_counter_quickly() {
        let report = explore_pct(fixtures::racy_counter_body(2), &small(1000));
        let failure = report.failure.expect("racy counter must fail");
        assert!(
            report.schedules_run <= 1000,
            "must fail within budget, took {}",
            report.schedules_run
        );
        // Whatever the concrete symptom (lost-update panic or analysis
        // race), the trace itself must show the data race.
        assert!(
            failure.run.report.count_kind(DefectKind::DataRace) >= 1,
            "{}",
            failure.description
        );
    }

    #[test]
    fn dfs_certifies_the_fixed_counter_clean() {
        let cfg = Config {
            max_schedules: 50_000,
            ..Config::default()
        };
        let report = explore_dfs(fixtures::fixed_counter_body(2, 1), &cfg);
        assert!(
            report.passed(),
            "{:?}",
            report.failure.map(|f| f.description)
        );
        assert!(
            report.complete,
            "DFS must exhaust the tree, ran {} schedules",
            report.schedules_run
        );
        assert!(
            report.schedules_run >= 2,
            "at least two interleavings exist"
        );
    }

    #[test]
    fn pct_flags_abba_via_lock_order_before_it_even_deadlocks() {
        // On completed schedules the predictive lock-order pass already
        // condemns the opposite-order acquisitions — the analyzer finds
        // the bug without needing to hit the fatal interleaving.
        let report = explore_pct(fixtures::abba_deadlock_body(), &small(100));
        let failure = report.failure.expect("AB-BA must fail");
        assert!(
            failure.run.outcome != Outcome::Ok
                || failure.run.report.count_kind(DefectKind::LockOrderCycle) >= 1,
            "{}",
            failure.description
        );
    }

    #[test]
    fn dfs_finds_the_abba_deadlock() {
        // Disable analysis failures to isolate the checker's own
        // precise (empty-enabled-set) deadlock detection.
        let cfg = Config {
            max_schedules: 50_000,
            fail_on_defects: false,
            ..Config::default()
        };
        let report = explore_dfs(fixtures::abba_deadlock_body(), &cfg);
        let failure = report.failure.expect("AB-BA must deadlock somewhere");
        assert!(
            matches!(failure.run.outcome, Outcome::Deadlock(_)),
            "{}",
            failure.description
        );
        assert!(
            matches!(failure.minimal_run.outcome, Outcome::Deadlock(_)),
            "the shrunk witness must still deadlock"
        );
    }

    #[test]
    fn replay_reproduces_the_exact_trace() {
        let cfg = small(200);
        let report = explore_pct(fixtures::racy_counter_body(2), &cfg);
        let failure = report.failure.expect("racy counter must fail");
        let rerun = replay(fixtures::racy_counter_body(2), &failure.run.schedule, &cfg);
        assert_eq!(
            rerun.trace_jsonl, failure.run.trace_jsonl,
            "replaying the recorded schedule must reproduce the canonical trace byte for byte"
        );
        assert_eq!(rerun.outcome, failure.run.outcome);
    }

    #[test]
    fn schedule_json_survives_the_file_round_trip() {
        let cfg = small(200);
        let report = explore_pct(fixtures::racy_counter_body(1), &cfg);
        let failure = report.failure.expect("racy counter must fail");
        let json = failure.minimal.to_json();
        let parsed = Schedule::parse(&json).unwrap();
        let rerun = replay(fixtures::racy_counter_body(1), &parsed, &cfg);
        assert!(
            rerun.failed(&cfg),
            "parsed minimal schedule must still fail"
        );
    }

    #[test]
    fn shrunk_schedule_is_no_longer_than_the_original() {
        let cfg = small(200);
        let report = explore_pct(fixtures::racy_counter_body(3), &cfg);
        let failure = report.failure.expect("racy counter must fail");
        assert!(failure.minimal.choices.len() <= failure.run.schedule.choices.len());
        assert!(failure.minimal_run.failed(&cfg));
    }

    #[test]
    fn structured_fork_join_participates_in_exploration() {
        // pdc_threads::join registers its scoped child as a checked
        // task, so fork-join bodies explore like spawned ones. The
        // unsynchronised variant must be caught; the diamond itself
        // orders parent-before-child-before-parent, so a body whose
        // accesses respect the diamond is clean.
        let cfg = Config {
            max_schedules: 50_000,
            ..Config::default()
        };
        let clean = explore_dfs(
            || {
                let m = Arc::new(PdcMutex::new(0u64));
                let var = trace::next_site_id();
                let (m1, m2) = (Arc::clone(&m), Arc::clone(&m));
                pdc_threads::join::join(
                    move || {
                        let mut g = m1.lock();
                        trace::record_var_write(var);
                        *g += 1;
                    },
                    move || {
                        let mut g = m2.lock();
                        trace::record_var_write(var);
                        *g += 1;
                    },
                );
            },
            &cfg,
        );
        assert!(clean.passed(), "{:?}", clean.failure.map(|f| f.description));
        assert!(clean.complete);
        assert!(clean.schedules_run >= 2, "both section orders explored");
    }

    #[test]
    fn deterministic_deadlock_reports_the_blocked_tasks() {
        // Drive the fatal interleaving directly: run both lock() entries
        // to just past their first acquisition. Rather than hand-craft
        // choices, find it with DFS and inspect the blocked set.
        let cfg = Config {
            max_schedules: 50_000,
            fail_on_defects: false,
            ..Config::default()
        };
        let report = explore_dfs(fixtures::abba_deadlock_body(), &cfg);
        let failure = report.failure.expect("deadlock exists");
        let Outcome::Deadlock(live) = &failure.run.outcome else {
            panic!("expected deadlock, got {:?}", failure.run.outcome);
        };
        // Root (0) waits on a join; tasks 1 and 2 wait on each other.
        assert!(live.contains(&1) && live.contains(&2), "{live:?}");
    }
}
