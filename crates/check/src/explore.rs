//! Exploration drivers: run one schedule, enumerate many, shrink the
//! failing ones.
//!
//! Every entry point takes a *re-runnable body* (`Fn`, invoked once per
//! schedule on a fresh root thread) and a [`Config`]. Explorations are
//! serialized process-wide — the checker is installed globally, so two
//! concurrent explorations would interleave each other's tasks — and a
//! quiet panic hook is held for the duration, because teardown works by
//! unwinding every task with [`AbortSchedule`] and the default hook
//! would print a backtrace per task per schedule.
//!
//! A schedule *fails* when it panics, deadlocks, exhausts the step
//! budget, or (with [`Config::fail_on_defects`]) when the `pdc-analyze`
//! passes find defects in its trace. On the first failure the driver
//! shrinks the recorded choice sequence — binary-search prefix
//! truncation, then single-choice splice-out, every candidate verified
//! by lenient replay — and re-verifies the minimum, so the reported
//! minimal schedule is failing *by construction*, not by assumption.

use crate::canon;
use crate::controller::{AbortSchedule, Controller, Outcome, StepInfo};
use crate::strategy::{ChoiceRecord, Decide, Dfs, Pct, Replay, Schedule, ScheduleError};
use pdc_analyze::Report;
use pdc_core::trace::{self, Event, TraceSession};
use pdc_sync::hooks::{self, Checker as _, TaskId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Exploration budgets and knobs; `Default` suits the unit fixtures.
#[derive(Debug, Clone)]
pub struct Config {
    /// Per-schedule decision budget; exceeding it is a `Truncated`
    /// failure (livelock guard / DFS depth bound).
    pub max_steps: usize,
    /// How many schedules an exploration may run.
    pub max_schedules: usize,
    /// Base seed for PCT (schedule `i` uses `seed + i`).
    pub seed: u64,
    /// PCT bug depth `d` (number of priority bands to exercise).
    pub pct_depth: usize,
    /// PCT's estimate `k` of decision points per schedule.
    pub pct_len_estimate: usize,
    /// Per-thread trace buffer capacity for each schedule's session.
    pub trace_capacity: usize,
    /// Replay budget for shrinking a failing schedule.
    pub shrink_budget: usize,
    /// Whether `pdc-analyze` defects on a completed schedule count as
    /// failures (they do for the race gate; turn off to hunt only
    /// panics/deadlocks).
    pub fail_on_defects: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_steps: 20_000,
            max_schedules: 1_000,
            seed: 0x5eed_0001,
            pct_depth: 3,
            pct_len_estimate: 64,
            trace_capacity: 1 << 14,
            shrink_budget: 64,
            fail_on_defects: true,
        }
    }
}

/// Everything one executed schedule produced.
#[derive(Debug)]
pub struct RunResult {
    /// How the schedule ended.
    pub outcome: Outcome,
    /// Decision points consumed.
    pub steps: usize,
    /// The as-executed schedule (replayable).
    pub schedule: Schedule,
    /// Full decision log (enabled sets + picks), for DFS backtracking.
    pub decisions: Vec<ChoiceRecord>,
    /// Per-decision metadata (kind, acting task, clock window, hook
    /// accesses) — what DPOR's dependence analysis consumes.
    pub step_infos: Vec<StepInfo>,
    /// Raw (un-canonicalized) events with their original timestamps,
    /// for attributing events to decision windows.
    pub raw_events: Vec<Event>,
    /// How many tasks the body spawned (root included).
    pub task_count: usize,
    /// Canonicalized trace events (see [`crate::canon`]).
    pub events: Vec<Event>,
    /// Canonical `pdc-trace/2` JSONL — byte-comparable across replays.
    pub trace_jsonl: String,
    /// The `pdc-analyze` verdict on this schedule's trace.
    pub report: Report,
}

impl RunResult {
    /// Whether this run counts as a failure under `cfg`.
    pub fn failed(&self, cfg: &Config) -> bool {
        self.outcome != Outcome::Ok || (cfg.fail_on_defects && !self.report.clean())
    }

    /// Human-readable failure description, `None` when the run passed.
    pub fn failure(&self, cfg: &Config) -> Option<String> {
        match &self.outcome {
            Outcome::Panic(msg) => Some(format!("panic: {msg}")),
            Outcome::Deadlock(live) => Some(format!("deadlock: tasks {live:?} all blocked")),
            Outcome::Truncated => Some(format!("truncated: exceeded {} steps", self.steps)),
            Outcome::Ok if cfg.fail_on_defects && !self.report.clean() => {
                let kinds: Vec<&str> = self.report.defects.iter().map(|d| d.kind.name()).collect();
                Some(format!("analysis defects: {}", kinds.join(",")))
            }
            Outcome::Ok => None,
        }
    }
}

/// A failing schedule found by exploration, with its shrunk witness.
#[derive(Debug)]
pub struct FoundFailure {
    /// What went wrong (from the *original* failing run).
    pub description: String,
    /// The failing run exactly as first encountered.
    pub run: RunResult,
    /// The shrunk schedule — verified failing by replay.
    pub minimal: Schedule,
    /// The verifying replay of `minimal` (its failure may differ in
    /// kind from the original's; any failure kind counts).
    pub minimal_run: RunResult,
}

/// What an exploration established.
#[derive(Debug)]
pub struct ExploreReport {
    /// `"dfs"`, `"pct"`, or `"dpor"`.
    pub mode: &'static str,
    /// Schedules actually executed (excluding shrink replays).
    pub schedules_run: usize,
    /// DFS/DPOR only: the whole schedule tree was enumerated without
    /// failure — a proof over the bounded body, not a sample. Under
    /// DPOR the proof is relative to the instrumented footprint (the
    /// same observability contract `pdc-analyze` assumes).
    pub complete: bool,
    /// DPOR only: schedules provably redundant and skipped (sleep-set
    /// hits). Always 0 for DFS/PCT.
    pub pruned: usize,
    /// The first failure, if any schedule failed.
    pub failure: Option<FoundFailure>,
}

impl ExploreReport {
    /// Convenience: did every explored schedule pass?
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

// The checker seam is process-global, so explorations must not overlap;
// independent of the lock order in user bodies because checked bodies
// never call back into `explore`.
static EXPLORATION: Mutex<()> = Mutex::new(());

pub(crate) fn exploration_lock() -> MutexGuard<'static, ()> {
    EXPLORATION.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Silence the default panic hook while exploring: schedule teardown
/// unwinds every task via [`AbortSchedule`] panics, and failing bodies
/// panic once per shrink replay — hundreds of backtraces of noise.
pub(crate) struct QuietPanics;

impl QuietPanics {
    pub(crate) fn install() -> Self {
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let _ = std::panic::take_hook();
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

pub(crate) type Body = Arc<dyn Fn() + Send + Sync + 'static>;

/// Execute the body once under `strategy`. Caller holds the
/// exploration lock.
pub(crate) fn run_schedule_locked(
    body: &Body,
    strategy: Box<dyn Decide>,
    strategy_name: &str,
    seed: u64,
    cfg: &Config,
) -> RunResult {
    let session = TraceSession::with_capacity(cfg.trace_capacity);
    let controller = Arc::new(Controller::with_clock(
        strategy,
        cfg.max_steps,
        Some(session.clone()),
    ));
    let prev = hooks::install_checker(controller.clone());
    debug_assert!(prev.is_none(), "explorations must be serialized");
    let root_trace = session.thread(0);
    let body = Arc::clone(body);
    let ctrl = Arc::clone(&controller);
    let root = std::thread::Builder::new()
        .name("pdc-check-root".into())
        .spawn(move || {
            hooks::bind_root_task(0);
            ctrl.register_root_thread();
            trace::install_sync_trace(root_trace);
            let out = catch_unwind(AssertUnwindSafe(|| body()));
            trace::clear_sync_trace();
            if let Err(payload) = out {
                if payload.downcast_ref::<AbortSchedule>().is_none() {
                    ctrl.abort_for_panic(&panic_text(payload.as_ref()));
                }
            }
            ctrl.exit_task(0);
            hooks::unbind_root_task();
        })
        .expect("spawn pdc-check root");
    let _ = root.join();
    let finished = controller.wait_all_finished(Duration::from_secs(10));
    hooks::uninstall_checker();
    assert!(
        finished,
        "pdc-check teardown stalled: a task never reached Finished"
    );
    let (outcome, decisions, step_infos, steps) = controller.summary();
    let task_count = controller.task_count();
    let raw_events = session.events();
    let events = canon::canonicalize(session.events());
    let report = pdc_analyze::analyze_events(&events);
    let trace_jsonl = canon::to_jsonl(&events);
    RunResult {
        outcome,
        steps,
        schedule: Schedule::from_records(strategy_name, seed, &decisions),
        decisions,
        step_infos,
        raw_events,
        task_count,
        events,
        trace_jsonl,
        report,
    }
}

/// Replay a recorded schedule exactly (lenient past divergence) and
/// return the run. The public record/replay entry point.
pub fn replay(
    body: impl Fn() + Send + Sync + 'static,
    schedule: &Schedule,
    cfg: &Config,
) -> RunResult {
    let body: Body = Arc::new(body);
    let _lock = exploration_lock();
    let _quiet = QuietPanics::install();
    replay_locked(&body, schedule, cfg)
}

/// Like [`replay`], but validate the schedule against the body first:
/// a schedule naming a task the body never spawns is rejected with a
/// typed [`ScheduleError`] instead of silently replaying something
/// else (lenient replay would substitute enabled index 0 — right for
/// shrinking's self-generated candidates, wrong for external input).
///
/// The task count is only known by running the body, so validation is
/// a probe replay followed by the range check against the tasks that
/// probe actually spawned.
pub fn replay_strict(
    body: impl Fn() + Send + Sync + 'static,
    schedule: &Schedule,
    cfg: &Config,
) -> Result<RunResult, ScheduleError> {
    let body: Body = Arc::new(body);
    let _lock = exploration_lock();
    let _quiet = QuietPanics::install();
    let run = replay_locked(&body, schedule, cfg);
    schedule.validate_tasks(run.task_count)?;
    Ok(run)
}

pub(crate) fn replay_locked(body: &Body, schedule: &Schedule, cfg: &Config) -> RunResult {
    run_schedule_locked(
        body,
        Box::new(Replay::new(schedule.choices.clone())),
        "replay",
        schedule.seed,
        cfg,
    )
}

/// Shrink a failing choice sequence: binary-search the shortest failing
/// prefix, then splice out single choices, verifying every candidate by
/// replay. Returns the minimal schedule and its verifying run.
fn shrink_locked(body: &Body, choices: &[TaskId], cfg: &Config) -> Option<(Schedule, RunResult)> {
    let budget = std::cell::Cell::new(cfg.shrink_budget);
    let check = |ch: &[TaskId]| -> Option<RunResult> {
        if budget.get() == 0 {
            return None;
        }
        budget.set(budget.get() - 1);
        let sched = Schedule {
            strategy: "replay".into(),
            seed: 0,
            choices: ch.to_vec(),
        };
        let run = replay_locked(body, &sched, cfg);
        run.failed(cfg).then_some(run)
    };
    let mut best: Vec<TaskId> = choices.to_vec();
    let mut best_run: Option<RunResult> = None;
    // Shortest failing prefix (assumes rough monotonicity; every
    // accepted candidate is individually verified, so a non-monotone
    // body only costs minimality, never correctness).
    let mut lo = 0usize;
    let mut hi = best.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        match check(&best[..mid]) {
            Some(run) => {
                best.truncate(mid);
                best_run = Some(run);
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    // Splice-out pass.
    let mut i = 0usize;
    while i < best.len() && budget.get() > 0 {
        let mut cand = best.clone();
        cand.remove(i);
        match check(&cand) {
            Some(run) => {
                best = cand;
                best_run = Some(run);
            }
            None => i += 1,
        }
    }
    let minimal = Schedule {
        strategy: "replay".into(),
        seed: 0,
        choices: best.clone(),
    };
    // Re-verify when nothing shrank (best_run still None): the minimal
    // schedule must be *demonstrably* failing.
    let run = match best_run {
        Some(run) => run,
        None => {
            let run = replay_locked(body, &minimal, cfg);
            if !run.failed(cfg) {
                return None; // flaky under replay; report the original
            }
            run
        }
    };
    Some((minimal, run))
}

pub(crate) fn found(body: &Body, run: RunResult, cfg: &Config) -> FoundFailure {
    let description = run
        .failure(cfg)
        .unwrap_or_else(|| "failure vanished".into());
    let (minimal, minimal_run) =
        shrink_locked(body, &run.schedule.choices, cfg).unwrap_or_else(|| {
            // Shrinking could not certify anything smaller; fall back
            // to replaying the original, full sequence.
            let sched = Schedule {
                strategy: "replay".into(),
                seed: 0,
                choices: run.schedule.choices.clone(),
            };
            let rerun = replay_locked(body, &sched, cfg);
            (sched, rerun)
        });
    FoundFailure {
        description,
        run,
        minimal,
        minimal_run,
    }
}

/// Randomized PCT exploration: up to [`Config::max_schedules`] runs
/// with seeds `seed, seed+1, …`; stops (and shrinks) at the first
/// failing schedule.
///
/// [`Config::pct_len_estimate`] only seeds the *first* run's
/// change-point range; every later run derives `k` from the previous
/// run's observed decision count, so a stale or wildly-wrong estimate
/// self-corrects after one schedule instead of pushing every change
/// point past (or in front of) the schedule's real length.
pub fn explore_pct(body: impl Fn() + Send + Sync + 'static, cfg: &Config) -> ExploreReport {
    let body: Body = Arc::new(body);
    let _lock = exploration_lock();
    let _quiet = QuietPanics::install();
    let mut schedules_run = 0usize;
    let mut len_estimate = cfg.pct_len_estimate;
    for i in 0..cfg.max_schedules {
        let seed = cfg.seed.wrapping_add(i as u64);
        let strategy = Box::new(Pct::new(seed, cfg.pct_depth, len_estimate));
        let run = run_schedule_locked(&body, strategy, "pct", seed, cfg);
        schedules_run += 1;
        len_estimate = run.decisions.len().max(1);
        if run.failed(cfg) {
            return ExploreReport {
                mode: "pct",
                schedules_run,
                complete: false,
                pruned: 0,
                failure: Some(found(&body, run, cfg)),
            };
        }
    }
    ExploreReport {
        mode: "pct",
        schedules_run,
        complete: false,
        pruned: 0,
        failure: None,
    }
}

/// Bounded exhaustive DFS over the schedule tree via prefix-then-first
/// enumeration. `complete == true` means every schedule of the body
/// was executed without failure — a proof for the bounded body, which
/// is the claim the clean-fixture gate rests on.
pub fn explore_dfs(body: impl Fn() + Send + Sync + 'static, cfg: &Config) -> ExploreReport {
    let body: Body = Arc::new(body);
    let _lock = exploration_lock();
    let _quiet = QuietPanics::install();
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules_run = 0usize;
    loop {
        if schedules_run >= cfg.max_schedules {
            return ExploreReport {
                mode: "dfs",
                schedules_run,
                complete: false,
                pruned: 0,
                failure: None,
            };
        }
        let strategy = Box::new(Dfs::new(prefix.clone()));
        let run = run_schedule_locked(&body, strategy, "dfs", 0, cfg);
        schedules_run += 1;
        if run.failed(cfg) {
            return ExploreReport {
                mode: "dfs",
                schedules_run,
                complete: false,
                pruned: 0,
                failure: Some(found(&body, run, cfg)),
            };
        }
        // Backtrack: deepest decision with an untried sibling.
        let next = run.decisions.iter().enumerate().rev().find_map(|(i, rec)| {
            (rec.picked_index + 1 < rec.enabled.len()).then(|| {
                let mut p: Vec<usize> = run.decisions[..i].iter().map(|r| r.picked_index).collect();
                p.push(rec.picked_index + 1);
                p
            })
        });
        match next {
            Some(p) => prefix = p,
            None => {
                return ExploreReport {
                    mode: "dfs",
                    schedules_run,
                    complete: true,
                    pruned: 0,
                    failure: None,
                }
            }
        }
    }
}

/// One executed schedule, summarized for set comparison (property
/// tests compare DPOR's schedule set against full DFS's).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ScheduleSummary {
    /// Task id granted at each decision (the replayable identity).
    pub choices: Vec<TaskId>,
    /// Whether the run ended [`Outcome::Ok`].
    pub ok: bool,
    /// Sorted, deduplicated defect kind names from `pdc-analyze`.
    pub defect_kinds: Vec<String>,
}

impl ScheduleSummary {
    pub(crate) fn of(run: &RunResult) -> ScheduleSummary {
        let mut defect_kinds: Vec<String> = run
            .report
            .defects
            .iter()
            .map(|d| d.kind.name().to_string())
            .collect();
        defect_kinds.sort_unstable();
        defect_kinds.dedup();
        ScheduleSummary {
            choices: run.schedule.choices.clone(),
            ok: run.outcome == Outcome::Ok,
            defect_kinds,
        }
    }
}

/// Exhaustive DFS that does *not* stop at failures: every schedule in
/// the tree (up to `max_schedules`) is executed and summarized. The
/// bool is the completeness flag. This is the ground truth the DPOR
/// property tests compare against; no shrinking, no early exit.
pub fn enumerate_dfs(
    body: impl Fn() + Send + Sync + 'static,
    cfg: &Config,
) -> (Vec<ScheduleSummary>, bool) {
    let body: Body = Arc::new(body);
    let _lock = exploration_lock();
    let _quiet = QuietPanics::install();
    let mut prefix: Vec<usize> = Vec::new();
    let mut out = Vec::new();
    loop {
        if out.len() >= cfg.max_schedules {
            return (out, false);
        }
        let strategy = Box::new(Dfs::new(prefix.clone()));
        let run = run_schedule_locked(&body, strategy, "dfs", 0, cfg);
        out.push(ScheduleSummary::of(&run));
        let next = run.decisions.iter().enumerate().rev().find_map(|(i, rec)| {
            (rec.picked_index + 1 < rec.enabled.len()).then(|| {
                let mut p: Vec<usize> = run.decisions[..i].iter().map(|r| r.picked_index).collect();
                p.push(rec.picked_index + 1);
                p
            })
        });
        match next {
            Some(p) => prefix = p,
            None => return (out, true),
        }
    }
}
