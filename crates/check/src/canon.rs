//! Trace canonicalization: make two runs of the *same* interleaving
//! byte-identical.
//!
//! A replayed schedule re-executes the body with fresh primitives and
//! fresh threads, so three id spaces differ between record and replay
//! even though the interleaving is identical:
//!
//! * site/handle ids come from the process-global
//!   [`pdc_core::trace::next_site_id`] counter;
//! * auto actor ids (`ThreadTrace::sibling_auto`, used for spawned
//!   tasks) restart per session but live in the `≥ 2^20` band;
//! * logical timestamps restart per session but may have gaps if a
//!   disabled site allocated lazily.
//!
//! Canonicalization renumbers all three by first appearance in
//! timestamp order. Under the controller's baton the appearance order
//! is itself a deterministic function of the schedule, so the
//! canonicalized JSONL of a recorded run and its replay can be compared
//! with `==` — which is the record/replay acceptance test.

use pdc_core::trace::{Event, EventKind};
use std::collections::HashMap;

/// The auto-actor band base (`ThreadTrace::sibling_auto` ids); actors
/// at or above this are renumbered, explicit actors are kept.
const AUTO_ACTOR_BASE: u32 = 1 << 20;

/// Whether `kind`'s `a` payload is a site/handle id from
/// [`pdc_core::trace::next_site_id`] (and thus needs renumbering).
fn a_is_site_id(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::Acquire
            | EventKind::Release
            | EventKind::Wait
            | EventKind::Signal
            | EventKind::Read
            | EventKind::Write
            | EventKind::Fork
            | EventKind::Join
            | EventKind::ChanSend
            | EventKind::ChanRecv
    )
}

/// Renumber timestamps, site ids, and auto actors by first appearance
/// in timestamp order. Returns the events sorted by (new) timestamp.
pub fn canonicalize(mut events: Vec<Event>) -> Vec<Event> {
    events.sort_by_key(|e| e.ts);
    let max_explicit = events
        .iter()
        .map(|e| e.actor)
        .filter(|&a| a < AUTO_ACTOR_BASE)
        .max()
        .unwrap_or(0);
    let mut actor_map: HashMap<u32, u32> = HashMap::new();
    let mut site_map: HashMap<u64, u64> = HashMap::new();
    for (i, e) in events.iter_mut().enumerate() {
        e.ts = i as u64 + 1;
        if e.actor >= AUTO_ACTOR_BASE {
            let next = max_explicit + 1 + actor_map.len() as u32;
            e.actor = *actor_map.entry(e.actor).or_insert(next);
        }
        if a_is_site_id(e.kind) {
            let next = site_map.len() as u64 + 1;
            e.a = *site_map.entry(e.a).or_insert(next);
        }
    }
    events
}

/// Render canonical events as `pdc-trace/2` JSON lines (one event per
/// line, trailing newline) — the byte-comparable record/replay format.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, actor: u32, kind: EventKind, a: u64) -> Event {
        Event {
            ts,
            actor,
            kind,
            a,
            b: 0,
        }
    }

    #[test]
    fn renumbers_sites_by_first_appearance() {
        let canon = canonicalize(vec![
            ev(10, 0, EventKind::Acquire, 907),
            ev(11, 0, EventKind::Read, 344),
            ev(12, 0, EventKind::Release, 907),
        ]);
        assert_eq!(canon[0].a, 1);
        assert_eq!(canon[1].a, 2);
        assert_eq!(canon[2].a, 1, "same raw site, same canonical site");
        assert_eq!(
            canon.iter().map(|e| e.ts).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn renumbers_auto_actors_after_explicit_ones() {
        let base = AUTO_ACTOR_BASE;
        let canon = canonicalize(vec![
            ev(1, 0, EventKind::Fork, 50),
            ev(2, base + 7, EventKind::Join, 50),
            ev(3, base + 3, EventKind::Read, 9),
            ev(4, base + 7, EventKind::Write, 9),
        ]);
        assert_eq!(canon[0].actor, 0);
        assert_eq!(canon[1].actor, 1, "first auto actor seen becomes 1");
        assert_eq!(canon[2].actor, 2);
        assert_eq!(canon[3].actor, 1);
    }

    #[test]
    fn equal_interleavings_differ_only_by_raw_ids() {
        let a = canonicalize(vec![
            ev(5, 0, EventKind::Write, 100),
            ev(6, 0, EventKind::Signal, 101),
        ]);
        let b = canonicalize(vec![
            ev(50, 0, EventKind::Write, 7100),
            ev(51, 0, EventKind::Signal, 7101),
        ]);
        assert_eq!(to_jsonl(&a), to_jsonl(&b));
    }

    #[test]
    fn send_recv_peers_are_not_site_ids() {
        let canon = canonicalize(vec![ev(1, 0, EventKind::Send, 3)]);
        assert_eq!(canon[0].a, 3, "send peer is an actor, not a site");
    }
}
