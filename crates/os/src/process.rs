//! The process table: fork, exec, exit, wait, signals.
//!
//! A deterministic model of the Unix process lifecycle as taught in the
//! CS31 shell lab: `fork` clones, `exec` replaces the image, `exit`
//! leaves a zombie until the parent `wait`s, orphans are re-parented to
//! init (pid 1), and `SIGKILL` terminates immediately.

use std::collections::HashMap;

/// Process identifier.
pub type Pid = u32;

/// Lifecycle state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessState {
    /// Runnable or running (the model does not distinguish).
    Running,
    /// Exited but not yet reaped by its parent.
    Zombie,
}

/// Signals the model understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Terminate unconditionally.
    Kill,
    /// Terminate politely (the model treats it like Kill unless the
    /// process registered a handler).
    Term,
    /// User-defined signal; delivered to the handler if registered,
    /// ignored otherwise.
    Usr1,
}

/// A process control block.
#[derive(Debug, Clone)]
pub struct Pcb {
    /// This process's id.
    pub pid: Pid,
    /// Parent pid.
    pub ppid: Pid,
    /// Program image name (changed by exec).
    pub program: String,
    /// Current state.
    pub state: ProcessState,
    /// Exit code (valid once Zombie).
    pub exit_code: i32,
    /// Signals delivered to a registered handler (Usr1/Term with handler).
    pub handled_signals: Vec<Signal>,
    /// Whether a Term/Usr1 handler is registered.
    pub has_handler: bool,
}

/// Errors from process operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcError {
    /// No such process.
    NoSuchPid(Pid),
    /// Operation requires a live process, but it is a zombie.
    NotRunning(Pid),
    /// `wait` called with no children at all.
    NoChildren(Pid),
    /// `wait` would block: children exist but none are zombies.
    WouldBlock(Pid),
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::NoSuchPid(p) => write!(f, "no such process {p}"),
            ProcError::NotRunning(p) => write!(f, "process {p} is not running"),
            ProcError::NoChildren(p) => write!(f, "process {p} has no children"),
            ProcError::WouldBlock(p) => write!(f, "wait by {p} would block"),
        }
    }
}

impl std::error::Error for ProcError {}

/// The process table. Pid 1 (`init`) always exists.
#[derive(Debug, Clone)]
pub struct ProcessTable {
    procs: HashMap<Pid, Pcb>,
    next_pid: Pid,
}

/// The init process id.
pub const INIT: Pid = 1;

impl ProcessTable {
    /// A fresh table containing only `init` (pid 1).
    pub fn new() -> Self {
        let mut procs = HashMap::new();
        procs.insert(
            INIT,
            Pcb {
                pid: INIT,
                ppid: 0,
                program: "init".to_string(),
                state: ProcessState::Running,
                exit_code: 0,
                handled_signals: Vec::new(),
                // init has no user handler; it is special-cased as
                // unkillable in exit_signal instead.
                has_handler: false,
            },
        );
        ProcessTable { procs, next_pid: 2 }
    }

    /// Look up a PCB.
    pub fn get(&self, pid: Pid) -> Result<&Pcb, ProcError> {
        self.procs.get(&pid).ok_or(ProcError::NoSuchPid(pid))
    }

    fn get_mut(&mut self, pid: Pid) -> Result<&mut Pcb, ProcError> {
        self.procs.get_mut(&pid).ok_or(ProcError::NoSuchPid(pid))
    }

    /// Number of processes (including zombies).
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Whether only init remains.
    pub fn is_empty(&self) -> bool {
        self.procs.len() <= 1
    }

    /// Children of `pid`.
    pub fn children(&self, pid: Pid) -> Vec<Pid> {
        let mut c: Vec<Pid> = self
            .procs
            .values()
            .filter(|p| p.ppid == pid)
            .map(|p| p.pid)
            .collect();
        c.sort_unstable();
        c
    }

    /// Fork: clone `parent`, returning the child pid. The child inherits
    /// the program image and handler registration.
    pub fn fork(&mut self, parent: Pid) -> Result<Pid, ProcError> {
        let (program, has_handler) = {
            let p = self.get(parent)?;
            if p.state != ProcessState::Running {
                return Err(ProcError::NotRunning(parent));
            }
            (p.program.clone(), p.has_handler)
        };
        let child_pid = self.next_pid;
        self.next_pid += 1;
        let child = Pcb {
            pid: child_pid,
            ppid: parent,
            program,
            state: ProcessState::Running,
            exit_code: 0,
            handled_signals: Vec::new(),
            has_handler,
        };
        self.procs.insert(child_pid, child);
        Ok(child_pid)
    }

    /// Exec: replace the program image (resets handlers, as exec does).
    pub fn exec(&mut self, pid: Pid, program: &str) -> Result<(), ProcError> {
        let p = self.get_mut(pid)?;
        if p.state != ProcessState::Running {
            return Err(ProcError::NotRunning(pid));
        }
        p.program = program.to_string();
        p.has_handler = false;
        p.handled_signals.clear();
        Ok(())
    }

    /// Register a Term/Usr1 handler (signal(2) in the lab).
    pub fn register_handler(&mut self, pid: Pid) -> Result<(), ProcError> {
        self.get_mut(pid)?.has_handler = true;
        Ok(())
    }

    /// Exit: the process becomes a zombie holding `code`; its children
    /// are re-parented to init, and zombie children are reaped by init
    /// immediately (init always waits).
    pub fn exit(&mut self, pid: Pid, code: i32) -> Result<(), ProcError> {
        assert_ne!(pid, INIT, "init does not exit");
        {
            let p = self.get_mut(pid)?;
            if p.state != ProcessState::Running {
                return Err(ProcError::NotRunning(pid));
            }
            p.state = ProcessState::Zombie;
            p.exit_code = code;
        }
        // Re-parent children to init; init auto-reaps zombie children.
        let orphans = self.children(pid);
        for o in orphans {
            if let Some(c) = self.procs.get_mut(&o) {
                c.ppid = INIT;
                if c.state == ProcessState::Zombie {
                    self.procs.remove(&o);
                }
            }
        }
        Ok(())
    }

    /// Wait: reap one zombie child of `pid` (lowest pid first), returning
    /// `(child_pid, exit_code)`. Errors distinguish "no children" from
    /// "children exist but still running" (the blocking case).
    pub fn wait(&mut self, pid: Pid) -> Result<(Pid, i32), ProcError> {
        self.get(pid)?;
        let kids = self.children(pid);
        if kids.is_empty() {
            return Err(ProcError::NoChildren(pid));
        }
        for k in kids {
            if self.procs[&k].state == ProcessState::Zombie {
                let code = self.procs[&k].exit_code;
                self.procs.remove(&k);
                return Ok((k, code));
            }
        }
        Err(ProcError::WouldBlock(pid))
    }

    /// Deliver a signal.
    pub fn signal(&mut self, pid: Pid, sig: Signal) -> Result<(), ProcError> {
        let has_handler = {
            let p = self.get(pid)?;
            if p.state != ProcessState::Running {
                return Err(ProcError::NotRunning(pid));
            }
            p.has_handler
        };
        match sig {
            Signal::Kill => self.exit_signal(pid, 137),
            Signal::Term => {
                if has_handler {
                    self.get_mut(pid)?.handled_signals.push(sig);
                    Ok(())
                } else {
                    self.exit_signal(pid, 143)
                }
            }
            Signal::Usr1 => {
                if has_handler {
                    self.get_mut(pid)?.handled_signals.push(sig);
                }
                Ok(())
            }
        }
    }

    fn exit_signal(&mut self, pid: Pid, code: i32) -> Result<(), ProcError> {
        if pid == INIT {
            return Ok(()); // init is unkillable
        }
        self.exit(pid, code)
    }

    /// All pids, sorted (diagnostics).
    pub fn pids(&self) -> Vec<Pid> {
        let mut v: Vec<Pid> = self.procs.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl Default for ProcessTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_creates_child_of_parent() {
        let mut t = ProcessTable::new();
        let c = t.fork(INIT).unwrap();
        assert_eq!(t.get(c).unwrap().ppid, INIT);
        assert_eq!(t.get(c).unwrap().program, "init");
        assert_eq!(t.children(INIT), vec![c]);
    }

    #[test]
    fn exec_replaces_image() {
        let mut t = ProcessTable::new();
        let c = t.fork(INIT).unwrap();
        t.exec(c, "ls").unwrap();
        assert_eq!(t.get(c).unwrap().program, "ls");
        assert_eq!(t.get(INIT).unwrap().program, "init", "parent unchanged");
    }

    #[test]
    fn exit_then_wait_reaps_zombie() {
        let mut t = ProcessTable::new();
        let sh = t.fork(INIT).unwrap();
        let c = t.fork(sh).unwrap();
        t.exit(c, 7).unwrap();
        assert_eq!(t.get(c).unwrap().state, ProcessState::Zombie);
        let (reaped, code) = t.wait(sh).unwrap();
        assert_eq!((reaped, code), (c, 7));
        assert!(t.get(c).is_err(), "zombie gone after wait");
    }

    #[test]
    fn wait_distinguishes_block_from_no_children() {
        let mut t = ProcessTable::new();
        let sh = t.fork(INIT).unwrap();
        assert_eq!(t.wait(sh), Err(ProcError::NoChildren(sh)));
        let c = t.fork(sh).unwrap();
        assert_eq!(t.wait(sh), Err(ProcError::WouldBlock(sh)));
        t.exit(c, 0).unwrap();
        assert!(t.wait(sh).is_ok());
    }

    #[test]
    fn wait_reaps_lowest_pid_zombie_first() {
        let mut t = ProcessTable::new();
        let sh = t.fork(INIT).unwrap();
        let c1 = t.fork(sh).unwrap();
        let c2 = t.fork(sh).unwrap();
        t.exit(c2, 2).unwrap();
        t.exit(c1, 1).unwrap();
        assert_eq!(t.wait(sh).unwrap(), (c1, 1));
        assert_eq!(t.wait(sh).unwrap(), (c2, 2));
    }

    #[test]
    fn orphans_reparent_to_init() {
        let mut t = ProcessTable::new();
        let parent = t.fork(INIT).unwrap();
        let child = t.fork(parent).unwrap();
        t.exit(parent, 0).unwrap();
        assert_eq!(t.get(child).unwrap().ppid, INIT);
    }

    #[test]
    fn zombie_orphans_auto_reaped_by_init() {
        let mut t = ProcessTable::new();
        let parent = t.fork(INIT).unwrap();
        let child = t.fork(parent).unwrap();
        t.exit(child, 0).unwrap(); // zombie child of parent
        t.exit(parent, 0).unwrap(); // parent dies; init adopts + reaps
        assert!(t.get(child).is_err(), "init reaped the orphan zombie");
    }

    #[test]
    fn kill_terminates_term_respects_handler() {
        let mut t = ProcessTable::new();
        let a = t.fork(INIT).unwrap();
        let b = t.fork(INIT).unwrap();
        t.register_handler(b).unwrap();
        t.signal(a, Signal::Term).unwrap();
        assert_eq!(t.get(a).unwrap().state, ProcessState::Zombie);
        assert_eq!(t.get(a).unwrap().exit_code, 143);
        t.signal(b, Signal::Term).unwrap();
        assert_eq!(t.get(b).unwrap().state, ProcessState::Running);
        assert_eq!(t.get(b).unwrap().handled_signals, vec![Signal::Term]);
        t.signal(b, Signal::Kill).unwrap();
        assert_eq!(t.get(b).unwrap().exit_code, 137, "KILL is uncatchable");
    }

    #[test]
    fn usr1_ignored_without_handler() {
        let mut t = ProcessTable::new();
        let a = t.fork(INIT).unwrap();
        t.signal(a, Signal::Usr1).unwrap();
        assert_eq!(t.get(a).unwrap().state, ProcessState::Running);
        assert!(t.get(a).unwrap().handled_signals.is_empty());
    }

    #[test]
    fn init_is_unkillable() {
        let mut t = ProcessTable::new();
        t.signal(INIT, Signal::Kill).unwrap();
        assert_eq!(t.get(INIT).unwrap().state, ProcessState::Running);
    }

    #[test]
    fn exec_clears_handlers() {
        let mut t = ProcessTable::new();
        let a = t.fork(INIT).unwrap();
        t.register_handler(a).unwrap();
        t.exec(a, "prog").unwrap();
        t.signal(a, Signal::Term).unwrap();
        assert_eq!(t.get(a).unwrap().state, ProcessState::Zombie);
    }

    #[test]
    fn operations_on_zombies_rejected() {
        let mut t = ProcessTable::new();
        let a = t.fork(INIT).unwrap();
        t.exit(a, 0).unwrap();
        assert_eq!(t.fork(a), Err(ProcError::NotRunning(a)));
        assert_eq!(t.exec(a, "x"), Err(ProcError::NotRunning(a)));
        assert_eq!(t.signal(a, Signal::Kill), Err(ProcError::NotRunning(a)));
    }
}
