//! Demand paging: page tables and replacement policies.
//!
//! The CS31/CS45 virtual-memory unit: translate a reference string
//! through a fixed set of frames under FIFO, LRU, Clock (second chance),
//! or OPT (Belady's clairvoyant algorithm), counting page faults. The
//! tests reproduce the two famous results: **Belady's anomaly** (FIFO
//! faults *more* with *more* frames on the classic string) and **OPT
//! optimality** on every tested string.

use std::collections::VecDeque;

/// Page-replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacePolicy {
    /// Evict the page resident longest.
    Fifo,
    /// Evict the least recently used page.
    Lru,
    /// Second-chance clock.
    Clock,
    /// Belady's optimal: evict the page used farthest in the future.
    Opt,
}

/// Result of running a reference string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagingStats {
    /// Total references.
    pub references: u64,
    /// Page faults (including cold-start fills).
    pub faults: u64,
}

impl PagingStats {
    /// Fault rate in `[0, 1]`.
    pub fn fault_rate(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.faults as f64 / self.references as f64
        }
    }
}

/// Run `refs` (virtual page numbers) through `frames` physical frames
/// under `policy`, returning fault statistics.
///
/// # Panics
/// Panics if `frames == 0`.
pub fn run(policy: ReplacePolicy, frames: usize, refs: &[u64]) -> PagingStats {
    assert!(frames > 0, "need at least one frame");
    match policy {
        ReplacePolicy::Fifo => run_fifo(frames, refs),
        ReplacePolicy::Lru => run_lru(frames, refs),
        ReplacePolicy::Clock => run_clock(frames, refs),
        ReplacePolicy::Opt => run_opt(frames, refs),
    }
}

fn run_fifo(frames: usize, refs: &[u64]) -> PagingStats {
    let mut resident: VecDeque<u64> = VecDeque::new();
    let mut faults = 0;
    for &p in refs {
        if resident.contains(&p) {
            continue;
        }
        faults += 1;
        if resident.len() == frames {
            resident.pop_front();
        }
        resident.push_back(p);
    }
    PagingStats {
        references: refs.len() as u64,
        faults,
    }
}

fn run_lru(frames: usize, refs: &[u64]) -> PagingStats {
    // Recency order: front = LRU, back = MRU.
    let mut resident: VecDeque<u64> = VecDeque::new();
    let mut faults = 0;
    for &p in refs {
        if let Some(pos) = resident.iter().position(|&q| q == p) {
            resident.remove(pos);
            resident.push_back(p);
            continue;
        }
        faults += 1;
        if resident.len() == frames {
            resident.pop_front();
        }
        resident.push_back(p);
    }
    PagingStats {
        references: refs.len() as u64,
        faults,
    }
}

fn run_clock(frames: usize, refs: &[u64]) -> PagingStats {
    let mut pages: Vec<u64> = Vec::new();
    let mut used: Vec<bool> = Vec::new();
    let mut hand = 0usize;
    let mut faults = 0;
    for &p in refs {
        if let Some(pos) = pages.iter().position(|&q| q == p) {
            used[pos] = true;
            continue;
        }
        faults += 1;
        if pages.len() < frames {
            pages.push(p);
            used.push(true);
            continue;
        }
        // Sweep: clear use bits until an unused victim appears.
        loop {
            if used[hand] {
                used[hand] = false;
                hand = (hand + 1) % frames;
            } else {
                pages[hand] = p;
                used[hand] = true;
                hand = (hand + 1) % frames;
                break;
            }
        }
    }
    PagingStats {
        references: refs.len() as u64,
        faults,
    }
}

fn run_opt(frames: usize, refs: &[u64]) -> PagingStats {
    let mut resident: Vec<u64> = Vec::new();
    let mut faults = 0;
    for (i, &p) in refs.iter().enumerate() {
        if resident.contains(&p) {
            continue;
        }
        faults += 1;
        if resident.len() < frames {
            resident.push(p);
            continue;
        }
        // Evict the resident page whose next use is farthest (or never).
        let victim = resident
            .iter()
            .enumerate()
            .max_by_key(|&(_, &q)| {
                refs[i + 1..]
                    .iter()
                    .position(|&r| r == q)
                    .map_or(usize::MAX, |d| d)
            })
            .map(|(pos, _)| pos)
            .unwrap();
        resident[victim] = p;
    }
    PagingStats {
        references: refs.len() as u64,
        faults,
    }
}

/// The classic Belady reference string, on which FIFO faults more with 4
/// frames than with 3.
pub const BELADY_STRING: [u64; 12] = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];

/// A simple single-level page table with a dirty/present bit per page,
/// translating virtual addresses and counting faults — the mechanism
/// behind the policy simulations above.
#[derive(Debug, Clone)]
pub struct PageTable {
    page_size: u64,
    /// entries[vpn] = Some(frame) if present.
    entries: Vec<Option<u64>>,
    /// Free physical frames.
    free_frames: Vec<u64>,
    /// FIFO of resident vpns (replacement here is FIFO for simplicity).
    resident: VecDeque<u64>,
    /// Page faults taken.
    pub faults: u64,
}

impl PageTable {
    /// A table for `virt_pages` virtual pages over `phys_frames` frames.
    pub fn new(page_size: u64, virt_pages: usize, phys_frames: usize) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be power of two"
        );
        assert!(phys_frames > 0);
        PageTable {
            page_size,
            entries: vec![None; virt_pages],
            free_frames: (0..phys_frames as u64).rev().collect(),
            resident: VecDeque::new(),
            faults: 0,
        }
    }

    /// Translate a virtual address, faulting a page in if necessary.
    /// Returns the physical address.
    ///
    /// # Panics
    /// Panics on a virtual address beyond the table (a segfault).
    pub fn translate(&mut self, vaddr: u64) -> u64 {
        let vpn = (vaddr / self.page_size) as usize;
        let off = vaddr % self.page_size;
        assert!(
            vpn < self.entries.len(),
            "segmentation fault: vaddr {vaddr}"
        );
        if self.entries[vpn].is_none() {
            self.faults += 1;
            let frame = match self.free_frames.pop() {
                Some(fr) => fr,
                None => {
                    let evict_vpn = self.resident.pop_front().expect("resident page");
                    self.entries[evict_vpn as usize].take().expect("present")
                }
            };
            self.entries[vpn] = Some(frame);
            self.resident.push_back(vpn as u64);
        }
        self.entries[vpn].unwrap() * self.page_size + off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_faults_once_per_page() {
        let refs = [1, 2, 3, 1, 2, 3, 1, 2, 3];
        for policy in [
            ReplacePolicy::Fifo,
            ReplacePolicy::Lru,
            ReplacePolicy::Clock,
            ReplacePolicy::Opt,
        ] {
            let s = run(policy, 3, &refs);
            assert_eq!(s.faults, 3, "{policy:?}: compulsory faults only");
        }
    }

    #[test]
    fn beladys_anomaly_fifo_only() {
        let f3 = run(ReplacePolicy::Fifo, 3, &BELADY_STRING).faults;
        let f4 = run(ReplacePolicy::Fifo, 4, &BELADY_STRING).faults;
        assert_eq!(f3, 9);
        assert_eq!(f4, 10, "more frames, more faults: the anomaly");
        // LRU is a stack algorithm: no anomaly.
        let l3 = run(ReplacePolicy::Lru, 3, &BELADY_STRING).faults;
        let l4 = run(ReplacePolicy::Lru, 4, &BELADY_STRING).faults;
        assert!(l4 <= l3);
        // OPT neither.
        let o3 = run(ReplacePolicy::Opt, 3, &BELADY_STRING).faults;
        let o4 = run(ReplacePolicy::Opt, 4, &BELADY_STRING).faults;
        assert!(o4 <= o3);
    }

    #[test]
    fn opt_is_lower_bound() {
        // On a deterministic pseudo-random string, OPT never loses.
        let mut x = 123456789u64;
        let refs: Vec<u64> = (0..2000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % 12
            })
            .collect();
        for frames in [2usize, 3, 5, 8] {
            let opt = run(ReplacePolicy::Opt, frames, &refs).faults;
            for policy in [
                ReplacePolicy::Fifo,
                ReplacePolicy::Lru,
                ReplacePolicy::Clock,
            ] {
                let f = run(policy, frames, &refs).faults;
                assert!(opt <= f, "{policy:?} beat OPT at {frames} frames");
            }
        }
    }

    #[test]
    fn lru_exploits_locality_better_than_fifo() {
        // 90/10 locality: hot pages 0..3, cold pages 4..20.
        let mut x = 42u64;
        let refs: Vec<u64> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
                if (x >> 33) % 10 < 9 {
                    (x >> 40) % 4
                } else {
                    4 + (x >> 40) % 16
                }
            })
            .collect();
        let lru = run(ReplacePolicy::Lru, 6, &refs).faults;
        let fifo = run(ReplacePolicy::Fifo, 6, &refs).faults;
        assert!(lru < fifo, "lru {lru} vs fifo {fifo}");
    }

    #[test]
    fn clock_approximates_lru() {
        let mut x = 7u64;
        let refs: Vec<u64> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                if (x >> 33) % 10 < 8 {
                    (x >> 40) % 4
                } else {
                    4 + (x >> 40) % 16
                }
            })
            .collect();
        let lru = run(ReplacePolicy::Lru, 6, &refs).faults as f64;
        let clock = run(ReplacePolicy::Clock, 6, &refs).faults as f64;
        let fifo = run(ReplacePolicy::Fifo, 6, &refs).faults as f64;
        // Clock should land between LRU and FIFO (inclusive, with slack).
        assert!(clock <= fifo * 1.02, "clock {clock} vs fifo {fifo}");
        assert!(clock >= lru * 0.98, "clock {clock} vs lru {lru}");
    }

    #[test]
    fn single_frame_faults_on_every_distinct_ref() {
        let refs = [1, 2, 1, 2, 1, 2];
        for policy in [
            ReplacePolicy::Fifo,
            ReplacePolicy::Lru,
            ReplacePolicy::Clock,
        ] {
            assert_eq!(run(policy, 1, &refs).faults, 6, "{policy:?}");
        }
    }

    #[test]
    fn fault_rate_metric() {
        let s = run(ReplacePolicy::Lru, 2, &[1, 2, 1, 2]);
        assert_eq!(s.fault_rate(), 0.5);
    }

    #[test]
    fn page_table_translation_and_faults() {
        let mut pt = PageTable::new(4096, 16, 4);
        let p0 = pt.translate(0);
        let p0b = pt.translate(100);
        assert_eq!(p0 + 100, p0b, "same page, same frame");
        assert_eq!(pt.faults, 1);
        // Fill remaining frames.
        pt.translate(4096);
        pt.translate(2 * 4096);
        pt.translate(3 * 4096);
        assert_eq!(pt.faults, 4);
        // Fifth page evicts the first (FIFO).
        pt.translate(4 * 4096);
        assert_eq!(pt.faults, 5);
        pt.translate(0); // faulted back in
        assert_eq!(pt.faults, 6);
    }

    #[test]
    #[should_panic(expected = "segmentation fault")]
    fn page_table_segfaults_beyond_range() {
        PageTable::new(4096, 4, 2).translate(5 * 4096);
    }
}
