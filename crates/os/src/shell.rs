//! A tiny job-control shell over the process table — the Unix-shell lab.
//!
//! The CS31 shell lab has students implement fork/exec/wait, foreground
//! vs background jobs, and signal delivery. [`Shell`] is that program
//! against the simulated [`ProcessTable`]: `run` forks+execs+waits,
//! `spawn_bg` backgrounds, `jobs` lists, `kill` signals, and background
//! completion is reaped on the next prompt, just like a real shell.

use crate::process::{Pid, ProcError, ProcessTable, Signal, INIT};

/// A background job entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobEntry {
    /// Job number (1-based, as shells print).
    pub job_no: usize,
    /// The job's pid.
    pub pid: Pid,
    /// Command name.
    pub command: String,
}

/// Shell events reported to the "terminal" (collected for assertions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShellEvent {
    /// A foreground command completed with this exit code.
    Completed {
        /// The pid that finished.
        pid: Pid,
        /// Its exit status.
        code: i32,
    },
    /// A background job finished (reported at the next prompt).
    JobDone {
        /// Job number.
        job_no: usize,
        /// The pid that finished.
        pid: Pid,
    },
}

/// The shell: owns a process table and its own shell process.
#[derive(Debug)]
pub struct Shell {
    table: ProcessTable,
    shell_pid: Pid,
    jobs: Vec<JobEntry>,
    next_job_no: usize,
    /// Events printed to the terminal.
    pub events: Vec<ShellEvent>,
}

impl Shell {
    /// Boot a shell (init forks it).
    pub fn new() -> Self {
        let mut table = ProcessTable::new();
        let shell_pid = table.fork(INIT).expect("init forks the shell");
        table.exec(shell_pid, "sh").expect("exec sh");
        Shell {
            table,
            shell_pid,
            jobs: Vec::new(),
            next_job_no: 1,
            events: Vec::new(),
        }
    }

    /// The shell process's pid.
    pub fn pid(&self) -> Pid {
        self.shell_pid
    }

    /// Access the underlying process table (inspection).
    pub fn table(&self) -> &ProcessTable {
        &self.table
    }

    /// Run a foreground command: fork, exec, wait. The simulated child
    /// "runs" and exits with `exit_code` immediately upon the wait.
    pub fn run(&mut self, command: &str, exit_code: i32) -> Result<Pid, ProcError> {
        let child = self.table.fork(self.shell_pid)?;
        self.table.exec(child, command)?;
        // Foreground semantics: the child runs to completion while the
        // shell blocks in wait.
        self.table.exit(child, exit_code)?;
        // Reap: it might not be the only zombie, so loop until we get it.
        loop {
            let (pid, code) = self.table.wait(self.shell_pid)?;
            if let Some(pos) = self.jobs.iter().position(|j| j.pid == pid) {
                let j = self.jobs.remove(pos);
                self.events.push(ShellEvent::JobDone {
                    job_no: j.job_no,
                    pid,
                });
                continue;
            }
            self.events.push(ShellEvent::Completed { pid, code });
            return Ok(pid);
        }
    }

    /// Start a background job (`command &`): fork + exec, no wait.
    pub fn spawn_bg(&mut self, command: &str) -> Result<JobEntry, ProcError> {
        let child = self.table.fork(self.shell_pid)?;
        self.table.exec(child, command)?;
        let entry = JobEntry {
            job_no: self.next_job_no,
            pid: child,
            command: command.to_string(),
        };
        self.next_job_no += 1;
        self.jobs.push(entry.clone());
        Ok(entry)
    }

    /// The `jobs` builtin: currently-known background jobs.
    pub fn jobs(&self) -> &[JobEntry] {
        &self.jobs
    }

    /// Simulate a background job finishing on its own.
    pub fn background_finishes(&mut self, pid: Pid, code: i32) -> Result<(), ProcError> {
        self.table.exit(pid, code)
    }

    /// The `kill` builtin.
    pub fn kill(&mut self, pid: Pid, sig: Signal) -> Result<(), ProcError> {
        self.table.signal(pid, sig)
    }

    /// Called at each prompt: reap any finished background jobs
    /// (non-blocking waitpid loop) and report them.
    pub fn prompt(&mut self) {
        loop {
            match self.table.wait(self.shell_pid) {
                Ok((pid, _code)) => {
                    if let Some(pos) = self.jobs.iter().position(|j| j.pid == pid) {
                        let j = self.jobs.remove(pos);
                        self.events.push(ShellEvent::JobDone {
                            job_no: j.job_no,
                            pid,
                        });
                    }
                }
                Err(ProcError::WouldBlock(_)) | Err(ProcError::NoChildren(_)) => break,
                Err(e) => panic!("unexpected wait error: {e}"),
            }
        }
    }
}

impl Default for Shell {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessState;

    #[test]
    fn foreground_command_runs_and_reaps() {
        let mut sh = Shell::new();
        let pid = sh.run("ls", 0).unwrap();
        assert_eq!(sh.events, vec![ShellEvent::Completed { pid, code: 0 }]);
        // No zombies linger.
        assert!(sh.table().get(pid).is_err());
    }

    #[test]
    fn foreground_failure_code_reported() {
        let mut sh = Shell::new();
        let pid = sh.run("false", 1).unwrap();
        assert_eq!(sh.events, vec![ShellEvent::Completed { pid, code: 1 }]);
    }

    #[test]
    fn background_jobs_listed_until_done() {
        let mut sh = Shell::new();
        let j1 = sh.spawn_bg("sleep 100").unwrap();
        let j2 = sh.spawn_bg("make -j").unwrap();
        assert_eq!(sh.jobs().len(), 2);
        assert_eq!(j1.job_no, 1);
        assert_eq!(j2.job_no, 2);
        // j1 finishes; the next prompt reports it.
        sh.background_finishes(j1.pid, 0).unwrap();
        sh.prompt();
        assert_eq!(sh.jobs().len(), 1);
        assert!(sh.events.contains(&ShellEvent::JobDone {
            job_no: 1,
            pid: j1.pid
        }));
    }

    #[test]
    fn zombie_until_prompt_reaps() {
        let mut sh = Shell::new();
        let j = sh.spawn_bg("worker").unwrap();
        sh.background_finishes(j.pid, 0).unwrap();
        // Before the prompt: zombie visible in the table.
        assert_eq!(sh.table().get(j.pid).unwrap().state, ProcessState::Zombie);
        sh.prompt();
        assert!(sh.table().get(j.pid).is_err(), "reaped");
    }

    #[test]
    fn kill_terminates_background_job() {
        let mut sh = Shell::new();
        let j = sh.spawn_bg("spin").unwrap();
        sh.kill(j.pid, Signal::Kill).unwrap();
        sh.prompt();
        assert!(sh.jobs().is_empty());
        assert!(sh
            .events
            .iter()
            .any(|e| matches!(e, ShellEvent::JobDone { job_no: 1, .. })));
    }

    #[test]
    fn foreground_while_background_running() {
        let mut sh = Shell::new();
        let j = sh.spawn_bg("bg-task").unwrap();
        // Foreground command must complete and reap only itself.
        let fg = sh.run("echo", 0).unwrap();
        assert_ne!(fg, j.pid);
        assert_eq!(sh.jobs().len(), 1, "background job unaffected");
        assert_eq!(sh.table().get(j.pid).unwrap().state, ProcessState::Running);
    }

    #[test]
    fn finished_bg_job_reported_during_foreground_wait() {
        let mut sh = Shell::new();
        let j = sh.spawn_bg("bg").unwrap();
        sh.background_finishes(j.pid, 0).unwrap();
        // The foreground wait loop may reap the bg job first; it must be
        // reported as a job, and the fg command as completed.
        let fg = sh.run("echo", 0).unwrap();
        assert!(sh.events.contains(&ShellEvent::JobDone {
            job_no: 1,
            pid: j.pid
        }));
        assert!(sh
            .events
            .contains(&ShellEvent::Completed { pid: fg, code: 0 }));
        assert!(sh.jobs().is_empty());
    }

    #[test]
    fn job_numbers_increment() {
        let mut sh = Shell::new();
        let a = sh.spawn_bg("a").unwrap();
        sh.background_finishes(a.pid, 0).unwrap();
        sh.prompt();
        let b = sh.spawn_bg("b").unwrap();
        assert_eq!(b.job_no, 2, "job numbers are not reused");
    }
}
