//! CPU scheduling policies and their metrics.
//!
//! A deterministic single-CPU discrete-time simulation of the policies
//! CS45 compares: FCFS, non-preemptive SJF, Round-Robin, preemptive
//! Priority, and a 3-level MLFQ. Jobs are `(arrival, burst[, priority])`;
//! the simulator reports the standard per-job and average metrics
//! (waiting, turnaround, response) that make the policy trade-offs
//! quantitative — e.g. RR's response time vs its turnaround penalty.

/// One job to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Arrival time.
    pub arrival: u64,
    /// Total CPU demand.
    pub burst: u64,
    /// Priority (lower number = more urgent; used by Priority policy).
    pub priority: u32,
}

impl Job {
    /// A job with default priority.
    pub fn new(arrival: u64, burst: u64) -> Self {
        Job {
            arrival,
            burst,
            priority: 0,
        }
    }
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// First-come first-served (non-preemptive).
    Fcfs,
    /// Shortest job first (non-preemptive).
    Sjf,
    /// Round-Robin with the given quantum.
    RoundRobin {
        /// Time slice.
        quantum: u64,
    },
    /// Preemptive priority (lower number runs first; FCFS among equals).
    Priority,
    /// Multi-level feedback queue with 3 levels and the given base
    /// quantum (doubled per level); new jobs enter level 0.
    Mlfq {
        /// Quantum of the top queue.
        base_quantum: u64,
    },
}

/// Per-job results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobMetrics {
    /// Time of completion.
    pub completion: u64,
    /// First time the job got the CPU.
    pub first_run: u64,
    /// turnaround = completion − arrival.
    pub turnaround: u64,
    /// waiting = turnaround − burst.
    pub waiting: u64,
    /// response = first_run − arrival.
    pub response: u64,
}

/// Aggregated results of a run.
#[derive(Debug, Clone)]
pub struct SchedMetrics {
    /// Per-job metrics, in input order.
    pub jobs: Vec<JobMetrics>,
    /// Number of context switches (job-to-different-job handoffs).
    pub context_switches: u64,
    /// Total time simulated.
    pub makespan: u64,
}

impl SchedMetrics {
    /// Mean waiting time.
    pub fn avg_waiting(&self) -> f64 {
        self.jobs.iter().map(|j| j.waiting as f64).sum::<f64>() / self.jobs.len() as f64
    }

    /// Mean turnaround time.
    pub fn avg_turnaround(&self) -> f64 {
        self.jobs.iter().map(|j| j.turnaround as f64).sum::<f64>() / self.jobs.len() as f64
    }

    /// Mean response time.
    pub fn avg_response(&self) -> f64 {
        self.jobs.iter().map(|j| j.response as f64).sum::<f64>() / self.jobs.len() as f64
    }
}

struct RunJob {
    idx: usize,
    arrival: u64,
    remaining: u64,
    burst: u64,
    priority: u32,
    first_run: Option<u64>,
    completion: u64,
    level: usize, // MLFQ level
}

/// Simulate `jobs` under `policy`.
///
/// # Panics
/// Panics if `jobs` is empty, a burst is zero, or a quantum is zero.
pub fn simulate(policy: SchedPolicy, jobs: &[Job]) -> SchedMetrics {
    assert!(!jobs.is_empty(), "no jobs to schedule");
    assert!(jobs.iter().all(|j| j.burst > 0), "zero-length burst");
    match policy {
        SchedPolicy::RoundRobin { quantum } => assert!(quantum > 0, "zero quantum"),
        SchedPolicy::Mlfq { base_quantum } => assert!(base_quantum > 0, "zero quantum"),
        _ => {}
    }
    let mut run: Vec<RunJob> = jobs
        .iter()
        .enumerate()
        .map(|(idx, j)| RunJob {
            idx,
            arrival: j.arrival,
            remaining: j.burst,
            burst: j.burst,
            priority: j.priority,
            first_run: None,
            completion: 0,
            level: 0,
        })
        .collect();
    // Arrival order: by (arrival, index) — deterministic.
    let mut arrival_order: Vec<usize> = (0..run.len()).collect();
    arrival_order.sort_by_key(|&i| (run[i].arrival, i));

    let mut now = 0u64;
    let mut next_arrival = 0usize; // cursor into arrival_order
    let mut ready: Vec<usize> = Vec::new(); // indices into run
    let mut done = 0usize;
    let mut switches = 0u64;
    let mut last_ran: Option<usize> = None;

    // Admit every job that has arrived by `now`.
    macro_rules! admit {
        () => {
            while next_arrival < arrival_order.len()
                && run[arrival_order[next_arrival]].arrival <= now
            {
                ready.push(arrival_order[next_arrival]);
                next_arrival += 1;
            }
        };
    }

    while done < run.len() {
        admit!();
        if ready.is_empty() {
            // Idle until the next arrival.
            now = run[arrival_order[next_arrival]].arrival;
            admit!();
        }
        // Pick per policy.
        let pick_pos = match policy {
            SchedPolicy::Fcfs | SchedPolicy::RoundRobin { .. } => 0,
            SchedPolicy::Sjf => ready
                .iter()
                .enumerate()
                .min_by_key(|&(_, &j)| (run[j].remaining, run[j].arrival, j))
                .map(|(p, _)| p)
                .unwrap(),
            SchedPolicy::Priority => ready
                .iter()
                .enumerate()
                .min_by_key(|&(_, &j)| (run[j].priority, run[j].arrival, j))
                .map(|(p, _)| p)
                .unwrap(),
            SchedPolicy::Mlfq { .. } => ready
                .iter()
                .enumerate()
                .min_by_key(|&(_, &j)| (run[j].level, j))
                .map(|(p, _)| p)
                .unwrap(),
        };
        let j = ready.remove(pick_pos);
        if last_ran.is_some() && last_ran != Some(j) {
            switches += 1;
        }
        last_ran = Some(j);
        if run[j].first_run.is_none() {
            run[j].first_run = Some(now);
        }
        // How long does it run?
        let slice = match policy {
            SchedPolicy::Fcfs | SchedPolicy::Sjf => run[j].remaining,
            SchedPolicy::RoundRobin { quantum } => quantum.min(run[j].remaining),
            SchedPolicy::Priority => {
                // Run until completion or until the earliest future
                // arrival with strictly higher priority preempts us.
                let mut t = run[j].remaining;
                for &na in &arrival_order[next_arrival..] {
                    if run[na].arrival >= now + t {
                        break; // arrivals are sorted; none can preempt
                    }
                    if run[na].priority < run[j].priority {
                        t = run[na].arrival - now; // > 0: all <= now admitted
                        break;
                    }
                }
                t
            }
            SchedPolicy::Mlfq { base_quantum } => {
                (base_quantum << run[j].level).min(run[j].remaining)
            }
        };
        now += slice;
        run[j].remaining -= slice;
        if run[j].remaining == 0 {
            run[j].completion = now;
            done += 1;
        } else {
            // Demote under MLFQ (used its full quantum).
            if let SchedPolicy::Mlfq { .. } = policy {
                run[j].level = (run[j].level + 1).min(2);
            }
            admit!(); // arrivals during the slice queue before re-entry
            ready.push(j);
        }
    }

    let jobs_out = run
        .iter()
        .map(|r| {
            let turnaround = r.completion - r.arrival;
            JobMetrics {
                completion: r.completion,
                first_run: r.first_run.unwrap(),
                turnaround,
                waiting: turnaround - r.burst,
                response: r.first_run.unwrap() - r.arrival,
            }
        })
        .collect::<Vec<_>>();
    // Re-order to input order (run is already in input order by idx).
    debug_assert!(run.iter().enumerate().all(|(i, r)| r.idx == i));
    SchedMetrics {
        jobs: jobs_out,
        context_switches: switches,
        makespan: now,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textbook_jobs() -> Vec<Job> {
        // The classic example: P1=24, P2=3, P3=3, all arriving at 0.
        vec![Job::new(0, 24), Job::new(0, 3), Job::new(0, 3)]
    }

    #[test]
    fn fcfs_textbook_waiting() {
        let m = simulate(SchedPolicy::Fcfs, &textbook_jobs());
        // Waits: 0, 24, 27 -> average 17.
        assert_eq!(m.jobs[0].waiting, 0);
        assert_eq!(m.jobs[1].waiting, 24);
        assert_eq!(m.jobs[2].waiting, 27);
        assert!((m.avg_waiting() - 17.0).abs() < 1e-12);
    }

    #[test]
    fn sjf_minimizes_waiting() {
        let m = simulate(SchedPolicy::Sjf, &textbook_jobs());
        // Order P2, P3, P1: waits 6, 0, 3 -> average 3.
        assert!((m.avg_waiting() - 3.0).abs() < 1e-12);
        let f = simulate(SchedPolicy::Fcfs, &textbook_jobs());
        assert!(m.avg_waiting() < f.avg_waiting());
    }

    #[test]
    fn rr_quantum_4_textbook() {
        // Silberschatz example: RR q=4 on 24/3/3 gives waits 6/4/7.
        let m = simulate(SchedPolicy::RoundRobin { quantum: 4 }, &textbook_jobs());
        assert_eq!(m.jobs[0].waiting, 6);
        assert_eq!(m.jobs[1].waiting, 4);
        assert_eq!(m.jobs[2].waiting, 7);
    }

    #[test]
    fn rr_improves_response_hurts_turnaround() {
        let jobs = vec![Job::new(0, 50), Job::new(0, 50), Job::new(0, 50)];
        let fcfs = simulate(SchedPolicy::Fcfs, &jobs);
        let rr = simulate(SchedPolicy::RoundRobin { quantum: 5 }, &jobs);
        assert!(rr.avg_response() < fcfs.avg_response());
        assert!(rr.avg_turnaround() >= fcfs.avg_turnaround());
        assert!(rr.context_switches > fcfs.context_switches);
    }

    #[test]
    fn priority_preempts_lower() {
        // Low-priority long job, then an urgent arrival.
        let jobs = vec![
            Job {
                arrival: 0,
                burst: 100,
                priority: 5,
            },
            Job {
                arrival: 10,
                burst: 10,
                priority: 1,
            },
        ];
        let m = simulate(SchedPolicy::Priority, &jobs);
        // Urgent job runs immediately on arrival.
        assert_eq!(m.jobs[1].response, 0);
        assert_eq!(m.jobs[1].completion, 20);
        assert_eq!(m.jobs[0].completion, 110);
    }

    #[test]
    fn arrivals_respected_with_idle_gap() {
        let jobs = vec![Job::new(0, 5), Job::new(100, 5)];
        let m = simulate(SchedPolicy::Fcfs, &jobs);
        assert_eq!(m.jobs[0].completion, 5);
        assert_eq!(m.jobs[1].first_run, 100, "CPU idles until arrival");
        assert_eq!(m.makespan, 105);
    }

    #[test]
    fn mlfq_favors_short_jobs_without_knowing_lengths() {
        // One CPU hog + a stream of short jobs: MLFQ demotes the hog.
        let mut jobs = vec![Job::new(0, 200)];
        for k in 0..10 {
            jobs.push(Job::new(5 + k * 10, 3));
        }
        let mlfq = simulate(SchedPolicy::Mlfq { base_quantum: 4 }, &jobs);
        let fcfs = simulate(SchedPolicy::Fcfs, &jobs);
        let short_wait_mlfq: f64 =
            mlfq.jobs[1..].iter().map(|j| j.waiting as f64).sum::<f64>() / 10.0;
        let short_wait_fcfs: f64 =
            fcfs.jobs[1..].iter().map(|j| j.waiting as f64).sum::<f64>() / 10.0;
        assert!(
            short_wait_mlfq < short_wait_fcfs / 4.0,
            "mlfq {short_wait_mlfq} vs fcfs {short_wait_fcfs}"
        );
    }

    #[test]
    fn total_cpu_time_conserved() {
        let jobs = vec![Job::new(0, 7), Job::new(2, 13), Job::new(4, 5)];
        for policy in [
            SchedPolicy::Fcfs,
            SchedPolicy::Sjf,
            SchedPolicy::RoundRobin { quantum: 3 },
            SchedPolicy::Priority,
            SchedPolicy::Mlfq { base_quantum: 2 },
        ] {
            let m = simulate(policy, &jobs);
            assert_eq!(m.makespan, 25, "{policy:?}: no arrivals gaps here");
            for (j, job) in m.jobs.iter().zip(&jobs) {
                assert!(j.completion >= job.arrival + job.burst);
                assert_eq!(j.turnaround, j.waiting + job.burst);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no jobs")]
    fn empty_jobs_rejected() {
        simulate(SchedPolicy::Fcfs, &[]);
    }
}
