//! # pdc-os — operating-systems substrate
//!
//! The CS31/CS45 systems content (paper Table II, "Operating Systems"
//! row): processes and their lifecycle, CPU scheduling policies with the
//! standard metrics, and virtual-memory paging with the classic
//! replacement algorithms.
//!
//! * [`process`] — process table: fork/exec/exit/wait, zombies, orphan
//!   reparenting, signals.
//! * [`shell`] — a tiny job-control shell driving the process table (the
//!   Unix-shell lab).
//! * [`sched`] — FCFS, SJF, Round-Robin, preemptive Priority, and MLFQ
//!   schedulers over burst workloads; waiting/turnaround/response
//!   metrics.
//! * [`deadlock`] — the banker's algorithm for deadlock avoidance.
//! * [`vm`] — demand paging on reference strings: FIFO, LRU, Clock,
//!   and OPT replacement, with a Belady's-anomaly demonstration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadlock;
pub mod process;
pub mod sched;
pub mod shell;
pub mod vm;

pub use process::{Pid, ProcessState, ProcessTable};
pub use sched::{SchedMetrics, SchedPolicy};
pub use vm::ReplacePolicy;
