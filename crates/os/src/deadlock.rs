//! Deadlock avoidance: the banker's algorithm.
//!
//! CS45's deadlock unit pairs *detection* (the wait-for graph in
//! `pdc-sync`) with *avoidance*: grant a resource request only if the
//! resulting state is safe — some ordering of processes can still run to
//! completion. This is Dijkstra's banker's algorithm with the standard
//! safety check, exercised on the Silberschatz textbook example.

/// The banker's state: `m` resource types across `n` processes.
#[derive(Debug, Clone)]
pub struct Banker {
    /// Units of each resource currently free.
    pub available: Vec<u32>,
    /// `max[i][j]`: process i's declared maximum need of resource j.
    pub max: Vec<Vec<u32>>,
    /// `allocation[i][j]`: currently held.
    pub allocation: Vec<Vec<u32>>,
}

/// Outcome of a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Granted; state updated.
    Granted,
    /// Denied: granting would make the state unsafe. State unchanged.
    DeniedUnsafe,
    /// Denied: request exceeds the process's declared maximum.
    DeniedExceedsMax,
    /// Denied: not enough free resources right now (process must wait).
    DeniedUnavailable,
}

impl Banker {
    /// Build a state.
    ///
    /// # Panics
    /// Panics on inconsistent dimensions or allocation exceeding max.
    pub fn new(available: Vec<u32>, max: Vec<Vec<u32>>, allocation: Vec<Vec<u32>>) -> Self {
        let m = available.len();
        assert_eq!(max.len(), allocation.len(), "process count mismatch");
        for (mx, al) in max.iter().zip(&allocation) {
            assert_eq!(mx.len(), m, "resource count mismatch");
            assert_eq!(al.len(), m, "resource count mismatch");
            assert!(
                mx.iter().zip(al).all(|(x, a)| a <= x),
                "allocation exceeds declared max"
            );
        }
        Banker {
            available,
            max,
            allocation,
        }
    }

    /// `need[i][j] = max − allocation`.
    pub fn need(&self) -> Vec<Vec<u32>> {
        self.max
            .iter()
            .zip(&self.allocation)
            .map(|(mx, al)| mx.iter().zip(al).map(|(x, a)| x - a).collect())
            .collect()
    }

    /// The safety algorithm: returns a safe completion sequence if one
    /// exists (lowest-index-first, so it is deterministic), else `None`.
    pub fn safe_sequence(&self) -> Option<Vec<usize>> {
        let n = self.max.len();
        let need = self.need();
        let mut work = self.available.clone();
        let mut finished = vec![false; n];
        let mut seq = Vec::with_capacity(n);
        loop {
            let mut advanced = false;
            for i in 0..n {
                if finished[i] {
                    continue;
                }
                if need[i].iter().zip(&work).all(|(nd, w)| nd <= w) {
                    // Process i can finish; it returns its allocation.
                    for (w, a) in work.iter_mut().zip(&self.allocation[i]) {
                        *w += a;
                    }
                    finished[i] = true;
                    seq.push(i);
                    advanced = true;
                }
            }
            if !advanced {
                break;
            }
        }
        finished.iter().all(|&f| f).then_some(seq)
    }

    /// Whether the current state is safe.
    pub fn is_safe(&self) -> bool {
        self.safe_sequence().is_some()
    }

    /// Process `pid` requests `request` units; grant only if safe.
    pub fn request(&mut self, pid: usize, request: &[u32]) -> RequestOutcome {
        assert!(pid < self.max.len(), "unknown process {pid}");
        assert_eq!(request.len(), self.available.len());
        let need = self.need();
        if request.iter().zip(&need[pid]).any(|(r, nd)| r > nd) {
            return RequestOutcome::DeniedExceedsMax;
        }
        if request.iter().zip(&self.available).any(|(r, av)| r > av) {
            return RequestOutcome::DeniedUnavailable;
        }
        // Pretend-grant, then check safety.
        for (j, &r) in request.iter().enumerate() {
            self.available[j] -= r;
            self.allocation[pid][j] += r;
        }
        if self.is_safe() {
            RequestOutcome::Granted
        } else {
            // Roll back.
            for (j, &r) in request.iter().enumerate() {
                self.available[j] += r;
                self.allocation[pid][j] -= r;
            }
            RequestOutcome::DeniedUnsafe
        }
    }

    /// Process `pid` releases `units` (e.g. at completion).
    ///
    /// # Panics
    /// Panics if releasing more than held.
    pub fn release(&mut self, pid: usize, units: &[u32]) {
        for (j, &u) in units.iter().enumerate() {
            assert!(self.allocation[pid][j] >= u, "releasing more than held");
            self.allocation[pid][j] -= u;
            self.available[j] += u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Silberschatz 7.5.3 example: 5 processes, 3 resource types.
    fn textbook() -> Banker {
        Banker::new(
            vec![3, 3, 2],
            vec![
                vec![7, 5, 3],
                vec![3, 2, 2],
                vec![9, 0, 2],
                vec![2, 2, 2],
                vec![4, 3, 3],
            ],
            vec![
                vec![0, 1, 0],
                vec![2, 0, 0],
                vec![3, 0, 2],
                vec![2, 1, 1],
                vec![0, 0, 2],
            ],
        )
    }

    #[test]
    fn textbook_state_is_safe_with_known_sequence() {
        let b = textbook();
        let seq = b.safe_sequence().expect("safe");
        // Lowest-index-first discovery yields <P1, P3, P4, P0, P2>.
        assert_eq!(seq, vec![1, 3, 4, 0, 2]);
    }

    #[test]
    fn textbook_request_p1_granted() {
        // P1 requests (1,0,2): classic "yes" case.
        let mut b = textbook();
        assert_eq!(b.request(1, &[1, 0, 2]), RequestOutcome::Granted);
        assert_eq!(b.available, vec![2, 3, 0]);
        assert!(b.is_safe());
    }

    #[test]
    fn textbook_request_p0_denied_unsafe() {
        // After granting P1 (1,0,2), P0 requesting (0,2,0) is unsafe.
        let mut b = textbook();
        assert_eq!(b.request(1, &[1, 0, 2]), RequestOutcome::Granted);
        let before = b.clone();
        assert_eq!(b.request(0, &[0, 2, 0]), RequestOutcome::DeniedUnsafe);
        // State rolled back exactly.
        assert_eq!(b.available, before.available);
        assert_eq!(b.allocation, before.allocation);
    }

    #[test]
    fn textbook_request_p4_denied_unavailable() {
        // After granting P1 (1,0,2), P4 requesting (3,3,0) exceeds what's
        // free (2,3,0).
        let mut b = textbook();
        assert_eq!(b.request(1, &[1, 0, 2]), RequestOutcome::Granted);
        assert_eq!(b.request(4, &[3, 3, 0]), RequestOutcome::DeniedUnavailable);
    }

    #[test]
    fn request_beyond_max_rejected() {
        let mut b = textbook();
        // P1's need is (1,2,2); asking for 2 of resource 0 exceeds it.
        assert_eq!(b.request(1, &[2, 0, 0]), RequestOutcome::DeniedExceedsMax);
    }

    #[test]
    fn safe_sequence_actually_executes() {
        // Simulate running the sequence: each process takes its full
        // remaining need, then releases everything. Must never go
        // negative.
        let b = textbook();
        let seq = b.safe_sequence().unwrap();
        let need = b.need();
        let mut sim = b.clone();
        for &p in &seq {
            let nd = need[p].clone();
            assert_eq!(
                sim.request(p, &nd),
                RequestOutcome::Granted,
                "process {p} must be grantable in sequence order"
            );
            let full: Vec<u32> = sim.allocation[p].clone();
            sim.release(p, &full);
        }
        // Everything returned.
        let total_alloc: u32 = sim.allocation.iter().flatten().sum();
        assert_eq!(total_alloc, 0);
    }

    #[test]
    fn unsafe_state_detected() {
        // Two processes both needing 2 units with only 1 free and 1 each
        // held: neither can finish.
        let b = Banker::new(vec![0], vec![vec![2], vec![2]], vec![vec![1], vec![1]]);
        assert!(!b.is_safe());
        assert_eq!(b.safe_sequence(), None);
    }

    #[test]
    fn release_restores_availability() {
        let mut b = textbook();
        b.release(2, &[3, 0, 2]);
        assert_eq!(b.available, vec![6, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "allocation exceeds declared max")]
    fn invalid_construction_rejected() {
        Banker::new(vec![1], vec![vec![1]], vec![vec![2]]);
    }
}
