//! The "binary bomb" lab on PDC-1.
//!
//! Bryant & O'Hallaron's binary bomb gives each student a compiled
//! program with several *phases*; each phase reads input and "explodes"
//! unless the input satisfies a hidden predicate, which students discover
//! by reading the disassembly. [`Bomb`] generates such programs on the
//! PDC-1 ISA, seeded per student so every bomb is different, and provides
//! the grader-side check.
//!
//! A phase explodes by jumping to a trap that emits [`EXPLOSION_CODE`] and
//! halts; a defused bomb emits [`DEFUSED_CODE`] once per phase and then a
//! final success code.

use crate::isa::{assemble, Program, Vm, VmError};

/// Output value emitted when the bomb explodes.
pub const EXPLOSION_CODE: i64 = -666;
/// Output value emitted when a phase is defused.
pub const DEFUSED_CODE: i64 = 1;
/// Output value emitted when the whole bomb is defused.
pub const SUCCESS_CODE: i64 = 424242;

/// The hidden predicate of one phase, kept by the grader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Phase {
    /// Input must equal this constant.
    Equals(i64),
    /// Two inputs must sum to this constant.
    PairSum(i64),
    /// Input must equal the XOR of two constants baked into the code.
    XorKey(i64, i64),
    /// Three inputs must be strictly increasing.
    IncreasingTriple,
    /// Input must be the n-th Fibonacci number (computed by the bomb).
    Fibonacci(u32),
}

impl Phase {
    /// The inputs that defuse this phase (the grader's answer key).
    pub fn solution(&self) -> Vec<i64> {
        match *self {
            Phase::Equals(k) => vec![k],
            Phase::PairSum(k) => vec![k / 2, k - k / 2],
            Phase::XorKey(a, b) => vec![a ^ b],
            Phase::IncreasingTriple => vec![1, 2, 3],
            Phase::Fibonacci(n) => {
                let (mut a, mut b) = (0i64, 1i64);
                for _ in 0..n {
                    let t = a + b;
                    a = b;
                    b = t;
                }
                vec![a]
            }
        }
    }

    /// Emit the assembly for this phase. `idx` uniquely suffixes labels.
    fn emit(&self, idx: usize) -> String {
        match *self {
            Phase::Equals(k) => {
                format!("in\npush {k}\neq\njz explode\npush {DEFUSED_CODE}\nout\n",)
            }
            Phase::PairSum(k) => {
                format!("in\nin\nadd\npush {k}\neq\njz explode\npush {DEFUSED_CODE}\nout\n",)
            }
            Phase::XorKey(a, b) => {
                format!("in\npush {a}\npush {b}\nxor\neq\njz explode\npush {DEFUSED_CODE}\nout\n",)
            }
            Phase::IncreasingTriple => format!(
                concat!(
                    "in\nin\nin\n", // stack: a b c
                    "over\n",       // a b c b
                    "gt\n",         // a b (c>b)
                    "jz explode\n", // a b
                    "lt\n",         // (a<b)
                    "jz explode\n",
                    "push {defused}\nout\n"
                ),
                defused = DEFUSED_CODE,
            ),
            // Iterative Fibonacci using mem[0..2] as scratch. Loop
            // invariant at `fib{idx}`: stack = [guess, i, a, b] with
            // (a, b) = (fib(n-i), fib(n-i+1)).
            Phase::Fibonacci(n) => format!(
                concat!(
                    "in\n",                       // guess
                    "push {n}\npush 0\npush 1\n", // guess i a b
                    "fib{idx}:\n",
                    "push 0\nstore\n", // mem[0]=b ; guess i a
                    "push 1\nstore\n", // mem[1]=a ; guess i
                    "dup\njz fibdone{idx}\n",
                    "push 1\nsub\n",  // guess i-1
                    "push 0\nload\n", // guess i' b        (a' = b)
                    "push 1\nload\n", // guess i' b a
                    "push 0\nload\n", // guess i' b a b
                    "add\n",          // guess i' b (a+b)  (b' = a+b)
                    "jmp fib{idx}\n",
                    "fibdone{idx}:\n",
                    "pop\n",          // guess
                    "push 1\nload\n", // guess fib(n)
                    "eq\njz explode\n",
                    "push {defused}\nout\n"
                ),
                n = n,
                idx = idx,
                defused = DEFUSED_CODE,
            ),
        }
    }
}

/// A generated binary bomb: the program plus the hidden phases.
#[derive(Debug, Clone)]
pub struct Bomb {
    phases: Vec<Phase>,
    program: Program,
}

impl Bomb {
    /// Build a bomb from explicit phases.
    ///
    /// # Panics
    /// Panics if `phases` is empty or the generated assembly fails to
    /// assemble (a bug in this module).
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a bomb needs at least one phase");
        let mut src = String::new();
        for (i, phase) in phases.iter().enumerate() {
            src.push_str(&format!("; phase {i}\n"));
            src.push_str(&phase.emit(i));
        }
        src.push_str(&format!("push {SUCCESS_CODE}\nout\nhalt\n"));
        src.push_str(&format!("explode:\npush {EXPLOSION_CODE}\nout\nhalt\n"));
        let program = assemble(&src).expect("bomb assembly is well-formed");
        Bomb { phases, program }
    }

    /// Generate a seeded student bomb with `n_phases` phases drawn from the
    /// standard set.
    pub fn generate(seed: u64, n_phases: usize) -> Self {
        assert!(n_phases > 0);
        // Simple deterministic mixing (SplitMix64 step), to avoid a
        // dependency; pdc-core's Rng is not available to this crate.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let phases = (0..n_phases)
            .map(|_| match next() % 3 {
                0 => Phase::Equals((next() % 10_000) as i64),
                1 => Phase::PairSum((next() % 10_000) as i64),
                _ => Phase::XorKey((next() % 100_000) as i64, (next() % 100_000) as i64),
            })
            .collect();
        Bomb::new(phases)
    }

    /// The hidden phases (grader side).
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The assembled program (what the student receives, e.g. to
    /// disassemble with [`crate::isa::disassemble`]).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The full answer key: concatenated solutions of all phases.
    pub fn answer_key(&self) -> Vec<i64> {
        self.phases.iter().flat_map(|p| p.solution()).collect()
    }

    /// Run the bomb against an input attempt. Returns the number of phases
    /// defused and whether the bomb exploded.
    pub fn attempt(&self, inputs: &[i64]) -> Result<AttemptOutcome, VmError> {
        let mut vm = Vm::new(self.program.clone(), 16).with_input(inputs.iter().copied());
        match vm.run(1_000_000) {
            Ok(()) => {}
            // Running out of input mid-phase counts as a failed attempt,
            // not a harness error.
            Err(VmError::InputExhausted { .. }) => {
                return Ok(AttemptOutcome {
                    phases_defused: vm.output.iter().filter(|&&v| v == DEFUSED_CODE).count(),
                    exploded: false,
                    fully_defused: false,
                })
            }
            Err(e) => return Err(e),
        }
        let exploded = vm.output.contains(&EXPLOSION_CODE);
        let fully_defused = vm.output.contains(&SUCCESS_CODE);
        Ok(AttemptOutcome {
            phases_defused: vm.output.iter().filter(|&&v| v == DEFUSED_CODE).count(),
            exploded,
            fully_defused,
        })
    }
}

/// Result of one defusal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptOutcome {
    /// Number of phases passed before stopping.
    pub phases_defused: usize,
    /// Whether the bomb exploded.
    pub exploded: bool,
    /// Whether every phase was defused.
    pub fully_defused: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equals_phase_defuses_with_key() {
        let bomb = Bomb::new(vec![Phase::Equals(1234)]);
        let out = bomb.attempt(&bomb.answer_key()).unwrap();
        assert!(out.fully_defused && !out.exploded);
        assert_eq!(out.phases_defused, 1);
    }

    #[test]
    fn equals_phase_explodes_on_wrong_input() {
        let bomb = Bomb::new(vec![Phase::Equals(1234)]);
        let out = bomb.attempt(&[1235]).unwrap();
        assert!(out.exploded && !out.fully_defused);
        assert_eq!(out.phases_defused, 0);
    }

    #[test]
    fn pair_sum_phase() {
        let bomb = Bomb::new(vec![Phase::PairSum(101)]);
        assert!(bomb.attempt(&[50, 51]).unwrap().fully_defused);
        assert!(bomb.attempt(&[100, 1]).unwrap().fully_defused);
        assert!(bomb.attempt(&[1, 1]).unwrap().exploded);
    }

    #[test]
    fn xor_phase() {
        let bomb = Bomb::new(vec![Phase::XorKey(0xABCD, 0x1234)]);
        assert!(bomb.attempt(&[0xABCD ^ 0x1234]).unwrap().fully_defused);
        assert!(bomb.attempt(&[0]).unwrap().exploded);
    }

    #[test]
    fn increasing_triple_phase() {
        let bomb = Bomb::new(vec![Phase::IncreasingTriple]);
        assert!(bomb.attempt(&[1, 2, 3]).unwrap().fully_defused);
        assert!(bomb.attempt(&[-5, 0, 100]).unwrap().fully_defused);
        assert!(bomb.attempt(&[3, 2, 1]).unwrap().exploded);
        assert!(bomb.attempt(&[1, 1, 2]).unwrap().exploded);
        assert!(bomb.attempt(&[1, 2, 2]).unwrap().exploded);
    }

    #[test]
    fn fibonacci_phase() {
        for n in [0u32, 1, 2, 3, 10, 20] {
            let bomb = Bomb::new(vec![Phase::Fibonacci(n)]);
            let key = bomb.answer_key();
            assert!(
                bomb.attempt(&key).unwrap().fully_defused,
                "fib({n}) key {key:?} should defuse"
            );
            assert!(bomb.attempt(&[key[0] + 1]).unwrap().exploded);
        }
    }

    #[test]
    fn multi_phase_partial_progress() {
        let bomb = Bomb::new(vec![Phase::Equals(1), Phase::Equals(2), Phase::Equals(3)]);
        // Defuse two phases, explode on the third.
        let out = bomb.attempt(&[1, 2, 999]).unwrap();
        assert_eq!(out.phases_defused, 2);
        assert!(out.exploded);
        // Full key wins.
        let out = bomb.attempt(&[1, 2, 3]).unwrap();
        assert!(out.fully_defused);
        assert_eq!(out.phases_defused, 3);
    }

    #[test]
    fn insufficient_input_is_not_an_explosion() {
        let bomb = Bomb::new(vec![Phase::Equals(1), Phase::Equals(2)]);
        let out = bomb.attempt(&[1]).unwrap();
        assert_eq!(out.phases_defused, 1);
        assert!(!out.exploded && !out.fully_defused);
    }

    #[test]
    fn generated_bombs_solvable_and_distinct() {
        let a = Bomb::generate(1, 4);
        let b = Bomb::generate(2, 4);
        assert!(a.attempt(&a.answer_key()).unwrap().fully_defused);
        assert!(b.attempt(&b.answer_key()).unwrap().fully_defused);
        assert_ne!(a.phases(), b.phases(), "seeds should differ");
        // Cross keys should (almost surely) explode.
        assert!(!a.attempt(&b.answer_key()).unwrap().fully_defused);
    }

    #[test]
    fn same_seed_same_bomb() {
        let a = Bomb::generate(99, 3);
        let b = Bomb::generate(99, 3);
        assert_eq!(a.phases(), b.phases());
    }
}
