//! # pdc-arch — machine organization substrate
//!
//! Implements the CS31 "vertical slice through the computer" (Danner &
//! Newhall, EduPar 2013, Table I): binary data representation, gate-level
//! circuits up to an ALU, a small stack-machine ISA with assembler and VM,
//! the "binary bomb" lab, the growable-array ("Python lists in C") lab,
//! and an instruction-pipeline simulator.
//!
//! * [`datarep`] — two's-complement conversions, overflow semantics,
//!   hex/binary formatting, sign extension.
//! * [`bitvec`] — a packed bit-vector (the "bit vectors" lab).
//! * [`logic`] — combinational circuits from NAND up: adders, muxes.
//! * [`alu`] — a word-level ALU built from the gate layer, with NZCV
//!   condition codes.
//! * [`isa`] — the PDC-1 stack-machine ISA: assembler, disassembler, VM.
//! * [`bomb`] — binary-bomb construction and defusal checking on PDC-1.
//! * [`compiler`] — an optimizing expression compiler targeting PDC-1
//!   (constant folding, algebraic simplification, strength reduction) —
//!   the CS75 compilers hook.
//! * [`veclab`] — growable array with explicit capacity/copy accounting.
//! * [`pipeline`] — a 5-stage in-order pipeline model with hazard
//!   accounting (stalls, forwarding, branch flushes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alu;
pub mod bitvec;
pub mod bomb;
pub mod compiler;
pub mod datarep;
pub mod isa;
pub mod logic;
pub mod pipeline;
pub mod veclab;

pub use alu::{Alu, AluOp, Flags};
pub use bitvec::BitVec;
pub use isa::{assemble, disassemble, Instr, Program, Vm, VmError};
