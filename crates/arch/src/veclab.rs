//! The "Python lists in C" lab: a growable array with *explicit* memory
//! accounting.
//!
//! Students implement a C-style dynamic array library and reason about its
//! memory layout and amortized cost. [`AccountedVec`] reproduces that:
//! a doubling growable array whose every allocation, copy, and write is
//! counted, so tests can *verify* the amortized-O(1) append claim the lab
//! teaches (total copies <= 2n for growth factor 2).

/// Memory-operation counters for one [`AccountedVec`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Number of (re)allocations performed.
    pub allocations: u64,
    /// Elements copied during reallocations (the `memcpy` traffic).
    pub elements_copied: u64,
    /// Element writes (appends and updates).
    pub writes: u64,
    /// Element reads.
    pub reads: u64,
}

/// Growth policy for the array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Growth {
    /// Multiply capacity by a factor (Python-list style; factor > 1).
    Factor(f64),
    /// Add a fixed increment (the naive strategy whose appends are O(n²)
    /// total — the lab's cautionary baseline).
    Increment(usize),
}

/// A growable array with explicit capacity management and op accounting.
#[derive(Debug, Clone)]
pub struct AccountedVec<T: Clone> {
    buf: Vec<T>,
    capacity: usize,
    growth: Growth,
    stats: MemStats,
}

impl<T: Clone> AccountedVec<T> {
    /// Empty array with doubling growth.
    pub fn new() -> Self {
        Self::with_growth(Growth::Factor(2.0))
    }

    /// Empty array with a chosen growth policy.
    ///
    /// # Panics
    /// Panics on a growth factor <= 1 or a zero increment.
    pub fn with_growth(growth: Growth) -> Self {
        match growth {
            Growth::Factor(f) => assert!(f > 1.0, "growth factor must exceed 1"),
            Growth::Increment(i) => assert!(i > 0, "growth increment must be positive"),
        }
        AccountedVec {
            buf: Vec::new(),
            capacity: 0,
            growth,
            stats: MemStats::default(),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current capacity (as managed by the lab's policy, not Rust's).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The operation counters.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    fn grow(&mut self) {
        let new_cap = match self.growth {
            Growth::Factor(f) => {
                ((self.capacity.max(1) as f64 * f).ceil() as usize).max(self.capacity + 1)
            }
            Growth::Increment(i) => self.capacity + i,
        };
        // Model: allocate new buffer, memcpy old contents.
        self.stats.allocations += 1;
        self.stats.elements_copied += self.buf.len() as u64;
        let mut new_buf = Vec::with_capacity(new_cap);
        new_buf.extend(self.buf.iter().cloned());
        self.buf = new_buf;
        self.capacity = new_cap;
    }

    /// Append an element (amortized O(1) under `Growth::Factor`).
    pub fn push(&mut self, value: T) {
        if self.buf.len() == self.capacity {
            self.grow();
        }
        self.stats.writes += 1;
        self.buf.push(value);
    }

    /// Read element `i`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn get(&mut self, i: usize) -> &T {
        assert!(i < self.buf.len(), "index {i} out of range");
        self.stats.reads += 1;
        &self.buf[i]
    }

    /// Overwrite element `i`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn set(&mut self, i: usize, value: T) {
        assert!(i < self.buf.len(), "index {i} out of range");
        self.stats.writes += 1;
        self.buf[i] = value;
    }

    /// Remove and return the last element.
    pub fn pop(&mut self) -> Option<T> {
        self.buf.pop()
    }

    /// Borrow the contents as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.buf
    }
}

impl<T: Clone> Default for AccountedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_pop() {
        let mut v = AccountedVec::new();
        for i in 0..10 {
            v.push(i);
        }
        assert_eq!(v.len(), 10);
        assert_eq!(*v.get(3), 3);
        v.set(3, 99);
        assert_eq!(*v.get(3), 99);
        assert_eq!(v.pop(), Some(9));
        assert_eq!(v.len(), 9);
        assert_eq!(AccountedVec::<i32>::new().pop(), None);
    }

    #[test]
    fn doubling_amortized_copies_bounded() {
        let n = 100_000;
        let mut v = AccountedVec::new();
        for i in 0..n {
            v.push(i);
        }
        let s = v.stats();
        // Amortized claim: total copy traffic < 2n for factor-2 growth.
        assert!(
            s.elements_copied < 2 * n as u64,
            "copies {} should be < {}",
            s.elements_copied,
            2 * n
        );
        // Allocations are logarithmic.
        assert!(s.allocations < 40, "allocations {}", s.allocations);
    }

    #[test]
    fn increment_growth_is_quadratic() {
        let n = 4_000;
        let mut v = AccountedVec::with_growth(Growth::Increment(8));
        for i in 0..n {
            v.push(i);
        }
        let s = v.stats();
        // With +8 growth the copy traffic is Θ(n²/8): enormous vs doubling.
        assert!(
            s.elements_copied as f64 > (n * n) as f64 / 20.0,
            "copies {} unexpectedly small",
            s.elements_copied
        );
        let mut w = AccountedVec::new();
        for i in 0..n {
            w.push(i);
        }
        assert!(w.stats().elements_copied * 10 < s.elements_copied);
    }

    #[test]
    fn growth_factor_1_5_also_amortized() {
        let n = 50_000usize;
        let mut v = AccountedVec::with_growth(Growth::Factor(1.5));
        for i in 0..n {
            v.push(i);
        }
        // Copies bounded by n * f/(f-1) = 3n for f = 1.5.
        assert!(v.stats().elements_copied < 3 * n as u64 + 16);
    }

    #[test]
    fn capacity_invariant() {
        let mut v = AccountedVec::new();
        for i in 0..1000 {
            v.push(i);
            assert!(v.capacity() >= v.len());
        }
    }

    #[test]
    #[should_panic(expected = "growth factor must exceed 1")]
    fn rejects_non_growing_factor() {
        AccountedVec::<u8>::with_growth(Growth::Factor(1.0));
    }

    #[test]
    fn contents_preserved_across_growth() {
        let mut v = AccountedVec::new();
        for i in 0..1000 {
            v.push(i);
        }
        assert_eq!(v.as_slice(), (0..1000).collect::<Vec<_>>().as_slice());
    }
}
