//! A packed bit vector — the CS31 "bit vectors" lab.
//!
//! Students implement a set-of-small-integers as one bit per element over
//! an array of words. This version adds the full set-algebra interface
//! plus rank (popcount prefix) used by the pack/filter parallel primitive
//! in `pdc-algos`.

/// A growable, packed vector of bits.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

const WORD_BITS: usize = 64;

impl BitVec {
    /// An empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bit vector of `len` bits, all zero.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// A bit vector of `len` bits, all one.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        v.clear_tail();
        v
    }

    /// Build from a bool slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    fn clear_tail(&mut self) {
        let used = self.len % WORD_BITS;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Write bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Flip bit `i`, returning its new value.
    pub fn flip(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
        self.get(i)
    }

    /// Append a bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(WORD_BITS) {
            self.words.push(0);
        }
        self.len += 1;
        self.set(self.len - 1, value);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Rank: number of set bits strictly before index `i` (`i` may equal
    /// `len`). This is the prefix-sum view used by parallel pack.
    pub fn rank(&self, i: usize) -> usize {
        assert!(i <= self.len, "rank index {i} out of range {}", self.len);
        let full_words = i / WORD_BITS;
        let mut count: usize = self.words[..full_words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        let rem = i % WORD_BITS;
        if rem != 0 {
            count += (self.words[full_words] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        count
    }

    /// Index of the `k`-th (0-based) set bit, or `None` if fewer exist.
    pub fn select(&self, k: usize) -> Option<usize> {
        let mut remaining = k;
        for (wi, &w) in self.words.iter().enumerate() {
            let ones = w.count_ones() as usize;
            if remaining < ones {
                // Scan inside the word.
                let mut word = w;
                for _ in 0..remaining {
                    word &= word - 1; // clear lowest set bit
                }
                return Some(wi * WORD_BITS + word.trailing_zeros() as usize);
            }
            remaining -= ones;
        }
        None
    }

    /// Bitwise AND with another vector of equal length.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn and(&self, other: &BitVec) -> BitVec {
        self.zip_with(other, |a, b| a & b)
    }

    /// Bitwise OR with another vector of equal length.
    #[must_use]
    pub fn or(&self, other: &BitVec) -> BitVec {
        self.zip_with(other, |a, b| a | b)
    }

    /// Bitwise XOR with another vector of equal length.
    #[must_use]
    pub fn xor(&self, other: &BitVec) -> BitVec {
        self.zip_with(other, |a, b| a ^ b)
    }

    /// Bitwise NOT (within `len`).
    #[must_use]
    pub fn not(&self) -> BitVec {
        let mut out = BitVec {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.clear_tail();
        out
    }

    fn zip_with(&self, other: &BitVec, f: impl Fn(u64, u64) -> u64) -> BitVec {
        assert_eq!(self.len, other.len, "length mismatch");
        BitVec {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            len: self.len,
        }
    }

    /// Iterate over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(wi * WORD_BITS + bit)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_counts() {
        assert_eq!(BitVec::zeros(130).count_ones(), 0);
        assert_eq!(BitVec::ones(130).count_ones(), 130);
        assert_eq!(BitVec::ones(64).count_ones(), 64);
        assert_eq!(BitVec::ones(0).count_ones(), 0);
    }

    #[test]
    fn set_get_flip() {
        let mut v = BitVec::zeros(100);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(99, true);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(99));
        assert!(!v.get(1) && !v.get(65));
        assert_eq!(v.count_ones(), 4);
        assert!(!v.flip(0));
        assert!(v.flip(1));
        assert_eq!(v.count_ones(), 4);
    }

    #[test]
    fn push_grows() {
        let mut v = BitVec::new();
        for i in 0..200 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 200);
        assert_eq!(v.count_ones(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn rank_matches_naive() {
        let bits: Vec<bool> = (0..300).map(|i| (i * 7) % 5 == 0).collect();
        let v = BitVec::from_bools(&bits);
        let mut naive = 0;
        for (i, &bit) in bits.iter().enumerate() {
            assert_eq!(v.rank(i), naive, "rank({i})");
            if bit {
                naive += 1;
            }
        }
        assert_eq!(v.rank(300), naive, "rank(300)");
    }

    #[test]
    fn select_inverts_rank() {
        let bits: Vec<bool> = (0..300).map(|i| i % 7 == 2).collect();
        let v = BitVec::from_bools(&bits);
        for k in 0..v.count_ones() {
            let idx = v.select(k).unwrap();
            assert!(v.get(idx));
            assert_eq!(v.rank(idx), k);
        }
        assert_eq!(v.select(v.count_ones()), None);
    }

    #[test]
    fn boolean_algebra() {
        let a = BitVec::from_bools(&[true, true, false, false]);
        let b = BitVec::from_bools(&[true, false, true, false]);
        assert_eq!(a.and(&b), BitVec::from_bools(&[true, false, false, false]));
        assert_eq!(a.or(&b), BitVec::from_bools(&[true, true, true, false]));
        assert_eq!(a.xor(&b), BitVec::from_bools(&[false, true, true, false]));
        assert_eq!(a.not(), BitVec::from_bools(&[false, false, true, true]));
    }

    #[test]
    fn demorgan_holds() {
        let a = BitVec::from_bools(&(0..130).map(|i| i % 2 == 0).collect::<Vec<_>>());
        let b = BitVec::from_bools(&(0..130).map(|i| i % 3 == 0).collect::<Vec<_>>());
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
    }

    #[test]
    fn iter_ones_ascending() {
        let v = BitVec::from_bools(&(0..200).map(|i| i % 31 == 0).collect::<Vec<_>>());
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, vec![0, 31, 62, 93, 124, 155, 186]);
    }

    #[test]
    fn not_does_not_leak_past_len() {
        let v = BitVec::zeros(65).not();
        assert_eq!(v.count_ones(), 65);
        assert_eq!(v.len(), 65);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let _ = BitVec::zeros(10).and(&BitVec::zeros(11));
    }
}
