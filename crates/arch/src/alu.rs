//! A word-level ALU with NZCV condition codes — the top of the CS31
//! "Building an ALU" lab.
//!
//! The ALU operates on `bits`-wide patterns (1..=64) using the semantics
//! from [`crate::datarep`]; its ADD/SUB paths are cross-checked in tests
//! against the gate-level adders from [`crate::logic`], closing the loop
//! from transistors to instructions.

use crate::datarep::{self, add_with_flags, sub_with_flags, truncate, unsigned_max};

/// ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction (`a - b`).
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT of `a` (ignores `b`).
    Not,
    /// Logical shift left of `a` by `b` (shift amounts >= width yield 0).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right (sign-replicating).
    Sar,
    /// Pass `b` through (used for moves).
    PassB,
}

/// Condition codes produced by an ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Result is negative (sign bit set).
    pub n: bool,
    /// Result is zero.
    pub z: bool,
    /// Carry out (unsigned overflow for Add; "no borrow" for Sub).
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
}

/// A fixed-width ALU.
#[derive(Debug, Clone, Copy)]
pub struct Alu {
    bits: u32,
}

impl Alu {
    /// Create an ALU of the given width (1..=64).
    ///
    /// # Panics
    /// Panics on an invalid width.
    pub fn new(bits: u32) -> Self {
        assert!((1..=64).contains(&bits), "width {bits} not in 1..=64");
        Alu { bits }
    }

    /// The ALU's word width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Execute `op` on patterns `a`, `b`; returns the result pattern and
    /// the condition codes.
    ///
    /// # Panics
    /// Panics (debug) if inputs exceed the word width.
    pub fn exec(&self, op: AluOp, a: u64, b: u64) -> (u64, Flags) {
        let w = self.bits;
        debug_assert!(a <= unsigned_max(w), "a out of width");
        debug_assert!(b <= unsigned_max(w), "b out of width");
        let (pattern, c, v) = match op {
            AluOp::Add => {
                let r = add_with_flags(a, b, w);
                (r.pattern, r.carry, r.overflow)
            }
            AluOp::Sub => {
                let r = sub_with_flags(a, b, w);
                (r.pattern, r.carry, r.overflow)
            }
            AluOp::And => (a & b, false, false),
            AluOp::Or => (a | b, false, false),
            AluOp::Xor => (a ^ b, false, false),
            AluOp::Not => (truncate(!a, w), false, false),
            AluOp::Shl => {
                if b >= w as u64 {
                    (0, a != 0 && b == w as u64 && a & 1 == 1, false)
                } else {
                    let carry = b > 0 && (a >> (w as u64 - b)) & 1 == 1;
                    (truncate(a << b, w), carry, false)
                }
            }
            AluOp::Shr => {
                if b >= w as u64 {
                    (0, false, false)
                } else {
                    let carry = b > 0 && (a >> (b - 1)) & 1 == 1;
                    (a >> b, carry, false)
                }
            }
            AluOp::Sar => {
                let signed = datarep::from_twos_complement(a, w).expect("in range");
                let shift = (b as u32).min(w - 1).min(63);
                let shifted = signed >> shift;
                let pattern = datarep::to_twos_complement(shifted, w).expect("in range");
                let carry = b > 0 && b <= w as u64 && (a >> (b - 1).min(63)) & 1 == 1;
                (pattern, carry, false)
            }
            AluOp::PassB => (b, false, false),
        };
        let flags = Flags {
            n: pattern >> (w - 1) & 1 == 1,
            z: pattern == 0,
            c,
            v,
        };
        (pattern, flags)
    }

    /// Signed comparison result using the SUB flags, the way conditional
    /// jumps read them: returns the ordering of `a` vs `b` interpreted as
    /// `bits`-wide signed values.
    pub fn cmp_signed(&self, a: u64, b: u64) -> std::cmp::Ordering {
        let (_, f) = self.exec(AluOp::Sub, a, b);
        if f.z {
            std::cmp::Ordering::Equal
        } else if f.n != f.v {
            // "less" condition: N != V, exactly the jl rule students trace.
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datarep::{from_twos_complement, to_twos_complement};
    use crate::logic::{to_bits, Circuit};

    #[test]
    fn add_matches_gate_level_adder() {
        // The word-level ALU must agree with the NAND-gate ripple adder.
        let alu = Alu::new(8);
        let mut c = Circuit::new();
        let a = c.input_bus("a", 8);
        let b = c.input_bus("b", 8);
        let cin = c.constant(false);
        let (sum, cout) = c.ripple_adder(&a, &b, cin);
        for x in (0..256u64).step_by(5) {
            for y in (0..256u64).step_by(9) {
                let (r, f) = alu.exec(AluOp::Add, x, y);
                let mut inputs = to_bits(x, 8);
                inputs.extend(to_bits(y, 8));
                assert_eq!(r, c.eval_bus_u64(&inputs, &sum), "{x}+{y}");
                assert_eq!(f.c, c.eval(&inputs, &[cout])[0], "carry {x}+{y}");
            }
        }
    }

    #[test]
    fn logic_ops() {
        let alu = Alu::new(8);
        assert_eq!(alu.exec(AluOp::And, 0xF0, 0x3C).0, 0x30);
        assert_eq!(alu.exec(AluOp::Or, 0xF0, 0x3C).0, 0xFC);
        assert_eq!(alu.exec(AluOp::Xor, 0xF0, 0x3C).0, 0xCC);
        assert_eq!(alu.exec(AluOp::Not, 0xF0, 0).0, 0x0F);
        assert_eq!(alu.exec(AluOp::PassB, 0, 0x7B).0, 0x7B);
    }

    #[test]
    fn zero_and_negative_flags() {
        let alu = Alu::new(8);
        let (_, f) = alu.exec(AluOp::Sub, 5, 5);
        assert!(f.z && !f.n);
        let (_, f) = alu.exec(AluOp::Sub, 3, 5);
        assert!(f.n && !f.z);
    }

    #[test]
    fn shifts() {
        let alu = Alu::new(8);
        assert_eq!(alu.exec(AluOp::Shl, 0b0000_0101, 1).0, 0b0000_1010);
        assert_eq!(alu.exec(AluOp::Shr, 0b1000_0000, 7).0, 1);
        // Arithmetic shift replicates the sign bit.
        let minus8 = to_twos_complement(-8, 8).unwrap();
        let (r, _) = alu.exec(AluOp::Sar, minus8, 2);
        assert_eq!(from_twos_complement(r, 8).unwrap(), -2);
        // Logical shift of the same pattern does not.
        let (r, _) = alu.exec(AluOp::Shr, minus8, 2);
        assert!(from_twos_complement(r, 8).unwrap() > 0);
    }

    #[test]
    fn shift_by_width_or_more() {
        let alu = Alu::new(8);
        assert_eq!(alu.exec(AluOp::Shl, 0xFF, 8).0, 0);
        assert_eq!(alu.exec(AluOp::Shr, 0xFF, 9).0, 0);
        // SAR saturates to all-sign.
        let (r, _) = alu.exec(AluOp::Sar, 0x80, 100);
        assert_eq!(r, 0xFF);
        let (r, _) = alu.exec(AluOp::Sar, 0x40, 100);
        assert_eq!(r, 0x00);
    }

    #[test]
    fn shl_carry_is_last_bit_out() {
        let alu = Alu::new(8);
        let (_, f) = alu.exec(AluOp::Shl, 0b1000_0000, 1);
        assert!(f.c);
        let (_, f) = alu.exec(AluOp::Shl, 0b0100_0000, 1);
        assert!(!f.c);
        let (_, f) = alu.exec(AluOp::Shr, 0b0000_0001, 1);
        assert!(f.c);
    }

    #[test]
    fn cmp_signed_matches_i8() {
        let alu = Alu::new(8);
        for a in -128i64..=127 {
            for b in [-128i64, -1, 0, 1, 127, 64, -64] {
                let pa = to_twos_complement(a, 8).unwrap();
                let pb = to_twos_complement(b, 8).unwrap();
                assert_eq!(alu.cmp_signed(pa, pb), a.cmp(&b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn works_at_64_bits() {
        let alu = Alu::new(64);
        let (r, f) = alu.exec(AluOp::Add, u64::MAX, 1);
        assert_eq!(r, 0);
        assert!(f.c && f.z && !f.v);
        let (r, f) = alu.exec(AluOp::Add, i64::MAX as u64, 1);
        assert_eq!(r as i64, i64::MIN);
        assert!(f.v && f.n);
    }
}
