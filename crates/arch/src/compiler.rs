//! A small expression compiler targeting PDC-1 — the CS75 hook.
//!
//! The paper's plan for Compilers adds "content on compiler optimization
//! ... for super-scalar, multi-core and SMP systems". This module is the
//! sequential foundation of that unit: an expression AST, a code
//! generator for the PDC-1 stack machine, and three classic optimization
//! passes whose payoff is *measured* (instruction counts and executed
//! steps), not asserted:
//!
//! * **constant folding** — evaluate constant subtrees at compile time;
//! * **algebraic simplification** — `x+0`, `x*1`, `x*0`, `x-x`, double
//!   negation;
//! * **strength reduction** — `x * 2^k` → `x << k`.
//!
//! Correctness is checked by comparing the optimized program's output
//! against a reference interpreter on many inputs (and the unoptimized
//! program, which must agree everywhere it does not trap).

use crate::isa::{Instr, Program, Vm, VmError};
use std::collections::HashMap;

/// Expression AST over `n` integer input variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Input variable by index.
    Var(u32),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

// The op-named constructors (`add`, `mul`, ...) are free associated
// functions building AST nodes, not arithmetic on `Expr` values, so the
// std ops traits are the wrong shape for them.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Convenience constructors.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }
    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }
    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }
    /// `-a`.
    pub fn neg(a: Expr) -> Expr {
        Expr::Neg(Box::new(a))
    }

    /// The number of variables referenced (max index + 1).
    pub fn num_vars(&self) -> u32 {
        match self {
            Expr::Const(_) => 0,
            Expr::Var(i) => i + 1,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => a.num_vars().max(b.num_vars()),
            Expr::Neg(a) => a.num_vars(),
        }
    }

    /// Reference interpreter (wrapping arithmetic, like the VM).
    pub fn eval(&self, vars: &[i64]) -> i64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(i) => vars[*i as usize],
            Expr::Add(a, b) => a.eval(vars).wrapping_add(b.eval(vars)),
            Expr::Sub(a, b) => a.eval(vars).wrapping_sub(b.eval(vars)),
            Expr::Mul(a, b) => a.eval(vars).wrapping_mul(b.eval(vars)),
            Expr::Neg(a) => a.eval(vars).wrapping_neg(),
        }
    }

    /// Node count (for optimizer metrics).
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => 1 + a.size() + b.size(),
            Expr::Neg(a) => 1 + a.size(),
        }
    }
}

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// Straight postorder code generation.
    O0,
    /// Constant folding + algebraic simplification + strength reduction.
    O1,
}

/// The optimizer: one bottom-up rewriting pass to fixpoint.
pub fn optimize(e: &Expr) -> Expr {
    let mut cur = rewrite(e);
    loop {
        let next = rewrite(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

fn rewrite(e: &Expr) -> Expr {
    match e {
        Expr::Const(_) | Expr::Var(_) => e.clone(),
        Expr::Neg(a) => {
            let a = rewrite(a);
            match a {
                Expr::Const(c) => Expr::Const(c.wrapping_neg()),
                // --x = x
                Expr::Neg(inner) => *inner,
                other => Expr::neg(other),
            }
        }
        Expr::Add(a, b) => {
            let (a, b) = (rewrite(a), rewrite(b));
            match (&a, &b) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.wrapping_add(*y)),
                (Expr::Const(0), _) => b,
                (_, Expr::Const(0)) => a,
                _ => Expr::add(a, b),
            }
        }
        Expr::Sub(a, b) => {
            let (a, b) = (rewrite(a), rewrite(b));
            match (&a, &b) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.wrapping_sub(*y)),
                (_, Expr::Const(0)) => a,
                // x - x = 0 (syntactic equality is sound: Expr is pure).
                _ if a == b => Expr::Const(0),
                _ => Expr::sub(a, b),
            }
        }
        Expr::Mul(a, b) => {
            let (a, b) = (rewrite(a), rewrite(b));
            match (&a, &b) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.wrapping_mul(*y)),
                (Expr::Const(0), _) | (_, Expr::Const(0)) => Expr::Const(0),
                (Expr::Const(1), _) => b,
                (_, Expr::Const(1)) => a,
                _ => Expr::mul(a, b),
            }
        }
    }
}

/// Compile `expr` into a PDC-1 program: a prologue reads each variable
/// from the input stream into memory, the body evaluates the expression
/// on the stack, and the epilogue `out`s the result and halts. Strength
/// reduction (`x * 2^k` → shifts) happens at code generation under O1.
pub fn compile(expr: &Expr, level: OptLevel) -> Program {
    let expr = match level {
        OptLevel::O0 => expr.clone(),
        OptLevel::O1 => optimize(expr),
    };
    let nvars = expr.num_vars();
    let mut code = Vec::new();
    // Prologue: mem[i] = input i.
    for i in 0..nvars {
        code.push(Instr::In);
        code.push(Instr::Push(i64::from(i)));
        code.push(Instr::Store);
    }
    emit(&expr, level, &mut code);
    code.push(Instr::Out);
    code.push(Instr::Halt);
    Program {
        code,
        labels: HashMap::new(),
    }
}

fn emit(e: &Expr, level: OptLevel, code: &mut Vec<Instr>) {
    match e {
        Expr::Const(c) => code.push(Instr::Push(*c)),
        Expr::Var(i) => {
            code.push(Instr::Push(i64::from(*i)));
            code.push(Instr::Load);
        }
        Expr::Add(a, b) => {
            emit(a, level, code);
            emit(b, level, code);
            code.push(Instr::Add);
        }
        Expr::Sub(a, b) => {
            emit(a, level, code);
            emit(b, level, code);
            code.push(Instr::Sub);
        }
        Expr::Mul(a, b) => {
            // Strength reduction at O1: multiply by 2^k becomes a shift.
            if level == OptLevel::O1 {
                let (shiftee, k) = match (&**a, &**b) {
                    (Expr::Const(c), x) if c.count_ones() == 1 && *c > 0 => {
                        (Some(x), c.trailing_zeros())
                    }
                    (x, Expr::Const(c)) if c.count_ones() == 1 && *c > 0 => {
                        (Some(x), c.trailing_zeros())
                    }
                    _ => (None, 0),
                };
                if let Some(x) = shiftee {
                    emit(x, level, code);
                    code.push(Instr::Push(i64::from(k)));
                    code.push(Instr::Shl);
                    return;
                }
            }
            emit(a, level, code);
            emit(b, level, code);
            code.push(Instr::Mul);
        }
        Expr::Neg(a) => {
            emit(a, level, code);
            code.push(Instr::Neg);
        }
    }
}

/// Compile, run on `inputs`, and return `(result, executed_steps)`.
pub fn compile_and_run(
    expr: &Expr,
    level: OptLevel,
    inputs: &[i64],
) -> Result<(i64, u64), VmError> {
    let prog = compile(expr, level);
    let nvars = expr.num_vars() as usize;
    assert!(inputs.len() >= nvars, "need {nvars} inputs");
    let mut vm = Vm::new(prog, nvars.max(1)).with_input(inputs.iter().copied());
    vm.run(1_000_000)?;
    Ok((vm.output[0], vm.steps()))
}

/// A deterministic random expression (for differential testing).
pub fn random_expr(seed: u64, depth: u32, nvars: u32) -> Expr {
    fn go(state: &mut u64, depth: u32, nvars: u32) -> Expr {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = *state >> 33;
        if depth == 0 || r.is_multiple_of(5) {
            if r.is_multiple_of(2) && nvars > 0 {
                Expr::Var((r >> 8) as u32 % nvars)
            } else {
                // Small constants keep products from always wrapping, and
                // include the strength-reduction-friendly powers of two.
                let consts = [-3i64, -1, 0, 1, 2, 3, 4, 7, 8, 16];
                Expr::Const(consts[(r >> 8) as usize % consts.len()])
            }
        } else {
            let a = go(state, depth - 1, nvars);
            let b = go(state, depth - 1, nvars);
            match r % 4 {
                0 => Expr::add(a, b),
                1 => Expr::sub(a, b),
                2 => Expr::mul(a, b),
                _ => Expr::neg(a),
            }
        }
    }
    let mut state = seed | 1;
    go(&mut state, depth, nvars)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Expr {
        Expr::Var(0)
    }
    fn y() -> Expr {
        Expr::Var(1)
    }
    fn c(v: i64) -> Expr {
        Expr::Const(v)
    }

    #[test]
    fn basic_compile_and_run() {
        // (x + 3) * (y - 1)
        let e = Expr::mul(Expr::add(x(), c(3)), Expr::sub(y(), c(1)));
        let (r, _) = compile_and_run(&e, OptLevel::O0, &[5, 10]).unwrap();
        assert_eq!(r, 8 * 9);
    }

    #[test]
    fn constant_folding_collapses_to_one_push() {
        // (2 + 3) * (10 - 4) = 30 with no runtime arithmetic.
        let e = Expr::mul(Expr::add(c(2), c(3)), Expr::sub(c(10), c(4)));
        let prog = compile(&e, OptLevel::O1);
        assert_eq!(prog.code, vec![Instr::Push(30), Instr::Out, Instr::Halt]);
    }

    #[test]
    fn algebraic_identities() {
        assert_eq!(optimize(&Expr::add(x(), c(0))), x());
        assert_eq!(optimize(&Expr::mul(x(), c(1))), x());
        assert_eq!(optimize(&Expr::mul(x(), c(0))), c(0));
        assert_eq!(optimize(&Expr::sub(x(), x())), c(0));
        assert_eq!(optimize(&Expr::neg(Expr::neg(x()))), x());
        // Nested: ((x*1) + 0) - (x - x) = x.
        let e = Expr::sub(Expr::add(Expr::mul(x(), c(1)), c(0)), Expr::sub(x(), x()));
        assert_eq!(optimize(&e), x());
    }

    #[test]
    fn strength_reduction_emits_shift() {
        let e = Expr::mul(x(), c(8));
        let prog = compile(&e, OptLevel::O1);
        assert!(
            prog.code.contains(&Instr::Shl),
            "expected a shift: {:?}",
            prog.code
        );
        assert!(!prog.code.contains(&Instr::Mul));
        let (r, _) = compile_and_run(&e, OptLevel::O1, &[-7]).unwrap();
        assert_eq!(r, -56, "shift must preserve two's-complement semantics");
    }

    #[test]
    fn o1_never_slower_and_often_faster() {
        for seed in 0..30u64 {
            let e = random_expr(seed, 4, 2);
            let inputs = [(seed as i64 % 13) - 6, (seed as i64 % 7) - 3];
            let (r0, s0) = compile_and_run(&e, OptLevel::O0, &inputs).unwrap();
            let (r1, s1) = compile_and_run(&e, OptLevel::O1, &inputs).unwrap();
            assert_eq!(r0, r1, "seed {seed}: optimizer changed semantics");
            assert!(s1 <= s0, "seed {seed}: O1 ({s1}) slower than O0 ({s0})");
        }
    }

    #[test]
    fn differential_vs_interpreter_many_inputs() {
        for seed in 0..20u64 {
            let e = random_expr(seed.wrapping_mul(77), 5, 3);
            for trial in 0..10i64 {
                let inputs = [trial - 5, trial * 3 - 7, -trial];
                let want = e.eval(&inputs);
                let (got, _) = compile_and_run(&e, OptLevel::O1, &inputs).unwrap();
                assert_eq!(got, want, "seed {seed}, trial {trial}");
            }
        }
    }

    #[test]
    fn optimizer_shrinks_random_expressions() {
        let mut shrunk = 0;
        for seed in 0..40u64 {
            let e = random_expr(seed, 5, 2);
            let o = optimize(&e);
            assert!(o.size() <= e.size(), "optimizer grew the tree");
            if o.size() < e.size() {
                shrunk += 1;
            }
        }
        assert!(shrunk > 10, "optimizer should fire often, got {shrunk}");
    }

    #[test]
    fn wrapping_semantics_preserved() {
        let e = Expr::mul(x(), x());
        let (r, _) = compile_and_run(&e, OptLevel::O1, &[i64::MAX]).unwrap();
        assert_eq!(r, i64::MAX.wrapping_mul(i64::MAX));
        // Folding a wrapping constant product.
        let e = Expr::mul(c(i64::MAX), c(3));
        assert_eq!(optimize(&e), c(i64::MAX.wrapping_mul(3)));
    }

    #[test]
    fn num_vars_and_prologue() {
        let e = Expr::add(Expr::Var(2), c(1));
        assert_eq!(e.num_vars(), 3);
        let prog = compile(&e, OptLevel::O0);
        // Three In instructions in the prologue.
        let ins = prog.code.iter().filter(|i| matches!(i, Instr::In)).count();
        assert_eq!(ins, 3);
        let (r, _) = compile_and_run(&e, OptLevel::O0, &[9, 9, 41]).unwrap();
        assert_eq!(r, 42);
    }
}
