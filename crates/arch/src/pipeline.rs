//! An instruction-pipeline cost model — CS31's "pipelining, super-scalar,
//! implicit parallelism" lecture topics (paper Table II, last row).
//!
//! Models a classic 5-stage in-order pipeline (IF ID EX MEM WB) executing
//! a straight-line instruction trace, under configurable hazard handling:
//!
//! * **Forwarding off** — a dependent instruction waits until the
//!   producer's write-back: 3 bubble cycles per RAW dependence.
//! * **Forwarding on** — ALU results bypass to EX (0 bubbles); loads
//!   forward from MEM, leaving the unavoidable 1-cycle load-use bubble.
//! * **Branches** — `predict-not-taken`: taken branches flush
//!   `branch_penalty` cycles; `perfect` prediction flushes nothing.
//! * **Superscalar width `w`** — up to `w` *independent* consecutive
//!   instructions issue in the same cycle (in-order dual/quad issue).
//!
//! The model reports total cycles, CPI, and the stall/flush breakdown, and
//! is the quantitative demo that pipelining is *implicit* parallelism:
//! the speedup over an unpipelined machine approaches the stage count on
//! hazard-free code and collapses under dependence chains.

/// Register name (just an index).
pub type Reg = u8;

/// Kinds of instructions the model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Register-to-register ALU operation.
    Alu,
    /// Memory load (result available after MEM).
    Load,
    /// Memory store (no destination register).
    Store,
    /// Conditional branch; `taken` says whether it is taken at runtime.
    Branch {
        /// Whether the branch is taken.
        taken: bool,
    },
}

/// One instruction of a trace: kind, destination, sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeOp {
    /// Instruction kind.
    pub kind: OpKind,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Source registers.
    pub srcs: Vec<Reg>,
}

impl PipeOp {
    /// ALU op `dst = f(srcs)`.
    pub fn alu(dst: Reg, srcs: &[Reg]) -> Self {
        PipeOp {
            kind: OpKind::Alu,
            dst: Some(dst),
            srcs: srcs.to_vec(),
        }
    }

    /// Load into `dst` from an address formed from `addr_regs`.
    pub fn load(dst: Reg, addr_regs: &[Reg]) -> Self {
        PipeOp {
            kind: OpKind::Load,
            dst: Some(dst),
            srcs: addr_regs.to_vec(),
        }
    }

    /// Store `value_reg` to an address formed from `addr_regs`.
    pub fn store(value_reg: Reg, addr_regs: &[Reg]) -> Self {
        let mut srcs = vec![value_reg];
        srcs.extend_from_slice(addr_regs);
        PipeOp {
            kind: OpKind::Store,
            dst: None,
            srcs,
        }
    }

    /// Conditional branch reading `srcs`.
    pub fn branch(taken: bool, srcs: &[Reg]) -> Self {
        PipeOp {
            kind: OpKind::Branch { taken },
            dst: None,
            srcs: srcs.to_vec(),
        }
    }
}

/// Branch handling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchPolicy {
    /// Fetch falls through; taken branches pay the flush penalty.
    PredictNotTaken,
    /// Oracle prediction: no branch ever stalls.
    Perfect,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Number of pipeline stages (depth); 5 for the classic model.
    pub stages: u32,
    /// Whether EX/MEM results forward to dependent instructions.
    pub forwarding: bool,
    /// Branch handling.
    pub branch_policy: BranchPolicy,
    /// Cycles flushed on a mispredicted (taken) branch.
    pub branch_penalty: u64,
    /// Issue width (1 = scalar, 2 = dual-issue, ...).
    pub width: u32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            stages: 5,
            forwarding: true,
            branch_policy: BranchPolicy::PredictNotTaken,
            branch_penalty: 2,
            width: 1,
        }
    }
}

/// Execution report of a trace through the pipeline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// Total cycles from first fetch to last write-back.
    pub cycles: u64,
    /// Instruction count.
    pub instructions: u64,
    /// Cycles lost to data-hazard stalls.
    pub stall_cycles: u64,
    /// Cycles lost to branch flushes.
    pub flush_cycles: u64,
}

impl PipelineReport {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Speedup over an unpipelined machine where every instruction takes
    /// `stages` cycles.
    pub fn speedup_vs_unpipelined(&self, stages: u32) -> f64 {
        if self.cycles == 0 {
            return 1.0;
        }
        (self.instructions * stages as u64) as f64 / self.cycles as f64
    }
}

/// Simulate `trace` through the configured pipeline.
///
/// The model tracks, per instruction, the cycle it *issues to EX*. An
/// instruction's sources must be ready; readiness depends on the producer
/// kind and forwarding. With issue width `w`, at most `w` instructions
/// share an issue cycle, and only if they are mutually independent.
pub fn simulate(config: &PipelineConfig, trace: &[PipeOp]) -> PipelineReport {
    assert!(config.stages >= 2, "pipeline needs at least 2 stages");
    assert!(config.width >= 1, "issue width must be >= 1");
    // ready[r] = earliest cycle an instruction in EX can consume r.
    let mut ready = [0u64; 256];
    let mut stall_cycles = 0u64;
    let mut flush_cycles = 0u64;
    let mut next_issue = 0u64; // earliest EX cycle for the next instruction
    let mut issued_this_cycle = 0u32;
    let mut last_ex = 0u64;

    for op in trace {
        // Earliest cycle all sources are available.
        let src_ready = op.srcs.iter().map(|&r| ready[r as usize]).fold(0, u64::max);
        let unconstrained = next_issue;
        let mut ex = unconstrained.max(src_ready);
        // Pure data-hazard wait, before structural (width) adjustments.
        stall_cycles += ex - unconstrained;

        // Superscalar bookkeeping: same-cycle issue only while width lasts.
        if ex == last_ex && issued_this_cycle >= config.width {
            ex += 1;
        }
        if ex != last_ex {
            issued_this_cycle = 0;
        }
        issued_this_cycle += 1;
        last_ex = ex;

        // Destination availability for consumers *in EX*:
        if let Some(d) = op.dst {
            let latency = match op.kind {
                // ALU: forwards from EX output -> consumer EX next cycle.
                OpKind::Alu => {
                    if config.forwarding {
                        1
                    } else {
                        config.stages as u64 - 2 // wait until WB
                    }
                }
                // Load: value exists after MEM -> 1 bubble with forwarding.
                OpKind::Load => {
                    if config.forwarding {
                        2
                    } else {
                        config.stages as u64 - 2
                    }
                }
                OpKind::Store | OpKind::Branch { .. } => 1,
            };
            ready[d as usize] = ex + latency;
        }

        // In-order issue: next instruction's EX is at least this one's
        // (same cycle allowed for superscalar; handled above).
        next_issue = if config.width > 1 { ex } else { ex + 1 };
        if config.width > 1 && issued_this_cycle >= config.width {
            next_issue = ex + 1;
        }

        // Branch flushes.
        if let OpKind::Branch { taken } = op.kind {
            let penalty = match config.branch_policy {
                BranchPolicy::Perfect => 0,
                BranchPolicy::PredictNotTaken => {
                    if taken {
                        config.branch_penalty
                    } else {
                        0
                    }
                }
            };
            flush_cycles += penalty;
            next_issue = next_issue.max(ex + 1) + penalty;
            issued_this_cycle = config.width; // nothing else issues with a flush
        }
    }

    // Total cycles: last EX + remaining stages to drain + the front stages
    // before the first EX (stages before EX = 2 for the 5-stage model;
    // generalized as stages - 3 front + EX...WB = stages - 2 tail).
    let drain = (config.stages as u64).saturating_sub(2);
    let front = (config.stages as u64).saturating_sub(3);
    let cycles = if trace.is_empty() {
        0
    } else {
        front + last_ex + 1 + drain
    };
    PipelineReport {
        cycles,
        instructions: trace.len() as u64,
        stall_cycles,
        flush_cycles,
    }
}

/// A hazard-free trace of `n` independent ALU ops (each writes a distinct
/// register in round-robin with no reads) — the best case for pipelining.
pub fn independent_alu_trace(n: usize) -> Vec<PipeOp> {
    (0..n).map(|i| PipeOp::alu((i % 200) as u8, &[])).collect()
}

/// A maximal dependence chain: each op reads the previous op's result.
pub fn dependent_chain_trace(n: usize) -> Vec<PipeOp> {
    (0..n)
        .map(|i| {
            if i == 0 {
                PipeOp::alu(0, &[])
            } else {
                PipeOp::alu(0, &[0])
            }
        })
        .collect()
}

/// A pointer-chasing loop body: load then use, repeated — exposes the
/// load-use bubble that forwarding cannot remove.
pub fn load_use_trace(n: usize) -> Vec<PipeOp> {
    let mut t = Vec::with_capacity(2 * n);
    for _ in 0..n {
        t.push(PipeOp::load(1, &[1]));
        t.push(PipeOp::alu(2, &[1]));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_zero_cycles() {
        let r = simulate(&PipelineConfig::default(), &[]);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.cpi(), 0.0);
    }

    #[test]
    fn hazard_free_cpi_approaches_one() {
        let trace = independent_alu_trace(10_000);
        let r = simulate(&PipelineConfig::default(), &trace);
        assert!(r.cpi() < 1.01, "cpi {}", r.cpi());
        assert_eq!(r.stall_cycles, 0);
        // Speedup over unpipelined approaches the stage count.
        let s = r.speedup_vs_unpipelined(5);
        assert!(s > 4.9, "speedup {s}");
    }

    #[test]
    fn dependence_chain_without_forwarding_is_slow() {
        let trace = dependent_chain_trace(1000);
        let fwd = simulate(&PipelineConfig::default(), &trace);
        let nofwd = simulate(
            &PipelineConfig {
                forwarding: false,
                ..Default::default()
            },
            &trace,
        );
        // With forwarding an ALU chain still runs ~1 CPI;
        // without, every instruction waits ~3 cycles.
        assert!(fwd.cpi() < 1.1, "fwd cpi {}", fwd.cpi());
        assert!(nofwd.cpi() > 2.5, "nofwd cpi {}", nofwd.cpi());
        assert!(nofwd.cycles > fwd.cycles * 2);
    }

    #[test]
    fn load_use_bubble_survives_forwarding() {
        let trace = load_use_trace(1000);
        let r = simulate(&PipelineConfig::default(), &trace);
        // Each load-use pair costs ~3 cycles (load, bubble, use): CPI ~1.5.
        assert!(r.cpi() > 1.4, "cpi {}", r.cpi());
        assert!(r.cpi() < 1.6, "cpi {}", r.cpi());
    }

    #[test]
    fn taken_branches_cost_flushes() {
        let mut trace = Vec::new();
        for _ in 0..500 {
            trace.push(PipeOp::alu(1, &[]));
            trace.push(PipeOp::branch(true, &[1]));
        }
        let npt = simulate(&PipelineConfig::default(), &trace);
        let perfect = simulate(
            &PipelineConfig {
                branch_policy: BranchPolicy::Perfect,
                ..Default::default()
            },
            &trace,
        );
        assert!(npt.flush_cycles >= 1000, "flushes {}", npt.flush_cycles);
        assert_eq!(perfect.flush_cycles, 0);
        assert!(npt.cycles > perfect.cycles);
    }

    #[test]
    fn not_taken_branches_free_under_predict_not_taken() {
        let mut trace = Vec::new();
        for _ in 0..100 {
            trace.push(PipeOp::alu(1, &[]));
            trace.push(PipeOp::branch(false, &[1]));
        }
        let r = simulate(&PipelineConfig::default(), &trace);
        assert_eq!(r.flush_cycles, 0);
    }

    #[test]
    fn dual_issue_speeds_up_independent_code() {
        let trace = independent_alu_trace(10_000);
        let scalar = simulate(&PipelineConfig::default(), &trace);
        let dual = simulate(
            &PipelineConfig {
                width: 2,
                ..Default::default()
            },
            &trace,
        );
        let ratio = scalar.cycles as f64 / dual.cycles as f64;
        assert!(ratio > 1.8, "dual-issue ratio {ratio}");
    }

    #[test]
    fn dual_issue_useless_on_dependence_chain() {
        let trace = dependent_chain_trace(5_000);
        let scalar = simulate(&PipelineConfig::default(), &trace);
        let dual = simulate(
            &PipelineConfig {
                width: 2,
                ..Default::default()
            },
            &trace,
        );
        let ratio = scalar.cycles as f64 / dual.cycles as f64;
        assert!(
            ratio < 1.05,
            "ILP cannot exceed the dependence chain: {ratio}"
        );
    }

    #[test]
    fn stores_and_mixed_code_run() {
        let trace = vec![
            PipeOp::load(1, &[0]),
            PipeOp::alu(2, &[1]),
            PipeOp::store(2, &[0]),
            PipeOp::branch(false, &[2]),
        ];
        let r = simulate(&PipelineConfig::default(), &trace);
        assert_eq!(r.instructions, 4);
        assert!(r.cycles >= 4);
    }
}
