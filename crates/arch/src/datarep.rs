//! Binary data representation: the CS31 "Data Representation" lab.
//!
//! Conversions between decimal, binary, and hex; two's-complement
//! encoding/decoding at arbitrary widths up to 64 bits; sign extension;
//! and overflow-detecting arithmetic with the precise semantics students
//! must learn (signed overflow = operands same sign, result different;
//! unsigned overflow = carry out).

/// Errors from parsing or range-checking representations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepError {
    /// The value does not fit in the requested bit width.
    OutOfRange {
        /// The offending value.
        value: i128,
        /// The width it was supposed to fit.
        bits: u32,
    },
    /// A string could not be parsed as a number in the given base.
    Parse(String),
    /// Requested width outside 1..=64.
    BadWidth(u32),
}

impl std::fmt::Display for RepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepError::OutOfRange { value, bits } => {
                write!(f, "value {value} does not fit in {bits} bits")
            }
            RepError::Parse(s) => write!(f, "cannot parse {s:?}"),
            RepError::BadWidth(b) => write!(f, "bit width {b} not in 1..=64"),
        }
    }
}

impl std::error::Error for RepError {}

fn check_width(bits: u32) -> Result<(), RepError> {
    if (1..=64).contains(&bits) {
        Ok(())
    } else {
        Err(RepError::BadWidth(bits))
    }
}

/// Smallest signed value representable in `bits` bits (two's complement).
pub fn signed_min(bits: u32) -> i64 {
    check_width(bits).expect("bad width");
    if bits == 64 {
        i64::MIN
    } else {
        -(1i64 << (bits - 1))
    }
}

/// Largest signed value representable in `bits` bits.
pub fn signed_max(bits: u32) -> i64 {
    check_width(bits).expect("bad width");
    if bits == 64 {
        i64::MAX
    } else {
        (1i64 << (bits - 1)) - 1
    }
}

/// Largest unsigned value representable in `bits` bits.
pub fn unsigned_max(bits: u32) -> u64 {
    check_width(bits).expect("bad width");
    if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Encode a signed value into its two's-complement bit pattern at the
/// given width.
pub fn to_twos_complement(value: i64, bits: u32) -> Result<u64, RepError> {
    check_width(bits)?;
    if value < signed_min(bits) || value > signed_max(bits) {
        return Err(RepError::OutOfRange {
            value: value as i128,
            bits,
        });
    }
    Ok((value as u64) & unsigned_max(bits))
}

/// Decode a `bits`-wide two's-complement bit pattern into a signed value.
///
/// Bits above `bits` in `pattern` must be zero.
pub fn from_twos_complement(pattern: u64, bits: u32) -> Result<i64, RepError> {
    check_width(bits)?;
    if pattern > unsigned_max(bits) {
        return Err(RepError::OutOfRange {
            value: pattern as i128,
            bits,
        });
    }
    let sign_bit = 1u64 << (bits - 1);
    if pattern & sign_bit != 0 {
        // Negative: subtract 2^bits, in wrapping u64 arithmetic so the
        // computation is well-defined at every width up to 64 (at
        // bits = 63 the i64 literal `1 << 63` would itself overflow).
        if bits == 64 {
            Ok(pattern as i64)
        } else {
            Ok(pattern.wrapping_sub(1u64 << bits) as i64)
        }
    } else {
        Ok(pattern as i64)
    }
}

/// Sign-extend a `from_bits`-wide pattern to `to_bits` wide.
pub fn sign_extend(pattern: u64, from_bits: u32, to_bits: u32) -> Result<u64, RepError> {
    check_width(from_bits)?;
    check_width(to_bits)?;
    if to_bits < from_bits {
        return Err(RepError::BadWidth(to_bits));
    }
    let v = from_twos_complement(pattern, from_bits)?;
    to_twos_complement(v, to_bits)
}

/// Zero-extend a `from_bits`-wide pattern to `to_bits` wide (identity on
/// the pattern, but validates ranges).
pub fn zero_extend(pattern: u64, from_bits: u32, to_bits: u32) -> Result<u64, RepError> {
    check_width(from_bits)?;
    check_width(to_bits)?;
    if to_bits < from_bits || pattern > unsigned_max(from_bits) {
        return Err(RepError::OutOfRange {
            value: pattern as i128,
            bits: from_bits,
        });
    }
    Ok(pattern)
}

/// Truncate a pattern to `bits` wide (the C cast-to-smaller-type rule).
pub fn truncate(pattern: u64, bits: u32) -> u64 {
    check_width(bits).expect("bad width");
    pattern & unsigned_max(bits)
}

/// Render a pattern as a binary string of exactly `bits` digits,
/// grouped in nibbles: `1010_0101`.
pub fn to_binary_string(pattern: u64, bits: u32) -> String {
    check_width(bits).expect("bad width");
    let mut s = String::new();
    for i in (0..bits).rev() {
        s.push(if pattern >> i & 1 == 1 { '1' } else { '0' });
        if i != 0 && i % 4 == 0 {
            s.push('_');
        }
    }
    s
}

/// Render a pattern as `0x`-prefixed hex with `bits/4` (rounded up) digits.
pub fn to_hex_string(pattern: u64, bits: u32) -> String {
    check_width(bits).expect("bad width");
    let digits = bits.div_ceil(4) as usize;
    format!("0x{pattern:0digits$x}")
}

/// Parse a numeric literal in any of the lab's accepted forms:
/// decimal (`-42`), hex (`0x2A`), or binary (`0b101010`, underscores ok).
pub fn parse_literal(s: &str) -> Result<i64, RepError> {
    let t = s.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let mag: u64 = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16)
            .map_err(|_| RepError::Parse(s.to_string()))?
    } else if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        u64::from_str_radix(&bin.replace('_', ""), 2).map_err(|_| RepError::Parse(s.to_string()))?
    } else {
        t.replace('_', "")
            .parse()
            .map_err(|_| RepError::Parse(s.to_string()))?
    };
    // Magnitude fits i64, except that -2^63 is also representable.
    if neg {
        if mag > 1u64 << 63 {
            return Err(RepError::OutOfRange {
                value: -(mag as i128),
                bits: 64,
            });
        }
        Ok((mag as i64).wrapping_neg())
    } else {
        i64::try_from(mag).map_err(|_| RepError::OutOfRange {
            value: mag as i128,
            bits: 64,
        })
    }
}

/// Result of a width-limited arithmetic operation, carrying the condition
/// information students must reason about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArithResult {
    /// The truncated result bit pattern.
    pub pattern: u64,
    /// Carry out of the most significant bit (unsigned overflow on add).
    pub carry: bool,
    /// Signed (two's-complement) overflow.
    pub overflow: bool,
}

/// Add two `bits`-wide patterns with full carry/overflow semantics.
pub fn add_with_flags(a: u64, b: u64, bits: u32) -> ArithResult {
    check_width(bits).expect("bad width");
    debug_assert!(a <= unsigned_max(bits) && b <= unsigned_max(bits));
    let wide = a as u128 + b as u128;
    let pattern = truncate(wide as u64, bits);
    let carry = wide > unsigned_max(bits) as u128;
    let sign = 1u64 << (bits - 1);
    // Signed overflow: operands share a sign and the result's differs.
    let overflow = (a & sign) == (b & sign) && (pattern & sign) != (a & sign);
    ArithResult {
        pattern,
        carry,
        overflow,
    }
}

/// Subtract (`a - b`) at width `bits`: implemented as `a + ~b + 1`, the way
/// the ALU lab builds it. `carry` is the *borrow-free* flag (carry out of
/// the adder), matching x86 semantics where CF=1 means borrow on SUB is 0.
pub fn sub_with_flags(a: u64, b: u64, bits: u32) -> ArithResult {
    check_width(bits).expect("bad width");
    let not_b = truncate(!b, bits);
    let step = add_with_flags(a, not_b, bits);
    let step2 = add_with_flags(step.pattern, 1, bits);
    let pattern = step2.pattern;
    let carry = step.carry || step2.carry;
    let sign = 1u64 << (bits - 1);
    // Signed overflow for a - b: a and b differ in sign and result has b's sign.
    let overflow = (a & sign) != (b & sign) && (pattern & sign) == (b & sign);
    ArithResult {
        pattern,
        carry,
        overflow,
    }
}

/// Count set bits with the classic shift-and-mask loop from the lab
/// (deliberately not `count_ones`, so students can compare).
pub fn popcount_loop(mut pattern: u64) -> u32 {
    let mut n = 0;
    while pattern != 0 {
        n += (pattern & 1) as u32;
        pattern >>= 1;
    }
    n
}

/// Is the pattern a power of two? (`x != 0 && (x & (x-1)) == 0`, the bit
/// trick taught in the bit-compare lab.)
pub fn is_power_of_two(pattern: u64) -> bool {
    pattern != 0 && pattern & (pattern - 1) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_by_width() {
        assert_eq!(signed_min(8), -128);
        assert_eq!(signed_max(8), 127);
        assert_eq!(unsigned_max(8), 255);
        assert_eq!(signed_min(64), i64::MIN);
        assert_eq!(signed_max(64), i64::MAX);
        assert_eq!(unsigned_max(64), u64::MAX);
        assert_eq!(signed_min(1), -1);
        assert_eq!(signed_max(1), 0);
    }

    #[test]
    fn twos_complement_roundtrip_8bit() {
        for v in -128i64..=127 {
            let p = to_twos_complement(v, 8).unwrap();
            assert!(p <= 255);
            assert_eq!(from_twos_complement(p, 8).unwrap(), v);
        }
    }

    #[test]
    fn known_encodings() {
        assert_eq!(to_twos_complement(-1, 8).unwrap(), 0xFF);
        assert_eq!(to_twos_complement(-128, 8).unwrap(), 0x80);
        assert_eq!(from_twos_complement(0x80, 8).unwrap(), -128);
        assert_eq!(from_twos_complement(0x7F, 8).unwrap(), 127);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            to_twos_complement(128, 8),
            Err(RepError::OutOfRange { .. })
        ));
        assert!(matches!(
            to_twos_complement(-129, 8),
            Err(RepError::OutOfRange { .. })
        ));
    }

    #[test]
    fn sign_extension() {
        // 0xFF as 8-bit -1 extends to 16-bit 0xFFFF.
        assert_eq!(sign_extend(0xFF, 8, 16).unwrap(), 0xFFFF);
        // 0x7F stays 0x007F.
        assert_eq!(sign_extend(0x7F, 8, 16).unwrap(), 0x007F);
        // Zero-extension never fills ones.
        assert_eq!(zero_extend(0xFF, 8, 16).unwrap(), 0x00FF);
    }

    #[test]
    fn truncation_is_c_cast() {
        // (u8)0x1FF == 0xFF
        assert_eq!(truncate(0x1FF, 8), 0xFF);
        // casting -1 i16 -> i8 keeps -1.
        let p16 = to_twos_complement(-1, 16).unwrap();
        let p8 = truncate(p16, 8);
        assert_eq!(from_twos_complement(p8, 8).unwrap(), -1);
    }

    #[test]
    fn formatting() {
        assert_eq!(to_binary_string(0xA5, 8), "1010_0101");
        assert_eq!(to_hex_string(0xA5, 8), "0xa5");
        assert_eq!(to_hex_string(0x5, 4), "0x5");
        assert_eq!(to_binary_string(5, 4), "0101");
        assert_eq!(to_hex_string(0xBEEF, 16), "0xbeef");
    }

    #[test]
    fn parse_all_bases() {
        assert_eq!(parse_literal("42").unwrap(), 42);
        assert_eq!(parse_literal("-42").unwrap(), -42);
        assert_eq!(parse_literal("0x2A").unwrap(), 42);
        assert_eq!(parse_literal("0b10_1010").unwrap(), 42);
        assert_eq!(parse_literal("-0x2a").unwrap(), -42);
        assert!(parse_literal("0xZZ").is_err());
        assert!(parse_literal("").is_err());
    }

    #[test]
    fn add_flags_unsigned_overflow() {
        let r = add_with_flags(0xFF, 0x01, 8);
        assert_eq!(r.pattern, 0x00);
        assert!(r.carry, "255 + 1 carries at 8 bits");
        assert!(!r.overflow, "-1 + 1 = 0 has no signed overflow");
    }

    #[test]
    fn add_flags_signed_overflow() {
        // 127 + 1 = -128: signed overflow, no carry.
        let r = add_with_flags(0x7F, 0x01, 8);
        assert_eq!(from_twos_complement(r.pattern, 8).unwrap(), -128);
        assert!(r.overflow);
        assert!(!r.carry);
        // -128 + -1 = +127: overflow and carry.
        let r = add_with_flags(0x80, 0xFF, 8);
        assert_eq!(from_twos_complement(r.pattern, 8).unwrap(), 127);
        assert!(r.overflow);
        assert!(r.carry);
    }

    #[test]
    fn sub_flags() {
        // 5 - 3 = 2, no borrow (carry set in x86 convention), no overflow.
        let r = sub_with_flags(5, 3, 8);
        assert_eq!(r.pattern, 2);
        assert!(r.carry);
        assert!(!r.overflow);
        // 3 - 5 = -2 with borrow (carry clear).
        let r = sub_with_flags(3, 5, 8);
        assert_eq!(from_twos_complement(r.pattern, 8).unwrap(), -2);
        assert!(!r.carry);
        assert!(!r.overflow);
        // -128 - 1 overflows to +127.
        let r = sub_with_flags(0x80, 0x01, 8);
        assert_eq!(from_twos_complement(r.pattern, 8).unwrap(), 127);
        assert!(r.overflow);
    }

    #[test]
    fn sub_matches_wrapping_semantics_exhaustive_8bit() {
        for a in 0u64..=255 {
            for b in 0u64..=255 {
                let r = sub_with_flags(a, b, 8);
                assert_eq!(r.pattern, (a.wrapping_sub(b)) & 0xFF, "{a} - {b}");
                // Carry in x86 SUB convention: set iff no borrow (a >= b).
                assert_eq!(r.carry, a >= b, "borrow for {a} - {b}");
            }
        }
    }

    #[test]
    fn popcount_and_power_of_two() {
        for x in [0u64, 1, 2, 3, 0xFF, 0xA5A5, u64::MAX] {
            assert_eq!(popcount_loop(x), x.count_ones());
        }
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(1 << 63));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(6));
    }

    #[test]
    #[should_panic(expected = "bad width")]
    fn zero_width_panics() {
        truncate(1, 0);
    }
}
