//! PDC-1: a small stack-machine ISA with assembler, disassembler, and VM.
//!
//! CS31's assembly content (reading/tracing assembly, the stack, function
//! call mechanics) used IA32; reproducing that content does not require
//! x86 — it requires *an* ISA whose programs students can assemble, trace
//! instruction by instruction, and inspect the call stack of. PDC-1 is
//! that ISA: a word-addressed stack machine with explicit call frames.
//!
//! ## Assembly syntax
//!
//! One instruction per line; `;` starts a comment; `label:` defines a
//! label; operands are numeric literals (decimal/hex/binary, see
//! [`crate::datarep::parse_literal`]) or label names.
//!
//! ```text
//! ; sum 1..n, n on top of stack at entry
//!         push 0        ; acc
//! loop:   over          ; n acc n
//!         jz done
//!         over          ; n acc n
//!         add           ; n acc+n
//!         swap
//!         push 1
//!         sub           ; n-1
//!         swap
//!         jmp loop
//! done:   swap
//!         pop
//!         halt
//! ```

use crate::datarep::parse_literal;
use std::collections::HashMap;

/// One PDC-1 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Push an immediate.
    Push(i64),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the top two entries.
    Swap,
    /// Copy the second entry to the top (`a b -> a b a`).
    Over,
    /// Pop b, a; push a + b (wrapping).
    Add,
    /// Pop b, a; push a - b (wrapping).
    Sub,
    /// Pop b, a; push a * b (wrapping).
    Mul,
    /// Pop b, a; push a / b (traps on zero or overflow).
    Div,
    /// Pop b, a; push a % b (traps on zero).
    Mod,
    /// Negate the top of stack (wrapping).
    Neg,
    /// Pop b, a; push a & b.
    And,
    /// Pop b, a; push a | b.
    Or,
    /// Pop b, a; push a ^ b.
    Xor,
    /// Bitwise NOT of the top of stack.
    Not,
    /// Pop b, a; push a << (b & 63).
    Shl,
    /// Pop b, a; push ((a as u64) >> (b & 63)) as i64 (logical).
    Shr,
    /// Pop b, a; push 1 if a == b else 0.
    Eq,
    /// Pop b, a; push 1 if a < b else 0 (signed).
    Lt,
    /// Pop b, a; push 1 if a > b else 0 (signed).
    Gt,
    /// Pop address; push `mem[addr]`.
    Load,
    /// Pop address, then value; `mem[addr] = value`.
    Store,
    /// Push the value of local slot `n` of the current frame.
    LoadLocal(u32),
    /// Pop into local slot `n` of the current frame.
    StoreLocal(u32),
    /// Unconditional jump to code address.
    Jmp(u32),
    /// Pop; jump if zero.
    Jz(u32),
    /// Pop; jump if nonzero.
    Jnz(u32),
    /// Call a function at a code address, creating a frame with `locals`
    /// local slots.
    Call(u32, u32),
    /// Return to the caller (frame is torn down; top of stack, if the
    /// callee left one more value than it was given, is the return value).
    Ret,
    /// Pop and append to the output stream.
    Out,
    /// Read the next input value and push it (traps when exhausted).
    In,
    /// Do nothing.
    Nop,
    /// Stop execution successfully.
    Halt,
}

/// An assembled program: instructions plus the label map (for tooling).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The instruction sequence.
    pub code: Vec<Instr>,
    /// Label name → code address.
    pub labels: HashMap<String, u32>,
}

/// Errors from assembling PDC-1 source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// Unknown mnemonic at a source line.
    UnknownMnemonic {
        /// 1-based line number.
        line: usize,
        /// The mnemonic text.
        text: String,
    },
    /// Operand missing or malformed.
    BadOperand {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        what: String,
    },
    /// A jump/call referenced an undefined label.
    UndefinedLabel {
        /// 1-based line number.
        line: usize,
        /// The label name.
        label: String,
    },
    /// The same label was defined twice.
    DuplicateLabel {
        /// 1-based line number.
        line: usize,
        /// The label name.
        label: String,
    },
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UnknownMnemonic { line, text } => {
                write!(f, "line {line}: unknown mnemonic {text:?}")
            }
            AsmError::BadOperand { line, what } => write!(f, "line {line}: {what}"),
            AsmError::UndefinedLabel { line, label } => {
                write!(f, "line {line}: undefined label {label:?}")
            }
            AsmError::DuplicateLabel { line, label } => {
                write!(f, "line {line}: duplicate label {label:?}")
            }
        }
    }
}

impl std::error::Error for AsmError {}

enum PendingOperand {
    None,
    Imm(i64),
    Target(String, usize), // label or address text + line for errors
    CallTarget(String, u32, usize),
    Slot(u32),
}

/// Assemble PDC-1 source into a [`Program`] (two passes: collect labels,
/// then resolve).
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut items: Vec<(usize, String, PendingOperand)> = Vec::new();

    // Pass 1: strip comments, record labels, collect (mnemonic, operand).
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(idx) = text.find(';') {
            text = &text[..idx];
        }
        let mut rest = text.trim();
        // Possibly several labels on one line ("a: b: instr").
        while let Some(colon) = rest.find(':') {
            let (lbl, tail) = rest.split_at(colon);
            let lbl = lbl.trim();
            if lbl.is_empty() || lbl.contains(char::is_whitespace) {
                break; // not a label; leave for mnemonic parsing
            }
            if labels.insert(lbl.to_string(), items.len() as u32).is_some() {
                return Err(AsmError::DuplicateLabel {
                    line,
                    label: lbl.to_string(),
                });
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let mut parts = rest.split_whitespace();
        let mnem = parts.next().unwrap().to_ascii_lowercase();
        let op1 = parts.next().map(str::to_string);
        let op2 = parts.next().map(str::to_string);
        let operand = match (mnem.as_str(), op1, op2) {
            ("push", Some(o), None) => {
                PendingOperand::Imm(parse_literal(&o).map_err(|_| AsmError::BadOperand {
                    line,
                    what: format!("bad immediate {o:?}"),
                })?)
            }
            ("jmp" | "jz" | "jnz", Some(o), None) => PendingOperand::Target(o, line),
            ("call", Some(o), locals) => {
                let n = match locals {
                    Some(l) => parse_literal(&l).map_err(|_| AsmError::BadOperand {
                        line,
                        what: format!("bad locals count {l:?}"),
                    })? as u32,
                    None => 0,
                };
                PendingOperand::CallTarget(o, n, line)
            }
            ("loadl" | "storel", Some(o), None) => {
                let n = parse_literal(&o).map_err(|_| AsmError::BadOperand {
                    line,
                    what: format!("bad slot {o:?}"),
                })?;
                if n < 0 {
                    return Err(AsmError::BadOperand {
                        line,
                        what: format!("negative slot {n}"),
                    });
                }
                PendingOperand::Slot(n as u32)
            }
            (_, None, None) => PendingOperand::None,
            (_, None, Some(_)) => unreachable!("second operand without a first"),
            (_, Some(o), _) => {
                return Err(AsmError::BadOperand {
                    line,
                    what: format!("unexpected operand {o:?} for {mnem}"),
                })
            }
        };
        items.push((line, mnem, operand));
    }

    // Pass 2: resolve.
    let resolve =
        |name: &str, line: usize, labels: &HashMap<String, u32>| -> Result<u32, AsmError> {
            if let Some(&a) = labels.get(name) {
                return Ok(a);
            }
            parse_literal(name)
                .ok()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| AsmError::UndefinedLabel {
                    line,
                    label: name.to_string(),
                })
        };

    let mut code = Vec::with_capacity(items.len());
    for (line, mnem, operand) in items {
        let instr = match (mnem.as_str(), operand) {
            ("push", PendingOperand::Imm(v)) => Instr::Push(v),
            ("pop", _) => Instr::Pop,
            ("dup", _) => Instr::Dup,
            ("swap", _) => Instr::Swap,
            ("over", _) => Instr::Over,
            ("add", _) => Instr::Add,
            ("sub", _) => Instr::Sub,
            ("mul", _) => Instr::Mul,
            ("div", _) => Instr::Div,
            ("mod", _) => Instr::Mod,
            ("neg", _) => Instr::Neg,
            ("and", _) => Instr::And,
            ("or", _) => Instr::Or,
            ("xor", _) => Instr::Xor,
            ("not", _) => Instr::Not,
            ("shl", _) => Instr::Shl,
            ("shr", _) => Instr::Shr,
            ("eq", _) => Instr::Eq,
            ("lt", _) => Instr::Lt,
            ("gt", _) => Instr::Gt,
            ("load", _) => Instr::Load,
            ("store", _) => Instr::Store,
            ("loadl", PendingOperand::Slot(n)) => Instr::LoadLocal(n),
            ("storel", PendingOperand::Slot(n)) => Instr::StoreLocal(n),
            ("jmp", PendingOperand::Target(t, l)) => Instr::Jmp(resolve(&t, l, &labels)?),
            ("jz", PendingOperand::Target(t, l)) => Instr::Jz(resolve(&t, l, &labels)?),
            ("jnz", PendingOperand::Target(t, l)) => Instr::Jnz(resolve(&t, l, &labels)?),
            ("call", PendingOperand::CallTarget(t, n, l)) => {
                Instr::Call(resolve(&t, l, &labels)?, n)
            }
            ("ret", _) => Instr::Ret,
            ("out", _) => Instr::Out,
            ("in", _) => Instr::In,
            ("nop", _) => Instr::Nop,
            ("halt", _) => Instr::Halt,
            ("jmp" | "jz" | "jnz" | "call", _) => {
                return Err(AsmError::BadOperand {
                    line,
                    what: format!("{mnem} requires a target"),
                })
            }
            ("loadl" | "storel", _) => {
                return Err(AsmError::BadOperand {
                    line,
                    what: format!("{mnem} requires a slot number"),
                })
            }
            ("push", _) => {
                return Err(AsmError::BadOperand {
                    line,
                    what: "push requires an immediate".into(),
                })
            }
            _ => {
                return Err(AsmError::UnknownMnemonic {
                    line,
                    text: mnem.clone(),
                })
            }
        };
        code.push(instr);
    }
    Ok(Program { code, labels })
}

/// Render one instruction as assembly text.
pub fn disassemble(instr: Instr) -> String {
    match instr {
        Instr::Push(v) => format!("push {v}"),
        Instr::Pop => "pop".into(),
        Instr::Dup => "dup".into(),
        Instr::Swap => "swap".into(),
        Instr::Over => "over".into(),
        Instr::Add => "add".into(),
        Instr::Sub => "sub".into(),
        Instr::Mul => "mul".into(),
        Instr::Div => "div".into(),
        Instr::Mod => "mod".into(),
        Instr::Neg => "neg".into(),
        Instr::And => "and".into(),
        Instr::Or => "or".into(),
        Instr::Xor => "xor".into(),
        Instr::Not => "not".into(),
        Instr::Shl => "shl".into(),
        Instr::Shr => "shr".into(),
        Instr::Eq => "eq".into(),
        Instr::Lt => "lt".into(),
        Instr::Gt => "gt".into(),
        Instr::Load => "load".into(),
        Instr::Store => "store".into(),
        Instr::LoadLocal(n) => format!("loadl {n}"),
        Instr::StoreLocal(n) => format!("storel {n}"),
        Instr::Jmp(a) => format!("jmp {a}"),
        Instr::Jz(a) => format!("jz {a}"),
        Instr::Jnz(a) => format!("jnz {a}"),
        Instr::Call(a, n) => format!("call {a} {n}"),
        Instr::Ret => "ret".into(),
        Instr::Out => "out".into(),
        Instr::In => "in".into(),
        Instr::Nop => "nop".into(),
        Instr::Halt => "halt".into(),
    }
}

/// Runtime errors (traps) of the PDC-1 VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Operand-stack underflow.
    StackUnderflow {
        /// Program counter at the fault.
        pc: u32,
    },
    /// Operand-stack overflow (configured limit).
    StackOverflow {
        /// Program counter at the fault.
        pc: u32,
    },
    /// Call-stack overflow (runaway recursion).
    CallStackOverflow {
        /// Program counter at the fault.
        pc: u32,
    },
    /// Division by zero or `i64::MIN / -1`.
    DivideError {
        /// Program counter at the fault.
        pc: u32,
    },
    /// Memory access out of bounds.
    MemFault {
        /// Program counter at the fault.
        pc: u32,
        /// The offending address.
        addr: i64,
    },
    /// Local-slot index out of the frame's range.
    LocalFault {
        /// Program counter at the fault.
        pc: u32,
        /// The offending slot.
        slot: u32,
    },
    /// PC ran off the end of the code without `halt`.
    PcOutOfRange {
        /// The bad program counter.
        pc: u32,
    },
    /// `ret` with no active frame.
    RetWithoutCall {
        /// Program counter at the fault.
        pc: u32,
    },
    /// `in` with the input stream exhausted.
    InputExhausted {
        /// Program counter at the fault.
        pc: u32,
    },
    /// The step budget was exhausted (possible infinite loop).
    FuelExhausted,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::StackUnderflow { pc } => write!(f, "stack underflow at pc {pc}"),
            VmError::StackOverflow { pc } => write!(f, "stack overflow at pc {pc}"),
            VmError::CallStackOverflow { pc } => write!(f, "call stack overflow at pc {pc}"),
            VmError::DivideError { pc } => write!(f, "divide error at pc {pc}"),
            VmError::MemFault { pc, addr } => write!(f, "memory fault at pc {pc}, addr {addr}"),
            VmError::LocalFault { pc, slot } => write!(f, "bad local slot {slot} at pc {pc}"),
            VmError::PcOutOfRange { pc } => write!(f, "pc {pc} out of range"),
            VmError::RetWithoutCall { pc } => write!(f, "ret without call at pc {pc}"),
            VmError::InputExhausted { pc } => write!(f, "input exhausted at pc {pc}"),
            VmError::FuelExhausted => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for VmError {}

/// One call-stack frame (visible to debugger-style inspection, the way the
/// lab has students examine `%ebp` chains).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Code address to return to.
    pub return_pc: u32,
    /// Operand-stack depth at entry (for unwinding).
    pub stack_base: usize,
    /// The frame's local variable slots.
    pub locals: Vec<i64>,
}

/// The PDC-1 virtual machine.
#[derive(Debug, Clone)]
pub struct Vm {
    program: Program,
    /// Data memory (word addressed).
    pub mem: Vec<i64>,
    /// Operand stack.
    pub stack: Vec<i64>,
    /// Call stack.
    pub frames: Vec<Frame>,
    /// Program counter.
    pub pc: u32,
    input: std::collections::VecDeque<i64>,
    /// Values emitted by `out`.
    pub output: Vec<i64>,
    steps: u64,
    max_stack: usize,
    max_frames: usize,
    halted: bool,
}

impl Vm {
    /// Create a VM for `program` with `mem_words` words of zeroed memory.
    pub fn new(program: Program, mem_words: usize) -> Self {
        Vm {
            program,
            mem: vec![0; mem_words],
            stack: Vec::new(),
            frames: Vec::new(),
            pc: 0,
            input: std::collections::VecDeque::new(),
            output: Vec::new(),
            steps: 0,
            max_stack: 1 << 16,
            max_frames: 1 << 12,
            halted: false,
        }
    }

    /// Provide the input stream consumed by `in`.
    pub fn with_input(mut self, input: impl IntoIterator<Item = i64>) -> Self {
        self.input = input.into_iter().collect();
        self
    }

    /// Override the operand-stack limit.
    pub fn with_stack_limit(mut self, limit: usize) -> Self {
        self.max_stack = limit;
        self
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Whether the machine has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    fn pop(&mut self) -> Result<i64, VmError> {
        self.stack
            .pop()
            .ok_or(VmError::StackUnderflow { pc: self.pc })
    }

    fn push(&mut self, v: i64) -> Result<(), VmError> {
        if self.stack.len() >= self.max_stack {
            return Err(VmError::StackOverflow { pc: self.pc });
        }
        self.stack.push(v);
        Ok(())
    }

    fn mem_index(&self, addr: i64) -> Result<usize, VmError> {
        usize::try_from(addr)
            .ok()
            .filter(|&a| a < self.mem.len())
            .ok_or(VmError::MemFault { pc: self.pc, addr })
    }

    /// Execute one instruction. Returns `Ok(true)` if the machine is still
    /// running, `Ok(false)` after `halt`.
    pub fn step(&mut self) -> Result<bool, VmError> {
        if self.halted {
            return Ok(false);
        }
        let instr = *self
            .program
            .code
            .get(self.pc as usize)
            .ok_or(VmError::PcOutOfRange { pc: self.pc })?;
        self.steps += 1;
        let mut next_pc = self.pc + 1;
        match instr {
            Instr::Push(v) => self.push(v)?,
            Instr::Pop => {
                self.pop()?;
            }
            Instr::Dup => {
                let v = self.pop()?;
                self.push(v)?;
                self.push(v)?;
            }
            Instr::Swap => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.push(b)?;
                self.push(a)?;
            }
            Instr::Over => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.push(a)?;
                self.push(b)?;
                self.push(a)?;
            }
            Instr::Add
            | Instr::Sub
            | Instr::Mul
            | Instr::And
            | Instr::Or
            | Instr::Xor
            | Instr::Shl
            | Instr::Shr
            | Instr::Eq
            | Instr::Lt
            | Instr::Gt => {
                let b = self.pop()?;
                let a = self.pop()?;
                let r = match instr {
                    Instr::Add => a.wrapping_add(b),
                    Instr::Sub => a.wrapping_sub(b),
                    Instr::Mul => a.wrapping_mul(b),
                    Instr::And => a & b,
                    Instr::Or => a | b,
                    Instr::Xor => a ^ b,
                    Instr::Shl => a.wrapping_shl(b as u32 & 63),
                    Instr::Shr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
                    Instr::Eq => i64::from(a == b),
                    Instr::Lt => i64::from(a < b),
                    Instr::Gt => i64::from(a > b),
                    _ => unreachable!(),
                };
                self.push(r)?;
            }
            Instr::Div | Instr::Mod => {
                let b = self.pop()?;
                let a = self.pop()?;
                if b == 0 || (a == i64::MIN && b == -1) {
                    return Err(VmError::DivideError { pc: self.pc });
                }
                self.push(if matches!(instr, Instr::Div) {
                    a / b
                } else {
                    a % b
                })?;
            }
            Instr::Neg => {
                let a = self.pop()?;
                self.push(a.wrapping_neg())?;
            }
            Instr::Not => {
                let a = self.pop()?;
                self.push(!a)?;
            }
            Instr::Load => {
                let addr = self.pop()?;
                let idx = self.mem_index(addr)?;
                self.push(self.mem[idx])?;
            }
            Instr::Store => {
                let addr = self.pop()?;
                let value = self.pop()?;
                let idx = self.mem_index(addr)?;
                self.mem[idx] = value;
            }
            Instr::LoadLocal(slot) => {
                let frame = self
                    .frames
                    .last()
                    .ok_or(VmError::RetWithoutCall { pc: self.pc })?;
                let v = *frame
                    .locals
                    .get(slot as usize)
                    .ok_or(VmError::LocalFault { pc: self.pc, slot })?;
                self.push(v)?;
            }
            Instr::StoreLocal(slot) => {
                let v = self.pop()?;
                let pc = self.pc;
                let frame = self
                    .frames
                    .last_mut()
                    .ok_or(VmError::RetWithoutCall { pc })?;
                *frame
                    .locals
                    .get_mut(slot as usize)
                    .ok_or(VmError::LocalFault { pc, slot })? = v;
            }
            Instr::Jmp(a) => next_pc = a,
            Instr::Jz(a) => {
                if self.pop()? == 0 {
                    next_pc = a;
                }
            }
            Instr::Jnz(a) => {
                if self.pop()? != 0 {
                    next_pc = a;
                }
            }
            Instr::Call(a, locals) => {
                if self.frames.len() >= self.max_frames {
                    return Err(VmError::CallStackOverflow { pc: self.pc });
                }
                self.frames.push(Frame {
                    return_pc: next_pc,
                    stack_base: self.stack.len(),
                    locals: vec![0; locals as usize],
                });
                next_pc = a;
            }
            Instr::Ret => {
                let frame = self
                    .frames
                    .pop()
                    .ok_or(VmError::RetWithoutCall { pc: self.pc })?;
                next_pc = frame.return_pc;
            }
            Instr::Out => {
                let v = self.pop()?;
                self.output.push(v);
            }
            Instr::In => {
                let v = self
                    .input
                    .pop_front()
                    .ok_or(VmError::InputExhausted { pc: self.pc })?;
                self.push(v)?;
            }
            Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
                return Ok(false);
            }
        }
        self.pc = next_pc;
        Ok(true)
    }

    /// Run until `halt`, a trap, or `fuel` instructions have executed.
    pub fn run(&mut self, fuel: u64) -> Result<(), VmError> {
        for _ in 0..fuel {
            if !self.step()? {
                return Ok(());
            }
        }
        if self.halted {
            Ok(())
        } else {
            Err(VmError::FuelExhausted)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str, input: Vec<i64>) -> Result<Vm, VmError> {
        let prog = assemble(src).expect("assembles");
        let mut vm = Vm::new(prog, 256).with_input(input);
        vm.run(1_000_000)?;
        Ok(vm)
    }

    #[test]
    fn arithmetic_and_output() {
        let vm = run_src("push 2\npush 3\nadd\npush 4\nmul\nout\nhalt", vec![]).unwrap();
        assert_eq!(vm.output, vec![20]);
    }

    #[test]
    fn stack_manipulation() {
        // dup/swap/over
        let vm = run_src(
            "push 1\npush 2\nover\nout\nout\nout\nhalt", // 1 2 1 -> out 1,2,1
            vec![],
        )
        .unwrap();
        assert_eq!(vm.output, vec![1, 2, 1]);
    }

    #[test]
    fn loop_sums_one_to_n() {
        let src = r#"
            in              ; n
            push 0          ; n acc
        loop:
            over            ; n acc n
            jz done
            over            ; n acc n
            add             ; n acc'
            swap            ; acc' n
            push 1
            sub             ; acc' n-1
            swap            ; n-1 acc'
            jmp loop
        done:
            out             ; print acc
            halt
        "#;
        let vm = run_src(src, vec![10]).unwrap();
        assert_eq!(vm.output, vec![55]);
    }

    #[test]
    fn labels_resolve_forward_and_back() {
        let src = "jmp end\nstart: push 1\nout\nhalt\nend: jmp start";
        let vm = run_src(src, vec![]).unwrap();
        assert_eq!(vm.output, vec![1]);
    }

    #[test]
    fn call_ret_with_locals() {
        // square(x): reads arg from stack, stores in local, multiplies.
        let src = r#"
            in
            call square 1
            out
            halt
        square:
            storel 0
            loadl 0
            loadl 0
            mul
            ret
        "#;
        let vm = run_src(src, vec![7]).unwrap();
        assert_eq!(vm.output, vec![49]);
        assert!(vm.frames.is_empty(), "frames torn down");
    }

    #[test]
    fn recursion_factorial() {
        let src = r#"
            in
            call fact 1
            out
            halt
        fact:
            storel 0
            loadl 0
            jz base
            loadl 0
            push 1
            sub
            call fact 1
            loadl 0
            mul
            ret
        base:
            push 1
            ret
        "#;
        let vm = run_src(src, vec![10]).unwrap();
        assert_eq!(vm.output, vec![3628800]);
    }

    #[test]
    fn memory_load_store() {
        let src = "push 42\npush 5\nstore\npush 5\nload\nout\nhalt";
        let vm = run_src(src, vec![]).unwrap();
        assert_eq!(vm.output, vec![42]);
        assert_eq!(vm.mem[5], 42);
    }

    #[test]
    fn traps() {
        assert!(matches!(
            run_src("pop\nhalt", vec![]),
            Err(VmError::StackUnderflow { pc: 0 })
        ));
        assert!(matches!(
            run_src("push 1\npush 0\ndiv\nhalt", vec![]),
            Err(VmError::DivideError { .. })
        ));
        assert!(matches!(
            run_src("push 1\npush 9999\nstore\nhalt", vec![]),
            Err(VmError::MemFault { addr: 9999, .. })
        ));
        assert!(matches!(
            run_src("in\nhalt", vec![]),
            Err(VmError::InputExhausted { .. })
        ));
        assert!(matches!(
            run_src("ret", vec![]),
            Err(VmError::RetWithoutCall { .. })
        ));
        assert!(matches!(
            run_src("loop: jmp loop", vec![]),
            Err(VmError::FuelExhausted)
        ));
        assert!(matches!(
            run_src("nop", vec![]),
            Err(VmError::PcOutOfRange { pc: 1 })
        ));
    }

    #[test]
    fn runaway_recursion_trapped() {
        let err = run_src("f: call f 0", vec![]).unwrap_err();
        assert!(matches!(err, VmError::CallStackOverflow { .. }));
    }

    #[test]
    fn min_div_minus_one_traps() {
        let src = format!("push {}\npush -1\ndiv\nhalt", i64::MIN);
        assert!(matches!(
            run_src(&src, vec![]),
            Err(VmError::DivideError { .. })
        ));
    }

    #[test]
    fn assembler_errors() {
        assert!(matches!(
            assemble("frobnicate"),
            Err(AsmError::UnknownMnemonic { line: 1, .. })
        ));
        assert!(matches!(
            assemble("jmp nowhere"),
            Err(AsmError::UndefinedLabel { .. })
        ));
        assert!(matches!(
            assemble("a: nop\na: nop"),
            Err(AsmError::DuplicateLabel { line: 2, .. })
        ));
        assert!(matches!(assemble("push"), Err(AsmError::BadOperand { .. })));
        assert!(matches!(
            assemble("add 3"),
            Err(AsmError::BadOperand { .. })
        ));
    }

    #[test]
    fn disassemble_roundtrip() {
        let src = "push 5\nloop: dup\njz 6\npush 1\nsub\njmp loop\nhalt";
        let prog = assemble(src).unwrap();
        let text: Vec<String> = prog.code.iter().map(|&i| disassemble(i)).collect();
        // Re-assemble the disassembly (numeric targets) and compare code.
        let prog2 = assemble(&text.join("\n")).unwrap();
        assert_eq!(prog.code, prog2.code);
    }

    #[test]
    fn hex_and_binary_immediates() {
        let vm = run_src("push 0x10\npush 0b100\nor\nout\nhalt", vec![]).unwrap();
        assert_eq!(vm.output, vec![20]);
    }

    #[test]
    fn step_counting() {
        let vm = run_src("push 1\npush 2\nadd\nout\nhalt", vec![]).unwrap();
        assert_eq!(vm.steps(), 5);
        assert!(vm.halted());
    }
}
