//! Gate-level combinational circuits — the CS31 "Building an ALU" lab.
//!
//! Everything is built from two-input NAND gates (universality is part of
//! the lesson). A [`Circuit`] is a DAG of gates; it reports **gate count**
//! (hardware cost ~ work) and **depth** (propagation delay ~ span), which
//! ties the hardware story to the work/span story of `pdc-core`.
//!
//! The adder builders make the parallelism lesson concrete: the
//! ripple-carry adder has Θ(n) depth, while the Kogge–Stone adder computes
//! carries with a parallel *prefix* network in Θ(log n) depth — the same
//! scan pattern CS41 teaches in software.

/// Handle to a node inside a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wire(usize);

#[derive(Debug, Clone)]
enum Node {
    /// External input, by index into the circuit's input list.
    Input(usize),
    /// Constant signal.
    Const(bool),
    /// Two-input NAND — the only real gate.
    Nand(Wire, Wire),
}

/// A combinational circuit: a DAG of NAND gates over named inputs.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    nodes: Vec<Node>,
    input_names: Vec<String>,
}

impl Circuit {
    /// An empty circuit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an external input and get its wire.
    pub fn input(&mut self, name: impl Into<String>) -> Wire {
        let idx = self.input_names.len();
        self.input_names.push(name.into());
        self.push(Node::Input(idx))
    }

    /// Declare `n` inputs named `prefix0..prefixN-1`, LSB first.
    pub fn input_bus(&mut self, prefix: &str, n: usize) -> Vec<Wire> {
        (0..n).map(|i| self.input(format!("{prefix}{i}"))).collect()
    }

    /// A constant wire.
    pub fn constant(&mut self, v: bool) -> Wire {
        self.push(Node::Const(v))
    }

    fn push(&mut self, node: Node) -> Wire {
        self.nodes.push(node);
        Wire(self.nodes.len() - 1)
    }

    /// The primitive gate.
    pub fn nand(&mut self, a: Wire, b: Wire) -> Wire {
        self.push(Node::Nand(a, b))
    }

    /// NOT from one NAND.
    pub fn not(&mut self, a: Wire) -> Wire {
        self.nand(a, a)
    }

    /// AND from two NANDs.
    pub fn and(&mut self, a: Wire, b: Wire) -> Wire {
        let n = self.nand(a, b);
        self.not(n)
    }

    /// OR from three NANDs (De Morgan).
    pub fn or(&mut self, a: Wire, b: Wire) -> Wire {
        let na = self.not(a);
        let nb = self.not(b);
        self.nand(na, nb)
    }

    /// XOR from four NANDs (the classic minimal construction).
    pub fn xor(&mut self, a: Wire, b: Wire) -> Wire {
        let nab = self.nand(a, b);
        let x = self.nand(a, nab);
        let y = self.nand(b, nab);
        self.nand(x, y)
    }

    /// 2-to-1 multiplexer: `sel ? b : a`.
    pub fn mux2(&mut self, sel: Wire, a: Wire, b: Wire) -> Wire {
        let ns = self.not(sel);
        let pa = self.and(ns, a);
        let pb = self.and(sel, b);
        self.or(pa, pb)
    }

    /// Half adder: returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: Wire, b: Wire) -> (Wire, Wire) {
        (self.xor(a, b), self.and(a, b))
    }

    /// Full adder: returns `(sum, carry_out)`.
    pub fn full_adder(&mut self, a: Wire, b: Wire, cin: Wire) -> (Wire, Wire) {
        let (s1, c1) = self.half_adder(a, b);
        let (sum, c2) = self.half_adder(s1, cin);
        let cout = self.or(c1, c2);
        (sum, cout)
    }

    /// Ripple-carry adder over two LSB-first buses; returns
    /// `(sum_bus, carry_out)`. Depth grows linearly in width.
    ///
    /// # Panics
    /// Panics if buses differ in width or are empty.
    pub fn ripple_adder(&mut self, a: &[Wire], b: &[Wire], cin: Wire) -> (Vec<Wire>, Wire) {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        assert!(!a.is_empty(), "empty bus");
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (&ai, &bi) in a.iter().zip(b) {
            let (s, c) = self.full_adder(ai, bi, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Kogge–Stone carry-lookahead adder; returns `(sum_bus, carry_out)`.
    ///
    /// Computes generate/propagate pairs, combines them with a
    /// Kogge–Stone parallel-prefix network (`log2` levels), then forms the
    /// sums. Depth is Θ(log n) versus the ripple adder's Θ(n) — the
    /// hardware incarnation of parallel scan.
    pub fn kogge_stone_adder(&mut self, a: &[Wire], b: &[Wire], cin: Wire) -> (Vec<Wire>, Wire) {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        assert!(!a.is_empty(), "empty bus");
        let n = a.len();
        // g[i] = a & b (generate), p[i] = a ^ b (propagate).
        let mut g: Vec<Wire> = Vec::with_capacity(n);
        let mut p: Vec<Wire> = Vec::with_capacity(n);
        for i in 0..n {
            g.push(self.and(a[i], b[i]));
            p.push(self.xor(a[i], b[i]));
        }
        let p_orig = p.clone();
        // Fold cin into position 0: g0' = g0 | (p0 & cin).
        let t = self.and(p[0], cin);
        g[0] = self.or(g[0], t);
        // Kogge–Stone prefix: (g, p) ∘ (g', p') = (g | (p & g'), p & p').
        let mut dist = 1;
        while dist < n {
            let (g_prev, p_prev) = (g.clone(), p.clone());
            for i in dist..n {
                let t = self.and(p_prev[i], g_prev[i - dist]);
                g[i] = self.or(g_prev[i], t);
                p[i] = self.and(p_prev[i], p_prev[i - dist]);
            }
            dist *= 2;
        }
        // carry into bit i is g[i-1] (with cin folded in); sum = p ^ carry_in.
        let mut sum = Vec::with_capacity(n);
        let s0 = self.xor(p_orig[0], cin);
        sum.push(s0);
        for i in 1..n {
            let s = self.xor(p_orig[i], g[i - 1]);
            sum.push(s);
        }
        (sum, g[n - 1])
    }

    /// Total NAND-gate count (inputs and constants are free).
    pub fn gate_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Nand(..)))
            .count()
    }

    /// Propagation depth (longest gate chain) to reach `wire`.
    pub fn depth_of(&self, wire: Wire) -> usize {
        let mut memo = vec![usize::MAX; self.nodes.len()];
        self.depth_rec(wire, &mut memo)
    }

    fn depth_rec(&self, w: Wire, memo: &mut [usize]) -> usize {
        if memo[w.0] != usize::MAX {
            return memo[w.0];
        }
        let d = match self.nodes[w.0] {
            Node::Input(_) | Node::Const(_) => 0,
            Node::Nand(a, b) => 1 + self.depth_rec(a, memo).max(self.depth_rec(b, memo)),
        };
        memo[w.0] = d;
        d
    }

    /// Maximum depth over a set of wires (e.g. an output bus).
    pub fn depth_of_bus(&self, wires: &[Wire]) -> usize {
        wires.iter().map(|&w| self.depth_of(w)).max().unwrap_or(0)
    }

    /// Evaluate the circuit for the given input assignment (by declaration
    /// order) and read the listed output wires.
    ///
    /// # Panics
    /// Panics if `inputs` does not match the declared input count.
    pub fn eval(&self, inputs: &[bool], outputs: &[Wire]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.input_names.len(),
            "expected {} inputs",
            self.input_names.len()
        );
        // Nodes are created in topological order by construction.
        let mut val = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            val[i] = match *node {
                Node::Input(idx) => inputs[idx],
                Node::Const(c) => c,
                Node::Nand(a, b) => !(val[a.0] && val[b.0]),
            };
        }
        outputs.iter().map(|&w| val[w.0]).collect()
    }

    /// Helper: evaluate a bus as an LSB-first unsigned integer.
    pub fn eval_bus_u64(&self, inputs: &[bool], bus: &[Wire]) -> u64 {
        let bits = self.eval(inputs, bus);
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }
}

/// Encode a `width`-bit unsigned value as LSB-first bools (test helper and
/// lab utility).
pub fn to_bits(value: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| value >> i & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_gates_truth_tables() {
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut c = Circuit::new();
            let wa = c.input("a");
            let wb = c.input("b");
            let w_nand = c.nand(wa, wb);
            let w_and = c.and(wa, wb);
            let w_or = c.or(wa, wb);
            let w_xor = c.xor(wa, wb);
            let w_not = c.not(wa);
            let out = c.eval(&[a, b], &[w_nand, w_and, w_or, w_xor, w_not]);
            assert_eq!(out[0], !(a && b));
            assert_eq!(out[1], a && b);
            assert_eq!(out[2], a || b);
            assert_eq!(out[3], a ^ b);
            assert_eq!(out[4], !a);
        }
    }

    #[test]
    fn mux_selects() {
        let mut c = Circuit::new();
        let s = c.input("s");
        let a = c.input("a");
        let b = c.input("b");
        let m = c.mux2(s, a, b);
        assert_eq!(c.eval(&[false, true, false], &[m]), vec![true]); // sel=0 -> a
        assert_eq!(c.eval(&[true, true, false], &[m]), vec![false]); // sel=1 -> b
    }

    #[test]
    fn full_adder_truth_table() {
        for bits in 0..8u32 {
            let (a, b, cin) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
            let mut c = Circuit::new();
            let wa = c.input("a");
            let wb = c.input("b");
            let wc = c.input("cin");
            let (s, cout) = c.full_adder(wa, wb, wc);
            let out = c.eval(&[a, b, cin], &[s, cout]);
            let total = u8::from(a) + u8::from(b) + u8::from(cin);
            assert_eq!(out[0], total & 1 == 1, "sum for {bits:03b}");
            assert_eq!(out[1], total >= 2, "carry for {bits:03b}");
        }
    }

    fn check_adder_exhaustive_8bit(kogge: bool) {
        let width = 8;
        let mut c = Circuit::new();
        let a = c.input_bus("a", width);
        let b = c.input_bus("b", width);
        let cin = c.constant(false);
        let (sum, cout) = if kogge {
            c.kogge_stone_adder(&a, &b, cin)
        } else {
            c.ripple_adder(&a, &b, cin)
        };
        for x in (0..256u64).step_by(7) {
            for y in (0..256u64).step_by(11) {
                let mut inputs = to_bits(x, width);
                inputs.extend(to_bits(y, width));
                let got = c.eval_bus_u64(&inputs, &sum);
                assert_eq!(got, (x + y) & 0xFF, "{x}+{y} ({kogge})");
                let carry = c.eval(&inputs, &[cout])[0];
                assert_eq!(carry, x + y > 0xFF, "carry {x}+{y}");
            }
        }
    }

    #[test]
    fn ripple_adder_correct() {
        check_adder_exhaustive_8bit(false);
    }

    #[test]
    fn kogge_stone_adder_correct() {
        check_adder_exhaustive_8bit(true);
    }

    #[test]
    fn kogge_stone_with_carry_in() {
        let width = 8;
        let mut c = Circuit::new();
        let a = c.input_bus("a", width);
        let b = c.input_bus("b", width);
        let cin = c.input("cin");
        let (sum, cout) = c.kogge_stone_adder(&a, &b, cin);
        for (x, y) in [(0u64, 0u64), (255, 0), (254, 1), (100, 155), (128, 127)] {
            let mut inputs = to_bits(x, width);
            inputs.extend(to_bits(y, width));
            inputs.push(true); // cin = 1
            let got = c.eval_bus_u64(&inputs, &sum);
            assert_eq!(got, (x + y + 1) & 0xFF, "{x}+{y}+1");
            let carry = c.eval(&inputs, &[cout])[0];
            assert_eq!(carry, x + y + 1 > 0xFF);
        }
    }

    #[test]
    fn kogge_stone_is_shallower_than_ripple() {
        let width = 32;
        let mut r = Circuit::new();
        let a = r.input_bus("a", width);
        let b = r.input_bus("b", width);
        let cin = r.constant(false);
        let (sum_r, _) = r.ripple_adder(&a, &b, cin);
        let ripple_depth = r.depth_of_bus(&sum_r);

        let mut k = Circuit::new();
        let a = k.input_bus("a", width);
        let b = k.input_bus("b", width);
        let cin = k.constant(false);
        let (sum_k, _) = k.kogge_stone_adder(&a, &b, cin);
        let kogge_depth = k.depth_of_bus(&sum_k);

        assert!(
            kogge_depth * 2 < ripple_depth,
            "expected big depth win: kogge {kogge_depth} vs ripple {ripple_depth}"
        );
        // And it pays for depth with more gates (work/span trade-off).
        assert!(k.gate_count() > r.gate_count());
    }

    #[test]
    fn depth_and_count_basics() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let n1 = c.not(a); // 1 gate, depth 1
        let n2 = c.not(n1); // depth 2
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.depth_of(a), 0);
        assert_eq!(c.depth_of(n2), 2);
    }

    #[test]
    #[should_panic(expected = "expected 2 inputs")]
    fn eval_input_count_checked() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let x = c.and(a, b);
        c.eval(&[true], &[x]);
    }
}
