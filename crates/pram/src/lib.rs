//! # pdc-pram — a PRAM simulator with work/span accounting
//!
//! CS41's parallel-models unit (paper Table III) teaches the PRAM:
//! synchronous processors sharing a memory, classified by how they may
//! collide — EREW, CREW, and the CRCW variants. This crate simulates that
//! machine *with the collision rules enforced*: an algorithm that performs
//! a concurrent read under EREW is a bug, and the simulator reports it as
//! one.
//!
//! * [`machine`] — the simulator: synchronous steps, access-mode
//!   checking, step/work counters, and Brent-style time-on-`p` replay.
//! * [`algos`] — the classic algorithms analyzed in CS41: parallel
//!   reduce, Hillis–Steele and Blelloch scans, EREW broadcast by
//!   doubling, the O(1) CRCW maximum, and list ranking by pointer
//!   jumping.
//!
//! Every algorithm returns both its result and the simulator's measured
//! cost, which the tests compare against the closed-form work/span from
//! `pdc_core::workspan::closed_form`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algos;
pub mod machine;

pub use machine::{Mode, Pram, PramError};
