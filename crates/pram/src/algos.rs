//! Classic PRAM algorithms with measured work/span.
//!
//! Each function builds a fresh [`Pram`], runs the textbook algorithm,
//! and returns the answer together with the machine (so callers can query
//! [`Pram::work_span`] and [`Pram::time_on`]). The tests check both
//! correctness and the asymptotic counts CS41 derives on the board:
//!
//! | algorithm            | mode        | steps (span) | work        |
//! |----------------------|-------------|--------------|-------------|
//! | reduce               | EREW        | ⌈log₂ n⌉     | n−1 (+idle) |
//! | Hillis–Steele scan   | CREW        | ⌈log₂ n⌉     | Θ(n log n)  |
//! | Blelloch scan        | EREW        | 2⌈log₂ n⌉    | Θ(n)        |
//! | broadcast (doubling) | EREW        | ⌈log₂ n⌉     | Θ(n)        |
//! | maximum              | CRCW-common | O(1)         | Θ(n²)       |
//! | list ranking         | CREW        | ⌈log₂ n⌉+1   | Θ(n log n)  |

use crate::machine::{Mode, Pram, PramError};
use pdc_core::workspan::{Bounds, Theta};

/// Declared asymptotic bounds for every algorithm in this module — the
/// registry entries the span gate (and the sweep test below) curve-fit
/// measured `Pram::work_span` sweeps against. Names match the function
/// names; span classes are the `steps()` column of the module table.
pub fn declared_bounds() -> Vec<(&'static str, Bounds)> {
    vec![
        ("reduce_sum", Bounds::new(Theta::Linear, Theta::Log)),
        ("scan_hillis_steele", Bounds::new(Theta::NLogN, Theta::Log)),
        ("scan_blelloch", Bounds::new(Theta::Linear, Theta::Log)),
        ("broadcast_erew", Bounds::new(Theta::Linear, Theta::Log)),
        (
            "max_crcw_constant_time",
            Bounds::new(Theta::Quadratic, Theta::Const),
        ),
        ("list_rank", Bounds::new(Theta::NLogN, Theta::Log)),
        (
            "odd_even_transposition_sort",
            Bounds::new(Theta::Quadratic, Theta::Linear),
        ),
    ]
}

/// Parallel sum-reduce of `input` on an EREW PRAM (binary tree).
///
/// Memory layout: the array lives at `0..n`; pairs combine in place at
/// stride-doubling offsets. Returns `(sum, machine)`.
pub fn reduce_sum(input: &[i64]) -> Result<(i64, Pram), PramError> {
    let n = input.len();
    let mut pram = Pram::new(Mode::Erew, n.max(1));
    pram.load(0, input);
    if n == 0 {
        return Ok((0, pram));
    }
    let mut stride = 1usize;
    while stride < n {
        // Processor i combines positions 2*i*stride and (2*i+1)*stride.
        let procs: Vec<usize> = (0..n.div_ceil(2 * stride))
            .filter(|&i| 2 * i * stride + stride < n)
            .collect();
        let s = stride;
        pram.step(&procs, |ctx| {
            let base = 2 * ctx.id() * s;
            let a = ctx.read(base);
            let b = ctx.read(base + s);
            Some((base, a + b))
        })?;
        stride *= 2;
    }
    Ok((pram.peek(0), pram))
}

/// Inclusive scan by the Hillis–Steele method on a CREW PRAM:
/// span Θ(log n) but work Θ(n log n) — the work-*inefficient* scan.
///
/// Uses double buffering (ping-pong between `0..n` and `n..2n`) so reads
/// and writes never collide. Returns `(scan, machine)`.
pub fn scan_hillis_steele(input: &[i64]) -> Result<(Vec<i64>, Pram), PramError> {
    let n = input.len();
    let mut pram = Pram::new(Mode::Crew, (2 * n).max(1));
    pram.load(0, input);
    if n == 0 {
        return Ok((Vec::new(), pram));
    }
    let mut src = 0usize;
    let mut dst = n;
    let mut stride = 1usize;
    while stride < n {
        let procs: Vec<usize> = (0..n).collect();
        let (s, sr, ds) = (stride, src, dst);
        pram.step(&procs, |ctx| {
            let i = ctx.id();
            let v = ctx.read(sr + i);
            let out = if i >= s { v + ctx.read(sr + i - s) } else { v };
            Some((ds + i, out))
        })?;
        std::mem::swap(&mut src, &mut dst);
        stride *= 2;
    }
    Ok((pram.peek_range(src..src + n).to_vec(), pram))
}

/// Exclusive scan by Blelloch's two-phase method on an EREW PRAM:
/// span Θ(log n), work Θ(n) — the work-*efficient* scan.
///
/// Requires `n` to be a power of two (pad with the identity otherwise).
/// Returns `(exclusive_scan, total, machine)`.
pub fn scan_blelloch(input: &[i64]) -> Result<(Vec<i64>, i64, Pram), PramError> {
    let n = input.len();
    assert!(n.is_power_of_two(), "Blelloch scan requires power-of-two n");
    let mut pram = Pram::new(Mode::Erew, n + 1); // extra cell saves the total
    pram.load(0, input);
    // Up-sweep.
    let mut stride = 1usize;
    while stride < n {
        let s = stride;
        let procs: Vec<usize> = (0..n / (2 * stride)).collect();
        pram.step(&procs, |ctx| {
            let right = (2 * ctx.id() + 2) * s - 1;
            let left = (2 * ctx.id() + 1) * s - 1;
            let sum = ctx.read(left) + ctx.read(right);
            Some((right, sum))
        })?;
        stride *= 2;
    }
    // Save total and clear the root.
    pram.step(&[0], |ctx| Some((n, ctx.read(n - 1))))?;
    pram.step(&[0], |_| Some((n - 1, 0)))?;
    // Down-sweep.
    let mut stride = n / 2;
    while stride >= 1 {
        let s = stride;
        // Each down-sweep level needs two writes per node pair (left and
        // right); a PRAM processor writes once per step, so each level is
        // two EREW steps: right' = left + parent, then left' = parent
        // (recovered as right' - left).
        let procs2: Vec<usize> = (0..n / (2 * stride)).collect();
        pram.step(&procs2, |ctx| {
            let left = (2 * ctx.id() + 1) * s - 1;
            let right = (2 * ctx.id() + 2) * s - 1;
            let l = ctx.read(left);
            let p = ctx.read(right);
            Some((right, l + p))
        })?;
        // Then write left (left' = old parent = right' - left), reading
        // the *new* right and old left.
        let procs3: Vec<usize> = (0..n / (2 * stride)).collect();
        pram.step(&procs3, |ctx| {
            let left = (2 * ctx.id() + 1) * s - 1;
            let right = (2 * ctx.id() + 2) * s - 1;
            let new_right = ctx.read(right);
            let l = ctx.read(left);
            Some((left, new_right - l))
        })?;
        if stride == 1 {
            break;
        }
        stride /= 2;
    }
    let scan = pram.peek_range(0..n).to_vec();
    let total = pram.peek(n);
    Ok((scan, total, pram))
}

/// EREW broadcast of `value` to `n` cells by recursive doubling:
/// span ⌈log₂ n⌉, work Θ(n) — the standard fix for "everyone reads cell
/// 0", which EREW forbids.
pub fn broadcast_erew(value: i64, n: usize) -> Result<(Vec<i64>, Pram), PramError> {
    let mut pram = Pram::new(Mode::Erew, n.max(1));
    if n == 0 {
        return Ok((Vec::new(), pram));
    }
    pram.load(0, &[value]);
    let mut have = 1usize;
    while have < n {
        let copies = have.min(n - have);
        let h = have;
        pram.step(&(0..copies).collect::<Vec<_>>(), |ctx| {
            let src = ctx.id();
            let dst = h + ctx.id();
            Some((dst, ctx.read(src)))
        })?;
        have += copies;
    }
    Ok((pram.peek_range(0..n).to_vec(), pram))
}

/// Constant-time maximum on a CRCW-common PRAM with n² processors.
///
/// Step 1: `n²` processors compare all pairs; any processor whose left
/// element loses a comparison marks it "not max" (all writers agree on
/// the value 0, so CRCW-common permits the collisions).
/// Step 2: `n` processors — the one whose flag survived writes the max.
///
/// Returns `(max, machine)`. Panics on empty input.
pub fn max_crcw_constant_time(input: &[i64]) -> Result<(i64, Pram), PramError> {
    assert!(!input.is_empty(), "max of empty input");
    let n = input.len();
    // Layout: values 0..n, flags n..2n, result at 2n.
    let mut pram = Pram::new(Mode::CrcwCommon, 2 * n + 1);
    pram.load(0, input);
    // Init flags to 1 (candidate).
    pram.step(&(0..n).collect::<Vec<_>>(), |ctx| Some((n + ctx.id(), 1)))?;
    // All-pairs comparison: proc k = i*n + j checks whether value i loses
    // to value j (ties broken by index so exactly one candidate remains).
    let procs: Vec<usize> = (0..n * n).collect();
    pram.step(&procs, |ctx| {
        let i = ctx.id() / n;
        let j = ctx.id() % n;
        if i == j {
            return None;
        }
        let vi = ctx.read(i);
        let vj = ctx.read(j);
        let i_loses = (vi, i) < (vj, j);
        if i_loses {
            Some((n + i, 0)) // common value 0: all writers agree
        } else {
            None
        }
    })?;
    // The surviving candidate publishes.
    pram.step(&(0..n).collect::<Vec<_>>(), |ctx| {
        let i = ctx.id();
        if ctx.read(n + i) == 1 {
            Some((2 * n, ctx.read(i)))
        } else {
            None
        }
    })?;
    Ok((pram.peek(2 * n), pram))
}

/// List ranking by pointer jumping on a CREW PRAM.
///
/// Input: `next[i]` is the successor index of node `i`, with the list
/// tail pointing to itself. Output: `rank[i]` = distance from `i` to the
/// tail. Span Θ(log n), work Θ(n log n).
pub fn list_rank(next: &[usize]) -> Result<(Vec<u64>, Pram), PramError> {
    let n = next.len();
    for (i, &nx) in next.iter().enumerate() {
        assert!(nx < n, "next[{i}] out of range");
    }
    if n == 0 {
        return Ok((Vec::new(), Pram::new(Mode::Crew, 1)));
    }
    // Layout: next pointers at 0..n (ping) and n..2n (pong),
    //         ranks at 2n..3n (ping) and 3n..4n (pong).
    let mut pram = Pram::new(Mode::Crew, 4 * n);
    let next_i64: Vec<i64> = next.iter().map(|&x| x as i64).collect();
    pram.load(0, &next_i64);
    // rank[i] = 0 if next[i] == i else 1.
    pram.step(&(0..n).collect::<Vec<_>>(), |ctx| {
        let i = ctx.id();
        let nx = ctx.read(i);
        Some((2 * n + i, i64::from(nx != i as i64)))
    })?;
    let mut src = 0usize; // 0 = ping, 1 = pong
    let mut rounds = 0;
    while (1usize << rounds) < n {
        let (next_src, rank_src, next_dst, rank_dst) = if src == 0 {
            (0, 2 * n, n, 3 * n)
        } else {
            (n, 3 * n, 0, 2 * n)
        };
        // Two sub-steps to stay within one-write-per-proc: first ranks,
        // then pointers.
        pram.step(&(0..n).collect::<Vec<_>>(), |ctx| {
            let i = ctx.id();
            let nx = ctx.read(next_src + i) as usize;
            let r = ctx.read(rank_src + i);
            let add = if nx != i { ctx.read(rank_src + nx) } else { 0 };
            Some((rank_dst + i, r + add))
        })?;
        pram.step(&(0..n).collect::<Vec<_>>(), |ctx| {
            let i = ctx.id();
            let nx = ctx.read(next_src + i) as usize;
            let nn = ctx.read(next_src + nx);
            Some((next_dst + i, nn))
        })?;
        src ^= 1;
        rounds += 1;
    }
    let rank_base = if src == 0 { 2 * n } else { 3 * n };
    let ranks = pram
        .peek_range(rank_base..rank_base + n)
        .iter()
        .map(|&r| r as u64)
        .collect();
    Ok((ranks, pram))
}

/// Odd-even transposition sort on an EREW PRAM: `n` rounds of disjoint
/// compare-exchanges, span Θ(n), work Θ(n²) — the network-style sort
/// CS41 contrasts with work-efficient Θ(n log n) sorts.
///
/// A PRAM processor writes once per step, and a compare-exchange must
/// write two cells without losing either old value; each round is
/// therefore three EREW steps through a scratch region at `n..2n`:
/// (A) save the pair minimum to scratch, (B) write the maximum to the
/// right slot (old values still intact), (C) copy the minimum to the
/// left slot.
pub fn odd_even_transposition_sort(input: &[i64]) -> Result<(Vec<i64>, Pram), PramError> {
    let n = input.len();
    let mut pram = Pram::new(Mode::Erew, (2 * n).max(1));
    pram.load(0, input);
    if n <= 1 {
        return Ok((input.to_vec(), pram));
    }
    for round in 0..n {
        let start = round % 2; // even rounds pair (0,1),(2,3)…; odd (1,2),(3,4)…
        if n - start < 2 {
            continue;
        }
        let procs: Vec<usize> = (0..(n - start) / 2).collect();
        let s = start;
        // A: scratch[pair-left] = min(left, right).
        pram.step(&procs, |ctx| {
            let i = s + 2 * ctx.id();
            let a = ctx.read(i);
            let b = ctx.read(i + 1);
            Some((n + i, a.min(b)))
        })?;
        // B: right = max(left, right) — both originals still in place.
        pram.step(&procs, |ctx| {
            let i = s + 2 * ctx.id();
            let a = ctx.read(i);
            let b = ctx.read(i + 1);
            Some((i + 1, a.max(b)))
        })?;
        // C: left = saved minimum.
        pram.step(&procs, |ctx| {
            let i = s + 2 * ctx.id();
            Some((i, ctx.read(n + i)))
        })?;
    }
    Ok((pram.peek_range(0..n).to_vec(), pram))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::workspan::closed_form;

    #[test]
    fn reduce_matches_serial_and_span_is_log() {
        for n in [1usize, 2, 3, 5, 8, 17, 64, 100] {
            let input: Vec<i64> = (0..n as i64).map(|i| i * 3 - 7).collect();
            let (sum, pram) = reduce_sum(&input).unwrap();
            assert_eq!(sum, input.iter().sum::<i64>(), "n={n}");
            if n > 1 {
                assert_eq!(pram.steps(), closed_form::ceil_log2(n as u64), "n={n}");
            }
        }
    }

    #[test]
    fn reduce_work_is_n_minus_one() {
        let input: Vec<i64> = (0..64).collect();
        let (_, pram) = reduce_sum(&input).unwrap();
        // Exactly n-1 combine activations.
        assert_eq!(pram.work(), 63);
    }

    #[test]
    fn hillis_steele_matches_serial_scan() {
        for n in [1usize, 2, 7, 32, 100] {
            let input: Vec<i64> = (0..n as i64).map(|i| i % 5 - 2).collect();
            let (scan, pram) = scan_hillis_steele(&input).unwrap();
            let mut acc = 0;
            let want: Vec<i64> = input
                .iter()
                .map(|&x| {
                    acc += x;
                    acc
                })
                .collect();
            assert_eq!(scan, want, "n={n}");
            if n > 1 {
                assert_eq!(pram.steps(), closed_form::ceil_log2(n as u64));
            }
        }
    }

    #[test]
    fn hillis_steele_work_is_n_log_n() {
        let n = 64u64;
        let input: Vec<i64> = (0..n as i64).collect();
        let (_, pram) = scan_hillis_steele(&input).unwrap();
        assert_eq!(pram.work(), n * closed_form::ceil_log2(n));
    }

    #[test]
    fn blelloch_matches_serial_exclusive_scan() {
        for n in [2usize, 4, 8, 64, 256] {
            let input: Vec<i64> = (0..n as i64).map(|i| (i * 7) % 11 - 5).collect();
            let (scan, total, _) = scan_blelloch(&input).unwrap();
            let mut acc = 0;
            let want: Vec<i64> = input
                .iter()
                .map(|&x| {
                    let v = acc;
                    acc += x;
                    v
                })
                .collect();
            assert_eq!(scan, want, "n={n}");
            assert_eq!(total, acc);
        }
    }

    #[test]
    fn blelloch_is_work_efficient_vs_hillis_steele() {
        let n = 1024usize;
        let input: Vec<i64> = (0..n as i64).collect();
        let (_, _, b) = scan_blelloch(&input).unwrap();
        let (_, hs) = scan_hillis_steele(&input).unwrap();
        // Blelloch does Θ(n) combine work; Hillis–Steele Θ(n log n).
        assert!(
            b.work() * 2 < hs.work(),
            "blelloch {} vs hillis-steele {}",
            b.work(),
            hs.work()
        );
        // But Blelloch's span is about double.
        assert!(b.steps() > hs.steps());
    }

    #[test]
    fn broadcast_fills_all_cells_in_log_steps() {
        for n in [1usize, 2, 3, 8, 33, 128] {
            let (cells, pram) = broadcast_erew(9, n).unwrap();
            assert_eq!(cells, vec![9; n], "n={n}");
            if n > 1 {
                assert_eq!(pram.steps(), closed_form::ceil_log2(n as u64), "n={n}");
            }
        }
    }

    #[test]
    fn crcw_max_constant_steps() {
        let input: Vec<i64> = vec![3, -1, 41, 7, 41, 0];
        let (max, pram) = max_crcw_constant_time(&input).unwrap();
        assert_eq!(max, 41);
        // Steps independent of n: init flags, compare, publish.
        assert_eq!(pram.steps(), 3);
        // Work is quadratic.
        assert!(pram.work() >= (input.len() * input.len()) as u64);
    }

    #[test]
    fn crcw_max_single_element_and_negatives() {
        let (max, _) = max_crcw_constant_time(&[-5]).unwrap();
        assert_eq!(max, -5);
        let (max, _) = max_crcw_constant_time(&[-5, -2, -9]).unwrap();
        assert_eq!(max, -2);
    }

    #[test]
    fn list_rank_simple_chain() {
        // 0 -> 1 -> 2 -> 3 -> 3 (tail).
        let next = vec![1, 2, 3, 3];
        let (ranks, pram) = list_rank(&next).unwrap();
        assert_eq!(ranks, vec![3, 2, 1, 0]);
        // Span: init + 2 per round, ceil(log2 4) = 2 rounds.
        assert_eq!(pram.steps(), 1 + 2 * 2);
    }

    #[test]
    fn list_rank_scrambled_order() {
        // A list threaded through the array in scrambled order:
        // 4 -> 0 -> 2 -> 5 -> 1 -> 3 -> 3.
        let next = vec![2, 3, 5, 3, 0, 1];
        let (ranks, _) = list_rank(&next).unwrap();
        // Distances to tail (node 3): node4=5, node0=4, node2=3, node5=2,
        // node1=1, node3=0.
        assert_eq!(ranks, vec![4, 1, 3, 0, 5, 2]);
    }

    #[test]
    fn list_rank_singleton() {
        let (ranks, _) = list_rank(&[0]).unwrap();
        assert_eq!(ranks, vec![0]);
    }

    #[test]
    fn odd_even_sort_correct_various_inputs() {
        for data in [
            vec![],
            vec![5],
            vec![2, 1],
            vec![3, 1, 4, 1, 5, 9, 2, 6],
            (0..20).rev().collect::<Vec<i64>>(),
            vec![7; 10],
            (0..33).map(|i| (i * 29) % 17).collect::<Vec<i64>>(),
        ] {
            let (sorted, _) = odd_even_transposition_sort(&data).unwrap();
            let mut want = data.clone();
            want.sort();
            assert_eq!(sorted, want, "input {data:?}");
        }
    }

    #[test]
    fn odd_even_sort_span_is_linear_work_quadratic() {
        let n = 32usize;
        let data: Vec<i64> = (0..n as i64).rev().collect();
        let (_, pram) = odd_even_transposition_sort(&data).unwrap();
        // 3 steps per round, n rounds.
        assert_eq!(pram.steps(), 3 * n as u64);
        // Work ~ 3 * n/2 per round * n rounds.
        let ws = pram.work_span();
        assert!(ws.work >= (n * n) as u64, "work {}", ws.work);
        // Span linear => parallelism ~ n/2: far below reduce's n/log n.
        assert!(ws.parallelism() < n as f64);
    }
    #[test]
    fn declared_bounds_track_measured_sweeps() {
        // Run each algorithm over a 64x size sweep and curve-fit the
        // simulator's *measured* work/span against the registry
        // declaration. Tolerance 1.6 absorbs ceil_log2 granularity and
        // the +1-ish additive terms of the real implementations.
        let registry = declared_bounds();
        let find = |name: &str| {
            registry
                .iter()
                .find(|(k, _)| *k == name)
                .unwrap_or_else(|| panic!("{name} not in registry"))
                .1
        };
        let sizes = [64usize, 256, 1024, 4096];
        let sweep = |measure: &dyn Fn(usize) -> Pram| -> Vec<_> {
            sizes
                .iter()
                .map(|&n| (n as u64, measure(n).work_span()))
                .collect()
        };
        type MeasuredCase = (&'static str, Box<dyn Fn(usize) -> Pram>);
        let cases: Vec<MeasuredCase> = vec![
            (
                "reduce_sum",
                Box::new(|n| reduce_sum(&vec![1i64; n]).unwrap().1),
            ),
            (
                "scan_hillis_steele",
                Box::new(|n| scan_hillis_steele(&vec![1i64; n]).unwrap().1),
            ),
            (
                "scan_blelloch",
                Box::new(|n| scan_blelloch(&vec![1i64; n]).unwrap().2),
            ),
            (
                "broadcast_erew",
                Box::new(|n| broadcast_erew(7, n).unwrap().1),
            ),
            (
                "list_rank",
                Box::new(|n| {
                    let next: Vec<usize> = (0..n).map(|i| (i + 1).min(n - 1)).collect();
                    list_rank(&next).unwrap().1
                }),
            ),
        ];
        for (name, measure) in &cases {
            let samples = sweep(measure.as_ref());
            let (w, s) = find(name).fit(&samples, 1.6);
            assert!(w.ok, "{name} work: {w:?} over {samples:?}");
            assert!(s.ok, "{name} span: {s:?}");
        }
        // The quadratic-work pair sweeps smaller sizes (n² processors).
        let small: Vec<_> = [16usize, 32, 64, 128]
            .iter()
            .map(|&n| {
                (
                    n as u64,
                    max_crcw_constant_time(&(0..n as i64).collect::<Vec<_>>())
                        .unwrap()
                        .1
                        .work_span(),
                )
            })
            .collect();
        let (w, s) = find("max_crcw_constant_time").fit(&small, 1.6);
        assert!(w.ok && s.ok, "max: {w:?} {s:?}");
        let small: Vec<_> = [16usize, 32, 64, 128]
            .iter()
            .map(|&n| {
                (
                    n as u64,
                    odd_even_transposition_sort(&(0..n as i64).rev().collect::<Vec<_>>())
                        .unwrap()
                        .1
                        .work_span(),
                )
            })
            .collect();
        let (w, s) = find("odd_even_transposition_sort").fit(&small, 1.6);
        assert!(w.ok && s.ok, "odd-even: {w:?} {s:?}");
        // Wrong declarations are rejected: Hillis–Steele's extra log
        // factor does not fit the work-efficient Θ(n) class.
        let hs = sweep(&|n| scan_hillis_steele(&vec![1i64; n]).unwrap().1);
        let (w, _) = find("scan_blelloch").fit(&hs, 1.6);
        assert!(!w.ok, "Θ(n log n) work must not pass as Θ(n): {w:?}");
    }

    #[test]
    fn erew_would_reject_naive_broadcast() {
        // Direct demonstration of why broadcast_erew exists: everyone
        // reading cell 0 at once is an EREW violation.
        let mut pram = Pram::new(Mode::Erew, 8);
        let err = pram
            .step(&[0, 1, 2], |ctx| {
                let v = ctx.read(0);
                Some((ctx.id() + 1, v))
            })
            .unwrap_err();
        assert!(matches!(err, PramError::ReadConflict { addr: 0, .. }));
    }
}
