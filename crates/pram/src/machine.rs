//! The PRAM machine: synchronous shared memory with collision checking.
//!
//! One **step** is the synchronous PRAM cycle: every active processor
//! reads (from the *pre-step* memory image), computes, and optionally
//! writes; all writes commit together at the end of the step. The
//! simulator enforces the chosen [`Mode`]'s collision rules and counts
//! *steps* (span), *work* (total processor activations), and the
//! per-step active-processor profile, from which [`Pram::time_on`]
//! replays Brent's theorem for any finite processor count.

use pdc_core::workspan::WorkSpan;

/// PRAM memory-access discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Exclusive read, exclusive write.
    Erew,
    /// Concurrent read, exclusive write.
    Crew,
    /// Concurrent write allowed if all writers agree on the value.
    CrcwCommon,
    /// Concurrent write: an arbitrary writer wins (deterministic in the
    /// simulator: a seeded pick, documented as "you may not rely on it").
    CrcwArbitrary,
    /// Concurrent write: the lowest-numbered processor wins.
    CrcwPriority,
}

/// Collision and bounds errors detected by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PramError {
    /// Two processors read the same address under EREW.
    ReadConflict {
        /// The contested address.
        addr: usize,
        /// Two of the conflicting processors.
        procs: (usize, usize),
    },
    /// Two processors wrote the same address under EREW/CREW.
    WriteConflict {
        /// The contested address.
        addr: usize,
        /// Two of the conflicting processors.
        procs: (usize, usize),
    },
    /// CRCW-Common writers disagreed on the value.
    CommonValueMismatch {
        /// The contested address.
        addr: usize,
        /// The two differing values.
        values: (i64, i64),
    },
    /// Address beyond the configured memory size.
    OutOfBounds {
        /// The offending address.
        addr: usize,
    },
}

impl std::fmt::Display for PramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PramError::ReadConflict { addr, procs } => write!(
                f,
                "EREW read conflict at address {addr} (procs {} and {})",
                procs.0, procs.1
            ),
            PramError::WriteConflict { addr, procs } => write!(
                f,
                "write conflict at address {addr} (procs {} and {})",
                procs.0, procs.1
            ),
            PramError::CommonValueMismatch { addr, values } => write!(
                f,
                "CRCW-common writers disagree at {addr}: {} vs {}",
                values.0, values.1
            ),
            PramError::OutOfBounds { addr } => write!(f, "address {addr} out of bounds"),
        }
    }
}

impl std::error::Error for PramError {}

/// A handle through which a processor reads memory during a step.
pub struct ProcCtx<'a> {
    pram: &'a Pram,
    proc_id: usize,
    reads: std::cell::RefCell<&'a mut Vec<(usize, usize)>>, // (addr, proc)
}

impl ProcCtx<'_> {
    /// This processor's id.
    pub fn id(&self) -> usize {
        self.proc_id
    }

    /// Read an address (recorded for collision checking). Reads observe
    /// the memory image from *before* this step's writes.
    ///
    /// # Panics
    /// Panics on out-of-bounds (converted to `PramError` by `step`).
    pub fn read(&self, addr: usize) -> i64 {
        assert!(addr < self.pram.mem.len(), "oob:{addr}");
        self.reads.borrow_mut().push((addr, self.proc_id));
        self.pram.mem[addr]
    }
}

/// The PRAM simulator.
#[derive(Debug, Clone)]
pub struct Pram {
    mem: Vec<i64>,
    mode: Mode,
    steps: u64,
    work: u64,
    /// Active-processor count per step (for Brent replay).
    profile: Vec<u64>,
    arbitrary_seed: u64,
}

impl Pram {
    /// Create a PRAM with `words` zeroed memory cells under `mode`.
    pub fn new(mode: Mode, words: usize) -> Self {
        Pram {
            mem: vec![0; words],
            mode,
            steps: 0,
            work: 0,
            profile: Vec::new(),
            arbitrary_seed: 0x9E3779B97F4A7C15,
        }
    }

    /// Load initial contents starting at address `base`.
    ///
    /// # Panics
    /// Panics if the data does not fit.
    pub fn load(&mut self, base: usize, data: &[i64]) {
        assert!(base + data.len() <= self.mem.len(), "load out of bounds");
        self.mem[base..base + data.len()].copy_from_slice(data);
    }

    /// Read memory outside any step (host access; not counted).
    pub fn peek(&self, addr: usize) -> i64 {
        self.mem[addr]
    }

    /// A slice of memory (host access).
    pub fn peek_range(&self, range: std::ops::Range<usize>) -> &[i64] {
        &self.mem[range]
    }

    /// The access mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Steps executed so far (= span, since each step costs 1).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total processor activations (= work).
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Measured cost as a [`WorkSpan`].
    pub fn work_span(&self) -> WorkSpan {
        WorkSpan::new(self.work.max(self.steps), self.steps)
    }

    /// Brent replay: simulated time on `p` physical processors, where a
    /// step with `a` active logical processors takes `ceil(a/p)` time.
    pub fn time_on(&self, p: usize) -> u64 {
        assert!(p > 0);
        self.profile.iter().map(|&a| a.div_ceil(p as u64)).sum()
    }

    /// Execute one synchronous step.
    ///
    /// `procs` lists the active processor ids; `f` is invoked once per
    /// active processor with a [`ProcCtx`] for reading, and returns an
    /// optional `(address, value)` write. All reads see pre-step memory;
    /// all writes commit afterwards, subject to the mode's rules.
    pub fn step<F>(&mut self, procs: &[usize], mut f: F) -> Result<(), PramError>
    where
        F: FnMut(&ProcCtx<'_>) -> Option<(usize, i64)>,
    {
        if procs.is_empty() {
            return Ok(());
        }
        let mut reads: Vec<(usize, usize)> = Vec::new();
        let mut writes: Vec<(usize, i64, usize)> = Vec::new(); // (addr, val, proc)
        for &p in procs {
            let ctx = ProcCtx {
                pram: self,
                proc_id: p,
                reads: std::cell::RefCell::new(&mut reads),
            };
            if let Some((addr, val)) = f(&ctx) {
                if addr >= self.mem.len() {
                    return Err(PramError::OutOfBounds { addr });
                }
                writes.push((addr, val, p));
            }
        }
        // Collision checks.
        if self.mode == Mode::Erew {
            let mut sorted = reads.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                if w[0].0 == w[1].0 {
                    return Err(PramError::ReadConflict {
                        addr: w[0].0,
                        procs: (w[0].1, w[1].1),
                    });
                }
            }
        }
        writes.sort_unstable_by_key(|&(addr, _, p)| (addr, p));
        match self.mode {
            Mode::Erew | Mode::Crew => {
                for w in writes.windows(2) {
                    if w[0].0 == w[1].0 {
                        return Err(PramError::WriteConflict {
                            addr: w[0].0,
                            procs: (w[0].2, w[1].2),
                        });
                    }
                }
                for &(addr, val, _) in &writes {
                    self.mem[addr] = val;
                }
            }
            Mode::CrcwCommon => {
                for w in writes.windows(2) {
                    if w[0].0 == w[1].0 && w[0].1 != w[1].1 {
                        return Err(PramError::CommonValueMismatch {
                            addr: w[0].0,
                            values: (w[0].1, w[1].1),
                        });
                    }
                }
                for &(addr, val, _) in &writes {
                    self.mem[addr] = val;
                }
            }
            Mode::CrcwPriority => {
                // Lowest proc id wins: writes sorted by (addr, proc), so
                // the first entry per address wins — iterate and skip
                // later duplicates.
                let mut last_addr = usize::MAX;
                for &(addr, val, _) in &writes {
                    if addr != last_addr {
                        self.mem[addr] = val;
                        last_addr = addr;
                    }
                }
            }
            Mode::CrcwArbitrary => {
                // Deterministic pseudo-arbitrary pick per address.
                let mut i = 0;
                while i < writes.len() {
                    let addr = writes[i].0;
                    let mut j = i;
                    while j < writes.len() && writes[j].0 == addr {
                        j += 1;
                    }
                    let group = &writes[i..j];
                    let pick = (self
                        .arbitrary_seed
                        .wrapping_mul(addr as u64 ^ self.steps.wrapping_add(1))
                        >> 33) as usize
                        % group.len();
                    self.mem[addr] = group[pick].1;
                    i = j;
                }
            }
        }
        self.steps += 1;
        self.work += procs.len() as u64;
        self.profile.push(procs.len() as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_reads_pre_step_memory() {
        // Synchronous swap: p0 writes mem[1] from mem[0], p1 writes
        // mem[0] from mem[1] — both read old values.
        let mut pram = Pram::new(Mode::Erew, 2);
        pram.load(0, &[10, 20]);
        pram.step(&[0, 1], |ctx| {
            if ctx.id() == 0 {
                Some((1, ctx.read(0)))
            } else {
                Some((0, ctx.read(1)))
            }
        })
        .unwrap();
        assert_eq!(pram.peek(0), 20);
        assert_eq!(pram.peek(1), 10);
    }

    #[test]
    fn erew_detects_read_conflict() {
        let mut pram = Pram::new(Mode::Erew, 4);
        let err = pram
            .step(&[0, 1], |ctx| {
                ctx.read(2);
                None
            })
            .unwrap_err();
        assert!(matches!(err, PramError::ReadConflict { addr: 2, .. }));
    }

    #[test]
    fn crew_allows_concurrent_reads() {
        let mut pram = Pram::new(Mode::Crew, 4);
        pram.load(2, &[7]);
        pram.step(&[0, 1, 2], |ctx| {
            assert_eq!(ctx.read(2), 7);
            None
        })
        .unwrap();
    }

    #[test]
    fn crew_detects_write_conflict() {
        let mut pram = Pram::new(Mode::Crew, 4);
        let err = pram
            .step(&[0, 1], |ctx| Some((3, ctx.id() as i64)))
            .unwrap_err();
        assert!(matches!(err, PramError::WriteConflict { addr: 3, .. }));
    }

    #[test]
    fn crcw_common_agreement_ok_disagreement_err() {
        let mut pram = Pram::new(Mode::CrcwCommon, 4);
        pram.step(&[0, 1, 2], |_| Some((0, 42))).unwrap();
        assert_eq!(pram.peek(0), 42);
        let err = pram
            .step(&[0, 1], |ctx| Some((0, ctx.id() as i64)))
            .unwrap_err();
        assert!(matches!(err, PramError::CommonValueMismatch { .. }));
    }

    #[test]
    fn crcw_priority_lowest_wins() {
        let mut pram = Pram::new(Mode::CrcwPriority, 4);
        pram.step(&[3, 1, 2], |ctx| Some((0, ctx.id() as i64 * 100)))
            .unwrap();
        assert_eq!(pram.peek(0), 100, "proc 1 is the lowest writer");
    }

    #[test]
    fn crcw_arbitrary_picks_one_of_the_writers() {
        let mut pram = Pram::new(Mode::CrcwArbitrary, 4);
        pram.step(&[0, 1, 2], |ctx| Some((0, 10 + ctx.id() as i64)))
            .unwrap();
        let v = pram.peek(0);
        assert!((10..=12).contains(&v), "got {v}");
    }

    #[test]
    fn out_of_bounds_write_reported() {
        let mut pram = Pram::new(Mode::Crew, 2);
        let err = pram.step(&[0], |_| Some((99, 1))).unwrap_err();
        assert_eq!(err, PramError::OutOfBounds { addr: 99 });
    }

    #[test]
    fn counters_accumulate() {
        let mut pram = Pram::new(Mode::Crew, 8);
        pram.step(&[0, 1, 2, 3], |_| None).unwrap();
        pram.step(&[0, 1], |_| None).unwrap();
        assert_eq!(pram.steps(), 2);
        assert_eq!(pram.work(), 6);
        let ws = pram.work_span();
        assert_eq!(ws.span, 2);
        assert_eq!(ws.work, 6);
    }

    #[test]
    fn empty_step_is_free() {
        let mut pram = Pram::new(Mode::Crew, 1);
        pram.step(&[], |_| None).unwrap();
        assert_eq!(pram.steps(), 0);
    }

    #[test]
    fn brent_replay_time_on() {
        let mut pram = Pram::new(Mode::Crew, 8);
        pram.step(&[0, 1, 2, 3], |_| None).unwrap(); // 4 active
        pram.step(&[0, 1], |_| None).unwrap(); // 2 active
        assert_eq!(pram.time_on(1), 6); // 4 + 2
        assert_eq!(pram.time_on(2), 3); // 2 + 1
        assert_eq!(pram.time_on(4), 2); // 1 + 1
        assert_eq!(pram.time_on(100), 2); // bounded by span
    }
}
