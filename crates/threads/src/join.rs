//! Structured fork-join: `join(a, b)` and depth-limited parallel
//! recursion.
//!
//! `join` is the primitive of the fork-join model (Cilk's `spawn`/`sync`,
//! Rayon's `join`): run two closures, potentially in parallel, and return
//! both results. Built on `std::thread::scope`, so the closures may borrow
//! from the caller — the same ergonomics Rayon provides, with the
//! guarantee that both complete before `join` returns.
//!
//! Unbounded parallel recursion would create one thread per node; the
//! [`join_depth`] helper caps the fork depth (2^depth leaves) and runs
//! sequentially below the cutoff — exactly the granularity-control lesson
//! of the parallel merge sort lab.

use pdc_core::trace::{self, EventKind};
use pdc_sync::hooks::{self, AbortSchedule};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Run `a` and `b`, potentially in parallel, returning both results.
///
/// `b` runs on a freshly scoped thread while `a` runs on the caller; if
/// thread creation is unavailable this would panic (std behaviour), which
/// is acceptable for the teaching library.
///
/// When the calling thread has a sync trace installed (see
/// [`trace::install_sync_trace`]), the split records the fork-join
/// happens-before diamond: the parent publishes its history under a
/// `fork` handle that the child adopts, and the child publishes under a
/// second handle that the parent adopts after the scope ends — so
/// `pdc-analyze` orders the child's work between the split and the join.
///
/// When the calling thread is additionally a *checked task* under a
/// `pdc-check` exploration, the scoped child registers as a checked
/// task of its own, so fork-join bodies participate in schedule
/// exploration like any `pdc_check::spawn` task.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    match hooks::checked_spawn() {
        None => join_plain(a, b),
        Some(token) => join_checked(token, a, b),
    }
}

/// The uninstrumented path (no checker on this thread): exactly the
/// pre-checker behaviour, trace diamond included.
fn join_plain<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    let parent = trace::current_sync_trace();
    let Some(parent) = parent else {
        return std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            let rb = hb.join().expect("join: task b panicked");
            (ra, rb)
        });
    };
    let h_fork = trace::next_site_id();
    let h_join = trace::next_site_id();
    parent.record(EventKind::Fork, h_fork, 0);
    let child = parent.sibling_auto();
    let result = std::thread::scope(|s| {
        let hb = s.spawn(move || {
            trace::install_sync_trace(child.clone());
            child.record(EventKind::Join, h_fork, 0);
            let rb = b();
            child.record(EventKind::Fork, h_join, 0);
            trace::clear_sync_trace();
            rb
        });
        let ra = a();
        let rb = hb.join().expect("join: task b panicked");
        (ra, rb)
    });
    parent.record(EventKind::Join, h_join, 0);
    result
}

/// The checked path: the scoped child runs as its own checked task.
///
/// Teardown discipline matters here because `std::thread::scope` joins
/// the child even while the parent unwinds: every panic out of `a` or
/// `b` must first make sure the *other* side can finish (by reporting
/// the panic to the checker, which aborts the schedule and wakes every
/// blocked task) before the unwind reaches the scope's implicit join.
fn join_checked<RA, RB>(
    token: hooks::SpawnToken,
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    let parent = trace::current_sync_trace();
    let handles = parent.as_ref().map(|pt| {
        let h_fork = trace::next_site_id();
        let h_join = trace::next_site_id();
        pt.record(EventKind::Fork, h_fork, 0);
        (h_fork, h_join)
    });
    let child = parent.as_ref().map(|pt| pt.sibling_auto());
    let result = std::thread::scope(|s| {
        let hb = s.spawn(move || {
            let out = catch_unwind(AssertUnwindSafe(|| {
                hooks::begin_task(&token);
                if let (Some(ct), Some((h_fork, _))) = (&child, handles) {
                    trace::install_sync_trace(ct.clone());
                    ct.record(EventKind::Join, h_fork, 0);
                }
                let rb = b();
                if let (Some(ct), Some((_, h_join))) = (&child, handles) {
                    ct.record(EventKind::Fork, h_join, 0);
                }
                rb
            }));
            trace::clear_sync_trace();
            if let Err(payload) = &out {
                if payload.downcast_ref::<AbortSchedule>().is_none() {
                    hooks::task_panicked(&token, &panic_text(payload.as_ref()));
                }
            }
            // Unconditional: the task must reach Finished even when
            // unwinding, or teardown would wait on it forever.
            hooks::end_task(&token);
            match out {
                Ok(rb) => rb,
                Err(payload) => resume_unwind(payload),
            }
        });
        // First decision point where the child is a candidate (the OS
        // thread exists now, per the hooks contract).
        hooks::yield_point();
        let ra = match catch_unwind(AssertUnwindSafe(a)) {
            Ok(ra) => ra,
            Err(payload) => {
                if payload.downcast_ref::<AbortSchedule>().is_none() {
                    // Abort the schedule so the child (possibly blocked
                    // in the checker) unwinds and the scope join below
                    // this frame can complete.
                    hooks::task_panicked(&token, &panic_text(payload.as_ref()));
                }
                resume_unwind(payload);
            }
        };
        // Wait through the checker (the exploration keeps scheduling
        // other tasks), then do the now-immediate OS join.
        hooks::join_task(&token);
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) if payload.downcast_ref::<AbortSchedule>().is_some() => {
                resume_unwind(payload)
            }
            Err(_) => panic!("join: task b panicked"),
        };
        (ra, rb)
    });
    if let (Some(pt), Some((_, h_join))) = (&parent, handles) {
        pt.record(EventKind::Join, h_join, 0);
    }
    result
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`join`], but only forks while `depth > 0`; at depth 0 both
/// closures run sequentially on the caller. Pass the decremented depth to
/// recursive calls to get a bounded fork tree.
pub fn join_depth<RA, RB>(
    depth: u32,
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if depth == 0 {
        (a(), b())
    } else {
        join(a, b)
    }
}

/// Parallel divide-and-conquer over a mutable slice: split at the
/// midpoint recursively while `depth > 0`, calling `leaf` on each base
/// chunk. The scaffolding for in-place parallel algorithms (sort,
/// stencil).
pub fn divide_conquer_mut<T: Send>(data: &mut [T], depth: u32, leaf: &(impl Fn(&mut [T]) + Sync)) {
    if depth == 0 || data.len() < 2 {
        leaf(data);
        return;
    }
    let mid = data.len() / 2;
    let (lo, hi) = data.split_at_mut(mid);
    join(
        || divide_conquer_mut(lo, depth - 1, leaf),
        || divide_conquer_mut(hi, depth - 1, leaf),
    );
}

/// Choose a fork depth so that `2^depth ≈ workers` (and each leaf gets at
/// least `min_leaf` elements of an `n`-element problem).
pub fn depth_for(workers: usize, n: usize, min_leaf: usize) -> u32 {
    assert!(workers > 0);
    let by_workers = usize::BITS - workers.next_power_of_two().leading_zeros() - 1;
    let max_by_size = if min_leaf == 0 || n == 0 {
        by_workers
    } else {
        let leaves = (n / min_leaf).max(1);
        usize::BITS - leaves.next_power_of_two().leading_zeros() - 1
    };
    by_workers.min(max_by_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "hi".len());
        assert_eq!(a, 2);
        assert_eq!(b, 2);
    }

    #[test]
    fn join_allows_borrows() {
        let data = [1, 2, 3, 4, 5, 6];
        let (lo, hi) = data.split_at(3);
        let (s1, s2) = join(|| lo.iter().sum::<i32>(), || hi.iter().sum::<i32>());
        assert_eq!(s1 + s2, 21);
    }

    #[test]
    fn join_allows_mutable_split_borrows() {
        let mut data = [0u32; 10];
        let (lo, hi) = data.split_at_mut(5);
        join(
            || lo.iter_mut().for_each(|x| *x = 1),
            || hi.iter_mut().for_each(|x| *x = 2),
        );
        assert_eq!(data.iter().sum::<u32>(), 5 + 10);
    }

    #[test]
    #[should_panic(expected = "task b panicked")]
    fn panic_in_b_propagates() {
        join(|| (), || panic!("boom"));
    }

    #[test]
    fn join_depth_zero_is_sequential() {
        // At depth 0 both run on the calling thread.
        let tid = std::thread::current().id();
        let (ta, tb) = join_depth(
            0,
            || std::thread::current().id(),
            || std::thread::current().id(),
        );
        assert_eq!(ta, tid);
        assert_eq!(tb, tid);
    }

    #[test]
    fn recursive_parallel_sum_matches_sequential() {
        fn psum(xs: &[u64], depth: u32) -> u64 {
            if depth == 0 || xs.len() < 4 {
                return xs.iter().sum();
            }
            let (lo, hi) = xs.split_at(xs.len() / 2);
            let (a, b) = join(|| psum(lo, depth - 1), || psum(hi, depth - 1));
            a + b
        }
        let xs: Vec<u64> = (0..10_000).collect();
        assert_eq!(psum(&xs, 4), xs.iter().sum::<u64>());
    }

    #[test]
    fn divide_conquer_mut_touches_every_element() {
        let mut data = vec![0u8; 1000];
        divide_conquer_mut(&mut data, 3, &|chunk: &mut [u8]| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1), "each element exactly once");
    }

    #[test]
    fn traced_join_records_fork_join_diamond() {
        use pdc_core::trace::TraceSession;
        let session = TraceSession::new();
        trace::install_sync_trace(session.thread(0));
        let (a, b) = join(|| 1, || 2);
        trace::clear_sync_trace();
        assert_eq!((a, b), (1, 2));
        let evs = session.events();
        let forks: Vec<_> = evs.iter().filter(|e| e.kind == EventKind::Fork).collect();
        let joins: Vec<_> = evs.iter().filter(|e| e.kind == EventKind::Join).collect();
        assert_eq!(forks.len(), 2, "parent split + child finish");
        assert_eq!(joins.len(), 2, "child adopt + parent adopt");
        // The child's adoption of the parent's handle comes after the
        // parent's fork; the parent's join after the child's fork.
        assert_eq!(forks[0].actor, 0);
        assert_eq!(joins[0].a, forks[0].a, "child joins the parent's handle");
        assert_ne!(joins[0].actor, 0, "child records under an auto actor");
        assert_eq!(joins[1].actor, 0);
        assert_eq!(joins[1].a, forks[1].a, "parent joins the child's handle");
        assert!(forks[0].ts < joins[0].ts && forks[1].ts < joins[1].ts);
    }

    #[test]
    fn untraced_join_records_nothing() {
        use pdc_core::trace::TraceSession;
        let session = TraceSession::new();
        let (a, b) = join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
        assert!(session.events().is_empty());
    }

    #[test]
    fn depth_for_matches_worker_count() {
        assert_eq!(depth_for(1, 1000, 1), 0);
        assert_eq!(depth_for(2, 1000, 1), 1);
        assert_eq!(depth_for(4, 1000, 1), 2);
        assert_eq!(depth_for(8, 1000, 1), 3);
        // Tiny problems cap the depth.
        assert_eq!(depth_for(8, 4, 2), 1);
        assert_eq!(depth_for(8, 1, 1), 0);
    }
}
