//! # pdc-threads — shared-memory parallel runtime
//!
//! The programming substrate for the curriculum's shared-memory track
//! (CS31 Pthreads labs, CS87 OpenMP-style loops): a hand-built
//! work-stealing thread pool, fork-join `join`, OpenMP-style
//! `parallel_for` with static/dynamic/guided scheduling, and a small
//! data-parallel slice API (map/reduce/scan/filter) in the spirit of
//! Rayon (see the Rayon README in the course reading list).
//!
//! * [`pool`] — work-stealing thread pool for `'static` tasks, with
//!   steal counters for the load-balancing experiments.
//! * [`join`](mod@join) — structured fork-join over scoped threads, plus
//!   depth-limited parallel recursion helpers.
//! * [`parfor`] — `parallel_for` with [`parfor::Schedule`] policies.
//! * [`sliceops`] — parallel map / reduce / scan / filter over slices,
//!   guaranteed to agree with their sequential counterparts.

#![warn(missing_docs)]

pub mod join;
pub mod parfor;
pub mod pool;
pub mod sliceops;

pub use join::join;
pub use parfor::{parallel_for, Schedule};
pub use pool::{pool_map, WorkStealingPool};
