//! Data-parallel slice operations: map, reduce, scan, filter.
//!
//! The Rayon-style "change `iter` to `par_iter`" lesson, in miniature:
//! each operation takes an explicit worker count, produces exactly the
//! sequential result, and uses the textbook parallel algorithm —
//! including the two-pass Blelloch scan and rank-based parallel pack that
//! CS41 analyzes for work and span.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Split `n` items into `workers` contiguous block ranges (block
/// partitioning with remainder spread, the CS31 lab convention).
pub fn block_ranges(n: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    assert!(workers > 0);
    let base = n / workers;
    let rem = n % workers;
    let mut out = Vec::with_capacity(workers);
    let mut lo = 0;
    for w in 0..workers {
        let len = base + usize::from(w < rem);
        out.push(lo..lo + len);
        lo += len;
    }
    out
}

/// Parallel map: `out[i] = f(&input[i])`.
pub fn par_map<T: Sync, U: Send>(
    input: &[T],
    workers: usize,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    assert!(workers > 0);
    let f = &f;
    let mut chunks: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = block_ranges(input.len(), workers)
            .into_iter()
            .map(|r| s.spawn(move || input[r].iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut out = Vec::with_capacity(input.len());
    for c in &mut chunks {
        out.append(c);
    }
    out
}

/// Parallel reduce with identity `id` and associative `op`.
///
/// Correct for any associative, commutative-or-not `op` because chunk
/// results are combined in index order.
pub fn par_reduce<T: Sync, U: Send + Clone>(
    input: &[T],
    workers: usize,
    id: U,
    leaf: impl Fn(&T) -> U + Sync,
    op: impl Fn(U, U) -> U + Sync,
) -> U {
    assert!(workers > 0);
    let (leaf, op) = (&leaf, &op);
    let partials: Vec<U> = std::thread::scope(|s| {
        let handles: Vec<_> = block_ranges(input.len(), workers)
            .into_iter()
            .map(|r| {
                let id = id.clone();
                s.spawn(move || input[r].iter().fold(id, |acc, x| op(acc, leaf(x))))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    partials.into_iter().fold(id, &op)
}

/// Parallel *exclusive* scan (Blelloch two-pass over worker blocks):
/// `out[i] = id ⊕ x[0] ⊕ ... ⊕ x[i-1]`, plus the total as second result.
///
/// Pass 1: each worker scans its block locally and reports its block sum.
/// A sequential (Θ(workers)) scan of block sums produces block offsets.
/// Pass 2: each worker adds its offset. Work Θ(n), span Θ(n/p + p).
pub fn par_exclusive_scan<T: Send + Sync + Clone>(
    input: &[T],
    workers: usize,
    id: T,
    op: impl Fn(&T, &T) -> T + Sync,
) -> (Vec<T>, T) {
    assert!(workers > 0);
    let op = &op;
    let ranges = block_ranges(input.len(), workers);
    // Pass 1: local exclusive scans + block totals.
    let mut locals: Vec<(Vec<T>, T)> = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .cloned()
            .map(|r| {
                let id = id.clone();
                s.spawn(move || {
                    let mut acc = id;
                    let mut out = Vec::with_capacity(r.len());
                    for x in &input[r] {
                        out.push(acc.clone());
                        acc = op(&acc, x);
                    }
                    (out, acc)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Scan of block totals (sequential; workers is small).
    let mut offsets = Vec::with_capacity(locals.len());
    let mut acc = id.clone();
    for (_, total) in &locals {
        offsets.push(acc.clone());
        acc = op(&acc, total);
    }
    let grand_total = acc;
    // Pass 2: apply offsets.
    std::thread::scope(|s| {
        for ((local, _), offset) in locals.iter_mut().zip(&offsets) {
            let offset = offset.clone();
            s.spawn(move || {
                for v in local.iter_mut() {
                    *v = op(&offset, v);
                }
            });
        }
    });
    let mut out = Vec::with_capacity(input.len());
    for (mut local, _) in locals {
        out.append(&mut local);
    }
    (out, grand_total)
}

/// Parallel inclusive scan: `out[i] = x[0] ⊕ ... ⊕ x[i]`.
pub fn par_inclusive_scan<T: Send + Sync + Clone>(
    input: &[T],
    workers: usize,
    id: T,
    op: impl Fn(&T, &T) -> T + Sync,
) -> Vec<T> {
    let (mut ex, _) = par_exclusive_scan(input, workers, id, &op);
    std::thread::scope(|s| {
        for (r, chunk) in block_ranges(input.len(), workers)
            .into_iter()
            .zip(chunk_by_ranges(&mut ex, workers))
        {
            let op = &op;
            s.spawn(move || {
                for (v, x) in chunk.iter_mut().zip(&input[r]) {
                    *v = op(v, x);
                }
            });
        }
    });
    ex
}

/// Split a mutable slice into the same block ranges used elsewhere.
fn chunk_by_ranges<T>(data: &mut [T], workers: usize) -> Vec<&mut [T]> {
    let ranges = block_ranges(data.len(), workers);
    let mut out = Vec::with_capacity(workers);
    let mut rest = data;
    for r in ranges {
        let (head, tail) = rest.split_at_mut(r.len());
        out.push(head);
        rest = tail;
    }
    out
}

/// Parallel filter ("pack"): keep elements satisfying `pred`, preserving
/// order, via flag + exclusive-scan of flags + scatter — the CS41 scan
/// application.
pub fn par_filter<T: Send + Sync + Clone>(
    input: &[T],
    workers: usize,
    pred: impl Fn(&T) -> bool + Sync,
) -> Vec<T> {
    let flags: Vec<usize> = par_map(input, workers, |x| usize::from(pred(x)));
    let (positions, total) = par_exclusive_scan(&flags, workers, 0usize, |a, b| a + b);
    // Scatter: out[positions[i]] = input[i] where flags[i] == 1.
    let mut result: Vec<Option<T>> = vec![None; total];
    // Per-block scatter with disjoint destinations is safe because
    // positions are strictly increasing across kept elements; do it
    // sequentially per block but in parallel across blocks by splitting
    // the *destination* using each block's first/last position.
    std::thread::scope(|s| {
        let mut dest: &mut [Option<T>] = &mut result;
        let mut consumed = 0usize;
        for r in block_ranges(input.len(), workers) {
            // Destination range for this source block.
            let start = if r.is_empty() {
                consumed
            } else {
                positions[r.start]
            };
            let end = if r.end == input.len() {
                total
            } else {
                positions[r.end]
            };
            let (head, tail) = dest.split_at_mut(end - consumed);
            dest = tail;
            consumed = end;
            debug_assert_eq!(head.len(), end - start);
            let pred = &pred;
            s.spawn(move || {
                let mut k = 0;
                for x in &input[r] {
                    if pred(x) {
                        head[k] = Some(x.clone());
                        k += 1;
                    }
                }
                debug_assert_eq!(k, head.len());
            });
        }
    });
    result
        .into_iter()
        .map(|o| o.expect("scatter filled"))
        .collect()
}

/// Parallel histogram with per-worker private bins merged at the end —
/// the "avoid the shared counter" lesson.
pub fn par_histogram<T: Sync>(
    input: &[T],
    workers: usize,
    bins: usize,
    bin_of: impl Fn(&T) -> usize + Sync,
) -> Vec<u64> {
    assert!(bins > 0);
    let bin_of = &bin_of;
    let partials: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = block_ranges(input.len(), workers)
            .into_iter()
            .map(|r| {
                s.spawn(move || {
                    let mut h = vec![0u64; bins];
                    for x in &input[r] {
                        let b = bin_of(x);
                        assert!(b < bins, "bin {b} out of range");
                        h[b] += 1;
                    }
                    h
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut out = vec![0u64; bins];
    for p in partials {
        for (o, v) in out.iter_mut().zip(p) {
            *o += v;
        }
    }
    out
}

/// A shared-counter histogram (atomic per bin) for contention
/// comparisons against [`par_histogram`].
pub fn par_histogram_shared<T: Sync>(
    input: &[T],
    workers: usize,
    bins: usize,
    bin_of: impl Fn(&T) -> usize + Sync,
) -> Vec<u64> {
    assert!(bins > 0);
    let shared: Vec<AtomicUsize> = (0..bins).map(|_| AtomicUsize::new(0)).collect();
    let bin_of = &bin_of;
    let shared_ref = &shared;
    std::thread::scope(|s| {
        for r in block_ranges(input.len(), workers) {
            s.spawn(move || {
                for x in &input[r] {
                    shared_ref[bin_of(x)].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    shared
        .iter()
        .map(|a| a.load(Ordering::Relaxed) as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for w in [1usize, 2, 3, 8] {
                let rs = block_ranges(n, w);
                assert_eq!(rs.len(), w);
                assert_eq!(rs.iter().map(|r| r.len()).sum::<usize>(), n);
                let mut next = 0;
                for r in rs {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn par_map_matches_serial() {
        let xs: Vec<i64> = (0..5000).collect();
        for w in [1, 2, 3, 7] {
            let got = par_map(&xs, w, |&x| x * x + 1);
            let want: Vec<i64> = xs.iter().map(|&x| x * x + 1).collect();
            assert_eq!(got, want, "workers={w}");
        }
    }

    #[test]
    fn par_reduce_sum_and_max() {
        let xs: Vec<u64> = (0..10_000).map(|i| (i * 2654435761) % 1000).collect();
        for w in [1, 2, 4] {
            let sum = par_reduce(&xs, w, 0u64, |&x| x, |a, b| a + b);
            assert_eq!(sum, xs.iter().sum::<u64>());
            let max = par_reduce(&xs, w, 0u64, |&x| x, u64::max);
            assert_eq!(max, *xs.iter().max().unwrap());
        }
    }

    #[test]
    fn par_reduce_non_commutative_op_in_order() {
        // String concatenation is associative but not commutative: the
        // chunk-ordered combine must preserve order.
        let xs: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let got = par_reduce(&xs, 3, String::new(), |x| x.clone(), |a, b| a + &b);
        assert_eq!(got, xs.concat());
    }

    #[test]
    fn exclusive_scan_matches_serial() {
        let xs: Vec<u64> = (1..=1000).collect();
        for w in [1, 2, 3, 8] {
            let (scan, total) = par_exclusive_scan(&xs, w, 0u64, |a, b| a + b);
            let mut acc = 0;
            for (i, &x) in xs.iter().enumerate() {
                assert_eq!(scan[i], acc, "i={i} w={w}");
                acc += x;
            }
            assert_eq!(total, acc);
        }
    }

    #[test]
    fn inclusive_scan_matches_serial() {
        let xs: Vec<i64> = (0..500).map(|i| i % 17 - 8).collect();
        for w in [1, 4] {
            let got = par_inclusive_scan(&xs, w, 0i64, |a, b| a + b);
            let mut acc = 0;
            let want: Vec<i64> = xs
                .iter()
                .map(|&x| {
                    acc += x;
                    acc
                })
                .collect();
            assert_eq!(got, want, "w={w}");
        }
    }

    #[test]
    fn scan_with_max_operator() {
        // Scan works for any monoid: running maximum.
        let xs = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        let got = par_inclusive_scan(&xs, 3, 0u64, |a, b| *a.max(b));
        assert_eq!(got, vec![3, 3, 4, 4, 5, 9, 9, 9]);
    }

    #[test]
    fn filter_preserves_order() {
        let xs: Vec<u32> = (0..10_000).collect();
        for w in [1, 2, 5] {
            let got = par_filter(&xs, w, |&x| x % 3 == 0);
            let want: Vec<u32> = xs.iter().copied().filter(|&x| x % 3 == 0).collect();
            assert_eq!(got, want, "w={w}");
        }
    }

    #[test]
    fn filter_empty_and_all() {
        let xs: Vec<u8> = vec![1, 2, 3];
        assert!(par_filter(&xs, 2, |_| false).is_empty());
        assert_eq!(par_filter(&xs, 2, |_| true), xs);
        let empty: Vec<u8> = vec![];
        assert!(par_filter(&empty, 2, |_| true).is_empty());
    }

    #[test]
    fn histograms_agree() {
        let xs: Vec<u64> = (0..20_000).map(|i| i * 2654435761 % 97).collect();
        let a = par_histogram(&xs, 4, 97, |&x| x as usize);
        let b = par_histogram_shared(&xs, 4, 97, |&x| x as usize);
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<u64>(), 20_000);
    }

    #[test]
    fn scan_single_element_and_empty() {
        let (s, t) = par_exclusive_scan(&[5u64], 4, 0, |a, b| a + b);
        assert_eq!(s, vec![0]);
        assert_eq!(t, 5);
        let (s, t) = par_exclusive_scan(&[] as &[u64], 4, 0, |a, b| a + b);
        assert!(s.is_empty());
        assert_eq!(t, 0);
    }
}
