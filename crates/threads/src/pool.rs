//! A work-stealing thread pool.
//!
//! Each worker owns a LIFO deque of tasks; when empty it steals from the
//! global injector or from siblings (FIFO side). This is the scheduling
//! architecture Rayon/Cilk use, built here from `crossbeam-deque` so the
//! steal behaviour is observable: the pool publishes its counters
//! (`pool.executed`, `pool.steals`, `pool.panicked`, `pool.submitted`,
//! `pool.completed`) through a pdc-trace [`TraceSession`] and records
//! spawn/steal events, which the load-imbalance bench reports.

use crossbeam::deque::{Injector, Stealer, Worker};
use pdc_core::metrics::Counter;
use pdc_core::trace::{self, EventKind, SiteId, ThreadTrace, TraceSession};
use pdc_sync::hooks::{self, AbortSchedule, SpawnToken};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A task plus the fork handle its submitter's causal history was
/// published under (see [`EventKind::Fork`]/[`EventKind::Join`]).
struct QueuedTask {
    handle: u64,
    seq: u64,
    run: Task,
}

struct Shared {
    injector: Injector<QueuedTask>,
    stealers: Vec<Stealer<QueuedTask>>,
    /// Tasks submitted but not yet finished. This stays a plain atomic
    /// (not a pair of trace counters) because `wait_idle` relies on its
    /// SeqCst ordering for the happens-before edge between a task's
    /// writes and the waiter's reads.
    pending: AtomicUsize,
    shutdown: AtomicBool,
    /// `pool.executed`: tasks run to completion (panicking ones included).
    executed: Counter,
    /// `pool.panicked`: tasks that panicked (caught; the worker survives).
    panicked: Counter,
    /// `pool.steals`: successful steals (from injector or siblings).
    steals: Counter,
    /// `pool.submitted`: monotone submission count.
    submitted: Counter,
    /// `pool.completed`: monotone completion count.
    completed: Counter,
    /// Event stream for submissions; workers get their own handles.
    submit_trace: ThreadTrace,
    /// Completion fork handles published by workers and not yet adopted
    /// by a waiter: each finished task records a `Fork` under a fresh
    /// handle *before* decrementing `pending`, and `wait_idle` records
    /// the matching `Join`s after observing zero — the trace edge that
    /// makes "task body happens-before the code after wait_idle"
    /// visible to the span/HB analyses.
    done_handles: std::sync::Mutex<Vec<u64>>,
    /// Under a `pdc-check` exploration, the site idle workers and
    /// `wait_idle` block on; submits, completions and shutdown announce
    /// changes to it. Never allocated outside a checker.
    idle_site: SiteId,
}

impl Shared {
    fn submit(&self, task: Task) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let seq = self.submitted.get();
        self.submitted.inc();
        // Publish the submitter's happens-before history under a fresh
        // fork handle: through the submitting thread's own sync trace if
        // it has one (a worker spawning recursively, or a caller that
        // installed one), else through the shared submit actor.
        let handle = trace::next_site_id();
        if !trace::record_sync(EventKind::Fork, handle, seq) {
            self.submit_trace.record(EventKind::Fork, handle, seq);
        }
        self.submit_trace.record(
            EventKind::Spawn,
            seq,
            self.pending.load(Ordering::Relaxed) as u64,
        );
        self.injector.push(QueuedTask {
            handle,
            seq,
            run: task,
        });
        // Wake idle checked workers (and a checked wait_idle) blocked
        // on the pool going quiet. No-op outside a checker.
        hooks::site_changed(&self.idle_site);
    }
}

/// A fixed-size work-stealing thread pool for `'static` tasks.
pub struct WorkStealingPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Checker task tokens for the workers, when the pool was built
    /// inside a `pdc-check` exploration (empty otherwise). Drop joins
    /// these through the checker *before* the OS joins, so the baton
    /// can keep moving while workers drain.
    tokens: Vec<SpawnToken>,
    trace: TraceSession,
}

impl WorkStealingPool {
    /// Spawn a pool with `workers` worker threads and a private
    /// [`TraceSession`].
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        WorkStealingPool::with_trace(workers, TraceSession::new())
    }

    /// Spawn a pool publishing counters and events into a shared
    /// `session`, so one snapshot covers the pool alongside a
    /// `SimMachine` or MPI world.
    ///
    /// Workers record as actors `0..workers`; submissions record as
    /// actor `workers`.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn with_trace(workers: usize, session: TraceSession) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        let locals: Vec<Worker<QueuedTask>> = (0..workers).map(|_| Worker::new_lifo()).collect();
        let stealers = locals.iter().map(Worker::stealer).collect();
        // Built inside a pdc-check exploration? Then the workers become
        // checked tasks, and their events must land in the exploration's
        // session (via sibling traces of the constructing task's thread
        // trace), not in the pool's private one — otherwise the checker
        // could neither schedule the workers nor see what they did.
        let checked_parent = trace::current_sync_trace().filter(|_| hooks::is_checked());
        let submit_trace = match &checked_parent {
            Some(parent) => parent.sibling_auto(),
            None => session.thread(workers as u32),
        };
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            executed: session.counter("pool.executed"),
            panicked: session.counter("pool.panicked"),
            steals: session.counter("pool.steals"),
            submitted: session.counter("pool.submitted"),
            completed: session.counter("pool.completed"),
            submit_trace,
            done_handles: std::sync::Mutex::new(Vec::new()),
            idle_site: SiteId::new(),
        });
        let mut tokens = Vec::new();
        let handles = locals
            .into_iter()
            .enumerate()
            .map(|(idx, local)| {
                let shared = Arc::clone(&shared);
                let token = hooks::checked_spawn();
                if let Some(t) = token {
                    tokens.push(t);
                }
                let trace = match &checked_parent {
                    Some(parent) => parent.sibling_auto(),
                    None => session.thread(idx as u32),
                };
                std::thread::Builder::new()
                    .name(format!("pdc-worker-{idx}"))
                    .spawn(move || worker_loop(idx, local, shared, trace, token))
                    .expect("failed to spawn worker")
            })
            .collect();
        // Give the checker a chance to run the freshly spawned workers
        // (the hooks contract: yield once the OS threads exist).
        if !tokens.is_empty() {
            hooks::yield_point();
        }
        WorkStealingPool {
            shared,
            handles,
            tokens,
            trace: session,
        }
    }

    /// Submit a task for execution.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        self.shared.submit(Box::new(task));
    }

    /// Block until every submitted task (including tasks spawned *by*
    /// tasks, when submitted through a clone of [`WorkStealingPool::handle`])
    /// has finished.
    pub fn wait_idle(&self) {
        let mut spins = 0u32;
        if hooks::is_checked() {
            // Deterministic blocking: sleep until a submit/completion/
            // shutdown announces a change, then re-check.
            while self.shared.pending.load(Ordering::SeqCst) != 0 {
                hooks::spin_wait(&mut spins, &self.shared.idle_site);
            }
        } else {
            while self.shared.pending.load(Ordering::SeqCst) != 0 {
                std::hint::spin_loop();
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(32) {
                    std::thread::yield_now();
                }
            }
        }
        // Adopt every finished task's completion fork. Each worker
        // published its handle *before* decrementing `pending`, so at
        // pending == 0 the list is complete and these `Join`s give the
        // trace a path from every task body to the caller's next event
        // — the edge the span pass walks when the critical path runs
        // through a task. Recorded against the caller's own sync trace
        // when it has one, else under the shared submit actor.
        let done: Vec<u64> = std::mem::take(
            &mut *self
                .shared
                .done_handles
                .lock()
                .expect("done handles poisoned"),
        );
        for handle in done {
            if !trace::record_sync(EventKind::Join, handle, 0) {
                self.shared.submit_trace.record(EventKind::Join, handle, 0);
            }
        }
    }

    /// A cloneable submission handle usable from inside tasks.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Total tasks executed (`pool.executed`).
    pub fn executed(&self) -> u64 {
        self.shared.executed.get()
    }

    /// Total successful steals (`pool.steals`, load-balancing events).
    pub fn steals(&self) -> u64 {
        self.shared.steals.get()
    }

    /// Tasks that panicked (`pool.panicked`). A panicking task does not
    /// kill its worker or hang `wait_idle`; the panic is contained and
    /// counted here.
    pub fn panicked(&self) -> u64 {
        self.shared.panicked.get()
    }

    /// The trace session this pool publishes counters and events into.
    pub fn trace(&self) -> &TraceSession {
        &self.trace
    }
}

/// A cheap cloneable handle for submitting tasks from within tasks.
#[derive(Clone)]
pub struct PoolHandle {
    shared: Arc<Shared>,
}

impl PoolHandle {
    /// Submit a task.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        self.shared.submit(Box::new(task));
    }
}

/// Map `f` over `items` on the pool, preserving order: the scenario
/// seam's threads-backend primitive. Each item becomes one pool task;
/// results land in per-item lock slots and are collected after
/// [`WorkStealingPool::wait_idle`], so the output is index-for-index
/// with the input regardless of which worker ran what (or in what
/// stolen order).
///
/// Blocks until the pool is idle, so callers should hand this a pool
/// with no unrelated in-flight tasks.
pub fn pool_map<T, R>(
    pool: &WorkStealingPool,
    items: Vec<T>,
    f: impl Fn(T) -> R + Send + Sync + 'static,
) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
{
    type Slot<T, R> = pdc_sync::SpinLock<(Option<T>, Option<R>)>;
    let slots: Arc<Vec<Slot<T, R>>> = Arc::new(
        items
            .into_iter()
            .map(|t| pdc_sync::SpinLock::new((Some(t), None)))
            .collect(),
    );
    let f = Arc::new(f);
    for i in 0..slots.len() {
        let slots = Arc::clone(&slots);
        let f = Arc::clone(&f);
        pool.spawn(move || {
            let input = slots[i].lock().0.take().expect("each item is taken once");
            let output = f(input);
            slots[i].lock().1 = Some(output);
        });
    }
    pool.wait_idle();
    slots
        .iter()
        .map(|s| s.lock().1.take().expect("task completed before wait_idle"))
        .collect()
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake idle checked workers so they can observe the shutdown,
        // then join them through the checker *before* the blocking OS
        // joins: a checked task stuck in an OS join would hold the
        // baton and deadlock the whole exploration.
        hooks::site_changed(&self.shared.idle_site);
        for token in self.tokens.drain(..) {
            hooks::join_task(&token);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    idx: usize,
    local: Worker<QueuedTask>,
    shared: Arc<Shared>,
    trace: ThreadTrace,
    token: Option<SpawnToken>,
) {
    // Workers record acquire/release events from pdc-sync primitives
    // used inside tasks under their own actor id.
    trace::install_sync_trace(trace.clone());
    if let Some(token) = token {
        // Checked mode: the worker is a schedulable task. Teardown
        // unwinds (AbortSchedule) and real panics both end in end_task,
        // so the checker never waits on a dead worker.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            hooks::begin_task(&token);
            checked_worker_loop(idx, &local, &shared, &trace)
        }));
        if let Err(payload) = &result {
            if !payload.is::<AbortSchedule>() {
                let msg = panic_message(payload);
                hooks::task_panicked(&token, &msg);
            }
        }
        hooks::end_task(&token);
        return;
    }
    // In steal events, `victim` is the sibling worker's index, or the
    // worker count (== the submit actor id) for the global injector.
    let injector_id = shared.stealers.len() as u64;
    let mut idle_spins = 0u32;
    loop {
        // 1. Local LIFO pop (cache-friendly depth-first).
        let task = local.pop().or_else(|| {
            // 2. Steal a batch from the injector.
            loop {
                match shared.injector.steal_batch_and_pop(&local) {
                    crossbeam::deque::Steal::Success(t) => {
                        shared.steals.inc();
                        trace.record(EventKind::Steal, injector_id, 1 + local.len() as u64);
                        return Some(t);
                    }
                    crossbeam::deque::Steal::Retry => continue,
                    crossbeam::deque::Steal::Empty => break,
                }
            }
            // 3. Steal from a sibling.
            for (s_idx, stealer) in shared.stealers.iter().enumerate() {
                if s_idx == idx {
                    continue;
                }
                loop {
                    match stealer.steal() {
                        crossbeam::deque::Steal::Success(t) => {
                            shared.steals.inc();
                            trace.record(EventKind::Steal, s_idx as u64, 1);
                            return Some(t);
                        }
                        crossbeam::deque::Steal::Retry => continue,
                        crossbeam::deque::Steal::Empty => break,
                    }
                }
            }
            None
        });
        match task {
            Some(t) => {
                idle_spins = 0;
                // Adopt the submitter's history before running the task:
                // everything the submitter did before spawn() now
                // happens-before the task body.
                trace.record(EventKind::Join, t.handle, t.seq);
                // Contain panics: a dying worker would strand wait_idle
                // (the pending count would never reach zero).
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(t.run)).is_err() {
                    shared.panicked.inc();
                }
                publish_completion(&shared, &trace, t.seq);
                shared.executed.inc();
                shared.completed.inc();
                shared.pending.fetch_sub(1, Ordering::SeqCst);
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                idle_spins = idle_spins.wrapping_add(1);
                if idle_spins.is_multiple_of(16) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// The worker body under a `pdc-check` exploration. The checker holds
/// the whole pool to one runnable task at a time, which changes the
/// shape of the loop:
///
/// * *which queue to steal from* becomes a recorded choice point
///   ([`hooks::steal_victim`]) over the currently non-empty victims,
///   instead of a fixed probe order — so exploration covers every
///   victim-selection the scheduler could make;
/// * idling blocks deterministically on the pool's idle site instead
///   of spinning, and wakes only when a submit/completion/shutdown
///   announces a change.
fn checked_worker_loop(
    idx: usize,
    local: &Worker<QueuedTask>,
    shared: &Arc<Shared>,
    trace: &ThreadTrace,
) {
    let injector_id = shared.stealers.len() as u64;
    let mut idle_spins = 0u32;
    loop {
        // A preemption point per dequeue attempt: grabbing the next
        // task is itself a schedulable step.
        hooks::yield_point();
        let task = local.pop().or_else(|| {
            // Enumerate non-empty victims under the baton (nothing can
            // change concurrently), then let the checker pick.
            let mut victims: Vec<Option<usize>> = Vec::new();
            if !shared.injector.is_empty() {
                victims.push(None);
            }
            for (s_idx, stealer) in shared.stealers.iter().enumerate() {
                if s_idx != idx && !stealer.is_empty() {
                    victims.push(Some(s_idx));
                }
            }
            if victims.is_empty() {
                return None;
            }
            let pick = victims[hooks::steal_victim(victims.len())];
            match pick {
                None => loop {
                    match shared.injector.steal_batch_and_pop(local) {
                        crossbeam::deque::Steal::Success(t) => {
                            shared.steals.inc();
                            trace.record(EventKind::Steal, injector_id, 1 + local.len() as u64);
                            return Some(t);
                        }
                        crossbeam::deque::Steal::Retry => continue,
                        crossbeam::deque::Steal::Empty => return None,
                    }
                },
                Some(s_idx) => loop {
                    match shared.stealers[s_idx].steal() {
                        crossbeam::deque::Steal::Success(t) => {
                            shared.steals.inc();
                            trace.record(EventKind::Steal, s_idx as u64, 1);
                            return Some(t);
                        }
                        crossbeam::deque::Steal::Retry => continue,
                        crossbeam::deque::Steal::Empty => return None,
                    }
                },
            }
        });
        match task {
            Some(t) => {
                trace.record(EventKind::Join, t.handle, t.seq);
                if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(t.run))
                {
                    if payload.is::<AbortSchedule>() {
                        // Schedule teardown, not a task failure: keep
                        // unwinding so the worker exits cleanly.
                        std::panic::resume_unwind(payload);
                    }
                    shared.panicked.inc();
                }
                publish_completion(shared, trace, t.seq);
                shared.executed.inc();
                shared.completed.inc();
                shared.pending.fetch_sub(1, Ordering::SeqCst);
                hooks::site_changed(&shared.idle_site);
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                hooks::spin_wait(&mut idle_spins, &shared.idle_site);
            }
        }
    }
}

/// Record a finished task's completion `Fork` under a fresh handle and
/// queue the handle for [`WorkStealingPool::wait_idle`] to `Join`. Must
/// run *before* the `pending` decrement so a waiter that observes zero
/// is guaranteed to see the handle.
fn publish_completion(shared: &Shared, trace: &ThreadTrace, seq: u64) {
    let handle = trace::next_site_id();
    trace.record(EventKind::Fork, handle, seq);
    shared
        .done_handles
        .lock()
        .expect("done handles poisoned")
        .push(handle);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;

    #[test]
    fn executes_all_tasks() {
        let pool = WorkStealingPool::new(3);
        let counter = Arc::new(Counter::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
        assert_eq!(pool.executed(), 1000);
    }

    #[test]
    fn recursive_spawning_through_handle() {
        let pool = WorkStealingPool::new(2);
        let counter = Arc::new(Counter::new(0));
        let handle = pool.handle();
        // A task tree: each task spawns two children down to depth 6.
        fn grow(h: PoolHandle, c: Arc<Counter>, depth: u32) {
            c.fetch_add(1, Ordering::SeqCst);
            if depth > 0 {
                let (h2, c2) = (h.clone(), Arc::clone(&c));
                h.spawn(move || grow(h2.clone(), c2, depth - 1));
                let (h3, c3) = (h.clone(), Arc::clone(&c));
                h.spawn(move || grow(h3.clone(), c3, depth - 1));
            }
        }
        let (h, c) = (handle.clone(), Arc::clone(&counter));
        handle.spawn(move || grow(h, c, 6));
        pool.wait_idle();
        // Full binary tree of depth 6: 2^7 - 1 nodes.
        assert_eq!(counter.load(Ordering::SeqCst), 127);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let pool = WorkStealingPool::new(1);
        pool.wait_idle();
        assert_eq!(pool.executed(), 0);
    }

    #[test]
    fn pool_drop_joins_workers() {
        let counter = Arc::new(Counter::new(0));
        {
            let pool = WorkStealingPool::new(2);
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                pool.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            pool.wait_idle();
        } // drop joins
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn tasks_run_on_worker_threads() {
        let pool = WorkStealingPool::new(2);
        let name = Arc::new(pdc_sync::SpinLock::new(String::new()));
        let n2 = Arc::clone(&name);
        pool.spawn(move || {
            *n2.lock() = std::thread::current().name().unwrap_or("").to_string();
        });
        pool.wait_idle();
        assert!(name.lock().starts_with("pdc-worker-"));
    }

    #[test]
    fn steals_happen_under_imbalance() {
        // Many tasks injected at once on a multi-worker pool: someone
        // must steal from the injector at minimum.
        let pool = WorkStealingPool::new(4);
        let counter = Arc::new(Counter::new(0));
        for _ in 0..500 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
                std::thread::yield_now();
            });
        }
        pool.wait_idle();
        assert!(pool.steals() > 0, "expected injector steals");
        assert_eq!(counter.load(Ordering::SeqCst), 500);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        WorkStealingPool::new(0);
    }

    #[test]
    fn panicking_task_does_not_hang_the_pool() {
        let pool = WorkStealingPool::new(2);
        let counter = Arc::new(Counter::new(0));
        for i in 0..100 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                if i % 10 == 0 {
                    panic!("task {i} dies");
                }
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle(); // must return despite 10 panicking tasks
        assert_eq!(counter.load(Ordering::SeqCst), 90);
        assert_eq!(pool.panicked(), 10);
        assert_eq!(pool.executed(), 100);
        // The pool still works afterwards.
        let c = Arc::clone(&counter);
        pool.spawn(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 91);
    }

    #[test]
    fn pool_drains_when_spawner_task_panics_after_spawning() {
        // Regression guard for panic accounting: a task that panics
        // *after* submitting children must still decrement its own
        // pending slot, and the children must still run. If the panic
        // path skipped the decrement, wait_idle would hang here.
        let pool = WorkStealingPool::new(3);
        let counter = Arc::new(Counter::new(0));
        let handle = pool.handle();
        for _ in 0..20 {
            let (h, c) = (handle.clone(), Arc::clone(&counter));
            pool.spawn(move || {
                for _ in 0..5 {
                    let c2 = Arc::clone(&c);
                    h.spawn(move || {
                        c2.fetch_add(1, Ordering::SeqCst);
                    });
                }
                panic!("parent dies after spawning");
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.panicked(), 20);
        assert_eq!(pool.executed(), 120);
        // The monotone submitted/completed pair agrees with the drain.
        let snap = pool.trace().snapshot();
        assert_eq!(snap.get("pool.submitted"), 120);
        assert_eq!(snap.get("pool.completed"), 120);
    }

    #[test]
    fn trace_publishes_counters_and_steal_events() {
        let pool = WorkStealingPool::new(4);
        let counter = Arc::new(Counter::new(0));
        for _ in 0..300 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
                std::thread::yield_now();
            });
        }
        pool.wait_idle();
        let snap = pool.trace().snapshot();
        assert_eq!(snap.get("pool.executed"), 300);
        assert_eq!(snap.get("pool.executed"), pool.executed());
        assert!(snap.get("pool.steals") > 0);
        let events = pool.trace().events();
        assert!(
            events
                .iter()
                .any(|e| e.kind == pdc_core::trace::EventKind::Steal),
            "expected steal events in the trace"
        );
        assert!(
            events
                .iter()
                .any(|e| e.kind == pdc_core::trace::EventKind::Spawn
                    && e.actor == pool.workers() as u32),
            "expected spawn events from the submit actor"
        );
    }

    #[test]
    fn every_task_gets_submit_and_completion_fork_join_pairs() {
        let pool = WorkStealingPool::new(2);
        for _ in 0..40 {
            pool.spawn(|| {});
        }
        pool.wait_idle();
        let workers = pool.workers() as u32;
        let events = pool.trace().events();
        let forks: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Fork)
            .collect();
        let joins: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Join)
            .collect();
        // Two pairs per task: submit fork (submit actor) adopted by the
        // running worker, and completion fork (worker) adopted by
        // wait_idle (recorded under the submit actor — no caller trace
        // is installed here).
        assert_eq!(forks.len(), 80);
        assert_eq!(joins.len(), 80);
        assert_eq!(forks.iter().filter(|f| f.actor == workers).count(), 40);
        assert_eq!(forks.iter().filter(|f| f.actor < workers).count(), 40);
        assert_eq!(joins.iter().filter(|j| j.actor < workers).count(), 40);
        assert_eq!(joins.iter().filter(|j| j.actor == workers).count(), 40);
        for j in &joins {
            let f = forks
                .iter()
                .find(|f| f.a == j.a)
                .unwrap_or_else(|| panic!("join of unknown handle {}", j.a));
            assert!(f.ts < j.ts, "fork must precede its join in trace order");
            // Pairs cross the submit/worker boundary in both directions.
            if f.actor == workers {
                assert!((j.actor as usize) < pool.workers());
            } else {
                assert_eq!(j.actor, workers);
            }
        }
    }

    #[test]
    fn worker_sync_ops_record_under_worker_actor() {
        // A pdc-sync lock used inside a task records acquire/release
        // under the executing worker's actor, via the installed
        // thread-local sync trace.
        let pool = WorkStealingPool::new(2);
        let lock = Arc::new(pdc_sync::SpinLock::new(0u64));
        for _ in 0..10 {
            let l = Arc::clone(&lock);
            pool.spawn(move || {
                *l.lock() += 1;
            });
        }
        pool.wait_idle();
        let events = pool.trace().events();
        let acquires: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Acquire)
            .collect();
        assert_eq!(acquires.len(), 10);
        assert!(acquires.iter().all(|e| (e.actor as usize) < pool.workers()));
        let releases = events
            .iter()
            .filter(|e| e.kind == EventKind::Release)
            .count();
        assert_eq!(releases, 10);
    }

    #[test]
    fn pool_map_preserves_order_and_matches_sequential() {
        let pool = WorkStealingPool::new(4);
        let items: Vec<u64> = (0..500).collect();
        let expected: Vec<u64> = items.iter().map(|v| v * v + 1).collect();
        let got = pool_map(&pool, items, |v| v * v + 1);
        assert_eq!(got, expected);
        assert_eq!(pool.executed(), 500);
    }

    #[test]
    fn pool_map_handles_empty_and_single_item() {
        let pool = WorkStealingPool::new(2);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(pool_map(&pool, empty, |v| v + 1), Vec::<u32>::new());
        assert_eq!(pool_map(&pool, vec![41u32], |v| v + 1), vec![42]);
    }

    #[test]
    fn shared_session_sees_pool_counters() {
        let session = TraceSession::new();
        let before = session.snapshot();
        let pool = WorkStealingPool::with_trace(2, session.clone());
        for _ in 0..50 {
            pool.spawn(|| {});
        }
        pool.wait_idle();
        let delta = session.snapshot().diff(&before);
        assert_eq!(delta.get("pool.executed"), 50);
    }
}
