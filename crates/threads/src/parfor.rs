//! OpenMP-style `parallel_for` with static, dynamic, and guided
//! scheduling.
//!
//! The CS87 short labs compare loop-scheduling policies on irregular
//! workloads; this module makes the comparison concrete. The body runs
//! once per index, on one of `workers` scoped threads; the returned
//! [`ForStats`] reports how many iterations each worker executed, so
//! load-(im)balance is measurable rather than anecdotal.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Loop scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Pre-split the range into `workers` contiguous blocks.
    Static,
    /// Workers repeatedly grab fixed-size chunks from a shared counter.
    Dynamic {
        /// Iterations taken per grab.
        chunk: usize,
    },
    /// Chunk size shrinks as the remaining work shrinks
    /// (`remaining / workers`, floored at `min_chunk`).
    Guided {
        /// Smallest chunk a worker may grab.
        min_chunk: usize,
    },
}

/// Per-run execution statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForStats {
    /// Iterations executed by each worker.
    pub per_worker: Vec<usize>,
    /// Number of chunk grabs (scheduling events).
    pub grabs: usize,
}

impl ForStats {
    /// Ratio of the busiest worker's iteration count to the mean —
    /// 1.0 is perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.per_worker.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.per_worker.len() as f64;
        let max = *self.per_worker.iter().max().unwrap() as f64;
        max / mean
    }
}

/// Execute `body(i)` for every `i` in `range`, on `workers` threads,
/// under the given scheduling policy. Returns per-worker statistics.
///
/// # Panics
/// Panics if `workers == 0`, or if a chunk parameter is zero, or if the
/// body panics (propagated).
pub fn parallel_for(
    range: std::ops::Range<usize>,
    workers: usize,
    schedule: Schedule,
    body: impl Fn(usize) + Sync,
) -> ForStats {
    assert!(workers > 0, "need at least one worker");
    match schedule {
        Schedule::Dynamic { chunk } => assert!(chunk > 0, "chunk must be positive"),
        Schedule::Guided { min_chunk } => assert!(min_chunk > 0, "min_chunk must be positive"),
        Schedule::Static => {}
    }
    let start = range.start;
    let n = range.end.saturating_sub(range.start);
    let grabs = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let body = &body;

    let per_worker: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                let grabs = &grabs;
                s.spawn(move || {
                    let mut mine = 0usize;
                    match schedule {
                        Schedule::Static => {
                            // Block partitioning with remainder spread.
                            let base = n / workers;
                            let rem = n % workers;
                            let lo = w * base + w.min(rem);
                            let len = base + usize::from(w < rem);
                            if len > 0 {
                                grabs.fetch_add(1, Ordering::Relaxed);
                            }
                            for i in lo..lo + len {
                                body(start + i);
                                mine += 1;
                            }
                        }
                        Schedule::Dynamic { chunk } => loop {
                            let lo = next.fetch_add(chunk, Ordering::Relaxed);
                            if lo >= n {
                                break;
                            }
                            grabs.fetch_add(1, Ordering::Relaxed);
                            let hi = (lo + chunk).min(n);
                            for i in lo..hi {
                                body(start + i);
                                mine += 1;
                            }
                        },
                        Schedule::Guided { min_chunk } => loop {
                            // Compute the desired chunk from remaining
                            // work, then claim it with a CAS loop.
                            let mut lo = next.load(Ordering::Relaxed);
                            let claimed = loop {
                                if lo >= n {
                                    break None;
                                }
                                let remaining = n - lo;
                                let chunk = (remaining / workers).max(min_chunk);
                                match next.compare_exchange_weak(
                                    lo,
                                    lo + chunk,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                ) {
                                    Ok(_) => break Some((lo, (lo + chunk).min(n))),
                                    Err(seen) => lo = seen,
                                }
                            };
                            let Some((lo, hi)) = claimed else { break };
                            grabs.fetch_add(1, Ordering::Relaxed);
                            for i in lo..hi {
                                body(start + i);
                                mine += 1;
                            }
                        },
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_for body panicked"))
            .collect()
    });

    ForStats {
        per_worker,
        grabs: grabs.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn covers_exactly_once(schedule: Schedule) {
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let stats = parallel_for(0..n, 4, schedule, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "every index exactly once ({schedule:?})"
        );
        assert_eq!(stats.per_worker.iter().sum::<usize>(), n);
    }

    #[test]
    fn static_covers_exactly_once() {
        covers_exactly_once(Schedule::Static);
    }

    #[test]
    fn dynamic_covers_exactly_once() {
        covers_exactly_once(Schedule::Dynamic { chunk: 64 });
    }

    #[test]
    fn guided_covers_exactly_once() {
        covers_exactly_once(Schedule::Guided { min_chunk: 16 });
    }

    #[test]
    fn nonzero_range_start_respected() {
        let seen = pdc_sync::SpinLock::new(Vec::new());
        parallel_for(100..110, 2, Schedule::Static, |i| {
            seen.lock().push(i);
        });
        let mut v = seen.into_inner();
        v.sort_unstable();
        assert_eq!(v, (100..110).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_is_fine() {
        let stats = parallel_for(5..5, 3, Schedule::Dynamic { chunk: 8 }, |_| {
            panic!("must not run")
        });
        assert_eq!(stats.per_worker.iter().sum::<usize>(), 0);
        assert_eq!(stats.grabs, 0);
    }

    #[test]
    fn static_split_is_even() {
        let stats = parallel_for(0..1000, 4, Schedule::Static, |_| {});
        assert_eq!(stats.per_worker, vec![250; 4]);
        assert!((stats.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn static_remainder_spread() {
        let stats = parallel_for(0..10, 4, Schedule::Static, |_| {});
        let mut pw = stats.per_worker.clone();
        pw.sort_unstable();
        assert_eq!(pw, vec![2, 2, 3, 3]);
    }

    #[test]
    fn guided_uses_fewer_grabs_than_small_dynamic() {
        let n = 100_000;
        let dyn_stats = parallel_for(0..n, 4, Schedule::Dynamic { chunk: 16 }, |_| {});
        let guided_stats = parallel_for(0..n, 4, Schedule::Guided { min_chunk: 16 }, |_| {});
        assert!(
            guided_stats.grabs * 10 < dyn_stats.grabs,
            "guided {} vs dynamic {}",
            guided_stats.grabs,
            dyn_stats.grabs
        );
    }

    #[test]
    fn results_correct_for_irregular_work() {
        // Triangular workload: iteration i does O(i) work. All schedules
        // must produce the same total.
        let total = AtomicU64::new(0);
        let expected: u64 = (0..2000u64).map(|i| i * (i + 1) / 2 % 1009).sum();
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 32 },
            Schedule::Guided { min_chunk: 8 },
        ] {
            total.store(0, Ordering::SeqCst);
            parallel_for(0..2000, 3, schedule, |i| {
                let i = i as u64;
                total.fetch_add(i * (i + 1) / 2 % 1009, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::SeqCst), expected, "{schedule:?}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_rejected() {
        parallel_for(0..10, 2, Schedule::Dynamic { chunk: 0 }, |_| {});
    }
}
