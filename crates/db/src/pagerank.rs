//! PageRank-flavored iterative shuffle behind the scenario seam.
//!
//! The curriculum's iterative-dataflow example: a fixed number of
//! rounds, each round scattering per-edge contributions and gathering
//! them by destination — the workload whose *shape* (rounds of
//! all-to-all) motivates bulk-synchronous systems. `size` is the node
//! count; the graph is seeded with [`OUT_DEGREE`] out-edges per node.
//!
//! All arithmetic is fixed-point `u64` (scaled by [`SCALE`]) so every
//! backend — and every summation order — produces bit-identical ranks:
//!
//! * **Sequential** — one scatter/gather loop per round.
//! * **Threads** — the per-round scatter fans out over the
//!   work-stealing pool; partial contribution vectors merge by
//!   commutative integer addition.
//! * **Mpi** — each round's contributions ride the sharded KV as
//!   `Put("dst:src", amount)` batches (one world run per round — a
//!   genuine multi-round shuffle), and the gathered state is summed by
//!   destination.
//!
//! The declared asymptotics are the textbook ones for a
//! constant-degree graph: work Θ(rounds·n) and span Θ(rounds·log n)
//! (each round's gather is a parallel reduce tree), published via
//! [`declared_bounds`] for the span gate's curve fit.

use crate::sharded::{run_local_traced, ShardOp};
use pdc_core::rng::Rng;
use pdc_core::scenario::{Backend, Digest, Outcome, Scenario, ScenarioCtx};
use pdc_core::trace::record_steps;
use pdc_core::workspan::{Bounds, Theta};
use pdc_threads::pool::{pool_map, WorkStealingPool};

/// Out-edges per node in the seeded graph.
pub const OUT_DEGREE: usize = 4;
/// Iteration count — a constant of the algorithm configuration, so it
/// appears in the declared span class, not the problem size.
pub const ROUNDS: usize = 8;
/// Fixed-point scale for rank mass.
pub const SCALE: u64 = 1 << 20;
/// Damping factor as a fixed-point fraction: 0.85 ≈ 871/1024.
const DAMP_NUM: u64 = 871;
const DAMP_DEN: u64 = 1024;

/// Declared asymptotic bounds of the iterative shuffle — the registry
/// entry the span gate curve-fits measured sweeps against.
pub fn declared_bounds() -> Bounds {
    Bounds::new(
        Theta::Linear,
        Theta::RoundsLog {
            rounds: ROUNDS as u64,
        },
    )
}

/// Seeded constant-degree digraph: `edges[v]` are `v`'s out-neighbors.
pub fn gen_graph(seed: u64, n: usize) -> Vec<[usize; OUT_DEGREE]> {
    let mut rng = Rng::new(seed ^ 0x9a6e_7a9e);
    (0..n)
        .map(|v| {
            let mut out = [0usize; OUT_DEGREE];
            for slot in &mut out {
                // Self-loops allowed; they just return mass to v.
                *slot = rng.usize_in(0, n - 1);
                debug_assert!(*slot < n, "edge target in range for node {v}");
            }
            out
        })
        .collect()
}

/// The damped per-edge contribution of a node holding `rank` mass.
fn edge_contribution(rank: u64) -> u64 {
    rank * DAMP_NUM / DAMP_DEN / OUT_DEGREE as u64
}

/// One round's teleport base: `(1 - d) · SCALE` per node.
fn base_mass() -> u64 {
    SCALE - SCALE * DAMP_NUM / DAMP_DEN
}

/// Reference implementation: `ROUNDS` scatter/gather rounds, one step
/// of attributed work per edge per round.
pub fn ranks_sequential(graph: &[[usize; OUT_DEGREE]]) -> Vec<u64> {
    let n = graph.len();
    let mut ranks = vec![SCALE; n];
    for _ in 0..ROUNDS {
        let mut next = vec![base_mass(); n];
        for (v, out) in graph.iter().enumerate() {
            let c = edge_contribution(ranks[v]);
            for &dst in out {
                next[dst] += c;
            }
        }
        record_steps((n * OUT_DEGREE) as u64);
        ranks = next;
    }
    ranks
}

/// Threaded scatter: each round fans node chunks over the pool; every
/// chunk produces a partial contribution vector and the (commutative,
/// integer) merge keeps the result identical to [`ranks_sequential`].
pub fn ranks_pooled(graph: &[[usize; OUT_DEGREE]], pool: &WorkStealingPool) -> Vec<u64> {
    let n = graph.len();
    let workers = pool.workers().max(1);
    let chunk = n.div_ceil(workers).max(1);
    let mut ranks = vec![SCALE; n];
    for _ in 0..ROUNDS {
        let chunks: Vec<(usize, Vec<[usize; OUT_DEGREE]>)> = graph
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| (i * chunk, c.to_vec()))
            .collect();
        let ranks_in = std::sync::Arc::new(ranks.clone());
        let partials = pool_map(pool, chunks, {
            let ranks_in = std::sync::Arc::clone(&ranks_in);
            move |(lo, nodes)| {
                let mut partial = vec![0u64; n];
                for (i, out) in nodes.iter().enumerate() {
                    let c = edge_contribution(ranks_in[lo + i]);
                    for &dst in out {
                        partial[dst] += c;
                    }
                }
                record_steps((nodes.len() * OUT_DEGREE) as u64);
                partial
            }
        });
        let mut next = vec![base_mass(); n];
        for partial in partials {
            for (acc, p) in next.iter_mut().zip(partial) {
                *acc += p;
            }
        }
        ranks = next;
    }
    ranks
}

/// Sharded-KV scatter: each round turns every edge contribution into a
/// `Put("dst:src", amount)` routed through [`crate::sharded`] (one
/// world run per round), then gathers the returned state by
/// destination. The KV is the shuffle medium; the sums stay exact.
pub fn ranks_sharded(
    graph: &[[usize; OUT_DEGREE]],
    shards: usize,
    ctx: &ScenarioCtx<'_>,
) -> Vec<u64> {
    let n = graph.len();
    let mut ranks = vec![SCALE; n];
    for _ in 0..ROUNDS {
        let ops: Vec<ShardOp> = graph
            .iter()
            .enumerate()
            .flat_map(|(v, out)| {
                let c = edge_contribution(ranks[v]);
                out.iter()
                    .enumerate()
                    .map(move |(slot, &dst)| ShardOp::Put {
                        key: format!("{dst:08}:{v:08}:{slot}"),
                        val: c.to_string(),
                    })
            })
            .collect();
        ctx.session
            .counter("pagerank.shuffled_contributions")
            .add(ops.len() as u64);
        let (state, _traffic) = run_local_traced(shards, &ops, true, ctx.session);
        let mut next = vec![base_mass(); n];
        for (key, (val, _ver)) in &state {
            let dst: usize = key[..8].parse().expect("key minted as dst:src:slot");
            next[dst] += val.parse::<u64>().expect("value minted as u64");
        }
        record_steps((n * OUT_DEGREE) as u64);
        ranks = next;
    }
    ranks
}

/// Digest a rank vector.
pub fn digest_ranks(ranks: &[u64]) -> u64 {
    let mut d = Digest::new();
    d.write_u64(ranks.len() as u64);
    for r in ranks {
        d.write_u64(*r);
    }
    d.finish()
}

/// The iterative multi-round shuffle on sequential / threads /
/// sharded-KV backends.
pub struct PageRankScenario;

impl Scenario for PageRankScenario {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn backends(&self) -> Vec<Backend> {
        vec![
            Backend::Sequential,
            Backend::Threads { workers: 4 },
            Backend::Mpi {
                ranks: 3,
                wire: false,
            },
        ]
    }

    fn run(&self, backend: &Backend, ctx: &ScenarioCtx<'_>) -> Outcome {
        let graph = gen_graph(ctx.seed, ctx.size);
        let ranks = match backend {
            Backend::Sequential => ranks_sequential(&graph),
            Backend::Threads { workers } => {
                let pool = WorkStealingPool::with_trace(*workers, ctx.session.clone());
                ranks_pooled(&graph, &pool)
            }
            Backend::Mpi { ranks, wire: false } => ranks_sharded(&graph, *ranks, ctx),
            other => panic!("pagerank scenario does not support {other}"),
        };
        // Total mass is conserved up to truncation; expose it as the
        // sanity row the gate's tables report.
        let mass: u64 = ranks.iter().sum();
        Outcome {
            digest: digest_ranks(&ranks),
            items: ctx.size as u64,
            detail: format!("rounds={ROUNDS} mass={mass}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::scenario::{run_scenario, AnalyzeVerdict, ScenarioConfig};
    use pdc_core::trace::TraceSession;

    fn no_analyzer(_: &TraceSession) -> AnalyzeVerdict {
        AnalyzeVerdict {
            clean: true,
            defects: 0,
            events: 0,
        }
    }

    #[test]
    fn all_backends_agree_bit_for_bit() {
        let cfg = ScenarioConfig::new(77, &[12, 40]);
        let report = run_scenario(&PageRankScenario, &cfg, &no_analyzer);
        assert_eq!(report.runs.len(), 6);
        assert!(report.outcomes_agree(), "{:?}", report.mismatches());
        assert!(report.rows_valid());
    }

    #[test]
    fn mass_is_approximately_conserved() {
        let graph = gen_graph(3, 100);
        let ranks = ranks_sequential(&graph);
        let total: u64 = ranks.iter().sum();
        let ideal = 100 * SCALE;
        // Truncation only loses mass, never creates it, and the loss is
        // bounded by a few units per edge per round.
        assert!(total <= ideal);
        assert!(total > ideal - (ROUNDS * 100 * OUT_DEGREE * 4) as u64);
    }

    #[test]
    fn hub_nodes_accumulate_rank() {
        // A graph where everyone points at node 0 must rank it highest.
        let n = 32usize;
        let graph: Vec<[usize; OUT_DEGREE]> = (0..n).map(|_| [0usize; OUT_DEGREE]).collect();
        let ranks = ranks_sequential(&graph);
        let max = *ranks.iter().max().unwrap();
        assert_eq!(ranks[0], max);
        assert!(ranks[0] > ranks[1] * 10, "hub dominates: {ranks:?}");
    }

    #[test]
    fn graph_is_deterministic_and_seed_sensitive() {
        assert_eq!(gen_graph(5, 20), gen_graph(5, 20));
        assert_ne!(gen_graph(5, 20), gen_graph(6, 20));
    }

    #[test]
    fn declared_bounds_have_the_issue_shape() {
        let b = declared_bounds();
        assert_eq!(b.work, Theta::Linear);
        assert_eq!(
            b.span,
            Theta::RoundsLog {
                rounds: ROUNDS as u64
            }
        );
    }

    #[test]
    fn traced_sequential_run_attributes_one_step_per_edge_per_round() {
        use pdc_core::trace::{self, EventKind, MARK_STEPS};
        let session = TraceSession::with_capacity(1 << 12);
        let prev = trace::install_sync_trace(session.thread(900));
        let graph = gen_graph(8, 50);
        ranks_sequential(&graph);
        match prev {
            Some(p) => {
                trace::install_sync_trace(p);
            }
            None => {
                trace::clear_sync_trace();
            }
        }
        let total: u64 = session
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Mark && e.a == MARK_STEPS)
            .map(|e| e.b)
            .sum();
        assert_eq!(total, (ROUNDS * 50 * OUT_DEGREE) as u64);
    }
}
