//! The sharded store facing **live traffic**: a front-end tier that
//! accepts real client connections, routes every op through the
//! consistent-hash ring to replicated shard processes, and survives a
//! shard dying mid-run — promotion, rebalance, zero lost acknowledged
//! writes.
//!
//! This is [`crate::sharded`] graduated from scripted replay to a
//! serving system, and the replication / load-balancing / fault-
//! tolerance topics of the curriculum made executable in one artifact:
//!
//! * **Front end** (rank 0, this process): the [`pdc_mpi::kv_tcp`]
//!   event-loop shape — nonblocking accept/read/write sweeps with the
//!   same `MAX_LINE` / `MAX_WBUF` buffer caps — speaking the kv_tcp
//!   line protocol to clients, plus a [`pdc_mpi::WireHub`] control
//!   plane to the shards. Client sockets are registered on the hub's
//!   poller ([`WireHub::register_client`]), so the whole tier blocks in
//!   one `poll(2)` ([`WireHub::pump`]) instead of sleeping between
//!   sweeps. On the default mesh topology, shard↔shard chain traffic
//!   (`Fwd`, `Sync`) travels direct child connections and never crosses
//!   the hub — [`ServeOutcome::hub_forwarded`] stays 0.
//! * **Replication**: chain replication over [`HashRing::nodes_for`]
//!   with 2 replicas. The front end sends an op to its primary; the
//!   primary applies it, ships the *result* (absolute value + version,
//!   so replicas stay bit-identical) to the backup; the **tail** acks.
//!   An op is acknowledged to the client only once the whole chain
//!   holds it — which is exactly why a single failure loses nothing.
//! * **Failure detection**: two detectors feed one verdict. The hub's
//!   event loop turns a dead socket into a
//!   [`TransportError::PeerClosed`] event (the bugfixed transport
//!   surface), and an [`ft::HeartbeatMonitor`](pdc_mpi::ft) fed by
//!   Ping/Pong traffic catches silent hangs the socket layer misses.
//!   Whichever fires first claims the death ([`WireHub::report_dead`]);
//!   the loser is suppressed inside the hub, so overlapping signals for
//!   one crash can never promote two backups.
//! * **Promotion & rebalance**: on a death the ring shrinks, surviving
//!   shards re-derive ownership and `Sync` copies to the backups the
//!   new ring assigns, the front end re-sends every unacknowledged op
//!   (in id order) to the new primaries, and per-op **memoization** on
//!   the shards makes those retries idempotent — a retried op that was
//!   already applied re-ships its memoized result instead of bumping
//!   the version twice.
//!
//! The serve gate (`experiments --serve`) drives this with a closed-loop
//! load generator, kills a shard mid-run, and checks: final state equals
//! a direct single-node apply of the acked ops, `serve.promotions >= 1`,
//! latency percentiles, and a clean `analyze_merged` verdict over the
//! merged per-process traces (with the dead rank's causally-incomplete
//! message pairs shrunk away, MPI-communicator style).

use crate::dht::HashRing;
use crate::sharded::{apply_op, shard_ring, Applied, KvState, ShardOp};
use pdc_core::merge::{self, MergedTrace};
use pdc_core::trace::{EventKind, ThreadTrace, TraceSession};
use pdc_mpi::ft::HeartbeatMonitor;
use pdc_mpi::kv_tcp::{MAX_LINE, MAX_WBUF};
use pdc_mpi::{
    take_child_env, HubEvent, Payload, Transport, TransportError, WireHub, WireMessage,
    WireOptions, WireTransport,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The single tag all serve-protocol messages travel under.
pub const TAG_SERVE: u32 = 0x60;

/// "No backup" marker in [`ServeMsg::Op`] (rank 0 is the front end, so
/// 0 can never name a shard).
const NO_BACKUP: u32 = 0;

/// An op's effect, computed once at the primary and shipped down the
/// chain so every replica stores bit-identical `(value, version)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyCmd {
    /// Bind `key` to exactly this value and version.
    Set {
        /// The key.
        key: String,
        /// The value the primary computed.
        val: String,
        /// The version the primary computed.
        ver: u64,
    },
    /// Remove `key`.
    Del {
        /// The key.
        key: String,
    },
}

/// The client-visible outcome of an op, rendered to a kv_tcp-style
/// reply line by the front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// PUT wrote this version (`OK <ver>`).
    PutOk(u64),
    /// DEL removed an existing key (`OK 0`).
    DelOk,
    /// DEL missed (`NOTFOUND`).
    DelMiss,
    /// GET observed this binding or its absence
    /// (`VALUE <ver> <val>` / `NOTFOUND`).
    Got(Option<(String, u64)>),
}

impl Reply {
    /// The kv_tcp protocol line for this reply.
    pub fn render(&self) -> String {
        match self {
            Reply::PutOk(ver) => format!("OK {ver}"),
            Reply::DelOk => "OK 0".into(),
            Reply::DelMiss => "NOTFOUND".into(),
            Reply::Got(Some((val, ver))) => format!("VALUE {ver} {val}"),
            Reply::Got(None) => "NOTFOUND".into(),
        }
    }
}

/// The serve protocol. Front end ↔ shard and shard ↔ shard messages
/// share one enum (and one tag): a chain is only two hops, the message
/// kinds say who handles what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeMsg {
    /// Front end → primary: execute op `id`; if `backup != 0`, chain
    /// the result there (the backup acks); else ack directly.
    Op {
        /// Monotone op id, assigned by the front end; the idempotency
        /// key for retries after a failure.
        id: u64,
        /// The operation.
        op: ShardOp,
        /// World rank of the backup replica (0 = none).
        backup: u32,
    },
    /// Primary → backup: apply this absolute result and ack `id`.
    Fwd {
        /// The op id being chained.
        id: u64,
        /// The primary's computed effect.
        cmd: ApplyCmd,
        /// The reply to carry back to the front end.
        reply: Reply,
    },
    /// Chain tail → front end: op `id` is durable on the whole chain.
    Ack {
        /// The op id.
        id: u64,
        /// The client-visible outcome.
        reply: Reply,
    },
    /// Front end → shard: liveness probe.
    Ping,
    /// Shard → front end: liveness answer.
    Pong,
    /// Front end → all survivors: world rank `dead` is gone; shrink the
    /// ring and rebalance.
    Reconfig {
        /// The dead world rank.
        dead: u32,
    },
    /// Shard → shard: one key's binding, copied to a backup the
    /// post-failure ring newly assigns.
    Sync {
        /// The key.
        key: String,
        /// Its value.
        val: String,
        /// Its version.
        ver: u64,
    },
    /// Front end → shard: report the keys you are primary for.
    Stop,
    /// Shard → front end: one primary-owned key's final binding.
    Entry {
        /// The key.
        key: String,
        /// Its final value.
        val: String,
        /// Its final version.
        ver: u64,
    },
    /// Shard → front end: end of the state report.
    Done {
        /// Ops this shard applied as primary.
        ops: u64,
    },
    /// Front end → shard: all reports are in; write your trace snapshot
    /// and exit. (Separate from [`ServeMsg::Stop`] so in-flight
    /// shard→shard `Sync`s land — and are trace-recorded — before any
    /// receiver leaves the world.)
    Exit,
}

impl Payload for ApplyCmd {
    fn size_bytes(&self) -> u64 {
        1 + match self {
            ApplyCmd::Set { key, val, .. } => (key.len() + val.len()) as u64 + 8,
            ApplyCmd::Del { key } => key.len() as u64,
        }
    }
}

impl Payload for Reply {
    fn size_bytes(&self) -> u64 {
        1 + match self {
            Reply::PutOk(_) => 8,
            Reply::DelOk | Reply::DelMiss => 0,
            Reply::Got(Some((val, _))) => val.len() as u64 + 9,
            Reply::Got(None) => 1,
        }
    }
}

impl Payload for ServeMsg {
    fn size_bytes(&self) -> u64 {
        1 + match self {
            ServeMsg::Op { op, .. } => 12 + op.size_bytes(),
            ServeMsg::Fwd { cmd, reply, .. } => 8 + cmd.size_bytes() + reply.size_bytes(),
            ServeMsg::Ack { reply, .. } => 8 + reply.size_bytes(),
            ServeMsg::Ping | ServeMsg::Pong | ServeMsg::Stop | ServeMsg::Exit => 0,
            ServeMsg::Reconfig { .. } => 4,
            ServeMsg::Sync { key, val, .. } | ServeMsg::Entry { key, val, .. } => {
                (key.len() + val.len()) as u64 + 8
            }
            ServeMsg::Done { .. } => 8,
        }
    }
}

impl WireMessage for ApplyCmd {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ApplyCmd::Set { key, val, ver } => {
                out.push(0);
                key.encode(out);
                val.encode(out);
                ver.encode(out);
            }
            ApplyCmd::Del { key } => {
                out.push(1);
                key.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let (&disc, rest) = buf.split_first()?;
        *buf = rest;
        Some(match disc {
            0 => ApplyCmd::Set {
                key: String::decode(buf)?,
                val: String::decode(buf)?,
                ver: u64::decode(buf)?,
            },
            1 => ApplyCmd::Del {
                key: String::decode(buf)?,
            },
            _ => return None,
        })
    }
}

impl WireMessage for Reply {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Reply::PutOk(ver) => {
                out.push(0);
                ver.encode(out);
            }
            Reply::DelOk => out.push(1),
            Reply::DelMiss => out.push(2),
            Reply::Got(opt) => {
                out.push(3);
                opt.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let (&disc, rest) = buf.split_first()?;
        *buf = rest;
        Some(match disc {
            0 => Reply::PutOk(u64::decode(buf)?),
            1 => Reply::DelOk,
            2 => Reply::DelMiss,
            3 => Reply::Got(Option::<(String, u64)>::decode(buf)?),
            _ => return None,
        })
    }
}

impl WireMessage for ServeMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServeMsg::Op { id, op, backup } => {
                out.push(0);
                id.encode(out);
                op.encode(out);
                backup.encode(out);
            }
            ServeMsg::Fwd { id, cmd, reply } => {
                out.push(1);
                id.encode(out);
                cmd.encode(out);
                reply.encode(out);
            }
            ServeMsg::Ack { id, reply } => {
                out.push(2);
                id.encode(out);
                reply.encode(out);
            }
            ServeMsg::Ping => out.push(3),
            ServeMsg::Pong => out.push(4),
            ServeMsg::Reconfig { dead } => {
                out.push(5);
                dead.encode(out);
            }
            ServeMsg::Sync { key, val, ver } => {
                out.push(6);
                key.encode(out);
                val.encode(out);
                ver.encode(out);
            }
            ServeMsg::Stop => out.push(7),
            ServeMsg::Entry { key, val, ver } => {
                out.push(8);
                key.encode(out);
                val.encode(out);
                ver.encode(out);
            }
            ServeMsg::Done { ops } => {
                out.push(9);
                ops.encode(out);
            }
            ServeMsg::Exit => out.push(10),
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let (&disc, rest) = buf.split_first()?;
        *buf = rest;
        Some(match disc {
            0 => ServeMsg::Op {
                id: u64::decode(buf)?,
                op: ShardOp::decode(buf)?,
                backup: u32::decode(buf)?,
            },
            1 => ServeMsg::Fwd {
                id: u64::decode(buf)?,
                cmd: ApplyCmd::decode(buf)?,
                reply: Reply::decode(buf)?,
            },
            2 => ServeMsg::Ack {
                id: u64::decode(buf)?,
                reply: Reply::decode(buf)?,
            },
            3 => ServeMsg::Ping,
            4 => ServeMsg::Pong,
            5 => ServeMsg::Reconfig {
                dead: u32::decode(buf)?,
            },
            6 => ServeMsg::Sync {
                key: String::decode(buf)?,
                val: String::decode(buf)?,
                ver: u64::decode(buf)?,
            },
            7 => ServeMsg::Stop,
            8 => ServeMsg::Entry {
                key: String::decode(buf)?,
                val: String::decode(buf)?,
                ver: u64::decode(buf)?,
            },
            9 => ServeMsg::Done {
                ops: u64::decode(buf)?,
            },
            10 => ServeMsg::Exit,
            _ => return None,
        })
    }
}

// ---------------------------------------------------------------------
// Shard child process
// ---------------------------------------------------------------------

/// Apply a chained (absolute) command; replicas stay bit-identical to
/// the primary because nothing is recomputed.
fn apply_cmd(store: &mut BTreeMap<String, (String, u64)>, cmd: &ApplyCmd) {
    match cmd {
        ApplyCmd::Set { key, val, ver } => {
            store.insert(key.clone(), (val.clone(), *ver));
        }
        ApplyCmd::Del { key } => {
            store.remove(key);
        }
    }
}

/// The entry point a serve child process runs: one shard rank, serving
/// until told to exit. Call this from a binary's dispatch on
/// [`pdc_mpi::WireWorld::child_world_id`]. Never returns.
///
/// # Panics
/// Panics if the child env markers are missing (i.e. called in a
/// process that is not a spawned wire child).
pub fn run_shard_child() -> ! {
    let env = take_child_env().expect("serve shard: not a wire child process");
    let rank = env.rank;
    let shards = env.procs - 1;
    let my_node = (rank - 1) as u64;
    let transport: WireTransport<ServeMsg> =
        WireTransport::connect_env(&env).expect("serve shard: connect to front end");

    // Per-process session; capacity raised well past the default — a
    // loaded shard records several events per op and dropped events
    // would poison the merged causal order.
    let session = env.trace_dir.as_ref().map(|_| {
        let s = TraceSession::with_capacity(1 << 17);
        (s.thread(rank as u32), s)
    });
    let tracer = session.as_ref().map(|(t, _)| t);
    let record_send = |dst: usize, msg: &ServeMsg| {
        if let Some(t) = tracer {
            t.record(EventKind::Send, dst as u64, msg.size_bytes());
        }
    };
    let record_recv = |src: usize, msg: &ServeMsg| {
        if let Some(t) = tracer {
            t.record(EventKind::Recv, src as u64, msg.size_bytes());
        }
    };
    let counters = session.as_ref().map(|(_, s)| {
        (
            s.counter("serve.primary_ops"),
            s.counter("serve.replica_ops"),
            s.counter("serve.rebalanced_keys"),
        )
    });
    let send = |dst: usize, msg: ServeMsg| {
        record_send(dst, &msg);
        // A failed send to a dead sibling (chain partner
        // mid-failover) is dropped: the front end's failure
        // detection owns the promotion and will retry the op on the
        // new chain. A dead *front end* means nothing to serve and
        // nobody to tell.
        if transport.try_send(rank, dst, TAG_SERVE, msg).is_err() && dst == 0 {
            std::process::exit(1);
        }
    };

    let mut ring = shard_ring(shards);
    let mut store: BTreeMap<String, (String, u64)> = BTreeMap::new();
    // Memoized results of mutating ops, keyed by op id: the idempotency
    // table that makes post-failure retries safe. A retried op re-ships
    // its memoized (cmd, reply) instead of re-applying.
    let mut seen: HashMap<u64, (ApplyCmd, Reply)> = HashMap::new();
    let mut primary_ops = 0u64;

    loop {
        let envl = match transport.try_recv() {
            Ok(e) => e,
            // Front end died (or corrupted the stream): there is no
            // world left to serve. Exit loudly.
            Err(_) => std::process::exit(1),
        };
        record_recv(envl.src, &envl.msg);
        match envl.msg {
            ServeMsg::Ping => send(0, ServeMsg::Pong),
            ServeMsg::Op { id, op, backup } => match &op {
                // GETs are idempotent and never chained: answer from
                // the primary's store.
                ShardOp::Get { key } => {
                    let reply = Reply::Got(store.get(key).cloned());
                    send(0, ServeMsg::Ack { id, reply });
                }
                _ => {
                    let (cmd, reply) = match seen.get(&id) {
                        // Retry of an op this replica already applied:
                        // idempotent re-chain, no second version bump.
                        Some((cmd, reply)) => (cmd.clone(), reply.clone()),
                        None => {
                            let (cmd, reply) = match apply_op(&mut store, &op) {
                                Applied::Put(ver) => (
                                    ApplyCmd::Set {
                                        key: op.key().to_string(),
                                        val: match &op {
                                            ShardOp::Put { val, .. } => val.clone(),
                                            _ => unreachable!("Put applied"),
                                        },
                                        ver,
                                    },
                                    Reply::PutOk(ver),
                                ),
                                Applied::Del(true) => (
                                    ApplyCmd::Del {
                                        key: op.key().to_string(),
                                    },
                                    Reply::DelOk,
                                ),
                                Applied::Del(false) => (
                                    ApplyCmd::Del {
                                        key: op.key().to_string(),
                                    },
                                    Reply::DelMiss,
                                ),
                                Applied::Got(_) => unreachable!("GET handled above"),
                            };
                            primary_ops += 1;
                            if let Some((p, _, _)) = &counters {
                                p.inc();
                            }
                            seen.insert(id, (cmd.clone(), reply.clone()));
                            (cmd, reply)
                        }
                    };
                    if backup != NO_BACKUP {
                        send(backup as usize, ServeMsg::Fwd { id, cmd, reply });
                    } else {
                        send(0, ServeMsg::Ack { id, reply });
                    }
                }
            },
            ServeMsg::Fwd { id, cmd, reply } => {
                // Acked ⇔ applied at the tail: apply before acking, and
                // only once per id (a retried chain re-acks without
                // re-applying).
                if let std::collections::hash_map::Entry::Vacant(slot) = seen.entry(id) {
                    apply_cmd(&mut store, &cmd);
                    slot.insert((cmd, reply.clone()));
                    if let Some((_, r, _)) = &counters {
                        r.inc();
                    }
                }
                send(0, ServeMsg::Ack { id, reply });
            }
            ServeMsg::Reconfig { dead } => {
                let old = ring.clone();
                ring.remove_node((dead - 1) as u64);
                // Re-derive ownership under the shrunk ring: for every
                // key this shard now fronts, copy the binding to any
                // backup the new ring assigns that the old ring didn't.
                let mut syncs: Vec<(usize, ServeMsg)> = Vec::new();
                for (key, (val, ver)) in &store {
                    let group = ring.nodes_for(key, 2);
                    if group.first() != Some(&my_node) {
                        continue;
                    }
                    let old_group = old.nodes_for(key, 2);
                    for nb in &group[1..] {
                        if !old_group.contains(nb) {
                            syncs.push((
                                (*nb + 1) as usize,
                                ServeMsg::Sync {
                                    key: key.clone(),
                                    val: val.clone(),
                                    ver: *ver,
                                },
                            ));
                        }
                    }
                }
                for (dst, msg) in syncs {
                    send(dst, msg);
                }
            }
            ServeMsg::Sync { key, val, ver } => {
                // FIFO from the sending primary orders this before any
                // later chained write to the same key, so an absolute
                // overwrite is safe.
                store.insert(key, (val, ver));
                if let Some((_, _, rb)) = &counters {
                    rb.inc();
                }
            }
            ServeMsg::Stop => {
                // Drain the write queues first: any Sync queued to a
                // sibling during Reconfig must be on the wire before
                // Done tells the front end this shard is settled —
                // otherwise Exit can reach the sibling ahead of the
                // Sync and the frame dies in our queue.
                transport.flush_pending();
                // Report only keys this shard is primary for under the
                // final ring: every survivor derived the same ring, so
                // the reports partition the key space.
                for (key, (val, ver)) in &store {
                    if ring.nodes_for(key, 2).first() == Some(&my_node) {
                        send(
                            0,
                            ServeMsg::Entry {
                                key: key.clone(),
                                val: val.clone(),
                                ver: *ver,
                            },
                        );
                    }
                }
                send(0, ServeMsg::Done { ops: primary_ops });
                // Keep serving Syncs until Exit — a peer's rebalance
                // may still be in flight.
            }
            ServeMsg::Exit => {
                // Collect in-flight sibling traffic before leaving the
                // world: on the mesh a peer's Sync rides a different
                // connection than the parent's Exit, so "Exit received"
                // does not order it. Apply (and trace-record) whatever
                // already landed so merged send/recv pairs stay
                // matched.
                for envl in transport.drain_pending() {
                    record_recv(envl.src, &envl.msg);
                    if let ServeMsg::Sync { key, val, ver } = envl.msg {
                        store.insert(key, (val, ver));
                        if let Some((_, _, rb)) = &counters {
                            rb.inc();
                        }
                    }
                }
                if let (Some((_, s)), Some(dir)) = (&session, &env.trace_dir) {
                    write_shard_snapshot(s, dir, rank);
                }
                std::process::exit(0);
            }
            other => panic!("serve shard {rank}: unexpected {other:?}"),
        }
    }
}

fn write_shard_snapshot(session: &TraceSession, dir: &PathBuf, rank: usize) {
    std::fs::create_dir_all(dir).expect("serve shard: create trace dir");
    let meta = [("process", rank.to_string())];
    std::fs::write(
        dir.join(format!("rank{rank}.trace.json")),
        session.to_json_with_meta(&meta),
    )
    .expect("serve shard: write trace snapshot");
}

// ---------------------------------------------------------------------
// Front end (rank 0, in-process)
// ---------------------------------------------------------------------

/// How to run the serving tier.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Shard process count (world ranks 1..=shards; ring nodes
    /// 0..shards). Needs >= 2 for replication to mean anything.
    pub shards: usize,
    /// How shard children re-enter [`run_shard_child`] (procs must
    /// equal `shards`); `trace_dir` here turns on per-process traces
    /// and the merged `pdc-trace/3` snapshot in the outcome.
    pub wire: WireOptions,
    /// Heartbeat ping cadence.
    pub hb_interval: Duration,
    /// Silent intervals before a shard is declared dead.
    pub hb_timeout: u64,
}

impl ServeOptions {
    /// Defaults: 25ms pings, death after 40 silent intervals (1s).
    pub fn new(shards: usize, wire: WireOptions) -> ServeOptions {
        assert_eq!(wire.procs, shards, "wire.procs spawns the shard ranks");
        ServeOptions {
            shards,
            wire,
            hb_interval: Duration::from_millis(25),
            hb_timeout: 40,
        }
    }
}

/// A shard the front end declared dead.
#[derive(Debug, Clone)]
pub struct DeadShard {
    /// Its world rank.
    pub rank: usize,
    /// The transport-level evidence, when the death surfaced through a
    /// broken connection; `None` for a pure heartbeat timeout.
    pub error: Option<TransportError>,
}

/// What a finished serve run hands back.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Union of the survivors' primary-owned keys, sorted.
    pub state: KvState,
    /// Every acknowledged op in id order — replaying the mutating ones
    /// through [`crate::sharded::apply_script`] must reproduce `state`
    /// exactly (the zero-lost-acked-writes invariant).
    pub acked: Vec<(u64, ShardOp)>,
    /// Backup promotions performed (`serve.promotions`).
    pub promotions: u64,
    /// Unacknowledged ops re-sent after a death (`serve.retries`).
    pub retries: u64,
    /// Shards declared dead, in detection order.
    pub dead: Vec<DeadShard>,
    /// Client connections that failed mid-request (`kv.conn_errors`).
    pub conn_errors: u64,
    /// Data frames the hub relayed between shards: the chain traffic's
    /// hop-count witness. Positive on the star topology, always 0 on
    /// the mesh (chain hops go peer-direct).
    pub hub_forwarded: u64,
    /// Merged per-process traces (front end = process 0), when the
    /// wire options were traced.
    pub trace: Option<MergedTrace>,
}

/// Control messages from the owner to the front-end thread.
enum ServeCtl {
    /// Kill a shard process (fault injection).
    Kill(usize),
    /// SIGSTOP a shard process (fault injection: silent hang — sockets
    /// stay open, only the heartbeat detector can see it).
    Pause(usize),
    /// Drain and stop.
    Shutdown,
}

/// A running serve world: shards spawned, front end accepting.
pub struct ServeHandle {
    addr: SocketAddr,
    ctl: Sender<ServeCtl>,
    join: Option<JoinHandle<ServeOutcome>>,
}

impl ServeHandle {
    /// Where clients connect (kv_tcp line protocol: GET/PUT/DEL/QUIT).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Kill shard `rank`'s process mid-run (SIGKILL). The front end
    /// observes the death like any real crash.
    pub fn kill_shard(&self, rank: usize) {
        self.ctl.send(ServeCtl::Kill(rank)).expect("serve ctl gone");
    }

    /// Freeze shard `rank` mid-run (SIGSTOP): its sockets stay open, so
    /// only the heartbeat detector can declare it dead — the fault
    /// shape that exercises the detector-vs-socket dedup. Follow up
    /// with [`ServeHandle::kill_shard`] before [`ServeHandle::finish`];
    /// a stopped process never exits and would hang the teardown.
    pub fn pause_shard(&self, rank: usize) {
        self.ctl
            .send(ServeCtl::Pause(rank))
            .expect("serve ctl gone");
    }

    /// Drain in-flight ops, collect the shards' state, tear the world
    /// down, and return the outcome.
    ///
    /// # Panics
    /// Panics if the front-end thread panicked (protocol violation,
    /// total shard loss, or a stalled drain).
    pub fn finish(mut self) -> ServeOutcome {
        self.ctl.send(ServeCtl::Shutdown).expect("serve ctl gone");
        self.join
            .take()
            .expect("finish called once")
            .join()
            .expect("serve front end panicked")
    }
}

/// One client connection in the front end's sweep loop — the event-loop
/// server's `ElConn` plus an ordered reply queue, because replies here
/// arrive asynchronously from the shard tier and must still go out in
/// request order.
struct FeConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Replies owed, in request order: `Pending` slots fill in when the
    /// chain acks; only a `Ready` prefix may be flushed.
    replies: VecDeque<Slot>,
    closing: bool,
    dead: bool,
}

enum Slot {
    Pending(u64),
    Ready(String),
}

/// An op sent to the shard tier and not yet acked.
struct PendingOp {
    conn: u64,
    op: ShardOp,
    primary: usize,
    backup: u32,
}

/// Start the serving tier: spawn `opts.shards` shard processes, bind a
/// client listener on an ephemeral loopback port, and run the front-end
/// sweep loop on its own thread. Counters (`serve.promotions`,
/// `serve.retries`, `serve.acked_ops`, `serve.heartbeat_timeouts`,
/// `kv.conn_errors`) and the front end's send/recv events (actor 0) are
/// published into `session`.
///
/// Call sites must dispatch re-executed children to
/// [`run_shard_child`] via [`pdc_mpi::WireWorld::child_world_id`]
/// before calling this.
///
/// # Panics
/// Panics if `opts.shards < 2` (no replication without a backup).
pub fn start(opts: ServeOptions, session: &TraceSession) -> std::io::Result<ServeHandle> {
    assert!(opts.shards >= 2, "replication needs at least two shards");
    let listener = TcpListener::bind("127.0.0.1:0")?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let hub: WireHub<ServeMsg> = WireHub::spawn(&opts.wire)?;
    let (ctl_tx, ctl_rx) = channel();
    let session = session.clone();
    let join = std::thread::spawn(move || front_end(opts, listener, hub, ctl_rx, &session));
    Ok(ServeHandle {
        addr,
        ctl: ctl_tx,
        join: Some(join),
    })
}

#[allow(clippy::too_many_lines)]
fn front_end(
    opts: ServeOptions,
    listener: TcpListener,
    mut hub: WireHub<ServeMsg>,
    ctl: Receiver<ServeCtl>,
    session: &TraceSession,
) -> ServeOutcome {
    let shards = opts.shards;
    let tracer: ThreadTrace = session.thread(0);
    let traced = opts.wire.trace_dir.is_some();
    let promotions = session.counter("serve.promotions");
    let retries_ctr = session.counter("serve.retries");
    let acked_ctr = session.counter("serve.acked_ops");
    let hb_timeouts = session.counter("serve.heartbeat_timeouts");
    let conn_errors = session.counter("kv.conn_errors");

    let mut ring = shard_ring(shards);
    let mut monitor = HeartbeatMonitor::new(opts.hb_timeout);
    for r in 1..=shards {
        monitor.register(r, 0);
    }
    let send = |hub: &WireHub<ServeMsg>, dst: usize, msg: ServeMsg| {
        if traced {
            tracer.record(EventKind::Send, dst as u64, msg.size_bytes());
        }
        // Err means the writer is already gone; the Down event owns the
        // accounting and the retry.
        let _ = hub.send(dst, TAG_SERVE, &msg);
    };

    let mut conns: BTreeMap<u64, FeConn> = BTreeMap::new();
    let mut next_conn = 0u64;
    let mut next_id = 1u64;
    let mut pending: BTreeMap<u64, PendingOp> = BTreeMap::new();
    let mut acked: Vec<(u64, ShardOp)> = Vec::new();
    let mut dead: Vec<DeadShard> = Vec::new();
    let mut retries = 0u64;
    let mut scratch = [0u8; 4096];

    // Drain/stop state machine: Running → Draining (Shutdown received)
    // → Stopping (Stop sent, collecting reports) → done.
    let mut shutting_down = false;
    let mut stop_sent = false;
    let mut state: BTreeMap<String, (String, u64)> = BTreeMap::new();
    let mut done_from: Vec<usize> = Vec::new();

    let start = Instant::now();
    let deadline = start + Duration::from_secs(300);
    let mut last_ping_tick = 0u64;

    // One poller for the whole tier: shard connections are the hub's
    // own; the client listener and every accepted client socket are
    // registered alongside them, so the loop blocks in a single
    // poll(2) and wakes on the first byte from any direction.
    const LISTENER_TOKEN: u64 = u64::MAX;
    hub.register_client(listener.as_raw_fd(), LISTENER_TOKEN);

    let targets = |ring: &HashRing, key: &str| -> (usize, u32) {
        let group = ring.nodes_for(key, 2);
        let primary = *group.first().expect("ring has nodes") as usize + 1;
        let backup = group.get(1).map_or(NO_BACKUP, |n| *n as u32 + 1);
        (primary, backup)
    };

    loop {
        assert!(
            Instant::now() < deadline,
            "serve front end stalled: {} pending, {} conns, stop_sent={stop_sent}",
            pending.len(),
            conns.len()
        );
        let mut progress = false;

        // 1. Control.
        while let Ok(c) = ctl.try_recv() {
            match c {
                ServeCtl::Kill(rank) => {
                    let _ = hub.kill(rank);
                    progress = true;
                }
                ServeCtl::Pause(rank) => {
                    let _ = hub.pause(rank);
                    progress = true;
                }
                ServeCtl::Shutdown => {
                    shutting_down = true;
                    progress = true;
                }
            }
        }

        // 2. Accept new clients.
        if !shutting_down {
            loop {
                match listener.accept() {
                    Ok((s, _)) => {
                        if s.set_nonblocking(true).is_err() {
                            conn_errors.inc();
                            continue;
                        }
                        // Request/reply with tiny frames: Nagle +
                        // delayed ACK would put ~40ms on every op.
                        s.set_nodelay(true).ok();
                        hub.register_client(s.as_raw_fd(), next_conn);
                        conns.insert(
                            next_conn,
                            FeConn {
                                stream: s,
                                rbuf: Vec::new(),
                                wbuf: Vec::new(),
                                replies: VecDeque::new(),
                                closing: false,
                                dead: false,
                            },
                        );
                        next_conn += 1;
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn_errors.inc();
                        break;
                    }
                }
            }
        }

        // 3. Client read phase: parse complete lines into routed ops.
        for (&cid, conn) in conns.iter_mut() {
            if conn.closing || conn.dead {
                continue;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    if !conn.rbuf.is_empty() && !shutting_down {
                        conn_errors.inc();
                    }
                    conn.closing = true;
                    progress = true;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&scratch[..n]);
                    progress = true;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    if !shutting_down {
                        conn_errors.inc();
                    }
                    conn.dead = true;
                    continue;
                }
            }
            while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
                let raw: Vec<u8> = conn.rbuf.drain(..=pos).collect();
                let line = String::from_utf8_lossy(&raw);
                progress = true;
                match parse_client_line(&line) {
                    ClientReq::Op(op) => {
                        let id = next_id;
                        next_id += 1;
                        let (primary, backup) = targets(&ring, op.key());
                        conn.replies.push_back(Slot::Pending(id));
                        send(
                            &hub,
                            primary,
                            ServeMsg::Op {
                                id,
                                op: op.clone(),
                                backup,
                            },
                        );
                        pending.insert(
                            id,
                            PendingOp {
                                conn: cid,
                                op,
                                primary,
                                backup,
                            },
                        );
                    }
                    ClientReq::Quit => {
                        conn.replies.push_back(Slot::Ready("BYE".into()));
                        conn.closing = true;
                        conn.rbuf.clear();
                        break;
                    }
                    ClientReq::Bad(reply) => {
                        conn.replies.push_back(Slot::Ready(reply));
                    }
                }
            }
            // Same overflow policy as both kv_tcp servers.
            if !conn.closing && conn.rbuf.len() >= MAX_LINE {
                conn.rbuf.clear();
                conn.replies.push_back(Slot::Ready("ERR too-long".into()));
                if !shutting_down {
                    conn_errors.inc();
                }
                conn.closing = true;
                progress = true;
            }
        }

        // 4. Shard events: acks fill reply slots; deaths trigger
        // promotion + rebalance + retries.
        for _ in 0..1024 {
            let Some(ev) = hub.try_event() else { break };
            progress = true;
            let tick = (start.elapsed().as_millis() as u64) / opts.hb_interval.as_millis() as u64;
            match ev {
                HubEvent::Msg(envl) => {
                    monitor.heard(envl.src, tick);
                    if traced {
                        tracer.record(EventKind::Recv, envl.src as u64, envl.msg.size_bytes());
                    }
                    match envl.msg {
                        ServeMsg::Ack { id, reply } => {
                            // A duplicate ack (original chain + retry
                            // both completing) finds no pending entry
                            // and is dropped: acked exactly once.
                            if let Some(p) = pending.remove(&id) {
                                acked.push((id, p.op));
                                acked_ctr.inc();
                                if let Some(conn) = conns.get_mut(&p.conn) {
                                    fill_slot(conn, id, reply.render());
                                }
                            }
                        }
                        ServeMsg::Pong => {}
                        ServeMsg::Entry { key, val, ver } => {
                            let prev = state.insert(key, (val, ver));
                            assert!(prev.is_none(), "two shards reported the same key");
                        }
                        ServeMsg::Done { .. } => done_from.push(envl.src),
                        other => panic!("serve front end: unexpected {other:?}"),
                    }
                }
                HubEvent::Down { rank, error } => {
                    if !monitor.is_dead(rank) {
                        declare_dead(
                            rank,
                            Some(error),
                            &mut ring,
                            &mut monitor,
                            &mut dead,
                            &mut pending,
                            &mut retries,
                            &hub,
                            &send,
                            &targets,
                            &promotions,
                            &retries_ctr,
                        );
                    } else if stop_sent {
                        // Clean post-Exit hangup; nothing to do.
                    }
                }
                HubEvent::Result { .. } => {}
            }
        }

        // 5. Heartbeats: ping on a cadence, expire the silent.
        let tick = (start.elapsed().as_millis() as u64) / opts.hb_interval.as_millis() as u64;
        if tick > last_ping_tick && !stop_sent {
            last_ping_tick = tick;
            for r in monitor.alive() {
                send(&hub, r, ServeMsg::Ping);
            }
            for r in monitor.expired(tick) {
                hb_timeouts.inc();
                declare_dead(
                    r,
                    None,
                    &mut ring,
                    &mut monitor,
                    &mut dead,
                    &mut pending,
                    &mut retries,
                    &hub,
                    &send,
                    &targets,
                    &promotions,
                    &retries_ctr,
                );
            }
        }

        // 6. Client write phase: flush the Ready prefix of each reply
        // queue, in request order.
        for conn in conns.values_mut() {
            if conn.dead {
                continue;
            }
            while let Some(Slot::Ready(_)) = conn.replies.front() {
                let Some(Slot::Ready(text)) = conn.replies.pop_front() else {
                    unreachable!()
                };
                conn.wbuf.extend_from_slice(text.as_bytes());
                conn.wbuf.push(b'\n');
                progress = true;
            }
            if conn.wbuf.len() > MAX_WBUF {
                if !shutting_down {
                    conn_errors.inc();
                }
                conn.dead = true;
                continue;
            }
            if !conn.wbuf.is_empty() {
                match conn.stream.write(&conn.wbuf) {
                    Ok(0) => {
                        if !shutting_down {
                            conn_errors.inc();
                        }
                        conn.dead = true;
                        continue;
                    }
                    Ok(n) => {
                        conn.wbuf.drain(..n);
                        progress = true;
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        if !shutting_down {
                            conn_errors.inc();
                        }
                        conn.dead = true;
                        continue;
                    }
                }
            }
            if conn.closing && conn.wbuf.is_empty() && conn.replies.is_empty() {
                conn.dead = true;
                progress = true;
            }
        }
        for (&cid, c) in &conns {
            if c.dead {
                hub.deregister_client(cid);
            }
        }
        conns.retain(|_, c| !c.dead);

        // 7. Drain/stop sequencing.
        if shutting_down && !stop_sent && pending.is_empty() && conns.is_empty() {
            for r in monitor.alive() {
                send(&hub, r, ServeMsg::Stop);
            }
            stop_sent = true;
            progress = true;
        }
        if stop_sent && done_from.len() == monitor.alive().len() {
            // Every survivor reported. Exit after all reports so any
            // cross-shard Syncs have landed (see ServeMsg::Exit).
            for r in monitor.alive() {
                send(&hub, r, ServeMsg::Exit);
            }
            break;
        }

        if !progress {
            // Nothing to do right now: block on readiness across every
            // connection (shards + clients) instead of spin-sleeping.
            // The timeout bounds the wait so heartbeat ticks still run
            // on schedule even with no traffic at all.
            hub.pump(Duration::from_millis(2));
        }
    }

    let hub_forwarded = hub.forwarded();
    let statuses = hub.shutdown();
    for (rank, status) in statuses.iter().enumerate().skip(1) {
        if !dead.iter().any(|d| d.rank == rank) {
            let status = status.expect("survivor status");
            assert!(status.success(), "surviving shard {rank} exited {status}");
        }
    }

    let trace = opts.wire.trace_dir.as_ref().map(|dir| {
        let mut parts = Vec::new();
        // The front end's own slice is process 0.
        let fe_json = session.to_json_with_meta(&[("process", "0".to_string())]);
        parts.push(merge::parse_trace(&fe_json, 0).expect("parse front-end trace"));
        for rank in 1..=shards {
            let path = dir.join(format!("rank{rank}.trace.json"));
            // A killed shard never wrote its snapshot; skip it.
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            parts.push(
                merge::parse_trace(&text, rank as u32)
                    .unwrap_or_else(|e| panic!("parse {}: {e}", path.display())),
            );
        }
        MergedTrace::merge(parts)
    });

    ServeOutcome {
        state: state.into_iter().collect(),
        acked,
        promotions: session.snapshot().get("serve.promotions"),
        retries,
        dead,
        conn_errors: session.snapshot().get("kv.conn_errors"),
        hub_forwarded,
        trace,
    }
}

/// Mark a shard dead: count the promotion, shrink the ring, tell the
/// survivors to rebalance, and re-send every unacknowledged op that
/// involved the dead rank — in id order — to its new chain.
#[allow(clippy::too_many_arguments)]
fn declare_dead(
    rank: usize,
    error: Option<TransportError>,
    ring: &mut HashRing,
    monitor: &mut HeartbeatMonitor,
    dead: &mut Vec<DeadShard>,
    pending: &mut BTreeMap<u64, PendingOp>,
    retries: &mut u64,
    hub: &WireHub<ServeMsg>,
    send: &impl Fn(&WireHub<ServeMsg>, usize, ServeMsg),
    targets: &impl Fn(&HashRing, &str) -> (usize, u32),
    promotions: &pdc_core::metrics::Counter,
    retries_ctr: &pdc_core::metrics::Counter,
) {
    // Claim the death inside the hub first: if this verdict came from
    // the heartbeat detector, the socket-level EOF that follows for the
    // same crash is suppressed at the source and can never reach the
    // promotion logic as a second Down.
    hub.report_dead(rank);
    monitor.mark_dead(rank);
    dead.push(DeadShard { rank, error });
    let survivors = monitor.alive();
    assert!(
        !survivors.is_empty(),
        "every shard died; nothing left to serve"
    );
    // The dead rank fronted part of the ring; its backups take over.
    promotions.inc();
    ring.remove_node((rank - 1) as u64);
    for r in &survivors {
        send(hub, *r, ServeMsg::Reconfig { dead: rank as u32 });
    }
    // Re-send unacked ops whose chain included the dead rank. Id order
    // preserves per-key apply order at the new primary; shard-side
    // memoization absorbs ops the survivors already applied.
    let affected: Vec<u64> = pending
        .iter()
        .filter(|(_, p)| p.primary == rank || p.backup == rank as u32)
        .map(|(&id, _)| id)
        .collect();
    for id in affected {
        let p = pending.get_mut(&id).expect("pending");
        let (primary, backup) = targets(ring, p.op.key());
        p.primary = primary;
        p.backup = backup;
        *retries += 1;
        retries_ctr.inc();
        send(
            hub,
            primary,
            ServeMsg::Op {
                id,
                op: p.op.clone(),
                backup,
            },
        );
    }
}

/// Fill the reply slot for op `id` on `conn`.
fn fill_slot(conn: &mut FeConn, id: u64, text: String) {
    for slot in conn.replies.iter_mut() {
        if matches!(slot, Slot::Pending(x) if *x == id) {
            *slot = Slot::Ready(text);
            return;
        }
    }
}

enum ClientReq {
    Op(ShardOp),
    Quit,
    Bad(String),
}

/// Parse one client line into a routed op (kv_tcp's GET/PUT/DEL/QUIT
/// subset; CAS needs cross-replica consensus this tier doesn't promise).
fn parse_client_line(line: &str) -> ClientReq {
    let mut parts = line.trim().splitn(3, ' ');
    let cmd = parts.next().unwrap_or("");
    match cmd {
        "GET" => match parts.next() {
            Some(key) => ClientReq::Op(ShardOp::Get { key: key.into() }),
            None => ClientReq::Bad("ERR usage: GET <key>".into()),
        },
        "PUT" => match (parts.next(), parts.next()) {
            (Some(key), Some(val)) => ClientReq::Op(ShardOp::Put {
                key: key.into(),
                val: val.into(),
            }),
            _ => ClientReq::Bad("ERR usage: PUT <key> <value>".into()),
        },
        "DEL" => match parts.next() {
            Some(key) => ClientReq::Op(ShardOp::Del { key: key.into() }),
            None => ClientReq::Bad("ERR usage: DEL <key>".into()),
        },
        "QUIT" => ClientReq::Quit,
        _ => ClientReq::Bad(format!("ERR unknown command {cmd:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::apply_script;
    use pdc_mpi::kv_tcp::TcpKvClient;
    use pdc_mpi::WireWorld;

    #[test]
    fn serve_msgs_roundtrip_the_wire_codec() {
        let msgs = vec![
            ServeMsg::Op {
                id: 9,
                op: ShardOp::Put {
                    key: "k".into(),
                    val: "v".into(),
                },
                backup: 2,
            },
            ServeMsg::Fwd {
                id: 9,
                cmd: ApplyCmd::Set {
                    key: "k".into(),
                    val: "v".into(),
                    ver: 3,
                },
                reply: Reply::PutOk(3),
            },
            ServeMsg::Ack {
                id: 9,
                reply: Reply::Got(Some(("v".into(), 3))),
            },
            ServeMsg::Ping,
            ServeMsg::Pong,
            ServeMsg::Reconfig { dead: 1 },
            ServeMsg::Sync {
                key: "k".into(),
                val: "v".into(),
                ver: 3,
            },
            ServeMsg::Stop,
            ServeMsg::Entry {
                key: "k".into(),
                val: "v".into(),
                ver: 3,
            },
            ServeMsg::Done { ops: 17 },
            ServeMsg::Exit,
            ServeMsg::Fwd {
                id: 1,
                cmd: ApplyCmd::Del { key: "x".into() },
                reply: Reply::DelMiss,
            },
            ServeMsg::Ack {
                id: 1,
                reply: Reply::Got(None),
            },
        ];
        let bytes = msgs.to_bytes();
        assert_eq!(Vec::<ServeMsg>::from_bytes(&bytes), Some(msgs));
    }

    #[test]
    fn replies_render_the_kv_tcp_protocol() {
        assert_eq!(Reply::PutOk(4).render(), "OK 4");
        assert_eq!(Reply::DelOk.render(), "OK 0");
        assert_eq!(Reply::DelMiss.render(), "NOTFOUND");
        assert_eq!(Reply::Got(Some(("v".into(), 2))).render(), "VALUE 2 v");
        assert_eq!(Reply::Got(None).render(), "NOTFOUND");
    }

    /// End-to-end in miniature: serve live clients over 3 shard
    /// processes, kill one mid-traffic, and verify no acked write is
    /// lost and the death was observed as a TransportError.
    #[test]
    fn serving_survives_a_shard_kill_without_losing_acked_writes() {
        let path = "serve::tests::serving_survives_a_shard_kill_without_losing_acked_writes";
        if WireWorld::child_world_id().as_deref() == Some(path) {
            run_shard_child();
        }
        let dir = std::env::temp_dir().join(format!("pdc-serve-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let session = TraceSession::with_capacity(1 << 17);
        let opts = ServeOptions::new(3, WireOptions::for_test(3, path).traced(&dir));
        let handle = start(opts, &session).expect("start serve");

        let mut c = TcpKvClient::connect(handle.addr()).expect("connect");
        // Phase 1: writes across enough keys to touch every shard.
        for i in 0..60 {
            let r = c.call(&format!("PUT k{i} a{i}")).expect("put");
            assert_eq!(r, "OK 1");
        }
        // Kill rank 1 mid-run, then keep operating on every key.
        handle.kill_shard(1);
        for i in 0..60 {
            let r = c.call(&format!("PUT k{i} b{i}")).expect("put after kill");
            assert_eq!(r, "OK 2", "version preserved across failover (k{i})");
        }
        for i in 0..10 {
            let r = c.call(&format!("GET k{i}")).expect("get");
            assert_eq!(r, format!("VALUE 2 b{i}"));
        }
        assert_eq!(c.call("DEL k0").expect("del"), "OK 0");
        assert_eq!(c.call("GET k0").expect("get"), "NOTFOUND");
        assert_eq!(c.call("QUIT").expect("quit"), "BYE");
        let outcome = handle.finish();

        // The acked ops replayed on one node reproduce the final state.
        let ops: Vec<ShardOp> = outcome.acked.iter().map(|(_, op)| op.clone()).collect();
        assert_eq!(outcome.state, apply_script(&ops), "zero lost acked writes");
        assert_eq!(outcome.acked.len(), 60 + 60 + 10 + 1 + 1);
        assert_eq!(outcome.promotions, 1);
        assert_eq!(outcome.conn_errors, 0);
        assert_eq!(
            outcome.hub_forwarded, 0,
            "mesh chain traffic (Fwd/Sync) must never relay through the hub"
        );
        assert_eq!(outcome.dead.len(), 1);
        assert_eq!(outcome.dead[0].rank, 1);
        assert_eq!(
            outcome.dead[0].error,
            Some(TransportError::PeerClosed),
            "the death surfaced through the transport error path"
        );
        let trace = outcome.trace.expect("traced run");
        // Front end + 2 survivors (the killed shard never snapshots).
        assert_eq!(trace.processes.len(), 3);
        assert!(
            trace.counter("serve.rebalanced_keys") > 0,
            "ring rebalanced"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The detector-vs-socket race: freeze a shard so only the
    /// heartbeat can see the death, let it promote, then SIGKILL the
    /// frozen process so the socket-level death fires for the same
    /// crash. Exactly one promotion may happen.
    #[test]
    fn overlapping_death_signals_promote_exactly_once() {
        let path = "serve::tests::overlapping_death_signals_promote_exactly_once";
        if WireWorld::child_world_id().as_deref() == Some(path) {
            run_shard_child();
        }
        let session = TraceSession::new();
        let opts = ServeOptions::new(3, WireOptions::for_test(3, path));
        let hb = opts.hb_interval;
        let timeout = opts.hb_timeout;
        let handle = start(opts, &session).expect("start serve");

        let mut c = TcpKvClient::connect(handle.addr()).expect("connect");
        for i in 0..30 {
            let r = c.call(&format!("PUT k{i} a{i}")).expect("put");
            assert_eq!(r, "OK 1");
        }
        // Freeze rank 1: sockets stay open, so the heartbeat detector
        // is the only path to a verdict. Wait past the expiry window.
        handle.pause_shard(1);
        std::thread::sleep(hb * (timeout as u32 + 10));
        // Now the socket-level signal for the same crash.
        handle.kill_shard(1);
        // Traffic still flows on the shrunk ring.
        for i in 0..30 {
            let r = c.call(&format!("PUT k{i} b{i}")).expect("put after death");
            assert_eq!(r, "OK 2", "version preserved across failover (k{i})");
        }
        assert_eq!(c.call("QUIT").expect("quit"), "BYE");
        let outcome = handle.finish();

        let ops: Vec<ShardOp> = outcome.acked.iter().map(|(_, op)| op.clone()).collect();
        assert_eq!(outcome.state, apply_script(&ops), "zero lost acked writes");
        assert_eq!(
            outcome.promotions, 1,
            "two death signals for one crash promoted twice"
        );
        assert_eq!(outcome.dead.len(), 1, "one death, one verdict");
        assert_eq!(outcome.dead[0].rank, 1);
        assert_eq!(
            outcome.dead[0].error, None,
            "the heartbeat verdict won the race (no transport error involved)"
        );
    }
}
