//! # pdc-db — parallel and distributed database algorithms
//!
//! The paper's plan for the new Databases course (CS44, Section III-A):
//! "parallel join algorithms, distributed transactions, and distributed
//! hash tables". All three:
//!
//! * [`join`] — nested-loop, hash, partitioned-parallel hash, and
//!   sort-merge equijoins, all verified against each other.
//! * [`dht`] — a consistent-hashing ring with virtual nodes and N-way
//!   replication; node joins/leaves move provably few keys.
//! * [`twopc`] — two-phase commit as deterministic state machines with
//!   failure injection, asserting atomicity and log-based recovery.
//! * [`sharded`] — the DHT ring fronting live shard ranks over the
//!   `pdc_mpi` transport seam: the same router/shard code runs as
//!   threads or as separate OS processes over loopback TCP.
//! * [`serve`] — the sharded store facing live traffic: a TCP front
//!   end, 2-way chain replication over the ring, heartbeat + transport
//!   failure detection, and backup promotion with rebalancing — no
//!   acknowledged write lost when a shard dies mid-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dht;
pub mod join;
pub mod pagerank;
pub mod serve;
pub mod sharded;
pub mod twopc;
pub mod wordcount;

pub use dht::HashRing;
pub use join::{hash_join, parallel_hash_join, sort_merge_join};
pub use pagerank::PageRankScenario;
pub use serve::{ServeHandle, ServeOptions, ServeOutcome};
pub use sharded::{apply_op, apply_script, Applied, KvState, ShardMsg, ShardOp};
pub use twopc::{Coordinator, Decision};
pub use wordcount::{run_wire_wordcount_child, WireSpec, WordCountScenario};
