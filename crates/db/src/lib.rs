//! # pdc-db — parallel and distributed database algorithms
//!
//! The paper's plan for the new Databases course (CS44, Section III-A):
//! "parallel join algorithms, distributed transactions, and distributed
//! hash tables". All three:
//!
//! * [`join`] — nested-loop, hash, partitioned-parallel hash, and
//!   sort-merge equijoins, all verified against each other.
//! * [`dht`] — a consistent-hashing ring with virtual nodes and N-way
//!   replication; node joins/leaves move provably few keys.
//! * [`twopc`] — two-phase commit as deterministic state machines with
//!   failure injection, asserting atomicity and log-based recovery.
//! * [`sharded`] — the DHT ring fronting live shard ranks over the
//!   `pdc_mpi` transport seam: the same router/shard code runs as
//!   threads or as separate OS processes over loopback TCP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dht;
pub mod join;
pub mod sharded;
pub mod twopc;

pub use dht::HashRing;
pub use join::{hash_join, parallel_hash_join, sort_merge_join};
pub use sharded::{KvState, ShardMsg, ShardOp};
pub use twopc::{Coordinator, Decision};
