//! A distributed hash table by consistent hashing.
//!
//! Nodes own arcs of a hash ring (with virtual nodes for balance); keys
//! map to the first node clockwise. The property that makes this *the*
//! DHT technique: adding or removing one node relocates only ~K/N keys,
//! not a full rehash — verified by test.

use std::collections::BTreeMap;

fn hash64(x: u64) -> u64 {
    // SplitMix64 finalizer: good avalanche, deterministic.
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64; // FNV-1a
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    hash64(h)
}

/// A consistent-hashing ring.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// ring position -> node id.
    ring: BTreeMap<u64, u64>,
    vnodes: usize,
}

impl HashRing {
    /// An empty ring with `vnodes` virtual nodes per physical node.
    ///
    /// # Panics
    /// Panics if `vnodes == 0`.
    pub fn new(vnodes: usize) -> Self {
        assert!(vnodes > 0, "need at least one virtual node");
        HashRing {
            ring: BTreeMap::new(),
            vnodes,
        }
    }

    /// Number of physical nodes.
    pub fn len(&self) -> usize {
        self.ring.len() / self.vnodes
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Add a node.
    pub fn add_node(&mut self, node: u64) {
        for v in 0..self.vnodes as u64 {
            let pos = hash64(node.wrapping_mul(1_000_003).wrapping_add(v));
            self.ring.insert(pos, node);
        }
    }

    /// Remove a node.
    pub fn remove_node(&mut self, node: u64) {
        self.ring.retain(|_, &mut n| n != node);
    }

    /// The node owning `key`, or `None` on an empty ring.
    pub fn node_for(&self, key: &str) -> Option<u64> {
        if self.ring.is_empty() {
            return None;
        }
        let h = hash_str(key);
        self.ring
            .range(h..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, &n)| n)
    }

    /// The `replicas` distinct nodes responsible for `key` (primary
    /// first, then successors clockwise).
    pub fn nodes_for(&self, key: &str, replicas: usize) -> Vec<u64> {
        if self.ring.is_empty() {
            return Vec::new();
        }
        let h = hash_str(key);
        let mut out = Vec::with_capacity(replicas);
        for (_, &n) in self.ring.range(h..).chain(self.ring.iter()) {
            if !out.contains(&n) {
                out.push(n);
                if out.len() == replicas {
                    break;
                }
            }
        }
        out
    }

    /// Count keys per node for a key workload (balance diagnostics).
    pub fn load_distribution(&self, keys: &[String]) -> BTreeMap<u64, usize> {
        let mut dist = BTreeMap::new();
        for k in keys {
            if let Some(n) = self.node_for(k) {
                *dist.entry(n).or_insert(0) += 1;
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("key-{i}")).collect()
    }

    fn ring_with(nodes: &[u64]) -> HashRing {
        let mut r = HashRing::new(64);
        for &n in nodes {
            r.add_node(n);
        }
        r
    }

    #[test]
    fn lookup_is_deterministic_and_total() {
        let ring = ring_with(&[1, 2, 3]);
        for k in keys(100) {
            let a = ring.node_for(&k).unwrap();
            let b = ring.node_for(&k).unwrap();
            assert_eq!(a, b);
            assert!([1, 2, 3].contains(&a));
        }
    }

    #[test]
    fn empty_ring_returns_none() {
        let ring = HashRing::new(8);
        assert_eq!(ring.node_for("x"), None);
        assert!(ring.nodes_for("x", 3).is_empty());
    }

    #[test]
    fn virtual_nodes_balance_load() {
        let ring = ring_with(&[10, 20, 30, 40]);
        let dist = ring.load_distribution(&keys(20_000));
        assert_eq!(dist.len(), 4, "every node gets keys");
        let max = *dist.values().max().unwrap() as f64;
        let min = *dist.values().min().unwrap() as f64;
        assert!(
            max / min < 1.6,
            "64 vnodes should balance within ~1.6x: {dist:?}"
        );
    }

    #[test]
    fn adding_a_node_moves_few_keys() {
        let ks = keys(10_000);
        let before = ring_with(&[1, 2, 3, 4]);
        let mut after = before.clone();
        after.add_node(5);
        let moved = ks
            .iter()
            .filter(|k| before.node_for(k) != after.node_for(k))
            .count();
        // Ideal: 1/5 of keys move. Allow generous slack, but far below
        // the ~4/5 a naive `hash % N` rehash would move.
        let frac = moved as f64 / ks.len() as f64;
        assert!(frac > 0.10 && frac < 0.35, "moved fraction {frac}");
        // And every moved key moved *to the new node*.
        for k in &ks {
            if before.node_for(k) != after.node_for(k) {
                assert_eq!(after.node_for(k), Some(5), "key moved to wrong node");
            }
        }
    }

    #[test]
    fn naive_modulo_rehash_moves_most_keys() {
        // The contrast case the lecture draws: `hash % N` relocates
        // almost everything when N changes.
        let ks = keys(10_000);
        let naive = |k: &String, n: u64| hash_str(k) % n;
        let moved = ks.iter().filter(|k| naive(k, 4) != naive(k, 5)).count();
        assert!(
            moved as f64 / ks.len() as f64 > 0.7,
            "modulo rehash should move most keys"
        );
    }

    #[test]
    fn removing_a_node_strands_no_keys() {
        let ks = keys(5_000);
        let mut ring = ring_with(&[1, 2, 3]);
        ring.remove_node(2);
        for k in &ks {
            let n = ring.node_for(k).unwrap();
            assert_ne!(n, 2, "key still routed to removed node");
        }
        // Keys that were on nodes 1/3 did not move.
        let before = ring_with(&[1, 2, 3]);
        for k in &ks {
            if before.node_for(k) != Some(2) {
                assert_eq!(before.node_for(k), ring.node_for(k));
            }
        }
    }

    #[test]
    fn replicas_are_distinct_and_start_with_primary() {
        let ring = ring_with(&[1, 2, 3, 4, 5]);
        for k in keys(200) {
            let reps = ring.nodes_for(&k, 3);
            assert_eq!(reps.len(), 3);
            assert_eq!(reps[0], ring.node_for(&k).unwrap());
            let mut uniq = reps.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn replicas_capped_by_node_count() {
        let ring = ring_with(&[1, 2]);
        assert_eq!(ring.nodes_for("k", 5).len(), 2);
    }
}
