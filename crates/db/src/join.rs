//! Equijoin algorithms: nested-loop, hash, partitioned-parallel hash,
//! and sort-merge.
//!
//! Relations are `(key, payload)` pairs. The output of `R ⋈ S` on equal
//! keys is every `(key, r_payload, s_payload)` combination, in an
//! algorithm-specific order; tests compare outputs as multisets.

use pdc_threads::sliceops::block_ranges;
use std::collections::HashMap;

/// A tuple of relation R or S: join key + payload.
pub type Tuple = (u64, u64);
/// One joined output row: `(key, r_payload, s_payload)`.
pub type Joined = (u64, u64, u64);

/// O(|R|·|S|) nested-loop join — the baseline everything must beat.
pub fn nested_loop_join(r: &[Tuple], s: &[Tuple]) -> Vec<Joined> {
    let mut out = Vec::new();
    for &(rk, rv) in r {
        for &(sk, sv) in s {
            if rk == sk {
                out.push((rk, rv, sv));
            }
        }
    }
    out
}

/// Classic hash join: build a table on the smaller input, probe with the
/// larger.
pub fn hash_join(r: &[Tuple], s: &[Tuple]) -> Vec<Joined> {
    // Build on the smaller side.
    let (build, probe, build_is_r) = if r.len() <= s.len() {
        (r, s, true)
    } else {
        (s, r, false)
    };
    let mut table: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(k, v) in build {
        table.entry(k).or_default().push(v);
    }
    let mut out = Vec::new();
    for &(k, pv) in probe {
        if let Some(bvs) = table.get(&k) {
            for &bv in bvs {
                if build_is_r {
                    out.push((k, bv, pv));
                } else {
                    out.push((k, pv, bv));
                }
            }
        }
    }
    out
}

/// Statistics from the partitioned-parallel join.
#[derive(Debug, Clone)]
pub struct JoinStats {
    /// Tuples of R landing in each partition.
    pub r_partition_sizes: Vec<usize>,
    /// Tuples of S landing in each partition.
    pub s_partition_sizes: Vec<usize>,
}

impl JoinStats {
    /// Largest R-partition over ideal (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.r_partition_sizes.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.r_partition_sizes.len() as f64;
        *self.r_partition_sizes.iter().max().unwrap() as f64 / ideal
    }
}

fn partition_of(key: u64, parts: usize) -> usize {
    // Multiplicative hashing spreads adjacent keys.
    ((key.wrapping_mul(0x9E3779B97F4A7C15) >> 33) % parts as u64) as usize
}

/// Partitioned (GRACE-style) parallel hash join: both inputs are hash-
/// partitioned on the key; partitions join independently in parallel.
/// This is the shared-nothing structure distributed joins use.
pub fn parallel_hash_join(r: &[Tuple], s: &[Tuple], workers: usize) -> (Vec<Joined>, JoinStats) {
    assert!(workers > 0);
    let parts = workers;
    let mut r_parts: Vec<Vec<Tuple>> = (0..parts).map(|_| Vec::new()).collect();
    let mut s_parts: Vec<Vec<Tuple>> = (0..parts).map(|_| Vec::new()).collect();
    for &(k, v) in r {
        r_parts[partition_of(k, parts)].push((k, v));
    }
    for &(k, v) in s {
        s_parts[partition_of(k, parts)].push((k, v));
    }
    let stats = JoinStats {
        r_partition_sizes: r_parts.iter().map(Vec::len).collect(),
        s_partition_sizes: s_parts.iter().map(Vec::len).collect(),
    };
    // Join each partition pair on its own thread.
    let results: Vec<Vec<Joined>> = std::thread::scope(|scope| {
        let handles: Vec<_> = r_parts
            .iter()
            .zip(&s_parts)
            .map(|(rp, sp)| scope.spawn(move || hash_join(rp, sp)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    (results.into_iter().flatten().collect(), stats)
}

/// Sort-merge join: sort both inputs by key, then merge, emitting the
/// cross product of each equal-key group.
pub fn sort_merge_join(r: &[Tuple], s: &[Tuple]) -> Vec<Joined> {
    let mut r: Vec<Tuple> = r.to_vec();
    let mut s: Vec<Tuple> = s.to_vec();
    r.sort_unstable();
    s.sort_unstable();
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < r.len() && j < s.len() {
        let (rk, sk) = (r[i].0, s[j].0);
        if rk < sk {
            i += 1;
        } else if rk > sk {
            j += 1;
        } else {
            // Find both equal-key runs.
            let i_end = i + r[i..].iter().take_while(|t| t.0 == rk).count();
            let j_end = j + s[j..].iter().take_while(|t| t.0 == rk).count();
            for &(_, rv) in &r[i..i_end] {
                for &(_, sv) in &s[j..j_end] {
                    out.push((rk, rv, sv));
                }
            }
            i = i_end;
            j = j_end;
        }
    }
    out
}

/// A distributed-style range partitioner for sort-merge: splits both
/// relations into key ranges balanced by sampling (exposed for the
/// bench; uses [`block_ranges`] on the sorted keys).
pub fn range_partitions(sorted_keys: &[u64], parts: usize) -> Vec<std::ops::Range<usize>> {
    block_ranges(sorted_keys.len(), parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::rng::Rng;

    fn canon(mut v: Vec<Joined>) -> Vec<Joined> {
        v.sort_unstable();
        v
    }

    fn random_relation(rng: &mut Rng, n: usize, key_space: u64) -> Vec<Tuple> {
        (0..n)
            .map(|_| (rng.gen_range(key_space), rng.next_u64() % 1000))
            .collect()
    }

    #[test]
    fn known_small_join() {
        let r = vec![(1, 10), (2, 20), (2, 21), (3, 30)];
        let s = vec![(2, 200), (3, 300), (3, 301), (4, 400)];
        let want = canon(vec![(2, 20, 200), (2, 21, 200), (3, 30, 300), (3, 30, 301)]);
        assert_eq!(canon(nested_loop_join(&r, &s)), want);
        assert_eq!(canon(hash_join(&r, &s)), want);
        assert_eq!(canon(sort_merge_join(&r, &s)), want);
        let (pj, _) = parallel_hash_join(&r, &s, 3);
        assert_eq!(canon(pj), want);
    }

    #[test]
    fn all_algorithms_agree_on_random_relations() {
        let mut rng = Rng::new(77);
        for trial in 0..5 {
            let r = random_relation(&mut rng, 300, 50);
            let s = random_relation(&mut rng, 400, 50);
            let want = canon(nested_loop_join(&r, &s));
            assert_eq!(canon(hash_join(&r, &s)), want, "hash trial {trial}");
            assert_eq!(
                canon(sort_merge_join(&r, &s)),
                want,
                "sort-merge trial {trial}"
            );
            for w in [1usize, 2, 5] {
                let (pj, _) = parallel_hash_join(&r, &s, w);
                assert_eq!(canon(pj), want, "parallel w={w} trial {trial}");
            }
        }
    }

    #[test]
    fn empty_and_disjoint_inputs() {
        let r = vec![(1, 1), (2, 2)];
        let s = vec![(3, 3), (4, 4)];
        assert!(hash_join(&r, &s).is_empty());
        assert!(sort_merge_join(&r, &s).is_empty());
        assert!(hash_join(&[], &s).is_empty());
        let (pj, _) = parallel_hash_join(&r, &[], 2);
        assert!(pj.is_empty());
    }

    #[test]
    fn duplicate_keys_produce_cross_products() {
        let r = vec![(7, 1), (7, 2), (7, 3)];
        let s = vec![(7, 10), (7, 20)];
        let out = hash_join(&r, &s);
        assert_eq!(out.len(), 6, "3 x 2 cross product");
        assert_eq!(canon(sort_merge_join(&r, &s)), canon(out));
    }

    #[test]
    fn partitions_are_reasonably_balanced() {
        let mut rng = Rng::new(5);
        let r = random_relation(&mut rng, 40_000, 10_000);
        let s = random_relation(&mut rng, 40_000, 10_000);
        let (_, stats) = parallel_hash_join(&r, &s, 8);
        assert!(
            stats.imbalance() < 1.2,
            "hash partitioning skewed: {}",
            stats.imbalance()
        );
        assert_eq!(stats.r_partition_sizes.iter().sum::<usize>(), 40_000);
    }

    #[test]
    fn skewed_key_hits_one_partition() {
        // All-same-key input: the classic skew pathology — everything
        // lands in one partition (the lesson motivating skew handling).
        let r: Vec<Tuple> = (0..1000).map(|i| (42, i)).collect();
        let s = vec![(42, 0)];
        let (out, stats) = parallel_hash_join(&r, &s, 4);
        assert_eq!(out.len(), 1000);
        let nonempty = stats.r_partition_sizes.iter().filter(|&&n| n > 0).count();
        assert_eq!(nonempty, 1, "skew concentrates in one partition");
    }
}
