//! MapReduce word count behind the [`pdc_core::scenario`] seam — the
//! serving stack's first non-synthetic client.
//!
//! `size` is the document count; documents are drawn from a skewed
//! seeded vocabulary (a few hot words, a long tail — the shape that
//! stresses a shuffle). Three ways to count:
//!
//! * **Sequential** — one `BTreeMap` pass, the baseline.
//! * **Threads** — [`pdc_mpi::mapreduce::run_job`] with
//!   [`tokenize`] as the map side: parallel mappers, hash shuffle,
//!   parallel reducers.
//! * **Mpi** — the shuffle *rides the sharded KV*: every token becomes
//!   a `Put(word, "1")` routed through [`crate::sharded`], and the
//!   store's version counter (bumped on every overwrite) **is** the
//!   reduce — `count(word) = final version of key word`.
//!
//! The same versions-are-counts trick lets the scenario gate drive the
//! full `db::serve` TCP stack as a fourth, out-of-process counter and
//! compare digests; [`counts_from_kv`] converts either KV state.

use crate::sharded::{run_local_traced, run_wire, KvState, ShardOp};
use pdc_core::rng::Rng;
use pdc_core::scenario::{Backend, Digest, Outcome, Scenario, ScenarioCtx};
use pdc_core::trace::TraceSession;
use pdc_mpi::mapreduce::run_job;
use pdc_mpi::WireOptions;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Shards used by both MPI backends (in-process thread ranks and wire
/// OS processes); the wire world is `WIRE_SHARDS + 1` processes.
pub const WIRE_SHARDS: usize = 3;

/// Split a document into normalized words: whitespace-separated tokens,
/// punctuation trimmed from both ends, lowercased, empties dropped.
/// This is the exact normalization `pdc_mpi::mapreduce::word_count`
/// applies, extracted so every backend counts the same tokens.
pub fn tokenize(doc: &str) -> Vec<String> {
    doc.split_whitespace()
        .map(|w| {
            w.trim_matches(|c: char| !c.is_alphanumeric())
                .to_lowercase()
        })
        .filter(|w| !w.is_empty())
        .collect()
}

/// Deterministic corpus: `ndocs` documents of ~40 words drawn from a
/// Zipf-flavored vocabulary (hot words picked often, tail words
/// rarely), with occasional punctuation so [`tokenize`] has work to do.
pub fn gen_docs(seed: u64, ndocs: usize) -> Vec<String> {
    const HOT: &[&str] = &["the", "map", "reduce", "shard", "key", "data"];
    const TAIL: &[&str] = &[
        "cluster", "router", "shuffle", "merge", "halo", "trace", "digest", "backend", "version",
        "commit", "replica", "quorum", "socket", "batch", "stream", "vector", "thread", "kernel",
        "block", "cache",
    ];
    let mut rng = Rng::new(seed ^ 0x77c0_afee);
    (0..ndocs)
        .map(|_| {
            let words = rng.usize_in(30, 50);
            let doc: Vec<String> = (0..words)
                .map(|_| {
                    let w = if rng.chance(0.6) {
                        *rng.choose(HOT)
                    } else {
                        *rng.choose(TAIL)
                    };
                    match rng.gen_range(10) {
                        0 => format!("{w},"),
                        1 => format!("{w}."),
                        2 => {
                            let mut u = w.to_string();
                            u[..1].make_ascii_uppercase();
                            u
                        }
                        _ => w.to_string(),
                    }
                })
                .collect();
            doc.join(" ")
        })
        .collect()
}

/// Baseline: count every token of every document in one `BTreeMap`.
pub fn count_sequential(docs: &[String]) -> Vec<(String, u64)> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut tokens = 0u64;
    for doc in docs {
        for word in tokenize(doc) {
            *counts.entry(word).or_insert(0) += 1;
            tokens += 1;
        }
    }
    // One unit of attributed work per token — the empirical-work metric
    // the span gate's curve fit checks against Θ(n). No-op untraced.
    pdc_core::trace::record_steps(tokens.max(1));
    counts.into_iter().collect()
}

/// Recover word counts from a sharded-KV final state where every token
/// was `Put` exactly once: a key's version bumps on each overwrite, so
/// its final version equals the number of `Put`s — the count. Works on
/// both [`run_local_traced`]'s state and a `db::serve` outcome's.
pub fn counts_from_kv(state: &KvState) -> Vec<(String, u64)> {
    state
        .iter()
        .map(|(key, (_val, ver))| (key.clone(), *ver))
        .collect()
}

/// The `Put(word, "1")` stream for `docs`, in document/token order —
/// the shuffle traffic the KV backends route.
pub fn put_ops(docs: &[String]) -> Vec<ShardOp> {
    docs.iter()
        .flat_map(|doc| tokenize(doc))
        .map(|word| ShardOp::Put {
            key: word,
            val: "1".to_string(),
        })
        .collect()
}

/// Digest a sorted `(word, count)` table.
pub fn digest_counts(counts: &[(String, u64)]) -> u64 {
    let mut d = Digest::new();
    d.write_u64(counts.len() as u64);
    for (word, n) in counts {
        d.write_str(word);
        d.write_u64(*n);
    }
    d.finish()
}

/// How the `wire: true` MPI backend re-executes rank children: a
/// world-id prefix (the per-run id appends the seed and size so a
/// child can regenerate the exact corpus), the argv that brings the
/// re-executed binary back to the same scenario run, and where the
/// per-rank trace snapshots land.
#[derive(Debug, Clone)]
pub struct WireSpec {
    /// World-id prefix; [`WireSpec::options`] appends `#s<seed>n<size>`.
    pub world_prefix: String,
    /// argv for the re-executed binary (e.g. `["--scenario"]`, or a
    /// libtest `--exact` filter).
    pub child_args: Vec<String>,
    /// When set, ranks snapshot `pdc-trace/2` here and the parent
    /// merges them into the run's `pdc-trace/3`.
    pub trace_dir: Option<PathBuf>,
}

impl WireSpec {
    /// The concrete [`WireOptions`] for one `(seed, size)` run — the
    /// *same* construction in the parent and in the re-entered child,
    /// so the world ids match.
    pub fn options(&self, seed: u64, size: usize) -> WireOptions {
        let mut opts = WireOptions::for_args(
            WIRE_SHARDS + 1,
            &format!("{}#s{seed:x}n{size}", self.world_prefix),
            &[],
        );
        opts.child_args = self.child_args.clone();
        opts.trace_dir = self.trace_dir.clone();
        opts
    }

    /// Parse `(seed, size)` back out of a world id minted by
    /// [`WireSpec::options`]; `None` for ids with a different prefix.
    pub fn parse_world(&self, world_id: &str) -> Option<(u64, usize)> {
        let rest = world_id.strip_prefix(self.world_prefix.as_str())?;
        let rest = rest.strip_prefix("#s")?;
        let (seed, size) = rest.split_once('n')?;
        Some((u64::from_str_radix(seed, 16).ok()?, size.parse().ok()?))
    }
}

/// Wire-child entry: regenerate the corpus from the world id and
/// re-enter the exact [`run_wire`] call the parent is blocked on. Call
/// from the binary's dispatch on `WireWorld::child_world_id` when the
/// id carries `spec.world_prefix`.
///
/// # Panics
/// Panics if `world_id` was not minted by `spec` (and never returns
/// otherwise — the wire child exits inside `run_wire`).
pub fn run_wire_wordcount_child(spec: &WireSpec, world_id: &str) -> ! {
    let (seed, size) = spec
        .parse_world(world_id)
        .expect("world id minted by WireSpec::options");
    let ops = put_ops(&gen_docs(seed, size));
    run_wire(&spec.options(seed, size), WIRE_SHARDS, &ops, true);
    unreachable!("wire child returned from its world");
}

/// Count words by running the sharded shuffle as `WIRE_SHARDS + 1` OS
/// processes over loopback TCP (the `mpi-wire` backend).
fn count_wire(docs: &[String], spec: &WireSpec, ctx: &ScenarioCtx<'_>) -> Vec<(String, u64)> {
    let ops = put_ops(docs);
    ctx.session
        .counter("wordcount.shuffle_puts")
        .add(ops.len() as u64);
    let run = run_wire(&spec.options(ctx.seed, ctx.size), WIRE_SHARDS, &ops, true);
    ctx.session
        .counter("wordcount.wire_msgs")
        .add(run.stats.messages);
    counts_from_kv(&run.results[0])
}

/// MapReduce word count on sequential / threads / sharded-KV backends,
/// plus — when constructed [`WordCountScenario::with_wire`] — the same
/// shuffle as real OS processes over loopback TCP.
#[derive(Default)]
pub struct WordCountScenario {
    wire: Option<WireSpec>,
}

impl WordCountScenario {
    /// The in-process backends only (sequential / threads / mpi-local).
    pub fn new() -> Self {
        WordCountScenario { wire: None }
    }

    /// Also list the `mpi-wire` backend, re-executing children per
    /// `spec`. The hosting binary must dispatch wire children carrying
    /// `spec.world_prefix` to [`run_wire_wordcount_child`].
    #[must_use]
    pub fn with_wire(mut self, spec: WireSpec) -> Self {
        self.wire = Some(spec);
        self
    }
}

/// Count words using [`run_job`]'s thread-parallel map/shuffle/reduce.
fn count_mapreduce(docs: Vec<String>, workers: usize) -> Vec<(String, u64)> {
    let (mut counts, _stats) = run_job(
        docs,
        workers,
        workers,
        |doc: String| {
            tokenize(&doc)
                .into_iter()
                .map(|w| (w, 1u64))
                .collect::<Vec<_>>()
        },
        |_word, ones: Vec<u64>| ones.iter().sum::<u64>(),
    );
    counts.sort();
    // `run_job`'s worker threads are its own (no trace installed), so
    // the token work lands as one coarse mark on the calling strand —
    // enough for the span gate's work accounting, though the DAG sees
    // this backend as serial.
    let tokens: u64 = counts.iter().map(|(_, c)| *c).sum();
    pdc_core::trace::record_steps(tokens.max(1));
    counts
}

/// Count words by routing one `Put` per token through the sharded KV
/// (coalesced batches) and reading counts back out of the versions.
fn count_sharded(docs: &[String], shards: usize, session: &TraceSession) -> Vec<(String, u64)> {
    let ops = put_ops(docs);
    session
        .counter("wordcount.shuffle_puts")
        .add(ops.len() as u64);
    let (state, _traffic) = run_local_traced(shards, &ops, true, session);
    counts_from_kv(&state)
}

impl Scenario for WordCountScenario {
    fn name(&self) -> &'static str {
        "wordcount"
    }

    fn backends(&self) -> Vec<Backend> {
        let mut backends = vec![
            Backend::Sequential,
            Backend::Threads { workers: 4 },
            Backend::Mpi {
                ranks: WIRE_SHARDS,
                wire: false,
            },
        ];
        if self.wire.is_some() {
            backends.push(Backend::Mpi {
                ranks: WIRE_SHARDS,
                wire: true,
            });
        }
        backends
    }

    fn run(&self, backend: &Backend, ctx: &ScenarioCtx<'_>) -> Outcome {
        let docs = gen_docs(ctx.seed, ctx.size);
        let counts = match backend {
            Backend::Sequential => count_sequential(&docs),
            Backend::Threads { workers } => count_mapreduce(docs.clone(), *workers),
            Backend::Mpi { ranks, wire: false } => count_sharded(&docs, *ranks, ctx.session),
            Backend::Mpi { wire: true, .. } => {
                let spec = self.wire.as_ref().expect("wire backend requires a spec");
                count_wire(&docs, spec, ctx)
            }
            other => panic!("wordcount scenario does not support {other}"),
        };
        let items: u64 = counts.iter().map(|(_, n)| n).sum();
        ctx.session.counter("wordcount.words").add(items);
        Outcome {
            digest: digest_counts(&counts),
            items,
            detail: format!("distinct={}", counts.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::scenario::{run_scenario, AnalyzeVerdict, ScenarioConfig};

    fn no_analyzer(_: &TraceSession) -> AnalyzeVerdict {
        AnalyzeVerdict {
            clean: true,
            defects: 0,
            events: 0,
        }
    }

    #[test]
    fn tokenize_matches_word_count_normalization() {
        assert_eq!(
            tokenize("The map, the REDUCE. (shard)"),
            vec!["the", "map", "the", "reduce", "shard"]
        );
        assert_eq!(tokenize("  ... !!! "), Vec::<String>::new());
    }

    #[test]
    fn all_backends_agree_on_small_corpora() {
        let cfg = ScenarioConfig::new(21, &[3, 10]);
        let report = run_scenario(&WordCountScenario::new(), &cfg, &no_analyzer);
        assert_eq!(report.runs.len(), 6);
        assert!(report.outcomes_agree(), "{:?}", report.mismatches());
        assert!(report.rows_valid());
    }

    #[test]
    fn sharded_versions_equal_sequential_counts() {
        let docs = gen_docs(4, 6);
        let session = TraceSession::with_capacity(1 << 16);
        let seq = count_sequential(&docs);
        let kv = count_sharded(&docs, 3, &session);
        assert_eq!(kv, seq);
        let puts: u64 = seq.iter().map(|(_, n)| n).sum();
        assert_eq!(session.snapshot().get("wordcount.shuffle_puts"), puts);
    }

    #[test]
    fn wire_backend_agrees_with_in_process_backends() {
        let path = "wordcount::tests::wire_backend_agrees_with_in_process_backends";
        let spec = WireSpec {
            world_prefix: path.to_string(),
            child_args: vec![
                path.to_string(),
                "--exact".to_string(),
                "--nocapture".to_string(),
            ],
            trace_dir: None,
        };
        // A spawned rank child re-runs exactly this test; route it back
        // into the world it belongs to.
        if let Some(id) = pdc_mpi::WireWorld::child_world_id() {
            run_wire_wordcount_child(&spec, &id);
        }
        let scenario = WordCountScenario::new().with_wire(spec.clone());
        assert_eq!(scenario.backends().len(), 4, "wire backend listed");
        let cfg = ScenarioConfig::new(33, &[5]);
        let report = run_scenario(&scenario, &cfg, &no_analyzer);
        assert_eq!(report.runs.len(), 4);
        assert!(report.outcomes_agree(), "{:?}", report.mismatches());
        // Round-trip of the world-id encoding the child relies on.
        let opts = spec.options(33, 5);
        assert_eq!(spec.parse_world(&opts.world_id), Some((33, 5)));
        assert_eq!(spec.parse_world("other#s21n5"), None);
    }

    #[test]
    fn corpus_is_deterministic_and_seed_sensitive() {
        assert_eq!(gen_docs(9, 4), gen_docs(9, 4));
        assert_ne!(gen_docs(9, 4), gen_docs(10, 4));
    }
}
