//! Two-phase commit, as deterministic state machines with failure
//! injection — the "distributed transactions" topic planned for CS44.
//!
//! The protocol: the coordinator sends PREPARE to every participant;
//! each votes YES (after force-writing a prepare record) or NO; the
//! coordinator decides COMMIT iff all votes are YES, logs the decision,
//! and broadcasts it. The invariants the tests enforce:
//!
//! * **Atomicity** — no run ends with one participant committed and
//!   another aborted.
//! * **Stability** — a YES-voting participant that crashes recovers into
//!   the coordinator's decision (from its log + asking the coordinator).
//! * **Blocking** — a prepared participant whose coordinator is down can
//!   do nothing but wait (2PC's famous weakness, demonstrated, not
//!   hidden).

/// Participant vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vote {
    /// Ready to commit (prepare record forced to log).
    Yes,
    /// Cannot commit.
    No,
}

/// Final transaction outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// All participants committed.
    Commit,
    /// All participants aborted.
    Abort,
}

/// Injected participant failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Healthy participant.
    None,
    /// Votes NO.
    VoteNo,
    /// Crashes before voting (coordinator times out -> counts as NO).
    CrashBeforeVote,
    /// Votes YES, then crashes before hearing the decision; must recover.
    CrashAfterVote,
}

/// Participant durable-log records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogRecord {
    /// Force-written before voting YES.
    Prepared,
    /// Decision applied.
    Committed,
    /// Decision applied.
    Aborted,
}

/// One participant.
#[derive(Debug, Clone)]
pub struct Participant {
    /// Its id.
    pub id: usize,
    fault: Fault,
    /// Durable log (survives the simulated crash).
    pub log: Vec<LogRecord>,
    /// Volatile state: is it currently up?
    pub up: bool,
}

impl Participant {
    fn new(id: usize, fault: Fault) -> Self {
        Participant {
            id,
            fault,
            log: Vec::new(),
            up: true,
        }
    }

    /// Phase 1: receive PREPARE, return a vote (None = no response).
    fn prepare(&mut self) -> Option<Vote> {
        match self.fault {
            Fault::CrashBeforeVote => {
                self.up = false;
                None
            }
            Fault::VoteNo => Some(Vote::No),
            Fault::None | Fault::CrashAfterVote => {
                // Force the prepare record *before* voting yes.
                self.log.push(LogRecord::Prepared);
                if self.fault == Fault::CrashAfterVote {
                    self.up = false; // crashes after the vote is sent
                }
                Some(Vote::Yes)
            }
        }
    }

    /// Phase 2: receive the decision (only if up).
    fn decide(&mut self, d: Decision) {
        if !self.up {
            return; // crashed: will learn at recovery
        }
        self.log.push(match d {
            Decision::Commit => LogRecord::Committed,
            Decision::Abort => LogRecord::Aborted,
        });
    }

    /// Recovery protocol: reboot, inspect the log, and if in doubt ask
    /// the coordinator for the outcome.
    pub fn recover(&mut self, coordinator_decision: Option<Decision>) {
        self.up = true;
        match self.log.last() {
            Some(LogRecord::Committed) | Some(LogRecord::Aborted) => {} // done
            Some(LogRecord::Prepared) => {
                // In doubt: must ask (blocking if the coordinator is gone).
                if let Some(d) = coordinator_decision {
                    self.decide(d);
                }
            }
            None => {
                // Never voted: presumed abort.
                self.log.push(LogRecord::Aborted);
            }
        }
    }

    /// Final applied state, if decided.
    pub fn outcome(&self) -> Option<Decision> {
        match self.log.last() {
            Some(LogRecord::Committed) => Some(Decision::Commit),
            Some(LogRecord::Aborted) => Some(Decision::Abort),
            _ => None,
        }
    }
}

/// The coordinator: runs the protocol over a set of participants.
#[derive(Debug)]
pub struct Coordinator {
    /// Participants (owned for the simulation).
    pub participants: Vec<Participant>,
    /// The coordinator's own durable decision record.
    pub decision_log: Option<Decision>,
}

impl Coordinator {
    /// Set up a transaction across participants with the given faults.
    pub fn new(faults: &[Fault]) -> Self {
        Coordinator {
            participants: faults
                .iter()
                .enumerate()
                .map(|(i, &f)| Participant::new(i, f))
                .collect(),
            decision_log: None,
        }
    }

    /// Run both phases; returns the decision.
    pub fn run(&mut self) -> Decision {
        // Phase 1: gather votes. A missing response counts as NO.
        let mut all_yes = true;
        for p in &mut self.participants {
            match p.prepare() {
                Some(Vote::Yes) => {}
                Some(Vote::No) | None => all_yes = false,
            }
        }
        let d = if all_yes {
            Decision::Commit
        } else {
            Decision::Abort
        };
        // Force the decision record before telling anyone.
        self.decision_log = Some(d);
        // Phase 2: broadcast.
        for p in &mut self.participants {
            p.decide(d);
        }
        d
    }

    /// Recover every crashed participant against the coordinator's log.
    pub fn recover_all(&mut self) {
        let d = self.decision_log;
        for p in &mut self.participants {
            if !p.up {
                p.recover(d);
            }
        }
    }

    /// Atomicity check: every decided participant agrees.
    pub fn is_atomic(&self) -> bool {
        let outcomes: Vec<Decision> = self
            .participants
            .iter()
            .filter_map(Participant::outcome)
            .collect();
        outcomes.windows(2).all(|w| w[0] == w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_healthy_commits() {
        let mut c = Coordinator::new(&[Fault::None, Fault::None, Fault::None]);
        assert_eq!(c.run(), Decision::Commit);
        assert!(c.is_atomic());
        assert!(c
            .participants
            .iter()
            .all(|p| p.outcome() == Some(Decision::Commit)));
    }

    #[test]
    fn one_no_vote_aborts_everyone() {
        let mut c = Coordinator::new(&[Fault::None, Fault::VoteNo, Fault::None]);
        assert_eq!(c.run(), Decision::Abort);
        assert!(c.is_atomic());
        assert!(c
            .participants
            .iter()
            .all(|p| p.outcome() == Some(Decision::Abort)));
    }

    #[test]
    fn crash_before_vote_counts_as_no() {
        let mut c = Coordinator::new(&[Fault::None, Fault::CrashBeforeVote]);
        assert_eq!(c.run(), Decision::Abort);
        // The crashed participant recovers into abort (presumed abort).
        c.recover_all();
        assert!(c.is_atomic());
        assert_eq!(c.participants[1].outcome(), Some(Decision::Abort));
    }

    #[test]
    fn crash_after_yes_recovers_into_commit() {
        let mut c = Coordinator::new(&[Fault::None, Fault::CrashAfterVote]);
        assert_eq!(c.run(), Decision::Commit);
        // Before recovery the crashed node is undecided (in doubt).
        assert_eq!(c.participants[1].outcome(), None);
        assert_eq!(c.participants[1].log.last(), Some(&LogRecord::Prepared));
        c.recover_all();
        assert_eq!(c.participants[1].outcome(), Some(Decision::Commit));
        assert!(c.is_atomic());
    }

    #[test]
    fn crash_after_yes_with_global_abort_recovers_into_abort() {
        let mut c = Coordinator::new(&[Fault::VoteNo, Fault::CrashAfterVote]);
        assert_eq!(c.run(), Decision::Abort);
        c.recover_all();
        assert_eq!(c.participants[1].outcome(), Some(Decision::Abort));
        assert!(c.is_atomic());
    }

    #[test]
    fn prepared_participant_blocks_without_coordinator() {
        // The 2PC blocking weakness: coordinator log unavailable.
        let mut p = Participant::new(0, Fault::CrashAfterVote);
        assert_eq!(p.prepare(), Some(Vote::Yes));
        p.recover(None); // coordinator unreachable
        assert_eq!(p.outcome(), None, "in-doubt participant must block");
        // Once the coordinator comes back, it resolves.
        p.recover(Some(Decision::Commit));
        assert_eq!(p.outcome(), Some(Decision::Commit));
    }

    #[test]
    fn atomicity_over_all_fault_combinations() {
        let faults = [
            Fault::None,
            Fault::VoteNo,
            Fault::CrashBeforeVote,
            Fault::CrashAfterVote,
        ];
        for &f1 in &faults {
            for &f2 in &faults {
                for &f3 in &faults {
                    let mut c = Coordinator::new(&[f1, f2, f3]);
                    let d = c.run();
                    c.recover_all();
                    assert!(c.is_atomic(), "{f1:?} {f2:?} {f3:?}");
                    // Every participant eventually decided.
                    for p in &c.participants {
                        assert_eq!(p.outcome(), Some(d), "{f1:?} {f2:?} {f3:?}");
                    }
                    // Commit only if nobody faulted the vote.
                    let should_commit = [f1, f2, f3]
                        .iter()
                        .all(|f| matches!(f, Fault::None | Fault::CrashAfterVote));
                    assert_eq!(d == Decision::Commit, should_commit);
                }
            }
        }
    }

    #[test]
    fn prepared_record_forced_before_yes() {
        let mut p = Participant::new(0, Fault::None);
        assert!(p.log.is_empty());
        let v = p.prepare();
        assert_eq!(v, Some(Vote::Yes));
        assert_eq!(p.log.first(), Some(&LogRecord::Prepared));
    }
}
