//! A sharded key–value store fronted by the consistent-hash ring.
//!
//! This is the [`crate::dht`] lecture made executable end to end: rank 0
//! is the router, ranks `1..=N` each own one shard of the key space, and
//! [`HashRing::node_for`] decides which shard serves which key (ring
//! node `s` is world rank `s + 1`). Because the router runs over the
//! `pdc_mpi` [`Transport`] seam, the *same* routing and serving code
//! executes two ways:
//!
//! * [`run_local`] — every rank is a thread in this process
//!   (`World::run` over `LocalTransport`), and
//! * [`run_wire`] — every rank is a separate OS process talking loopback
//!   TCP (`WireWorld::run` over `WireTransport`), each writing its own
//!   pdc-trace session that the parent merges into one `pdc-trace/3`
//!   snapshot.
//!
//! Both must produce bit-identical final states for the same op script:
//! all operations on one key flow through one FIFO (router → owning
//! shard) in script order, so the outcome is independent of how ranks
//! are scheduled or where they live. The CI shard gate replays one
//! script both ways and diffs the states.
//!
//! The router can also batch: with `batch = true` it funnels ops through
//! a [`Coalescer`], amortizing the per-message α over whole batches of
//! tiny operations — the α–β batching story from [`pdc_mpi::cost`]
//! applied to a storage workload.

use crate::dht::HashRing;
use pdc_core::rng::Rng;
use pdc_core::trace::TraceSession;
use pdc_mpi::coll::Coalescer;
use pdc_mpi::cost::AlphaBeta;
use pdc_mpi::{
    Payload, Rank, TrafficStats, Transport, WireMessage, WireOptions, WireRun, WireWorld, World,
};
use std::collections::BTreeMap;

/// Router → shard: operation batches.
const TAG_OPS: u32 = 0x50;
/// Shard → router: final state report.
const TAG_STATE: u32 = 0x51;

/// Virtual nodes per shard on the routing ring.
const VNODES: usize = 64;

/// One client operation against the sharded store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardOp {
    /// Bind `key` to `val`; the key's version bumps on every write and
    /// restarts at 1 after a delete.
    Put {
        /// Key to write.
        key: String,
        /// Value to store.
        val: String,
    },
    /// Read `key` (shards count reads served; no reply flows back).
    Get {
        /// Key to read.
        key: String,
    },
    /// Remove `key`.
    Del {
        /// Key to remove.
        key: String,
    },
}

impl ShardOp {
    /// The key this operation routes on.
    pub fn key(&self) -> &str {
        match self {
            ShardOp::Put { key, .. } | ShardOp::Get { key } | ShardOp::Del { key } => key,
        }
    }
}

/// Wire/world message for the sharded store: ops flow down from the
/// router, state reports flow back up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMsg {
    /// Router → shard: apply one operation.
    Op(ShardOp),
    /// Router → shard: no more ops; report state and exit.
    Stop,
    /// Shard → router: one key's final binding.
    Entry {
        /// The key.
        key: String,
        /// Its final value.
        val: String,
        /// Its final version.
        ver: u64,
    },
    /// Shard → router: end of the state report.
    Done {
        /// How many operations this shard served.
        ops: u64,
    },
}

impl Payload for ShardOp {
    fn size_bytes(&self) -> u64 {
        // 1 discriminant byte + the strings' bytes, matching encode().
        1 + match self {
            ShardOp::Put { key, val } => (key.len() + val.len()) as u64,
            ShardOp::Get { key } | ShardOp::Del { key } => key.len() as u64,
        }
    }
}

impl Payload for ShardMsg {
    fn size_bytes(&self) -> u64 {
        match self {
            ShardMsg::Op(op) => 1 + op.size_bytes(),
            ShardMsg::Stop => 1,
            ShardMsg::Entry { key, val, .. } => 1 + (key.len() + val.len()) as u64 + 8,
            ShardMsg::Done { .. } => 1 + 8,
        }
    }
}

impl WireMessage for ShardOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ShardOp::Put { key, val } => {
                out.push(0);
                key.encode(out);
                val.encode(out);
            }
            ShardOp::Get { key } => {
                out.push(1);
                key.encode(out);
            }
            ShardOp::Del { key } => {
                out.push(2);
                key.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let (&disc, rest) = buf.split_first()?;
        *buf = rest;
        Some(match disc {
            0 => ShardOp::Put {
                key: String::decode(buf)?,
                val: String::decode(buf)?,
            },
            1 => ShardOp::Get {
                key: String::decode(buf)?,
            },
            2 => ShardOp::Del {
                key: String::decode(buf)?,
            },
            _ => return None,
        })
    }
}

impl WireMessage for ShardMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ShardMsg::Op(op) => {
                out.push(0);
                op.encode(out);
            }
            ShardMsg::Stop => out.push(1),
            ShardMsg::Entry { key, val, ver } => {
                out.push(2);
                key.encode(out);
                val.encode(out);
                ver.encode(out);
            }
            ShardMsg::Done { ops } => {
                out.push(3);
                ops.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let (&disc, rest) = buf.split_first()?;
        *buf = rest;
        Some(match disc {
            0 => ShardMsg::Op(ShardOp::decode(buf)?),
            1 => ShardMsg::Stop,
            2 => ShardMsg::Entry {
                key: String::decode(buf)?,
                val: String::decode(buf)?,
                ver: u64::decode(buf)?,
            },
            3 => ShardMsg::Done {
                ops: u64::decode(buf)?,
            },
            _ => return None,
        })
    }
}

/// The store's final contents, sorted by key: `(key, (value, version))`.
pub type KvState = Vec<(String, (String, u64))>;

/// What applying one [`ShardOp`] did — enough for a caller to build the
/// client-visible reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Applied {
    /// A PUT wrote this version.
    Put(u64),
    /// A GET observed this binding (or its absence).
    Got(Option<(String, u64)>),
    /// A DEL removed an existing key (`true`) or missed (`false`).
    Del(bool),
}

/// Apply one op to a store map — the single source of truth for
/// PUT/GET/DEL semantics, shared by the scripted shard loop, the
/// direct-apply reference in tests and gates, and the replicated
/// serving tier's primaries. The version bumps on every write and
/// restarts at 1 after a delete.
pub fn apply_op(store: &mut BTreeMap<String, (String, u64)>, op: &ShardOp) -> Applied {
    match op {
        ShardOp::Put { key, val } => {
            let ver = store.get(key).map_or(0, |&(_, v)| v) + 1;
            store.insert(key.clone(), (val.clone(), ver));
            Applied::Put(ver)
        }
        ShardOp::Get { key } => Applied::Got(store.get(key).cloned()),
        ShardOp::Del { key } => Applied::Del(store.remove(key).is_some()),
    }
}

/// Reference semantics: apply a whole script to one flat map. The serve
/// gate compares a replicated, failure-injected run's final state
/// against `apply_script(acked ops)` — zero lost acknowledged writes.
pub fn apply_script<'a>(ops: impl IntoIterator<Item = &'a ShardOp>) -> KvState {
    let mut store = BTreeMap::new();
    for op in ops {
        apply_op(&mut store, op);
    }
    store.into_iter().collect()
}

/// A deterministic op script: `ops` operations over `keys` distinct keys
/// — roughly 70% PUT / 20% GET / 10% DEL — reproducible from `seed` so
/// single-process and multi-process runs replay the identical workload.
pub fn script(keys: usize, ops: usize, seed: u64) -> Vec<ShardOp> {
    let mut rng = Rng::new(seed);
    (0..ops)
        .map(|i| {
            let key = format!("k{}", rng.gen_range(keys as u64));
            match rng.gen_range(10) {
                0..=6 => ShardOp::Put {
                    key,
                    val: format!("v{i}"),
                },
                7..=8 => ShardOp::Get { key },
                _ => ShardOp::Del { key },
            }
        })
        .collect()
}

/// The routing ring for `shards` shards: ring node `s` is world rank
/// `s + 1` (rank 0 is the router).
pub fn shard_ring(shards: usize) -> HashRing {
    let mut ring = HashRing::new(VNODES);
    for s in 0..shards {
        ring.add_node(s as u64);
    }
    ring
}

/// Rank 0: route every op to its owning shard, then stop the shards and
/// merge their state reports into one sorted [`KvState`].
fn route<T: Transport<Vec<ShardMsg>>>(
    rank: &mut Rank<Vec<ShardMsg>, T>,
    ops: &[ShardOp],
    batch: bool,
) -> KvState {
    let shards = rank.size() - 1;
    let ring = shard_ring(shards);
    let mut coalescer = batch.then(|| Coalescer::new(rank.size(), TAG_OPS, AlphaBeta::cluster()));
    for op in ops {
        let dst = ring.node_for(op.key()).expect("ring has shards") as usize + 1;
        let msg = ShardMsg::Op(op.clone());
        match &mut coalescer {
            Some(c) => {
                c.push(rank, dst, msg);
            }
            None => rank.send(dst, TAG_OPS, vec![msg]),
        }
    }
    if let Some(c) = &mut coalescer {
        c.flush_all(rank);
    }
    // FIFO per destination: Stop arrives after every flushed batch.
    for s in 1..=shards {
        rank.send(s, TAG_OPS, vec![ShardMsg::Stop]);
    }
    let mut state = BTreeMap::new();
    let mut served = 0;
    for s in 1..=shards {
        let mut done = false;
        for msg in rank.recv(s, TAG_STATE) {
            match msg {
                ShardMsg::Entry { key, val, ver } => {
                    let prev = state.insert(key, (val, ver));
                    assert!(prev.is_none(), "two shards reported the same key");
                }
                ShardMsg::Done { ops } => {
                    served += ops;
                    done = true;
                }
                other => panic!("unexpected message in state report: {other:?}"),
            }
        }
        assert!(done, "shard {s} report missing Done");
    }
    assert_eq!(served, ops.len() as u64, "shards served every op");
    state.into_iter().collect()
}

/// Ranks `1..=N`: apply op batches to the local shard until Stop, then
/// report the shard's sorted state back to the router.
fn serve<T: Transport<Vec<ShardMsg>>>(rank: &mut Rank<Vec<ShardMsg>, T>) {
    let mut store: BTreeMap<String, (String, u64)> = BTreeMap::new();
    let mut served = 0u64;
    'serving: loop {
        for msg in rank.recv(0, TAG_OPS) {
            match msg {
                ShardMsg::Op(op) => {
                    served += 1;
                    rank.count("db.shard_ops");
                    apply_op(&mut store, &op);
                }
                ShardMsg::Stop => break 'serving,
                other => panic!("unexpected message at shard: {other:?}"),
            }
        }
    }
    let mut report: Vec<ShardMsg> = store
        .into_iter()
        .map(|(key, (val, ver))| ShardMsg::Entry { key, val, ver })
        .collect();
    report.push(ShardMsg::Done { ops: served });
    rank.send(0, TAG_STATE, report);
}

fn worker(rank: &mut Rank<Vec<ShardMsg>>, ops: &[ShardOp], batch: bool) -> KvState {
    if rank.id() == 0 {
        route(rank, ops, batch)
    } else {
        serve(rank);
        Vec::new()
    }
}

/// Run the sharded store in-process: rank 0 routes `ops`, ranks
/// `1..=shards` serve, all as threads. Returns the final state (sorted
/// by key) and the world's traffic counters.
///
/// # Panics
/// Panics if `shards == 0` or on any protocol violation.
pub fn run_local(shards: usize, ops: &[ShardOp], batch: bool) -> (KvState, TrafficStats) {
    run_local_inner(shards, ops, batch, None)
}

/// [`run_local`] with every rank publishing pdc-trace counters/events
/// into `session`.
///
/// # Panics
/// Panics if `shards == 0` or on any protocol violation.
pub fn run_local_traced(
    shards: usize,
    ops: &[ShardOp],
    batch: bool,
    session: &TraceSession,
) -> (KvState, TrafficStats) {
    run_local_inner(shards, ops, batch, Some(session))
}

fn run_local_inner(
    shards: usize,
    ops: &[ShardOp],
    batch: bool,
    session: Option<&TraceSession>,
) -> (KvState, TrafficStats) {
    assert!(shards > 0, "need at least one shard");
    let f = |rank: &mut Rank<Vec<ShardMsg>>| worker(rank, ops, batch);
    let (mut results, stats) = match session {
        Some(s) => World::run_traced(shards + 1, s, f),
        None => World::run(shards + 1, f),
    };
    (results.swap_remove(0), stats)
}

/// Run the sharded store as `shards + 1` OS processes over loopback TCP.
/// `results[0]` of the returned [`WireRun`] is the final state; with a
/// traced [`WireOptions`] the run also carries the merged `pdc-trace/3`
/// snapshot.
///
/// Call sites must dispatch on [`WireWorld::child_world_id`] first:
/// re-executed children reach this function through the same code path
/// as the parent and never return from it.
///
/// # Panics
/// Panics if `opts.procs != shards + 1`, if a child cannot be spawned or
/// fails, or on any protocol violation.
pub fn run_wire(
    opts: &WireOptions,
    shards: usize,
    ops: &[ShardOp],
    batch: bool,
) -> WireRun<KvState> {
    assert_eq!(opts.procs, shards + 1, "world = 1 router + N shards");
    WireWorld::run(opts, |rank| {
        if rank.id() == 0 {
            route(rank, ops, batch)
        } else {
            serve(rank);
            Vec::new()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference semantics: apply the script to one flat map.
    fn apply_direct(ops: &[ShardOp]) -> KvState {
        apply_script(ops)
    }

    #[test]
    fn shard_msgs_roundtrip_the_wire_codec() {
        let msgs = vec![
            ShardMsg::Op(ShardOp::Put {
                key: "k".into(),
                val: "v".into(),
            }),
            ShardMsg::Op(ShardOp::Get { key: "k".into() }),
            ShardMsg::Op(ShardOp::Del { key: "".into() }),
            ShardMsg::Stop,
            ShardMsg::Entry {
                key: "k2".into(),
                val: "x".into(),
                ver: 7,
            },
            ShardMsg::Done { ops: 42 },
        ];
        let bytes = msgs.to_bytes();
        assert_eq!(Vec::<ShardMsg>::from_bytes(&bytes), Some(msgs.clone()));
        // Truncation is rejected, not mis-decoded.
        assert_eq!(Vec::<ShardMsg>::from_bytes(&bytes[..bytes.len() - 1]), None);
        // Modeled sizes match encoded discriminant + payload layout.
        let op = ShardMsg::Op(ShardOp::Put {
            key: "abc".into(),
            val: "de".into(),
        });
        assert_eq!(op.size_bytes(), 1 + 1 + 3 + 2);
    }

    #[test]
    fn sharded_state_matches_direct_apply() {
        let ops = script(40, 600, 0xD8);
        let (state, _) = run_local(3, &ops, false);
        assert_eq!(state, apply_direct(&ops));
    }

    #[test]
    fn state_is_identical_across_shard_counts() {
        let ops = script(25, 400, 0xBEEF);
        let (one, _) = run_local(1, &ops, false);
        let (two, _) = run_local(2, &ops, false);
        let (four, _) = run_local(4, &ops, false);
        assert_eq!(one, two);
        assert_eq!(two, four);
    }

    #[test]
    fn batching_preserves_state_and_cuts_messages() {
        let ops = script(30, 500, 7);
        let (plain_state, plain_stats) = run_local(4, &ops, false);
        let (batched_state, batched_stats) = run_local(4, &ops, true);
        assert_eq!(plain_state, batched_state, "batching must not reorder");
        // Unbatched: one envelope per op (+ stops + reports). Batched:
        // tiny ops coalesce far below the α/β threshold, so whole queues
        // ship as single envelopes.
        assert!(
            batched_stats.messages < plain_stats.messages / 10,
            "batched {} vs plain {}",
            batched_stats.messages,
            plain_stats.messages
        );
    }

    #[test]
    fn traced_run_counts_every_op() {
        let ops = script(20, 300, 99);
        let session = TraceSession::new();
        let (state, _) = run_local_traced(3, &ops, true, &session);
        assert_eq!(state, apply_direct(&ops));
        assert_eq!(session.snapshot().get("db.shard_ops"), ops.len() as u64);
    }

    #[test]
    fn wire_sharded_matches_local_and_traces_per_process() {
        let dir = std::env::temp_dir().join(format!("pdc-shard-trace-{}", std::process::id()));
        let ops = script(30, 400, 0xACE);
        let opts = WireOptions::for_test(
            4,
            "sharded::tests::wire_sharded_matches_local_and_traces_per_process",
        )
        .traced(&dir);
        let run = run_wire(&opts, 3, &ops, true);
        let (local_state, _) = run_local(3, &ops, true);
        assert_eq!(run.results[0], local_state, "processes == threads");
        for shard in &run.results[1..] {
            assert!(shard.is_empty(), "only the router returns state");
        }
        let merged = run.trace.expect("traced run yields a merged trace");
        assert_eq!(merged.processes.len(), 4);
        assert_eq!(merged.counter("db.shard_ops"), ops.len() as u64);
        // The router sent every batch: its per-process msgs are nonzero,
        // and the cross-process sum matches the parent's socket count.
        assert!(merged.processes[0].counters.get("mpi.msgs").copied() > Some(0));
        assert_eq!(merged.counter("mpi.msgs"), run.stats.messages);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Topology equivalence: the same op script through star (two-hop,
    /// parent-forwarded) and mesh (one-hop, peer-direct) worlds must
    /// produce identical state and identical modeled traffic — only the
    /// parent's forwarding count may differ.
    #[test]
    fn wire_sharded_state_identical_across_topologies() {
        let path = "sharded::tests::wire_sharded_state_identical_across_topologies";
        let ops = script(30, 400, 0x7070);
        let star_opts = WireOptions {
            world_id: format!("{path}#star"),
            ..WireOptions::for_test(4, path)
        }
        .star();
        let mesh_opts = WireOptions {
            world_id: format!("{path}#mesh"),
            ..WireOptions::for_test(4, path)
        };
        if let Some(id) = WireWorld::child_world_id() {
            if id == star_opts.world_id {
                run_wire(&star_opts, 3, &ops, true);
            }
            run_wire(&mesh_opts, 3, &ops, true);
            unreachable!("wire child never returns");
        }
        let star = run_wire(&star_opts, 3, &ops, true);
        let mesh = run_wire(&mesh_opts, 3, &ops, true);
        assert_eq!(star.results[0], mesh.results[0], "state is topology-blind");
        assert_eq!(star.results[0], apply_direct(&ops));
        assert_eq!(
            star.stats, mesh.stats,
            "modeled traffic is identical; only the routing differs"
        );
        assert_eq!(
            star.forwarded, star.stats.messages,
            "star: every message 2-hop"
        );
        assert_eq!(mesh.forwarded, 0, "mesh: every message 1-hop");
    }
}
