//! Happens-before data-race detection in the FastTrack style.
//!
//! Replays a `pdc-trace/2` event stream, maintaining one vector clock
//! per actor and deriving happens-before edges from every
//! synchronisation action the tracer records:
//!
//! - `acquire`/`release` on a site (any mode — exclusive locks, shared
//!   rwlock sides, and pulse-style semaphore/barrier/oncecell signals
//!   all transfer the releaser's history to later acquirers);
//! - `wait`/`signal` condition edges: a `signal` publishes the
//!   notifier's history on the condvar's site, every subsequent `wait`
//!   (recorded after the wakeup) adopts it;
//! - `fork`/`join` handles (pool submits, fork-join splits);
//! - `send`/`recv` message edges, matched FIFO per (source, dest) pair.
//!
//! Variable accesses (`read`/`write`) are then checked against the
//! clocks: a `write` must dominate the previous write epoch *and* all
//! reads since; a `read` must dominate the previous write epoch. Like
//! FastTrack, the same-actor total order makes these O(1) epoch
//! comparisons in the common case, with the full read vector kept only
//! after genuinely concurrent readers appear.

use crate::report::{Defect, DefectKind};
use crate::vc::{Epoch, VectorClock};
use pdc_core::trace::{Event, EventKind};
use std::collections::{HashMap, VecDeque};

/// Read history for one variable: one epoch while totally ordered,
/// promoted to a full clock after concurrent readers.
#[derive(Debug, Clone)]
enum Reads {
    None,
    One(Epoch),
    Many(VectorClock),
}

#[derive(Debug)]
struct VarState {
    write: Option<Epoch>,
    reads: Reads,
    /// Race already reported for this variable (report once per var).
    reported: bool,
}

impl VarState {
    fn new() -> Self {
        VarState {
            write: None,
            reads: Reads::None,
            reported: false,
        }
    }
}

/// The detector: feed events in logical-timestamp order, collect races.
pub struct HbDetector {
    clocks: HashMap<u32, VectorClock>,
    /// Per-site clock transferred from releasers to acquirers.
    lock_release: HashMap<u64, VectorClock>,
    /// Per-handle clock published by fork, adopted by join.
    fork_history: HashMap<u64, VectorClock>,
    /// Per (src, dst) FIFO of sender clocks awaiting a matching recv.
    msgs: HashMap<(u32, u32), VecDeque<VectorClock>>,
    /// Per-channel FIFO of sender clocks: the n-th `chan_recv` on a
    /// channel adopts the n-th `chan_send`'s history, regardless of
    /// which actors performed them.
    chan_msgs: HashMap<u64, VecDeque<VectorClock>>,
    vars: HashMap<u64, VarState>,
    races: Vec<Defect>,
}

impl Default for HbDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl HbDetector {
    /// A fresh detector with no history.
    pub fn new() -> Self {
        HbDetector {
            clocks: HashMap::new(),
            lock_release: HashMap::new(),
            fork_history: HashMap::new(),
            msgs: HashMap::new(),
            chan_msgs: HashMap::new(),
            vars: HashMap::new(),
            races: Vec::new(),
        }
    }

    fn clock_mut(&mut self, actor: u32) -> &mut VectorClock {
        self.clocks.entry(actor).or_insert_with(|| {
            // Each actor starts at time 1 so its first accesses have a
            // nonzero epoch distinguishable from "never accessed".
            let mut vc = VectorClock::new();
            vc.set(actor, 1);
            vc
        })
    }

    /// Process one event. Events must arrive sorted by logical
    /// timestamp (the `TraceSession::events()` order).
    pub fn step(&mut self, e: &Event) {
        let actor = e.actor;
        match e.kind {
            // A `wait` wakeup adopts whatever the signalling side
            // published on the condvar's site — same edge shape as a
            // pulse acquire, under its own kind so lockset/lock-order
            // can tell condition waits from lock traffic.
            EventKind::Acquire | EventKind::Wait => {
                if let Some(rel) = self.lock_release.get(&e.a) {
                    let rel = rel.clone();
                    self.clock_mut(actor).join(&rel);
                } else {
                    self.clock_mut(actor);
                }
            }
            EventKind::Signal | EventKind::Release => {
                let ct = self.clock_mut(actor).clone();
                self.lock_release.entry(e.a).or_default().join(&ct);
                // Advance past the release so later same-site critical
                // sections by this actor are distinguishable.
                self.clock_mut(actor).tick(actor);
            }
            EventKind::Fork => {
                let ct = self.clock_mut(actor).clone();
                self.fork_history.entry(e.a).or_default().join(&ct);
                self.clock_mut(actor).tick(actor);
            }
            EventKind::Join => {
                if let Some(f) = self.fork_history.get(&e.a) {
                    let f = f.clone();
                    self.clock_mut(actor).join(&f);
                } else {
                    self.clock_mut(actor);
                }
            }
            EventKind::Send => {
                let ct = self.clock_mut(actor).clone();
                self.msgs
                    .entry((actor, e.a as u32))
                    .or_default()
                    .push_back(ct);
                self.clock_mut(actor).tick(actor);
            }
            EventKind::Recv => {
                if let Some(q) = self.msgs.get_mut(&(e.a as u32, actor)) {
                    if let Some(snd) = q.pop_front() {
                        self.clock_mut(actor).join(&snd);
                    }
                }
            }
            // In-process channels pair FIFO per channel id (`e.a`),
            // not per actor pair: a receiver needn't know who sent.
            EventKind::ChanSend => {
                let ct = self.clock_mut(actor).clone();
                self.chan_msgs.entry(e.a).or_default().push_back(ct);
                self.clock_mut(actor).tick(actor);
            }
            EventKind::ChanRecv => {
                if let Some(q) = self.chan_msgs.get_mut(&e.a) {
                    if let Some(snd) = q.pop_front() {
                        self.clock_mut(actor).join(&snd);
                    }
                }
            }
            EventKind::Read => self.check_read(actor, e.a),
            EventKind::Write => self.check_write(actor, e.a),
            // Counters and phase/coll markers carry no ordering here.
            _ => {}
        }
    }

    fn check_read(&mut self, actor: u32, var: u64) {
        let ct = self.clock_mut(actor).clone();
        let epoch = Epoch::of(actor, &ct);
        let mut defect = None;
        let vs = self.vars.entry(var).or_insert_with(VarState::new);
        let racy = matches!(vs.write, Some(w) if w.actor != actor && !w.happens_before(&ct));
        if racy {
            if !vs.reported {
                vs.reported = true;
                let w = vs.write.expect("racy implies a prior write");
                defect = Some(race(var, w.actor, actor, "write-read"));
            }
        } else {
            match &mut vs.reads {
                Reads::None => vs.reads = Reads::One(epoch),
                Reads::One(prev) => {
                    if prev.actor == actor || prev.happens_before(&ct) {
                        // Still totally ordered: the new read supersedes.
                        vs.reads = Reads::One(epoch);
                    } else {
                        // Concurrent readers (fine in itself): keep both.
                        let mut vc = VectorClock::new();
                        vc.set(prev.actor, prev.clock);
                        vc.set(actor, epoch.clock);
                        vs.reads = Reads::Many(vc);
                    }
                }
                Reads::Many(vc) => vc.set(actor, epoch.clock),
            }
        }
        if let Some(d) = defect {
            self.races.push(d);
        }
    }

    fn check_write(&mut self, actor: u32, var: u64) {
        let ct = self.clock_mut(actor).clone();
        let vs = self.vars.entry(var).or_insert_with(VarState::new);
        let mut racy_with: Option<(u32, &'static str)> = None;
        if let Some(w) = vs.write {
            if w.actor != actor && !w.happens_before(&ct) {
                racy_with = Some((w.actor, "write-write"));
            }
        }
        if racy_with.is_none() {
            match &vs.reads {
                Reads::None => {}
                Reads::One(r) => {
                    if r.actor != actor && !r.happens_before(&ct) {
                        racy_with = Some((r.actor, "read-write"));
                    }
                }
                Reads::Many(rv) => {
                    for (ra, rc) in rv.iter() {
                        let r = Epoch {
                            actor: ra,
                            clock: rc,
                        };
                        if ra != actor && !r.happens_before(&ct) {
                            racy_with = Some((ra, "read-write"));
                            break;
                        }
                    }
                }
            }
        }
        let mut defect = None;
        if let Some((other, flavor)) = racy_with {
            if !vs.reported {
                vs.reported = true;
                defect = Some(race(var, other, actor, flavor));
            }
        }
        vs.write = Some(Epoch::of(actor, &ct));
        vs.reads = Reads::None;
        if let Some(d) = defect {
            self.races.push(d);
        }
    }

    /// All data races found so far, in detection order.
    pub fn into_races(self) -> Vec<Defect> {
        self.races
    }
}

fn race(var: u64, first: u32, second: u32, flavor: &str) -> Defect {
    Defect {
        kind: DefectKind::DataRace,
        sites: Vec::new(),
        var: Some(var),
        actors: vec![first, second],
        detail: format!(
            "{flavor} race on var {var}: actors {first} and {second} access it with no happens-before edge"
        ),
    }
}

/// Run the detector over a full event stream (assumed ts-sorted).
pub fn detect_races(events: &[Event]) -> Vec<Defect> {
    let mut d = HbDetector::new();
    for e in events {
        d.step(e);
    }
    d.into_races()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, actor: u32, kind: EventKind, a: u64, b: u64) -> Event {
        Event {
            ts,
            actor,
            kind,
            a,
            b,
        }
    }

    const L: u64 = 100; // a lock site
    const V: u64 = 7; // a variable

    #[test]
    fn unsynchronized_write_write_is_a_race() {
        let races = detect_races(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 1, EventKind::Write, V, 0),
        ]);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].var, Some(V));
        assert_eq!(races[0].actors, vec![0, 1]);
        assert!(races[0].detail.contains("write-write"));
    }

    #[test]
    fn lock_protected_writes_are_ordered() {
        let races = detect_races(&[
            ev(1, 0, EventKind::Acquire, L, 1),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Release, L, 1),
            ev(4, 1, EventKind::Acquire, L, 1),
            ev(5, 1, EventKind::Write, V, 0),
            ev(6, 1, EventKind::Release, L, 1),
        ]);
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn different_locks_do_not_order() {
        let races = detect_races(&[
            ev(1, 0, EventKind::Acquire, L, 1),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Release, L, 1),
            ev(4, 1, EventKind::Acquire, L + 1, 1),
            ev(5, 1, EventKind::Write, V, 0),
            ev(6, 1, EventKind::Release, L + 1, 1),
        ]);
        assert_eq!(races.len(), 1, "distinct locks give no edge");
    }

    #[test]
    fn concurrent_reads_are_not_a_race_but_later_write_is() {
        let races = detect_races(&[
            ev(1, 0, EventKind::Read, V, 0),
            ev(2, 1, EventKind::Read, V, 0),
            ev(3, 2, EventKind::Read, V, 0),
        ]);
        assert!(races.is_empty(), "reads never race with reads");
        let races = detect_races(&[
            ev(1, 0, EventKind::Read, V, 0),
            ev(2, 1, EventKind::Read, V, 0),
            ev(3, 2, EventKind::Write, V, 0),
        ]);
        assert_eq!(races.len(), 1);
        assert!(races[0].detail.contains("read-write"));
    }

    #[test]
    fn fork_join_orders_child_against_parent() {
        const H: u64 = 200;
        let races = detect_races(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 0, EventKind::Fork, H, 0),
            ev(3, 1, EventKind::Join, H, 0),
            ev(4, 1, EventKind::Write, V, 0),
        ]);
        assert!(races.is_empty(), "{races:?}");
        // Without the join the same accesses race.
        let races = detect_races(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 0, EventKind::Fork, H, 0),
            ev(4, 1, EventKind::Write, V, 0),
        ]);
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn message_edges_order_sender_before_receiver() {
        let races = detect_races(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 0, EventKind::Send, 1, 8),
            ev(3, 1, EventKind::Recv, 0, 8),
            ev(4, 1, EventKind::Write, V, 0),
        ]);
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn fifo_matching_pairs_sends_in_order() {
        // Two sends, one recv: the recv adopts the FIRST send's history,
        // so a write after the second send still races.
        let races = detect_races(&[
            ev(1, 0, EventKind::Send, 1, 8),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Send, 1, 8),
            ev(4, 1, EventKind::Recv, 0, 8),
            ev(5, 1, EventKind::Write, V, 0),
        ]);
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn channel_edges_pair_fifo_per_channel() {
        // Sender publishes, receiver adopts: the write handoff through
        // the channel is ordered even though the actors never share a
        // lock — and the pairing is by channel id, not actor pair.
        let races = detect_races(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 0, EventKind::ChanSend, L, 0),
            ev(3, 1, EventKind::ChanRecv, L, 0),
            ev(4, 1, EventKind::Write, V, 0),
        ]);
        assert!(races.is_empty(), "{races:?}");
        // A recv on a *different* channel adopts nothing: still a race.
        let races = detect_races(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 0, EventKind::ChanSend, L, 0),
            ev(3, 1, EventKind::ChanRecv, L + 1, 0),
            ev(4, 1, EventKind::Write, V, 0),
        ]);
        assert_eq!(races.len(), 1, "{races:?}");
    }

    #[test]
    fn chan_fifo_matches_nth_recv_to_nth_send() {
        // Second recv adopts the second send's history, so the write
        // between the sends is ordered before it.
        let races = detect_races(&[
            ev(1, 0, EventKind::ChanSend, L, 0),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::ChanSend, L, 1),
            ev(4, 1, EventKind::ChanRecv, L, 0),
            ev(5, 1, EventKind::ChanRecv, L, 1),
            ev(6, 1, EventKind::Write, V, 0),
        ]);
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn pulse_release_acquire_transfers_history() {
        // Semaphore-style: release by 0, acquire by 1 (mode 2).
        let races = detect_races(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 0, EventKind::Release, L, 2),
            ev(3, 1, EventKind::Acquire, L, 2),
            ev(4, 1, EventKind::Write, V, 0),
        ]);
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn signal_wait_transfers_history() {
        // Condvar-style: writer signals after publishing, waiter's wait
        // edge (recorded post-wakeup) adopts the writer's history.
        let races = detect_races(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 0, EventKind::Signal, L, 1),
            ev(3, 1, EventKind::Wait, L, 1),
            ev(4, 1, EventKind::Write, V, 0),
        ]);
        assert!(races.is_empty(), "{races:?}");
        // A read *before* the wait edge is still unordered: the misused
        // condvar keeps racing.
        let races = detect_races(&[
            ev(1, 1, EventKind::Read, V, 0),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Signal, L, 1),
            ev(4, 1, EventKind::Wait, L, 1),
        ]);
        assert_eq!(races.len(), 1, "pre-wait access has no incoming edge");
    }

    #[test]
    fn each_variable_reports_at_most_once() {
        let races = detect_races(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 1, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Write, V, 0),
            ev(4, 1, EventKind::Write, V, 0),
        ]);
        assert_eq!(races.len(), 1, "one defect per racy variable");
    }
}
