//! Vector clocks and epochs — the causality bookkeeping behind the
//! happens-before race detector.
//!
//! A [`VectorClock`] maps actor → logical time; `a ⊑ b` (pointwise ≤)
//! means everything actor-wise known at `a` is known at `b`, i.e. `a`
//! happens-before-or-equals `b`. An [`Epoch`] `c@t` is the FastTrack
//! compression of "the single access by actor `t` at its time `c`" —
//! most variables are only ever touched in a totally ordered way, and
//! one epoch comparison (O(1)) replaces a full clock join.

use std::collections::BTreeMap;

/// A map from actor id to that actor's logical clock. Missing entries
/// are zero. `BTreeMap` keeps iteration deterministic so reports are
/// stable across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    entries: BTreeMap<u32, u64>,
}

impl VectorClock {
    /// The zero clock (⊥): happens-before everything.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// This clock's component for `actor` (zero if absent).
    pub fn get(&self, actor: u32) -> u64 {
        self.entries.get(&actor).copied().unwrap_or(0)
    }

    /// Set the component for `actor`.
    pub fn set(&mut self, actor: u32, time: u64) {
        if time == 0 {
            self.entries.remove(&actor);
        } else {
            self.entries.insert(actor, time);
        }
    }

    /// Increment `actor`'s component, returning the new value.
    pub fn tick(&mut self, actor: u32) -> u64 {
        let e = self.entries.entry(actor).or_insert(0);
        *e += 1;
        *e
    }

    /// Pointwise maximum: afterwards `self` knows everything `other`
    /// knew (the effect of synchronising with `other`'s history).
    pub fn join(&mut self, other: &VectorClock) {
        for (&actor, &time) in &other.entries {
            let e = self.entries.entry(actor).or_insert(0);
            if time > *e {
                *e = time;
            }
        }
    }

    /// True when `self ⊒ other` pointwise — i.e. `other`'s history
    /// happened before (or is equal to) this clock.
    pub fn dominates(&self, other: &VectorClock) -> bool {
        other
            .entries
            .iter()
            .all(|(&actor, &time)| self.get(actor) >= time)
    }

    /// Iterate over the nonzero (actor, time) entries in actor order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.entries.iter().map(|(&a, &t)| (a, t))
    }
}

/// `clock@actor`: the scalar-clock identity of a single access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// The actor that performed the access.
    pub actor: u32,
    /// That actor's clock component at the access.
    pub clock: u64,
}

impl Epoch {
    /// An epoch for `actor` at its current time in `vc`.
    pub fn of(actor: u32, vc: &VectorClock) -> Self {
        Epoch {
            actor,
            clock: vc.get(actor),
        }
    }

    /// True when this access happens-before (or equals) the history in
    /// `vc` — the FastTrack O(1) fast path: `c@t ⊑ V ⟺ c ≤ V[t]`.
    pub fn happens_before(&self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.actor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_tick() {
        let mut v = VectorClock::new();
        assert_eq!(v.get(3), 0);
        v.set(3, 5);
        assert_eq!(v.get(3), 5);
        assert_eq!(v.tick(3), 6);
        assert_eq!(v.tick(7), 1);
        assert_eq!(v.get(7), 1);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 4);
        a.set(1, 1);
        let mut b = VectorClock::new();
        b.set(1, 9);
        b.set(2, 2);
        a.join(&b);
        assert_eq!(a.get(0), 4);
        assert_eq!(a.get(1), 9);
        assert_eq!(a.get(2), 2);
    }

    #[test]
    fn dominates_orders_histories() {
        let mut lo = VectorClock::new();
        lo.set(0, 1);
        let mut hi = VectorClock::new();
        hi.set(0, 2);
        hi.set(1, 1);
        assert!(hi.dominates(&lo));
        assert!(!lo.dominates(&hi));
        // Concurrent clocks dominate in neither direction.
        let mut other = VectorClock::new();
        other.set(2, 1);
        other.set(0, 1);
        assert!(!hi.dominates(&other));
        assert!(!other.dominates(&hi));
        // Everything dominates bottom.
        assert!(lo.dominates(&VectorClock::new()));
    }

    #[test]
    fn epoch_fast_path_matches_definition() {
        let mut v = VectorClock::new();
        v.set(4, 10);
        let before = Epoch { actor: 4, clock: 9 };
        let at = Epoch {
            actor: 4,
            clock: 10,
        };
        let after = Epoch {
            actor: 4,
            clock: 11,
        };
        let elsewhere = Epoch { actor: 5, clock: 1 };
        assert!(before.happens_before(&v));
        assert!(at.happens_before(&v));
        assert!(!after.happens_before(&v));
        assert!(!elsewhere.happens_before(&v), "unknown actor is concurrent");
    }
}
