//! Known-defect and known-clean executions used to validate the
//! analyzers against themselves — the detector's own unit of trust.
//!
//! Each fixture runs *real* code (real threads, real pdc-sync
//! primitives, the deterministic philosophers simulator) under a
//! [`TraceSession`] and returns the session for analysis. CI asserts
//! soundness in both directions: the racy/deadlocky fixtures MUST be
//! flagged, and the correctly synchronised variants MUST come back
//! clean.

use pdc_core::trace::{self, TraceSession};
use pdc_sync::problems::{lucky_sequential_schedule, simulate_traced, Strategy, TracedSim};
use pdc_sync::{PdcCondvar, PdcMutex, Semaphore};
use std::sync::atomic::{AtomicU64, Ordering};

/// How many increments each fixture thread performs.
pub const FIXTURE_ITERS: u64 = 100;

/// A counter incremented by two threads with NO synchronisation: the
/// canonical data race. The atomic is only there so the Rust program
/// itself is defined; the *trace* records plain reads and writes with
/// no lock held and no happens-before edge, which is exactly the bug a
/// `static mut` counter would have.
pub fn racy_counter_session() -> TraceSession {
    let session = TraceSession::new();
    let counter = AtomicU64::new(0);
    let var = trace::next_site_id();
    std::thread::scope(|s| {
        for t in 0..2u32 {
            let session = &session;
            let counter = &counter;
            s.spawn(move || {
                trace::install_sync_trace(session.thread(t));
                for _ in 0..FIXTURE_ITERS {
                    trace::record_var_read(var);
                    let v = counter.load(Ordering::Relaxed);
                    trace::record_var_write(var);
                    counter.store(v + 1, Ordering::Relaxed);
                }
                trace::clear_sync_trace();
            });
        }
    });
    session
}

/// The same two-thread counter, fixed the way the sync unit teaches:
/// every access inside a [`PdcMutex`] critical section. Both detectors
/// must report this clean — the mutex site orders the accesses (HB)
/// and is the common candidate lock (lockset).
pub fn fixed_counter_session() -> TraceSession {
    let session = TraceSession::new();
    let counter = PdcMutex::new(0u64);
    let var = trace::next_site_id();
    std::thread::scope(|s| {
        for t in 0..2u32 {
            let session = &session;
            let counter = &counter;
            s.spawn(move || {
                trace::install_sync_trace(session.thread(t));
                for _ in 0..FIXTURE_ITERS {
                    let mut g = counter.lock();
                    trace::record_var_read(var);
                    let v = *g;
                    trace::record_var_write(var);
                    *g = v + 1;
                }
                trace::clear_sync_trace();
            });
        }
    });
    session
}

/// The ad-hoc semaphore hand-off protocol: the producer writes the
/// slot and releases a semaphore; the consumer acquires the semaphore
/// and then reads and rewrites the slot. No lock is ever held, yet the
/// accesses are fully ordered through the permit's pulse edge — both
/// detectors must report this clean (the lockset checker via ownership
/// transfer along the hand-off edge, not via any candidate lock).
pub fn semaphore_handoff_session() -> TraceSession {
    let session = TraceSession::new();
    let slot = AtomicU64::new(0);
    let handoff = Semaphore::new(0);
    let var = trace::next_site_id();
    std::thread::scope(|s| {
        let (session, slot, handoff) = (&session, &slot, &handoff);
        s.spawn(move || {
            trace::install_sync_trace(session.thread(0));
            trace::record_var_write(var);
            slot.store(41, Ordering::Relaxed);
            handoff.release();
            trace::clear_sync_trace();
        });
        s.spawn(move || {
            trace::install_sync_trace(session.thread(1));
            handoff.acquire();
            trace::record_var_read(var);
            let v = slot.load(Ordering::Relaxed);
            trace::record_var_write(var);
            slot.store(v + 1, Ordering::Relaxed);
            trace::clear_sync_trace();
        });
    });
    session
}

/// A misused condition variable: the consumer *peeks* at the shared
/// slot before taking the mutex and waiting, so that first read has no
/// incoming happens-before edge from the producer's write — a true
/// data race the HB detector must flag in every schedule (whichever of
/// the peek and the write lands first in the trace, the pair is
/// unordered). The post-wait read is correctly synchronised via the
/// signal/wait edge.
pub fn misused_condvar_session() -> TraceSession {
    let session = TraceSession::new();
    let ready = PdcMutex::new(false);
    let cv = PdcCondvar::new();
    let slot = AtomicU64::new(0);
    let var = trace::next_site_id();
    std::thread::scope(|s| {
        let (session, ready, cv, slot) = (&session, &ready, &cv, &slot);
        s.spawn(move || {
            trace::install_sync_trace(session.thread(0));
            trace::record_var_write(var);
            slot.store(42, Ordering::Relaxed);
            *ready.lock() = true;
            cv.notify_one();
            trace::clear_sync_trace();
        });
        s.spawn(move || {
            trace::install_sync_trace(session.thread(1));
            // BUG: check the slot before synchronising.
            trace::record_var_read(var);
            let _peek = slot.load(Ordering::Relaxed);
            let g = ready.lock();
            let g = cv.wait_while(g, |&r| !r);
            drop(g);
            trace::record_var_read(var);
            let _v = slot.load(Ordering::Relaxed);
            trace::clear_sync_trace();
        });
    });
    session
}

/// Dining philosophers, naive left-then-right strategy, run under a
/// *lucky* sequential schedule so the simulation completes — yet the
/// cyclic fork-acquisition order is fully present in the trace, and
/// the lock-order analysis must still predict the deadlock. This is
/// the "strictly stronger than runtime detection" demonstration.
pub fn deadlocky_philosophers_session(n: usize) -> (TraceSession, TracedSim) {
    let session = TraceSession::new();
    let schedule = lucky_sequential_schedule(n, 1);
    let sim = simulate_traced(Strategy::Naive, n, 1, &schedule, 10_000, &session);
    (session, sim)
}

/// Philosophers with global resource ordering (lower fork first): the
/// acquisition graph is acyclic, so the analysis must report clean.
pub fn ordered_philosophers_session(n: usize) -> (TraceSession, TracedSim) {
    let session = TraceSession::new();
    let schedule = lucky_sequential_schedule(n, 1);
    let sim = simulate_traced(Strategy::Ordered, n, 1, &schedule, 10_000, &session);
    (session, sim)
}

/// Philosophers with an arbitrator (room semaphore admitting n-1): the
/// raw fork order is still cyclic, but every nested acquisition
/// happens inside the room pulse — the cycle must be gate-suppressed
/// into `gated_cycles`, not reported as a defect.
pub fn arbitrator_philosophers_session(n: usize) -> (TraceSession, TracedSim) {
    let session = TraceSession::new();
    let schedule = lucky_sequential_schedule(n, 1);
    let sim = simulate_traced(Strategy::Arbitrator, n, 1, &schedule, 10_000, &session);
    (session, sim)
}

/// A synthetic two-rank MPI trace with three classic bugs: rank 0
/// sends a message nobody receives, the ranks enter their collectives
/// in different orders, and rank 1 never leaves its last collective.
/// (Synthetic rather than a live [`pdc_mpi::World`] run because a real
/// collective-order mismatch would deadlock the fixture.)
pub fn mpi_mismatch_session() -> TraceSession {
    use pdc_core::trace::EventKind;
    let session = TraceSession::new();
    let r0 = session.thread(0);
    let r1 = session.thread(1);
    // Rank 0: lost message, then barrier (coll 0) before reduce (coll 2).
    r0.record(EventKind::Send, 1, 64);
    r0.record(EventKind::CollBegin, 0, 0);
    r0.record(EventKind::CollEnd, 0, 0);
    r0.record(EventKind::CollBegin, 2, 1);
    r0.record(EventKind::CollEnd, 2, 1);
    // Rank 1: reduce before barrier, and the barrier never completes.
    r1.record(EventKind::CollBegin, 2, 0);
    r1.record(EventKind::CollEnd, 2, 0);
    r1.record(EventKind::CollBegin, 0, 1);
    session
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::trace::EventKind;

    #[test]
    fn racy_fixture_records_unsynchronized_accesses() {
        let s = racy_counter_session();
        let evs = s.events();
        let reads = evs.iter().filter(|e| e.kind == EventKind::Read).count();
        let writes = evs.iter().filter(|e| e.kind == EventKind::Write).count();
        assert_eq!(reads as u64, 2 * FIXTURE_ITERS);
        assert_eq!(writes as u64, 2 * FIXTURE_ITERS);
        assert!(
            !evs.iter()
                .any(|e| matches!(e.kind, EventKind::Acquire | EventKind::Release)),
            "the racy fixture must hold no locks"
        );
    }

    #[test]
    fn fixed_fixture_brackets_every_access_with_the_mutex() {
        let s = fixed_counter_session();
        let evs = s.events();
        let acquires = evs.iter().filter(|e| e.kind == EventKind::Acquire).count();
        assert_eq!(acquires as u64, 2 * FIXTURE_ITERS);
        assert_eq!(s.dropped(), 0, "fixture must fit the trace buffers");
    }

    #[test]
    fn deadlocky_fixture_completes_yet_is_cyclic() {
        let (s, sim) = deadlocky_philosophers_session(5);
        assert!(
            !sim.outcome.deadlocked,
            "the lucky schedule must complete — prediction, not observation"
        );
        assert!(sim.outcome.meals.iter().all(|&m| m == 1));
        assert_eq!(sim.fork_sites.len(), 5);
        assert!(!s.events().is_empty());
    }

    #[test]
    fn mpi_fixture_contains_all_three_bugs() {
        let evs = mpi_mismatch_session().events();
        assert_eq!(evs.iter().filter(|e| e.kind == EventKind::Send).count(), 1);
        assert_eq!(evs.iter().filter(|e| e.kind == EventKind::Recv).count(), 0);
        let begins = evs
            .iter()
            .filter(|e| e.kind == EventKind::CollBegin)
            .count();
        let ends = evs.iter().filter(|e| e.kind == EventKind::CollEnd).count();
        assert_eq!(begins, 4);
        assert_eq!(ends, 3);
    }
}
