//! Empirical work/span profiling over traced executions — the
//! measurement side of the curriculum's work–span theory (CLRS ch. 27).
//!
//! [`analyze_span`] reconstructs the computation DAG a `pdc-trace/2`
//! stream recorded — program order per actor, fork/join adoption,
//! lock/pulse release→acquire, signal→wait, channel and message FIFO
//! pairing — and runs one longest-path (topological relaxation) pass
//! over it:
//!
//! * **work** `T1` — the sum of every event's weight. An event weighs 1
//!   except a [`MARK_STEPS`] mark, which weighs its `b` payload: the
//!   unit-cost operations the strand attributed via
//!   [`pdc_core::trace::record_steps`].
//! * **span** `T∞` — the heaviest path through the DAG: the length of
//!   the critical path an infinite-processor machine could not beat.
//! * **parallelism** `T1/T∞` — the maximum useful processor count, the
//!   number Brent's bound turns into predicted `Tp`.
//! * **the critical path itself** — the ordered event list realising
//!   the span, recovered by predecessor back-walk, renderable by
//!   [`pdc_core::timeline::render_html_with_path`].
//!
//! The trace's recording-order guarantees (an `acquire` is recorded
//! after the `release` that enabled it, a `join` after its `fork`, the
//! k-th `chan_recv` after the k-th `chan_send`, …) make logical-
//! timestamp order a valid topological order of this DAG, so one
//! forward sweep suffices — no explicit graph is materialised. The edge
//! vocabulary deliberately mirrors [`crate::deps`]: every cross-actor
//! edge the pass adds connects a pair [`crate::deps::events_dependent`]
//! calls dependent (debug-asserted), so the span DAG, the HB race
//! detector, and DPOR all agree on what "ordered" means.
//!
//! Multi-process `pdc-trace/3` snapshots go through
//! [`analyze_span_merged`], reusing [`crate::merged::causal_order`] to
//! rebuild one consistent stream first.
//!
//! Results export as `pdc-span/1` JSON: deterministic
//! (byte-identical for identical schedules), hand-rolled like every
//! other schema in the workspace.

use crate::deps;
use pdc_core::merge::MergedTrace;
use pdc_core::trace::{Event, EventKind, TraceSession, MARK_STEPS};
use pdc_core::workspan::WorkSpan;
use std::collections::{BTreeMap, VecDeque};

/// The empirical work/span verdict on one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanReport {
    /// Total attributed steps `T1` (every event's weight summed).
    pub work: u64,
    /// Critical-path length `T∞` (heaviest path through the DAG).
    pub span: u64,
    /// Events the pass consumed.
    pub events: usize,
    /// The critical path, in execution order (first event → last). Its
    /// weights sum to `span`.
    pub critical: Vec<Event>,
}

impl SpanReport {
    /// The measured pair as a [`WorkSpan`] (asserts `span <= work`,
    /// which holds structurally: the path is made of counted events).
    pub fn work_span(&self) -> WorkSpan {
        WorkSpan::new(self.work, self.span)
    }

    /// Parallelism `T1/T∞`; 1.0 for the empty trace.
    pub fn parallelism(&self) -> f64 {
        self.work_span().parallelism()
    }

    /// Timestamps along the critical path, for
    /// [`pdc_core::timeline::render_html_with_path`].
    pub fn critical_ts(&self) -> Vec<u64> {
        self.critical.iter().map(|e| e.ts).collect()
    }

    /// Render as `pdc-span/1` JSON. Deterministic: the same event
    /// stream yields byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"pdc-span/1\",\"work\":{},\"span\":{},\"parallelism\":{:.4},\"events\":{},\"critical_path\":[",
            self.work,
            self.span,
            self.parallelism(),
            self.events
        );
        for (i, e) in self.critical.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"ts\":{},\"actor\":{},\"kind\":\"{}\",\"weight\":{}}}",
                e.ts,
                e.actor,
                e.kind.as_str(),
                event_weight(e)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The weight one event contributes to work and to any path through
/// it: the attributed step count for a [`MARK_STEPS`] mark, 1 for
/// everything else.
pub fn event_weight(e: &Event) -> u64 {
    if e.kind == EventKind::Mark && e.a == MARK_STEPS {
        e.b
    } else {
        1
    }
}

/// Profile a [`TraceSession`]'s event stream.
pub fn analyze_span_session(session: &TraceSession) -> SpanReport {
    analyze_span(&session.events())
}

/// Profile a merged multi-process `pdc-trace/3` snapshot: causally
/// reorder and namespace the per-process slices (see
/// [`crate::merged::causal_order`]), then profile the single stream.
pub fn analyze_span_merged(trace: &MergedTrace) -> SpanReport {
    analyze_span(&crate::merged::causal_order(trace))
}

/// Profile a raw event stream: longest weighted path over the recorded
/// computation DAG. Events are defensively re-sorted by logical
/// timestamp (stably, like [`crate::analyze_events`]).
pub fn analyze_span(events: &[Event]) -> SpanReport {
    let mut events: Vec<Event> = events.to_vec();
    events.sort_by_key(|e| e.ts);

    // dist[i] = weight of the heaviest path ending at event i
    // (inclusive); pred[i] = the predecessor realising it.
    let mut dist: Vec<u64> = vec![0; events.len()];
    let mut pred: Vec<Option<usize>> = vec![None; events.len()];

    // Last event per actor: program-order edges.
    let mut last_of_actor: BTreeMap<u32, usize> = BTreeMap::new();
    // Heaviest-path release/signal per site: `acquire`/`wait` adopt it.
    // Keeping only the argmax is exactly right for longest path — a
    // barrier's N arrivals all happen-before every wakeup, and the
    // heaviest arrival dominates the other N-1 as a path prefix.
    let mut best_release: BTreeMap<u64, usize> = BTreeMap::new();
    // Heaviest fork per handle: `join` adopts it. (Handles are unique
    // per pairing; the map degenerates to "the fork".)
    let mut best_fork: BTreeMap<u64, usize> = BTreeMap::new();
    // FIFO channel pairing: k-th recv on a channel adopts k-th send.
    let mut chan_fifo: BTreeMap<u64, VecDeque<usize>> = BTreeMap::new();
    // FIFO message pairing per directed (src, dst) actor pair.
    let mut msg_fifo: BTreeMap<(u64, u64), VecDeque<usize>> = BTreeMap::new();

    let mut work: u64 = 0;
    for i in 0..events.len() {
        let e = events[i];
        let w = event_weight(&e);
        work += w;

        // Gather predecessors: program order first, then the kind's
        // cross-actor edge. Strict `>` keeps ties deterministic (the
        // program-order predecessor wins).
        let mut best: Option<usize> = last_of_actor.get(&e.actor).copied();
        let consider = |cand: Option<usize>, best: &mut Option<usize>| {
            if let Some(c) = cand {
                debug_assert!(
                    deps::events_dependent(&events[c], &events[i]),
                    "span edge {:?} -> {:?} must be a dependent pair",
                    events[c],
                    events[i]
                );
                if best.is_none() || dist[c] > dist[best.unwrap()] {
                    *best = Some(c);
                }
            }
        };
        match e.kind {
            EventKind::Acquire | EventKind::Wait => {
                consider(best_release.get(&e.a).copied(), &mut best);
            }
            EventKind::Join => {
                consider(best_fork.get(&e.a).copied(), &mut best);
            }
            EventKind::ChanRecv => {
                let cand = chan_fifo.get_mut(&e.a).and_then(VecDeque::pop_front);
                consider(cand, &mut best);
            }
            EventKind::Recv => {
                // Send records (peer = dst) on the sender; Recv records
                // (peer = src) on the receiver.
                let cand = msg_fifo
                    .get_mut(&(e.a, e.actor as u64))
                    .and_then(VecDeque::pop_front);
                consider(cand, &mut best);
            }
            _ => {}
        }

        dist[i] = w + best.map_or(0, |p| dist[p]);
        pred[i] = best;

        // Publish this event where later events will look for it.
        match e.kind {
            EventKind::Release | EventKind::Signal => {
                let cur = best_release.get(&e.a).copied();
                if cur.is_none_or(|c| dist[i] > dist[c]) {
                    best_release.insert(e.a, i);
                }
            }
            EventKind::Fork => {
                let cur = best_fork.get(&e.a).copied();
                if cur.is_none_or(|c| dist[i] > dist[c]) {
                    best_fork.insert(e.a, i);
                }
            }
            EventKind::ChanSend => {
                chan_fifo.entry(e.a).or_default().push_back(i);
            }
            EventKind::Send => {
                msg_fifo
                    .entry((e.actor as u64, e.a))
                    .or_default()
                    .push_back(i);
            }
            _ => {}
        }
        last_of_actor.insert(e.actor, i);
    }

    // Span = the heaviest path ending anywhere; on ties the earliest
    // event wins (deterministic output).
    let mut end: Option<usize> = None;
    for i in 0..events.len() {
        if end.is_none_or(|b| dist[i] > dist[b]) {
            end = Some(i);
        }
    }
    let span = end.map_or(0, |i| dist[i]);
    let mut critical = Vec::new();
    let mut cursor = end;
    while let Some(i) = cursor {
        critical.push(events[i]);
        cursor = pred[i];
    }
    critical.reverse();

    debug_assert!(span <= work, "span {span} cannot exceed work {work}");
    debug_assert_eq!(
        critical.iter().map(event_weight).sum::<u64>(),
        span,
        "critical-path weights must sum to the span"
    );

    SpanReport {
        work,
        span,
        events: events.len(),
        critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::trace::TraceRecorder;

    fn ev(ts: u64, actor: u32, kind: EventKind, a: u64, b: u64) -> Event {
        Event {
            ts,
            actor,
            kind,
            a,
            b,
        }
    }

    fn steps(ts: u64, actor: u32, n: u64) -> Event {
        ev(ts, actor, EventKind::Mark, MARK_STEPS, n)
    }

    #[test]
    fn empty_trace_is_zero_work_zero_span() {
        let r = analyze_span(&[]);
        assert_eq!(r.work, 0);
        assert_eq!(r.span, 0);
        assert!(r.critical.is_empty());
        assert!((r.parallelism() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serial_chain_has_span_equal_work() {
        let r = analyze_span(&[steps(1, 0, 10), steps(2, 0, 20), steps(3, 0, 5)]);
        assert_eq!(r.work, 35);
        assert_eq!(r.span, 35);
        assert_eq!(r.critical.len(), 3);
        assert!((r.parallelism() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_actors_parallelise() {
        // Two actors, no cross edges: span = the heavier strand.
        let r = analyze_span(&[steps(1, 0, 100), steps(2, 1, 60)]);
        assert_eq!(r.work, 160);
        assert_eq!(r.span, 100);
        assert_eq!(r.critical.len(), 1);
        assert_eq!(r.critical[0].actor, 0);
    }

    #[test]
    fn fork_join_diamond_takes_the_heavier_branch() {
        // Parent forks two children (handles 10, 11), joins both. The
        // heavier child (actor 2, 50 steps) is the bottleneck.
        let trace = [
            ev(1, 0, EventKind::Fork, 10, 0),
            ev(2, 0, EventKind::Fork, 11, 1),
            ev(3, 1, EventKind::Join, 10, 0),
            steps(4, 1, 20),
            ev(5, 2, EventKind::Join, 11, 1),
            steps(6, 2, 50),
            ev(7, 1, EventKind::Fork, 20, 0),
            ev(8, 2, EventKind::Fork, 21, 1),
            ev(9, 0, EventKind::Join, 20, 0),
            ev(10, 0, EventKind::Join, 21, 1),
        ];
        let r = analyze_span(&trace);
        // Work: 8 unit events + 20 + 50.
        assert_eq!(r.work, 78);
        // Span: the heavy-child chain fork(ts1) → fork(ts2) →
        // join(ts5) → 50 steps → fork(ts8) → join(ts10), weights
        // 1+1+1+50+1+1 = 55 (the ts9 join sits on a lighter path).
        assert_eq!(r.span, 55);
        assert!(r.parallelism() > 1.0);
        // The critical path runs through the heavy child, not the
        // light one.
        assert!(r.critical.iter().any(|e| e.actor == 2));
        assert!(!r
            .critical
            .iter()
            .any(|e| e.actor == 1 && e.kind == EventKind::Mark));
    }

    #[test]
    fn release_acquire_edges_serialise_lock_holders() {
        // Two actors each do 30 steps inside the same lock: the span
        // must include both bodies (the lock serialises them).
        let trace = [
            ev(1, 0, EventKind::Acquire, 7, 1),
            steps(2, 0, 30),
            ev(3, 0, EventKind::Release, 7, 1),
            ev(4, 1, EventKind::Acquire, 7, 1),
            steps(5, 1, 30),
            ev(6, 1, EventKind::Release, 7, 1),
        ];
        let r = analyze_span(&trace);
        assert_eq!(r.work, 64);
        assert_eq!(r.span, 64, "fully serialised: span == work");
        assert_eq!(r.critical.len(), 6);
    }

    #[test]
    fn channel_fifo_pairing_orders_kth_recv_after_kth_send() {
        // Sender does heavy work, sends twice; receiver's second recv
        // adopts the second send (not the first).
        let trace = [
            steps(1, 0, 40),
            ev(2, 0, EventKind::ChanSend, 5, 0),
            steps(3, 0, 25),
            ev(4, 0, EventKind::ChanSend, 5, 1),
            ev(5, 1, EventKind::ChanRecv, 5, 0),
            ev(6, 1, EventKind::ChanRecv, 5, 1),
            steps(7, 1, 10),
        ];
        let r = analyze_span(&trace);
        // Critical: 40 + send(1) + 25 + send(1) + recv(1) + 10 … the
        // second recv chains from the second send: 40+1+25+1+1+10 = 78
        // plus the first recv sits on actor 1's program order before
        // the second: path through recv#1 = 40+1+1(recv1)+1(recv2)+10
        // = 53 < 78. Span = 78.
        assert_eq!(r.span, 78);
        assert_eq!(r.work, 79);
    }

    #[test]
    fn message_pairing_is_per_directed_actor_pair() {
        // Rank 0 sends to rank 1 (Send a=dst, Recv a=src).
        let trace = [
            steps(1, 0, 15),
            ev(2, 0, EventKind::Send, 1, 64),
            ev(3, 1, EventKind::Recv, 0, 64),
            steps(4, 1, 5),
        ];
        let r = analyze_span(&trace);
        assert_eq!(r.span, 15 + 1 + 1 + 5);
        assert_eq!(r.work, 22);
    }

    #[test]
    fn barrier_pulse_adopts_heaviest_arrival() {
        // Sense barrier shape: both workers Release on arrival, both
        // Acquire on wakeup. The heavy arrival (60) dominates both
        // wakeups' adopted history.
        let trace = [
            steps(1, 0, 60),
            ev(2, 0, EventKind::Release, 9, 2),
            steps(3, 1, 10),
            ev(4, 1, EventKind::Release, 9, 2),
            ev(5, 1, EventKind::Acquire, 9, 2),
            ev(6, 0, EventKind::Acquire, 9, 2),
            steps(7, 1, 10),
        ];
        let r = analyze_span(&trace);
        // actor 1 after the barrier still pays actor 0's 60-step
        // pre-barrier work: 60 + release(1) + acquire(1) + 10 = 72.
        assert_eq!(r.span, 72);
    }

    #[test]
    fn real_recorder_fork_join_roundtrip() {
        // Drive a real TraceRecorder the way the pool does and check
        // the measured shape end-to-end.
        let rec = TraceRecorder::new(256);
        let main = rec.thread(100);
        let w0 = rec.thread(0);
        let w1 = rec.thread(1);
        // main forks two tasks; workers join, attribute steps, publish
        // completion forks; main joins both completions.
        main.record(EventKind::Fork, 501, 0);
        main.record(EventKind::Fork, 502, 1);
        w0.record(EventKind::Join, 501, 0);
        w1.record(EventKind::Join, 502, 1);
        pdc_core::trace::install_sync_trace(w0.clone());
        pdc_core::trace::record_steps(1000);
        pdc_core::trace::install_sync_trace(w1.clone());
        pdc_core::trace::record_steps(900);
        pdc_core::trace::clear_sync_trace();
        w0.record(EventKind::Fork, 601, 0);
        w1.record(EventKind::Fork, 602, 1);
        main.record(EventKind::Join, 601, 0);
        main.record(EventKind::Join, 602, 1);
        let r = analyze_span(&rec.events());
        assert_eq!(r.work, 1900 + 8);
        // Critical path: fork(501) → join(501) → 1000 steps →
        // fork(601) → join(601) → join(602): 1+1+1000+1+1+1 = 1005.
        assert_eq!(r.span, 1005);
        assert!(r.parallelism() > 1.8 && r.parallelism() < 2.0);
        // Renderable: every critical ts exists in the stream.
        let ts: std::collections::BTreeSet<u64> = rec.events().iter().map(|e| e.ts).collect();
        assert!(r.critical_ts().iter().all(|t| ts.contains(t)));
    }

    #[test]
    fn json_is_deterministic_and_schema_tagged() {
        let trace = [steps(1, 0, 3), steps(2, 1, 4)];
        let a = analyze_span(&trace).to_json();
        let b = analyze_span(&trace).to_json();
        assert_eq!(a, b, "same schedule, byte-identical pdc-span/1");
        assert!(a.starts_with("{\"schema\":\"pdc-span/1\""));
        assert!(a.contains("\"work\":7"));
        assert!(a.contains("\"span\":4"));
        assert!(a.contains("\"parallelism\":1.7500"));
        assert!(
            a.contains("\"critical_path\":[{\"ts\":2,\"actor\":1,\"kind\":\"mark\",\"weight\":4}]")
        );
    }

    #[test]
    fn weights_default_to_one_for_plain_marks() {
        // A Mark without the MARK_STEPS tag weighs 1, not its payload.
        let r = analyze_span(&[ev(1, 0, EventKind::Mark, 3, 999)]);
        assert_eq!(r.work, 1);
        assert_eq!(r.span, 1);
    }
}
