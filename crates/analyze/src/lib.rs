//! `pdc-analyze`: concurrency-correctness analysis over traced
//! executions.
//!
//! The curriculum's instrumentation layer (`pdc-trace/2`) records what
//! a parallel program *did*; this crate judges whether that behaviour
//! was *correct*. Four independent analyses run over one event stream:
//!
//! | analysis | question | module |
//! |---|---|---|
//! | happens-before races | were conflicting accesses ordered? | [`hb`] |
//! | lockset (Eraser) | does one lock protect each variable? | [`lockset`] |
//! | lock-order cycles | can these acquisitions deadlock? | [`lockorder`] |
//! | MPI lint | do messages and collectives match up? | [`mpi_lint`] |
//!
//! Alongside the correctness verdicts, [`span`] profiles *performance
//! shape*: it reconstructs the computation DAG from the same stream
//! and measures empirical work, span (critical path), and parallelism
//! — the quantities Brent's bound turns into predicted `Tp`.
//!
//! Multi-process (`pdc-trace/3`) snapshots go through
//! [`merged::analyze_merged`], which causally reorders the per-process
//! streams and namespaces process-local ids before running the same
//! four analyses.
//!
//! The first two are complementary verdicts on the same bug class —
//! happens-before is precise for the observed schedule, lockset
//! catches policy violations the schedule happened to hide. The
//! lock-order analysis is *predictive*: it flags cycles from runs that
//! completed successfully, which is strictly stronger than the runtime
//! wait-for-graph detection in `pdc_sync::waitgraph`.
//!
//! Everything lands in a [`Report`] rendered as machine-checkable
//! `pdc-analyze/1` JSON, gated in CI. [`fixtures`] holds the
//! known-racy / known-deadlocky / known-clean executions that keep the
//! detectors honest in both directions.
//!
//! ```
//! use pdc_analyze::{analyze, fixtures};
//!
//! let racy = analyze(&fixtures::racy_counter_session());
//! assert!(!racy.clean());
//! let fixed = analyze(&fixtures::fixed_counter_session());
//! assert!(fixed.clean());
//! ```

pub mod deps;
pub mod fixtures;
pub mod hb;
pub mod lockorder;
pub mod lockset;
pub mod merged;
pub mod mpi_lint;
pub mod report;
pub mod span;
pub mod vc;

pub use merged::{analyze_merged, shrink_failed};
pub use report::{Defect, DefectKind, Report};
pub use span::{analyze_span, analyze_span_merged, analyze_span_session, SpanReport};

use pdc_core::trace::{Event, TraceSession};

/// Analyse a traced session: run all four analyses over its events.
pub fn analyze(session: &TraceSession) -> Report {
    let mut report = analyze_events(&session.events());
    report.dropped = session.dropped();
    report
}

/// Analyse a raw event stream. Events are re-sorted by logical
/// timestamp defensively (callers may concatenate streams).
pub fn analyze_events(events: &[Event]) -> Report {
    let mut events = events.to_vec();
    events.sort_by_key(|e| e.ts);
    let mut report = Report {
        events_analyzed: events.len(),
        ..Report::default()
    };
    report.defects.extend(hb::detect_races(&events));
    report
        .defects
        .extend(lockset::detect_lockset_violations(&events));
    let (cycles, gated) = lockorder::detect_lock_order(&events);
    report.defects.extend(cycles);
    report.gated_cycles = gated;
    report.defects.extend(mpi_lint::lint_mpi(&events));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn racy_fixture_is_flagged_by_both_detectors() {
        let report = analyze(&fixtures::racy_counter_session());
        assert!(!report.clean());
        assert!(
            report.count_kind(DefectKind::DataRace) >= 1,
            "happens-before must flag the racy counter: {:?}",
            report.defects
        );
        assert!(
            report.count_kind(DefectKind::LocksetViolation) >= 1,
            "lockset must independently flag it: {:?}",
            report.defects
        );
    }

    #[test]
    fn fixed_fixture_is_clean() {
        let report = analyze(&fixtures::fixed_counter_session());
        assert!(report.clean(), "{:?}", report.defects);
        assert!(report.events_analyzed > 0);
    }

    #[test]
    fn semaphore_handoff_is_clean() {
        // The ad-hoc hand-off protocol holds no lock at all; the pulse
        // edge must satisfy HB, and the lockset checker must treat it
        // as ownership transfer rather than unlocked sharing.
        let report = analyze(&fixtures::semaphore_handoff_session());
        assert!(report.clean(), "{:?}", report.defects);
    }

    #[test]
    fn misused_condvar_still_races() {
        // The pre-wait peek has no incoming edge in any schedule, so
        // adding wait/signal edges must not launder the real race.
        let report = analyze(&fixtures::misused_condvar_session());
        assert!(
            report.count_kind(DefectKind::DataRace) >= 1,
            "{:?}",
            report.defects
        );
    }

    #[test]
    fn deadlocky_philosophers_cycle_is_predicted() {
        let (session, sim) = fixtures::deadlocky_philosophers_session(5);
        let report = analyze(&session);
        assert_eq!(report.count_kind(DefectKind::LockOrderCycle), 1);
        let defect = report
            .defects
            .iter()
            .find(|d| d.kind == DefectKind::LockOrderCycle)
            .unwrap();
        let mut cycle = defect.sites.clone();
        cycle.sort_unstable();
        let mut forks = sim.fork_sites.clone();
        forks.sort_unstable();
        assert_eq!(cycle, forks, "the cycle is exactly the fork ring");
    }

    #[test]
    fn ordered_philosophers_are_clean() {
        let (session, _) = fixtures::ordered_philosophers_session(5);
        let report = analyze(&session);
        assert!(report.clean(), "{:?}", report.defects);
        assert!(report.gated_cycles.is_empty());
    }

    #[test]
    fn arbitrator_cycle_is_gated_not_defective() {
        let (session, sim) = fixtures::arbitrator_philosophers_session(5);
        let report = analyze(&session);
        assert!(report.clean(), "{:?}", report.defects);
        assert_eq!(
            report.gated_cycles.len(),
            1,
            "the raw ring survives as informational"
        );
        let mut cycle = report.gated_cycles[0].clone();
        cycle.sort_unstable();
        let mut forks = sim.fork_sites.clone();
        forks.sort_unstable();
        assert_eq!(cycle, forks);
    }

    #[test]
    fn mpi_fixture_yields_all_three_lint_kinds() {
        let report = analyze(&fixtures::mpi_mismatch_session());
        assert_eq!(report.count_kind(DefectKind::MpiUnmatchedSend), 1);
        assert_eq!(report.count_kind(DefectKind::MpiCollectiveOrder), 1);
        assert_eq!(report.count_kind(DefectKind::MpiUnmatchedCollective), 1);
    }

    #[test]
    fn report_json_is_machine_checkable() {
        let report = analyze(&fixtures::racy_counter_session());
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"pdc-analyze/1\""));
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("\"kind\":\"data_race\""));
    }

    #[test]
    fn empty_session_is_trivially_clean() {
        let report = analyze(&TraceSession::new());
        assert!(report.clean());
        assert_eq!(report.events_analyzed, 0);
    }
}
