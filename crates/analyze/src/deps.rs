//! Per-event dependence queries: which trace events *conflict*, i.e.
//! cannot be reordered without possibly changing the behaviour of the
//! execution.
//!
//! The verdict pipeline ([`crate::analyze_events`]) answers "was this
//! schedule correct?"; this module exposes the underlying dependence
//! relation as a reusable primitive, so tools that reason *about
//! schedules* — most importantly `pdc-check`'s dynamic partial-order
//! reduction — share one definition of independence with the HB race
//! detector instead of re-deriving their own.
//!
//! Two events are dependent when they touch the same resource and at
//! least one side mutates or transfers it. The resource vocabulary
//! ([`Access`]) is deliberately coarser than the HB rules: it only has
//! to be *sound* (never call a dependent pair independent), because a
//! spurious conflict merely costs a DPOR exploration branch, while a
//! missed one would break the reduction's proof.

use pdc_core::trace::{Event, EventKind};

/// A resource touched by one event or scheduler step. Conflicts
/// between accesses ([`accesses_conflict`]) define the dependence
/// relation used by partial-order reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// A shared variable; `write` distinguishes mutation from
    /// observation (two reads of one variable are independent).
    Var {
        /// Caller-chosen variable id (the `var` payload of
        /// `read`/`write` events).
        id: u64,
        /// Whether the access mutates the variable.
        write: bool,
    },
    /// A synchronisation site (mutex, rwlock, semaphore, condvar,
    /// barrier, …): acquires, releases, waits, signals and failed-probe
    /// spins on the same site all conflict.
    Site(u64),
    /// A probe of an unidentified site (a `spin_wait` with no site id).
    /// Conservatively conflicts with every [`Access::Site`] and with
    /// itself.
    AnySite,
    /// An in-process channel endpoint: sends and receives on the same
    /// channel conflict (FIFO order is behaviour).
    Channel(u64),
    /// A published causal-history handle (`fork`/`join` pairing).
    Handle(u64),
    /// A message operation with no stable channel identity (MPI-style
    /// `send`/`recv` paired by actor). Conservatively conflicts with
    /// every other such operation.
    Message,
    /// A work-stealing pool queue operation (submit, steal, pop).
    /// Conservatively conflicts with every other pool queue operation.
    PoolQueue,
    /// A thread park token: parking and unparking the same task
    /// conflict.
    ParkToken(u32),
    /// Task termination: the exiting task's final step and any step a
    /// joiner makes observing that exit. Exit/join pairs order the
    /// joiner *after* the exit in every schedule, so these conflicts
    /// are happens-before edges but can never be reversed.
    TaskExit(u32),
}

impl Access {
    /// Whether this access can only ever order steps, never be
    /// reversed: a join cannot be scheduled before the exit it waits
    /// for, and a `join` edge cannot adopt a causal history before the
    /// paired `fork` published it (handle ids are unique per pairing),
    /// so no alternative interleaving exists to explore.
    pub fn irreversible(&self) -> bool {
        matches!(self, Access::TaskExit(_) | Access::Handle(_))
    }
}

/// The resources one trace event touches. Events that carry no
/// cross-thread ordering (counters, phase marks, kernel launches)
/// return an empty list and are independent of everything.
pub fn event_accesses(e: &Event) -> Vec<Access> {
    match e.kind {
        EventKind::Read => vec![Access::Var {
            id: e.a,
            write: false,
        }],
        EventKind::Write => vec![Access::Var {
            id: e.a,
            write: true,
        }],
        EventKind::Acquire | EventKind::Release | EventKind::Wait | EventKind::Signal => {
            vec![Access::Site(e.a)]
        }
        EventKind::Fork | EventKind::Join => vec![Access::Handle(e.a)],
        EventKind::ChanSend | EventKind::ChanRecv => vec![Access::Channel(e.a)],
        EventKind::Send | EventKind::Recv => vec![Access::Message],
        EventKind::Spawn | EventKind::Steal => vec![Access::PoolQueue],
        EventKind::Barrier
        | EventKind::Lock
        | EventKind::Phase
        | EventKind::Mark
        | EventKind::Kernel
        | EventKind::CollBegin
        | EventKind::CollEnd => Vec::new(),
    }
}

/// Whether two accesses conflict (touch the same resource with at
/// least one mutating/transferring side).
pub fn accesses_conflict(a: &Access, b: &Access) -> bool {
    match (a, b) {
        (Access::Var { id: x, write: wx }, Access::Var { id: y, write: wy }) => {
            x == y && (*wx || *wy)
        }
        (Access::Site(x), Access::Site(y)) => x == y,
        (Access::AnySite, Access::Site(_))
        | (Access::Site(_), Access::AnySite)
        | (Access::AnySite, Access::AnySite) => true,
        (Access::Channel(x), Access::Channel(y)) => x == y,
        (Access::Handle(x), Access::Handle(y)) => x == y,
        (Access::Message, Access::Message) => true,
        (Access::PoolQueue, Access::PoolQueue) => true,
        (Access::ParkToken(x), Access::ParkToken(y)) => x == y,
        (Access::TaskExit(x), Access::TaskExit(y)) => x == y,
        _ => false,
    }
}

/// Whether two footprints (access lists) conflict.
pub fn footprints_conflict(a: &[Access], b: &[Access]) -> bool {
    a.iter().any(|x| b.iter().any(|y| accesses_conflict(x, y)))
}

/// Whether two footprints conflict through at least one *reversible*
/// access pair — i.e. whether reordering the two steps could actually
/// produce a different execution. Exit/join conflicts order steps but
/// cannot be flipped, so they never justify a backtrack point.
pub fn footprints_race(a: &[Access], b: &[Access]) -> bool {
    a.iter().any(|x| {
        b.iter()
            .any(|y| accesses_conflict(x, y) && !(x.irreversible() && y.irreversible()))
    })
}

/// Whether two events are dependent: same actor (program order), or
/// conflicting resource footprints. This is the per-event dependence
/// query the DPOR layer builds its relation from.
pub fn events_dependent(a: &Event, b: &Event) -> bool {
    a.actor == b.actor || footprints_conflict(&event_accesses(a), &event_accesses(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, actor: u32, a: u64) -> Event {
        Event {
            ts: 0,
            actor,
            kind,
            a,
            b: 0,
        }
    }

    #[test]
    fn writes_conflict_reads_of_same_var_only() {
        let w = ev(EventKind::Write, 0, 7);
        let r_same = ev(EventKind::Read, 1, 7);
        let r_other = ev(EventKind::Read, 1, 8);
        assert!(events_dependent(&w, &r_same));
        assert!(!events_dependent(&w, &r_other));
        // Two reads of the same variable are independent.
        let r2 = ev(EventKind::Read, 2, 7);
        assert!(!events_dependent(&r_same, &r2));
    }

    #[test]
    fn same_actor_is_always_dependent() {
        let a = ev(EventKind::Read, 3, 1);
        let b = ev(EventKind::Kernel, 3, 99);
        assert!(events_dependent(&a, &b), "program order is dependence");
    }

    #[test]
    fn sites_channels_and_handles_pair_by_id() {
        assert!(events_dependent(
            &ev(EventKind::Acquire, 0, 5),
            &ev(EventKind::Release, 1, 5)
        ));
        assert!(!events_dependent(
            &ev(EventKind::Acquire, 0, 5),
            &ev(EventKind::Release, 1, 6)
        ));
        assert!(events_dependent(
            &ev(EventKind::ChanSend, 0, 9),
            &ev(EventKind::ChanRecv, 1, 9)
        ));
        assert!(!events_dependent(
            &ev(EventKind::ChanSend, 0, 9),
            &ev(EventKind::Acquire, 1, 9)
        ));
        assert!(events_dependent(
            &ev(EventKind::Fork, 0, 4),
            &ev(EventKind::Join, 1, 4)
        ));
    }

    #[test]
    fn task_exit_conflicts_are_irreversible() {
        let a = [Access::TaskExit(2)];
        let b = [Access::TaskExit(2)];
        assert!(footprints_conflict(&a, &b), "exit/join still orders steps");
        assert!(!footprints_race(&a, &b), "but can never be reversed");
        let c = [Access::TaskExit(2), Access::Site(1)];
        let d = [Access::TaskExit(2), Access::Site(1)];
        assert!(
            footprints_race(&c, &d),
            "a reversible pair revives the race"
        );
    }

    #[test]
    fn any_site_is_conservative() {
        assert!(accesses_conflict(&Access::AnySite, &Access::Site(3)));
        assert!(accesses_conflict(&Access::AnySite, &Access::AnySite));
        assert!(!accesses_conflict(
            &Access::AnySite,
            &Access::Var { id: 3, write: true }
        ));
    }
}
