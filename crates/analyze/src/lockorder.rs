//! Lock-order (Goodlock-style) deadlock prediction.
//!
//! Builds the lock-acquisition-order graph: an edge `l1 → l2` is added
//! whenever some actor acquires `l2` while already holding `l1`. A
//! cycle in this graph means there exists an interleaving in which each
//! participant holds one lock of the cycle and waits for the next —
//! a potential deadlock — *even if the analysed run happened to finish*.
//! This is strictly stronger than runtime wait-for cycle detection
//! (`pdc_sync::waitgraph` on a live run), which only fires when the bad
//! interleaving actually occurs; here we reuse the same cycle search
//! over the ordering graph instead of the wait-for graph.
//!
//! **Gate suppression.** A classic false-positive source: if every edge
//! of a cycle was only ever created while the actor also held a common
//! *gate* (e.g. the dining-philosophers arbitrator semaphore, which
//! admits at most n-1 to the table), the cyclic wait cannot assemble.
//! Pulse-mode sites (semaphores) count as held while the actor's
//! acquire/release balance is positive **and** the actor later releases
//! the site — the latter condition keeps one-way pulses such as a
//! oncecell or barrier acquire (no paired release) from masquerading as
//! gates. Condvar traffic uses the dedicated `wait`/`signal` kinds and
//! never enters gate accounting at all. Cycles whose edges share a gate
//! are reported informationally as `gated_cycles`, not defects.

use crate::report::{Defect, DefectKind};
use pdc_core::trace::{Event, EventKind, SYNC_PULSE};
use pdc_sync::waitgraph::WaitGraph;
use std::collections::{BTreeSet, HashMap};

#[derive(Debug, Default)]
struct EdgeInfo {
    /// Intersection of the gate sets over every occurrence of this
    /// edge. Empty ⇒ at least one occurrence was unprotected.
    gates: BTreeSet<u64>,
    /// Whether any occurrence has been folded in yet.
    seen: bool,
    /// An actor that exhibited the edge (for the report).
    example_actor: u32,
}

/// The analysis: feed ts-sorted events, then call [`LockOrder::cycles`].
pub struct LockOrder {
    /// Locks (modes shared/exclusive) currently held, per actor, in
    /// acquisition order.
    held: HashMap<u32, Vec<u64>>,
    /// Pulse-site acquire/release balance, per actor.
    pulse_balance: HashMap<u32, HashMap<u64, i64>>,
    /// Per (actor, pulse site): sorted timestamps of that actor's
    /// `release` events, precomputed so "is a later release coming?"
    /// is a binary search.
    pulse_releases: HashMap<(u32, u64), Vec<u64>>,
    edges: HashMap<(u64, u64), EdgeInfo>,
}

impl LockOrder {
    /// Precompute pulse-release timestamps, then replay the stream.
    pub fn build(events: &[Event]) -> Self {
        let mut pulse_releases: HashMap<(u32, u64), Vec<u64>> = HashMap::new();
        for e in events {
            if e.kind == EventKind::Release && e.b == SYNC_PULSE {
                pulse_releases.entry((e.actor, e.a)).or_default().push(e.ts);
            }
        }
        for v in pulse_releases.values_mut() {
            v.sort_unstable();
        }
        let mut lo = LockOrder {
            held: HashMap::new(),
            pulse_balance: HashMap::new(),
            pulse_releases,
            edges: HashMap::new(),
        };
        for e in events {
            lo.step(e);
        }
        lo
    }

    /// The pulse sites gating `actor` at time `ts`: positive balance
    /// and a release still to come.
    fn gates_at(&self, actor: u32, ts: u64) -> BTreeSet<u64> {
        let Some(balances) = self.pulse_balance.get(&actor) else {
            return BTreeSet::new();
        };
        balances
            .iter()
            .filter(|&(&site, &bal)| {
                bal > 0
                    && self
                        .pulse_releases
                        .get(&(actor, site))
                        .is_some_and(|rels| rels.iter().any(|&r| r > ts))
            })
            .map(|(&site, _)| site)
            .collect()
    }

    fn step(&mut self, e: &Event) {
        match e.kind {
            EventKind::Acquire if e.b == SYNC_PULSE => {
                *self
                    .pulse_balance
                    .entry(e.actor)
                    .or_default()
                    .entry(e.a)
                    .or_insert(0) += 1;
            }
            EventKind::Release if e.b == SYNC_PULSE => {
                *self
                    .pulse_balance
                    .entry(e.actor)
                    .or_default()
                    .entry(e.a)
                    .or_insert(0) -= 1;
            }
            EventKind::Acquire => {
                let gates = self.gates_at(e.actor, e.ts);
                let held = self.held.entry(e.actor).or_default();
                let nested: Vec<u64> = held.iter().copied().filter(|&l| l != e.a).collect();
                held.push(e.a);
                for l1 in nested {
                    let info = self.edges.entry((l1, e.a)).or_default();
                    if info.seen {
                        // A cycle is only gate-suppressed if EVERY
                        // occurrence of every edge shared the gate.
                        info.gates = info.gates.intersection(&gates).copied().collect();
                    } else {
                        info.gates = gates.clone();
                        info.seen = true;
                        info.example_actor = e.actor;
                    }
                }
            }
            EventKind::Release => {
                if let Some(held) = self.held.get_mut(&e.actor) {
                    if let Some(pos) = held.iter().rposition(|&l| l == e.a) {
                        held.remove(pos);
                    }
                }
            }
            _ => {}
        }
    }

    /// Find cycles over the full ordering graph, then judge each one:
    /// if every edge of the cycle shares a common gate, the gate lock
    /// serialises the participants and the deadlock cannot assemble —
    /// the cycle goes to `gated_cycles` (informational). Any cycle
    /// with no common gate is a [`DefectKind::LockOrderCycle`] defect.
    pub fn cycles(&self) -> (Vec<Defect>, Vec<Vec<u64>>) {
        let (raw, _) = find_all_cycles(self.edges.keys().copied());
        let mut defects = Vec::new();
        let mut gated_cycles = Vec::new();
        for cycle in raw {
            let mut common: Option<BTreeSet<u64>> = None;
            let mut actors: BTreeSet<u32> = BTreeSet::new();
            for i in 0..cycle.len() {
                let edge = (cycle[i], cycle[(i + 1) % cycle.len()]);
                if let Some(info) = self.edges.get(&edge) {
                    actors.insert(info.example_actor);
                    common = Some(match common {
                        None => info.gates.clone(),
                        Some(c) => c.intersection(&info.gates).copied().collect(),
                    });
                }
            }
            if common.is_some_and(|c| !c.is_empty()) {
                gated_cycles.push(cycle);
            } else {
                defects.push(Defect {
                    kind: DefectKind::LockOrderCycle,
                    sites: cycle.clone(),
                    var: None,
                    actors: actors.into_iter().collect(),
                    detail: format!(
                        "lock-order cycle over sites {cycle:?}: some interleaving of these \
                         acquisitions deadlocks even though this run completed"
                    ),
                });
            }
        }
        (defects, gated_cycles)
    }
}

/// Repeatedly find a cycle with [`WaitGraph::find_cycle`], record it,
/// break it by removing one of its edges, and retry — bounded so a
/// pathological dense graph cannot loop forever.
fn find_all_cycles(edges: impl Iterator<Item = (u64, u64)>) -> (Vec<Vec<u64>>, usize) {
    let mut g = WaitGraph::new();
    let mut edge_list = Vec::new();
    for (a, b) in edges {
        g.add_wait(a, b);
        edge_list.push((a, b));
    }
    let mut cycles = Vec::new();
    let mut removed = 0;
    while let Some(cycle) = g.find_cycle() {
        cycles.push(cycle.clone());
        // Break the cycle at its first edge and look again.
        let (a, b) = (cycle[0], cycle[1 % cycle.len()]);
        g.remove_wait(a, b);
        removed += 1;
        if removed >= 8 {
            break;
        }
    }
    (cycles, removed)
}

/// Convenience: build and extract in one call.
pub fn detect_lock_order(events: &[Event]) -> (Vec<Defect>, Vec<Vec<u64>>) {
    LockOrder::build(events).cycles()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::trace::{SYNC_EXCLUSIVE, SYNC_PULSE};

    fn ev(ts: u64, actor: u32, kind: EventKind, a: u64, b: u64) -> Event {
        Event {
            ts,
            actor,
            kind,
            a,
            b,
        }
    }

    fn acq(ts: u64, actor: u32, site: u64) -> Event {
        ev(ts, actor, EventKind::Acquire, site, SYNC_EXCLUSIVE)
    }
    fn rel(ts: u64, actor: u32, site: u64) -> Event {
        ev(ts, actor, EventKind::Release, site, SYNC_EXCLUSIVE)
    }

    #[test]
    fn two_lock_inversion_is_a_cycle() {
        // Actor 0: A then B. Actor 1: B then A. Classic deadlock recipe,
        // even though this serialised run completed fine.
        let events = [
            acq(1, 0, 10),
            acq(2, 0, 11),
            rel(3, 0, 11),
            rel(4, 0, 10),
            acq(5, 1, 11),
            acq(6, 1, 10),
            rel(7, 1, 10),
            rel(8, 1, 11),
        ];
        let (defects, gated) = detect_lock_order(&events);
        assert_eq!(defects.len(), 1, "{defects:?}");
        assert_eq!(defects[0].kind, DefectKind::LockOrderCycle);
        let mut sites = defects[0].sites.clone();
        sites.sort_unstable();
        assert_eq!(sites, vec![10, 11]);
        assert!(gated.is_empty());
    }

    #[test]
    fn consistent_order_is_clean() {
        let events = [
            acq(1, 0, 10),
            acq(2, 0, 11),
            rel(3, 0, 11),
            rel(4, 0, 10),
            acq(5, 1, 10),
            acq(6, 1, 11),
            rel(7, 1, 11),
            rel(8, 1, 10),
        ];
        let (defects, gated) = detect_lock_order(&events);
        assert!(defects.is_empty(), "{defects:?}");
        assert!(gated.is_empty());
    }

    #[test]
    fn common_gate_suppresses_the_cycle() {
        // Same inversion, but both actors hold pulse-site 99 (with a
        // later release) across their nested acquisitions.
        const GATE: u64 = 99;
        let events = [
            ev(0, 0, EventKind::Acquire, GATE, SYNC_PULSE),
            acq(1, 0, 10),
            acq(2, 0, 11),
            rel(3, 0, 11),
            rel(4, 0, 10),
            ev(5, 0, EventKind::Release, GATE, SYNC_PULSE),
            ev(6, 1, EventKind::Acquire, GATE, SYNC_PULSE),
            acq(7, 1, 11),
            acq(8, 1, 10),
            rel(9, 1, 10),
            rel(10, 1, 11),
            ev(11, 1, EventKind::Release, GATE, SYNC_PULSE),
        ];
        let (defects, gated) = detect_lock_order(&events);
        assert!(
            defects.is_empty(),
            "gated cycle is not a defect: {defects:?}"
        );
        assert_eq!(gated.len(), 1, "but it is reported informationally");
        let mut sites = gated[0].clone();
        sites.sort_unstable();
        assert_eq!(sites, vec![10, 11]);
    }

    #[test]
    fn unbalanced_pulse_is_not_a_gate() {
        // A condvar-style acquire with NO later release must not
        // suppress the cycle.
        const NOT_GATE: u64 = 98;
        let events = [
            ev(0, 0, EventKind::Acquire, NOT_GATE, SYNC_PULSE),
            acq(1, 0, 10),
            acq(2, 0, 11),
            rel(3, 0, 11),
            rel(4, 0, 10),
            ev(5, 1, EventKind::Acquire, NOT_GATE, SYNC_PULSE),
            acq(6, 1, 11),
            acq(7, 1, 10),
            rel(8, 1, 10),
            rel(9, 1, 11),
        ];
        let (defects, _) = detect_lock_order(&events);
        assert_eq!(defects.len(), 1, "{defects:?}");
    }

    #[test]
    fn gate_must_be_common_to_both_edges() {
        // Only actor 0 is gated; actor 1's inverted edge is bare.
        const GATE: u64 = 99;
        let events = [
            ev(0, 0, EventKind::Acquire, GATE, SYNC_PULSE),
            acq(1, 0, 10),
            acq(2, 0, 11),
            rel(3, 0, 11),
            rel(4, 0, 10),
            ev(5, 0, EventKind::Release, GATE, SYNC_PULSE),
            acq(6, 1, 11),
            acq(7, 1, 10),
            rel(8, 1, 10),
            rel(9, 1, 11),
        ];
        let (defects, _) = detect_lock_order(&events);
        assert_eq!(defects.len(), 1, "{defects:?}");
    }

    #[test]
    fn three_way_ring_is_detected() {
        // 0: A<B, 1: B<C, 2: C<A — the philosophers pattern.
        let mut events = Vec::new();
        let ring = [(0u32, 10u64, 11u64), (1, 11, 12), (2, 12, 10)];
        let mut ts = 0;
        for (actor, first, second) in ring {
            events.push(acq(ts, actor, first));
            events.push(acq(ts + 1, actor, second));
            events.push(rel(ts + 2, actor, second));
            events.push(rel(ts + 3, actor, first));
            ts += 4;
        }
        let (defects, _) = detect_lock_order(&events);
        assert_eq!(defects.len(), 1, "{defects:?}");
        assert_eq!(defects[0].sites.len(), 3);
        assert_eq!(defects[0].actors, vec![0, 1, 2]);
    }
}
