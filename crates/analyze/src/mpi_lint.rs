//! MPI trace linting: message matching and collective-order checks.
//!
//! Works over the `send`/`recv` and `coll_begin`/`coll_end` events
//! ranks record. Three classic MPI bugs are flagged:
//!
//! - **Unmatched sends/recvs** — per directed `(src, dst)` pair, the
//!   number of sends must equal the number of receives. A surplus on
//!   either side is a leak (lost message) or a hang-in-waiting
//!   (receive that can never complete).
//! - **Collective order mismatch** — every rank must enter the same
//!   collectives in the same order; rank 0's sequence (of collective
//!   id codes) is the reference. Divergence is the canonical
//!   "rank 3 called `reduce` while everyone else called `barrier`"
//!   deadlock.
//! - **Unmatched collective begin/end** — a `coll_begin` with no
//!   matching `coll_end` (or vice versa) means a rank never finished
//!   (or never started) a collective.

use crate::report::{Defect, DefectKind};
use pdc_core::trace::{Event, EventKind};
use std::collections::BTreeMap;

/// Lint the MPI-relevant slice of an event stream (assumed ts-sorted).
pub fn lint_mpi(events: &[Event]) -> Vec<Defect> {
    let mut defects = Vec::new();

    // Message matching, per directed pair. BTreeMap for deterministic
    // report order.
    let mut sends: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut recvs: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::Send => *sends.entry((e.actor, e.a as u32)).or_insert(0) += 1,
            EventKind::Recv => *recvs.entry((e.a as u32, e.actor)).or_insert(0) += 1,
            _ => {}
        }
    }
    let pairs: std::collections::BTreeSet<(u32, u32)> =
        sends.keys().chain(recvs.keys()).copied().collect();
    for (src, dst) in pairs {
        let s = sends.get(&(src, dst)).copied().unwrap_or(0);
        let r = recvs.get(&(src, dst)).copied().unwrap_or(0);
        if s > r {
            defects.push(Defect {
                kind: DefectKind::MpiUnmatchedSend,
                sites: Vec::new(),
                var: None,
                actors: vec![src, dst],
                detail: format!(
                    "{} message(s) from rank {src} to rank {dst} were never received \
                     ({s} sent, {r} received)",
                    s - r
                ),
            });
        } else if r > s {
            defects.push(Defect {
                kind: DefectKind::MpiUnmatchedRecv,
                sites: Vec::new(),
                var: None,
                actors: vec![src, dst],
                detail: format!(
                    "rank {dst} received {} more message(s) from rank {src} than were sent \
                     ({s} sent, {r} received)",
                    r - s
                ),
            });
        }
    }

    // Collective sequences: per actor, the ordered list of coll ids
    // entered, plus begin/end balance.
    let mut seqs: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    let mut balance: BTreeMap<u32, i64> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::CollBegin => {
                seqs.entry(e.actor).or_default().push(e.a);
                *balance.entry(e.actor).or_insert(0) += 1;
            }
            EventKind::CollEnd => {
                *balance.entry(e.actor).or_insert(0) -= 1;
            }
            _ => {}
        }
    }
    for (&actor, &bal) in &balance {
        if bal != 0 {
            defects.push(Defect {
                kind: DefectKind::MpiUnmatchedCollective,
                sites: Vec::new(),
                var: None,
                actors: vec![actor],
                detail: if bal > 0 {
                    format!("rank {actor} entered {bal} collective(s) it never left")
                } else {
                    format!("rank {actor} left {} collective(s) it never entered", -bal)
                },
            });
        }
    }
    if let Some((&ref_actor, ref_seq)) = seqs.iter().next() {
        let ref_seq = ref_seq.clone();
        for (&actor, seq) in seqs.iter().skip(1) {
            if *seq != ref_seq {
                let at = seq
                    .iter()
                    .zip(ref_seq.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| seq.len().min(ref_seq.len()));
                defects.push(Defect {
                    kind: DefectKind::MpiCollectiveOrder,
                    sites: Vec::new(),
                    var: None,
                    actors: vec![ref_actor, actor],
                    detail: format!(
                        "rank {actor} entered collectives in a different order than \
                         rank {ref_actor} (first divergence at collective #{at}; \
                         {} vs {} collectives total)",
                        seq.len(),
                        ref_seq.len()
                    ),
                });
            }
        }
    }
    defects
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, actor: u32, kind: EventKind, a: u64, b: u64) -> Event {
        Event {
            ts,
            actor,
            kind,
            a,
            b,
        }
    }

    #[test]
    fn matched_traffic_is_clean() {
        let d = lint_mpi(&[
            ev(1, 0, EventKind::Send, 1, 8),
            ev(2, 1, EventKind::Recv, 0, 8),
            ev(3, 1, EventKind::Send, 0, 8),
            ev(4, 0, EventKind::Recv, 1, 8),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn surplus_send_is_flagged_with_direction() {
        let d = lint_mpi(&[
            ev(1, 0, EventKind::Send, 1, 8),
            ev(2, 0, EventKind::Send, 1, 8),
            ev(3, 1, EventKind::Recv, 0, 8),
        ]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, DefectKind::MpiUnmatchedSend);
        assert_eq!(d[0].actors, vec![0, 1]);
        assert!(
            d[0].detail.contains("2 sent, 1 received"),
            "{}",
            d[0].detail
        );
    }

    #[test]
    fn surplus_recv_is_flagged() {
        let d = lint_mpi(&[ev(1, 1, EventKind::Recv, 0, 8)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, DefectKind::MpiUnmatchedRecv);
    }

    #[test]
    fn reversed_direction_does_not_match() {
        // 0→1 send and 1→0 recv are different channels: both flagged.
        let d = lint_mpi(&[
            ev(1, 0, EventKind::Send, 1, 8),
            ev(2, 0, EventKind::Recv, 1, 8),
        ]);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn same_collective_order_is_clean() {
        let d = lint_mpi(&[
            ev(1, 0, EventKind::CollBegin, 3, 0),
            ev(2, 1, EventKind::CollBegin, 3, 0),
            ev(3, 0, EventKind::CollEnd, 3, 0),
            ev(4, 1, EventKind::CollEnd, 3, 0),
            ev(5, 0, EventKind::CollBegin, 5, 1),
            ev(6, 1, EventKind::CollBegin, 5, 1),
            ev(7, 0, EventKind::CollEnd, 5, 1),
            ev(8, 1, EventKind::CollEnd, 5, 1),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn divergent_collective_order_is_flagged() {
        let d = lint_mpi(&[
            ev(1, 0, EventKind::CollBegin, 3, 0),
            ev(2, 0, EventKind::CollEnd, 3, 0),
            ev(3, 0, EventKind::CollBegin, 5, 1),
            ev(4, 0, EventKind::CollEnd, 5, 1),
            // Rank 1 swaps the two collectives.
            ev(5, 1, EventKind::CollBegin, 5, 0),
            ev(6, 1, EventKind::CollEnd, 5, 0),
            ev(7, 1, EventKind::CollBegin, 3, 1),
            ev(8, 1, EventKind::CollEnd, 3, 1),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].kind, DefectKind::MpiCollectiveOrder);
        assert!(d[0].detail.contains("divergence at collective #0"));
    }

    #[test]
    fn unmatched_collective_begin_is_flagged() {
        let d = lint_mpi(&[
            ev(1, 0, EventKind::CollBegin, 3, 0),
            ev(2, 0, EventKind::CollEnd, 3, 0),
            ev(3, 0, EventKind::CollBegin, 5, 1),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].kind, DefectKind::MpiUnmatchedCollective);
        assert!(d[0].detail.contains("never left"));
    }
}
