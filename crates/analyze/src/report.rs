//! Machine-checkable analysis reports (`pdc-analyze/1`).
//!
//! Every checker in this crate funnels its verdicts into a [`Report`]:
//! a flat list of [`Defect`]s plus informational gated cycles, rendered
//! as one JSON object so CI can grep for specific defect kinds the same
//! way it greps `pdc-trace/2` snapshots.

use pdc_core::report::json_escape;

/// The kinds of concurrency defect the analyzers can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectKind {
    /// Two conflicting accesses to the same variable with no
    /// happens-before edge between them (vector-clock detector).
    DataRace,
    /// A variable reached shared-modified state with an empty candidate
    /// lockset (Eraser-style detector) — no single lock protects it.
    LocksetViolation,
    /// The lock-order graph contains a cycle: some interleaving of the
    /// observed acquisitions can deadlock, even if this run finished.
    LockOrderCycle,
    /// A point-to-point message was sent but never received.
    MpiUnmatchedSend,
    /// A receive was posted for which no matching send exists.
    MpiUnmatchedRecv,
    /// Two ranks entered collectives in different orders.
    MpiCollectiveOrder,
    /// A collective was entered but never exited (or exited without a
    /// matching entry).
    MpiUnmatchedCollective,
}

impl DefectKind {
    /// Stable snake_case name used in JSON output and CI greps.
    pub fn name(self) -> &'static str {
        match self {
            DefectKind::DataRace => "data_race",
            DefectKind::LocksetViolation => "lockset_violation",
            DefectKind::LockOrderCycle => "lock_order_cycle",
            DefectKind::MpiUnmatchedSend => "mpi_unmatched_send",
            DefectKind::MpiUnmatchedRecv => "mpi_unmatched_recv",
            DefectKind::MpiCollectiveOrder => "mpi_collective_order",
            DefectKind::MpiUnmatchedCollective => "mpi_unmatched_collective",
        }
    }
}

/// One reported defect, with enough identity (sites, variable, actors)
/// for a test or CI grep to pin it to a specific code location.
#[derive(Debug, Clone)]
pub struct Defect {
    /// What class of defect this is.
    pub kind: DefectKind,
    /// Synchronisation sites involved (lock-order cycles list the cycle
    /// in order; races list the sites held at the second access).
    pub sites: Vec<u64>,
    /// The shared variable involved, when the defect concerns one.
    pub var: Option<u64>,
    /// Trace actors involved (threads, ranks, philosophers).
    pub actors: Vec<u32>,
    /// Human-readable one-line explanation.
    pub detail: String,
}

impl Defect {
    /// Render as one `pdc-analyze/1` JSON object.
    pub fn to_json(&self) -> String {
        let sites: Vec<String> = self.sites.iter().map(|s| s.to_string()).collect();
        let actors: Vec<String> = self.actors.iter().map(|a| a.to_string()).collect();
        let var = match self.var {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"kind\":\"{}\",\"sites\":[{}],\"var\":{},\"actors\":[{}],\"detail\":\"{}\"}}",
            self.kind.name(),
            sites.join(","),
            var,
            actors.join(","),
            json_escape(&self.detail),
        )
    }
}

/// The result of analysing one traced execution.
#[derive(Debug, Default)]
pub struct Report {
    /// All defects found, ordered race → lockset → lock-order → MPI.
    pub defects: Vec<Defect>,
    /// Lock-order cycles whose every edge was protected by a common
    /// gate lock (e.g. an arbitrator semaphore): informational, not
    /// defects, because the gate prevents the interleaving.
    pub gated_cycles: Vec<Vec<u64>>,
    /// How many trace events were analysed.
    pub events_analyzed: usize,
    /// Events the bounded trace buffers dropped before analysis — a
    /// nonzero value means verdicts may be incomplete.
    pub dropped: u64,
}

impl Report {
    /// True when no defects were found (gated cycles do not count).
    pub fn clean(&self) -> bool {
        self.defects.is_empty()
    }

    /// Number of defects of the given kind.
    pub fn count_kind(&self, kind: DefectKind) -> usize {
        self.defects.iter().filter(|d| d.kind == kind).count()
    }

    /// Render the whole report as one `pdc-analyze/1` JSON object.
    pub fn to_json(&self) -> String {
        let defects: Vec<String> = self.defects.iter().map(|d| d.to_json()).collect();
        let gated: Vec<String> = self
            .gated_cycles
            .iter()
            .map(|c| {
                let sites: Vec<String> = c.iter().map(|s| s.to_string()).collect();
                format!("[{}]", sites.join(","))
            })
            .collect();
        format!(
            "{{\"schema\":\"pdc-analyze/1\",\"summary\":{{\"events\":{},\"dropped\":{},\"defects\":{},\"gated_cycles\":{}}},\"clean\":{},\"defects\":[{}],\"gated_cycles\":[{}]}}",
            self.events_analyzed,
            self.dropped,
            self.defects.len(),
            self.gated_cycles.len(),
            self.clean(),
            defects.join(","),
            gated.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        // CI greps for these exact strings; changing one is a schema bump.
        let all = [
            (DefectKind::DataRace, "data_race"),
            (DefectKind::LocksetViolation, "lockset_violation"),
            (DefectKind::LockOrderCycle, "lock_order_cycle"),
            (DefectKind::MpiUnmatchedSend, "mpi_unmatched_send"),
            (DefectKind::MpiUnmatchedRecv, "mpi_unmatched_recv"),
            (DefectKind::MpiCollectiveOrder, "mpi_collective_order"),
            (
                DefectKind::MpiUnmatchedCollective,
                "mpi_unmatched_collective",
            ),
        ];
        for (kind, name) in all {
            assert_eq!(kind.name(), name);
        }
    }

    #[test]
    fn empty_report_is_clean_json() {
        let r = Report {
            events_analyzed: 7,
            ..Report::default()
        };
        assert!(r.clean());
        let j = r.to_json();
        assert!(j.starts_with("{\"schema\":\"pdc-analyze/1\""));
        assert!(j.contains("\"clean\":true"));
        assert!(j.contains("\"events\":7"));
        assert!(j.contains("\"defects\":[]"));
    }

    #[test]
    fn defect_json_round_trips_fields() {
        let d = Defect {
            kind: DefectKind::DataRace,
            sites: vec![3, 4],
            var: Some(9),
            actors: vec![0, 1],
            detail: "write/write on \"x\"".into(),
        };
        let j = d.to_json();
        assert!(j.contains("\"kind\":\"data_race\""));
        assert!(j.contains("\"sites\":[3,4]"));
        assert!(j.contains("\"var\":9"));
        assert!(j.contains("\"actors\":[0,1]"));
        assert!(j.contains("\\\"x\\\""), "detail is escaped: {j}");
        let none = Defect { var: None, ..d };
        assert!(none.to_json().contains("\"var\":null"));
    }

    #[test]
    fn report_counts_and_gated_cycles() {
        let mut r = Report::default();
        r.defects.push(Defect {
            kind: DefectKind::LockOrderCycle,
            sites: vec![1, 2],
            var: None,
            actors: vec![],
            detail: String::new(),
        });
        r.gated_cycles.push(vec![5, 6, 7]);
        assert!(!r.clean());
        assert_eq!(r.count_kind(DefectKind::LockOrderCycle), 1);
        assert_eq!(r.count_kind(DefectKind::DataRace), 0);
        assert!(r.to_json().contains("\"gated_cycles\":[[5,6,7]]"));
    }
}
