//! Eraser-style lockset checking — the second, independent verdict on
//! shared-variable discipline.
//!
//! Where the happens-before detector asks "were these two accesses
//! ordered?", the lockset checker asks the stronger *policy* question:
//! "is there one lock that protects every access to this variable?".
//! Each variable moves through the Eraser state machine — virgin →
//! exclusive (single owner) → shared / shared-modified — and once
//! shared, its *candidate set* is intersected with the locks the
//! accessing thread holds. An empty candidate set in shared-modified
//! state is a violation: no consistent lock discipline exists, even if
//! this particular schedule never raced.
//!
//! Only real lock modes participate ([`SYNC_SHARED`] /
//! [`SYNC_EXCLUSIVE`]); pulse-style synchronisation (semaphores,
//! barriers, condvars) establishes ordering, not ownership, and is the
//! happens-before detector's business.

use crate::report::{Defect, DefectKind};
use pdc_core::trace::{Event, EventKind, SYNC_PULSE};
use std::collections::{BTreeSet, HashMap};

#[derive(Debug, Clone, PartialEq)]
enum VarPhase {
    Virgin,
    /// Single owner so far; the candidate set is already being refined
    /// from the first access (Eraser initialises C(v) to the locks
    /// held then), but emptiness is not yet a violation.
    Exclusive(u32, BTreeSet<u64>),
    Shared(BTreeSet<u64>),
    SharedModified(BTreeSet<u64>),
}

#[derive(Debug)]
struct VarState {
    phase: VarPhase,
    reported: bool,
}

/// The checker: feed ts-sorted events, then take the violations.
#[derive(Debug, Default)]
pub struct Lockset {
    /// Locks currently held per actor (multiset not needed: the pdc
    /// primitives are non-reentrant).
    held: HashMap<u32, BTreeSet<u64>>,
    vars: HashMap<u64, VarState>,
    violations: Vec<Defect>,
}

impl Lockset {
    /// Fresh checker.
    pub fn new() -> Self {
        Self::default()
    }

    fn held_of(&self, actor: u32) -> BTreeSet<u64> {
        self.held.get(&actor).cloned().unwrap_or_default()
    }

    /// Process one event.
    pub fn step(&mut self, e: &Event) {
        match e.kind {
            EventKind::Acquire if e.b != SYNC_PULSE => {
                self.held.entry(e.actor).or_default().insert(e.a);
            }
            EventKind::Release if e.b != SYNC_PULSE => {
                if let Some(s) = self.held.get_mut(&e.actor) {
                    s.remove(&e.a);
                }
            }
            EventKind::Read => self.access(e.actor, e.a, false),
            EventKind::Write => self.access(e.actor, e.a, true),
            _ => {}
        }
    }

    fn access(&mut self, actor: u32, var: u64, is_write: bool) {
        let held = self.held_of(actor);
        let vs = self.vars.entry(var).or_insert(VarState {
            phase: VarPhase::Virgin,
            reported: false,
        });
        let next = match std::mem::replace(&mut vs.phase, VarPhase::Virgin) {
            VarPhase::Virgin => VarPhase::Exclusive(actor, held.clone()),
            VarPhase::Exclusive(owner, c) if owner == actor => {
                VarPhase::Exclusive(owner, c.intersection(&held).copied().collect())
            }
            VarPhase::Exclusive(_, c) => {
                // Second thread arrives: refinement continues from the
                // first owner's candidates.
                let c: BTreeSet<u64> = c.intersection(&held).copied().collect();
                if is_write {
                    VarPhase::SharedModified(c)
                } else {
                    VarPhase::Shared(c)
                }
            }
            VarPhase::Shared(c) => {
                let c: BTreeSet<u64> = c.intersection(&held).copied().collect();
                if is_write {
                    VarPhase::SharedModified(c)
                } else {
                    VarPhase::Shared(c)
                }
            }
            VarPhase::SharedModified(c) => {
                VarPhase::SharedModified(c.intersection(&held).copied().collect())
            }
        };
        let violation = matches!(&next, VarPhase::SharedModified(c) if c.is_empty());
        vs.phase = next;
        if violation && !vs.reported {
            vs.reported = true;
            self.violations.push(Defect {
                kind: DefectKind::LocksetViolation,
                sites: held.iter().copied().collect(),
                var: Some(var),
                actors: vec![actor],
                detail: format!(
                    "var {var} is written by multiple threads with no common lock \
                     (candidate lockset became empty at actor {actor})"
                ),
            });
        }
    }

    /// All violations found, in detection order.
    pub fn into_violations(self) -> Vec<Defect> {
        self.violations
    }
}

/// Run the checker over a full event stream (assumed ts-sorted).
pub fn detect_lockset_violations(events: &[Event]) -> Vec<Defect> {
    let mut l = Lockset::new();
    for e in events {
        l.step(e);
    }
    l.into_violations()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::trace::{SYNC_EXCLUSIVE, SYNC_SHARED};

    fn ev(ts: u64, actor: u32, kind: EventKind, a: u64, b: u64) -> Event {
        Event {
            ts,
            actor,
            kind,
            a,
            b,
        }
    }

    const L: u64 = 100;
    const V: u64 = 7;

    #[test]
    fn single_owner_never_violates() {
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Read, V, 0),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unlocked_multi_writer_violates_once() {
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 1, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Write, V, 0),
        ]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].var, Some(V));
        assert_eq!(v[0].kind, DefectKind::LocksetViolation);
    }

    #[test]
    fn consistent_lock_keeps_candidates() {
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Acquire, L, SYNC_EXCLUSIVE),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Release, L, SYNC_EXCLUSIVE),
            ev(4, 1, EventKind::Acquire, L, SYNC_EXCLUSIVE),
            ev(5, 1, EventKind::Write, V, 0),
            ev(6, 1, EventKind::Release, L, SYNC_EXCLUSIVE),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn inconsistent_locks_violate() {
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Acquire, L, SYNC_EXCLUSIVE),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Release, L, SYNC_EXCLUSIVE),
            ev(4, 1, EventKind::Acquire, L + 1, SYNC_EXCLUSIVE),
            ev(5, 1, EventKind::Write, V, 0),
            ev(6, 1, EventKind::Release, L + 1, SYNC_EXCLUSIVE),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn read_shared_data_behind_rwlock_is_clean() {
        // Two readers under the shared side, writer under exclusive:
        // the rwlock site is in every access's held set.
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Acquire, L, SYNC_EXCLUSIVE),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Release, L, SYNC_EXCLUSIVE),
            ev(4, 1, EventKind::Acquire, L, SYNC_SHARED),
            ev(5, 1, EventKind::Read, V, 0),
            ev(6, 1, EventKind::Release, L, SYNC_SHARED),
            ev(7, 2, EventKind::Acquire, L, SYNC_SHARED),
            ev(8, 2, EventKind::Read, V, 0),
            ev(9, 2, EventKind::Release, L, SYNC_SHARED),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn read_only_sharing_never_violates() {
        // Initialise then read everywhere — Shared, never SharedModified.
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 1, EventKind::Read, V, 0),
            ev(3, 2, EventKind::Read, V, 0),
            ev(4, 3, EventKind::Read, V, 0),
        ]);
        assert!(
            v.is_empty(),
            "read-only sharing after init is the Eraser exemption"
        );
    }

    #[test]
    fn pulse_sites_do_not_count_as_protection() {
        use pdc_core::trace::SYNC_PULSE;
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Acquire, L, SYNC_PULSE),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Release, L, SYNC_PULSE),
            ev(4, 1, EventKind::Acquire, L, SYNC_PULSE),
            ev(5, 1, EventKind::Write, V, 0),
            ev(6, 1, EventKind::Release, L, SYNC_PULSE),
        ]);
        assert_eq!(v.len(), 1, "semaphores are not ownership: {v:?}");
    }
}
