//! Eraser-style lockset checking — the second, independent verdict on
//! shared-variable discipline.
//!
//! Where the happens-before detector asks "were these two accesses
//! ordered?", the lockset checker asks the stronger *policy* question:
//! "is there one lock that protects every access to this variable?".
//! Each variable moves through the Eraser state machine — virgin →
//! exclusive (single owner) → shared / shared-modified — and once
//! shared, its *candidate set* is intersected with the locks the
//! accessing thread holds. An empty candidate set in shared-modified
//! state is a violation: no consistent lock discipline exists, even if
//! this particular schedule never raced.
//!
//! Only real lock modes participate in the candidate sets
//! ([`SYNC_SHARED`] / [`SYNC_EXCLUSIVE`]); pulse-style synchronisation
//! (semaphores, barriers, condvars) establishes ordering, not
//! ownership. Pure Eraser, however, flags the classic false positive:
//! an ad-hoc hand-off protocol ("I write, *then* release a semaphore;
//! you acquire it, *then* write") is perfectly disciplined yet holds no
//! common lock. So this checker carries a small vector-clock tracker
//! fed **only** by hand-off edges — pulse acquire/release, condvar
//! wait/signal, fork/join, send/recv — and when a variable in the
//! exclusive state is touched by a new thread whose clock already
//! dominates the old owner's last access, *ownership transfers* instead
//! of degrading to shared. Real lock edges deliberately do not feed the
//! tracker: they are the very discipline under test, and using them
//! would launder ordinary unlocked sharing whenever a schedule happened
//! to serialise it.

use crate::report::{Defect, DefectKind};
use crate::vc::{Epoch, VectorClock};
use pdc_core::trace::{Event, EventKind, SYNC_PULSE};
use std::collections::{BTreeSet, HashMap, VecDeque};

#[derive(Debug, Clone, PartialEq)]
enum VarPhase {
    Virgin,
    /// Single owner so far; the epoch is the owner's clock at its most
    /// recent access (for hand-off checks), and the candidate set is
    /// already being refined from the first access (Eraser initialises
    /// C(v) to the locks held then), but emptiness is not yet a
    /// violation.
    Exclusive(Epoch, BTreeSet<u64>),
    Shared(BTreeSet<u64>),
    SharedModified(BTreeSet<u64>),
}

#[derive(Debug)]
struct VarState {
    phase: VarPhase,
    reported: bool,
}

/// The checker: feed ts-sorted events, then take the violations.
#[derive(Debug, Default)]
pub struct Lockset {
    /// Locks currently held per actor (multiset not needed: the pdc
    /// primitives are non-reentrant).
    held: HashMap<u32, BTreeSet<u64>>,
    /// Per-actor clocks for the hand-off tracker. Advanced only by the
    /// hand-off edge kinds, never by plain lock traffic.
    clocks: HashMap<u32, VectorClock>,
    /// Per-site clock published by pulse releases / signals.
    handoff: HashMap<u64, VectorClock>,
    /// Per-handle clock published by fork, adopted by join.
    fork_history: HashMap<u64, VectorClock>,
    /// Per (src, dst) FIFO of sender clocks awaiting a matching recv.
    msgs: HashMap<(u32, u32), VecDeque<VectorClock>>,
    vars: HashMap<u64, VarState>,
    violations: Vec<Defect>,
}

impl Lockset {
    /// Fresh checker.
    pub fn new() -> Self {
        Self::default()
    }

    fn held_of(&self, actor: u32) -> BTreeSet<u64> {
        self.held.get(&actor).cloned().unwrap_or_default()
    }

    fn clock_mut(&mut self, actor: u32) -> &mut VectorClock {
        self.clocks.entry(actor).or_insert_with(|| {
            // Start at 1 so a first access has a nonzero epoch.
            let mut vc = VectorClock::new();
            vc.set(actor, 1);
            vc
        })
    }

    /// Adopt whatever history `site` has published (pulse acquire /
    /// condvar wait side of a hand-off edge).
    fn adopt_site(&mut self, actor: u32, site: u64) {
        if let Some(pub_vc) = self.handoff.get(&site) {
            let pub_vc = pub_vc.clone();
            self.clock_mut(actor).join(&pub_vc);
        }
    }

    /// Publish this actor's history on `site` and advance past it
    /// (pulse release / condvar signal side of a hand-off edge).
    fn publish_site(&mut self, actor: u32, site: u64) {
        let ct = self.clock_mut(actor).clone();
        self.handoff.entry(site).or_default().join(&ct);
        self.clock_mut(actor).tick(actor);
    }

    /// Process one event.
    pub fn step(&mut self, e: &Event) {
        match e.kind {
            EventKind::Acquire if e.b != SYNC_PULSE => {
                self.held.entry(e.actor).or_default().insert(e.a);
            }
            EventKind::Release if e.b != SYNC_PULSE => {
                if let Some(s) = self.held.get_mut(&e.actor) {
                    s.remove(&e.a);
                }
            }
            EventKind::Acquire | EventKind::Wait => self.adopt_site(e.actor, e.a),
            EventKind::Release | EventKind::Signal => self.publish_site(e.actor, e.a),
            EventKind::Fork => {
                let ct = self.clock_mut(e.actor).clone();
                self.fork_history.entry(e.a).or_default().join(&ct);
                self.clock_mut(e.actor).tick(e.actor);
            }
            EventKind::Join => {
                if let Some(f) = self.fork_history.get(&e.a) {
                    let f = f.clone();
                    self.clock_mut(e.actor).join(&f);
                }
            }
            EventKind::Send => {
                let ct = self.clock_mut(e.actor).clone();
                self.msgs
                    .entry((e.actor, e.a as u32))
                    .or_default()
                    .push_back(ct);
                self.clock_mut(e.actor).tick(e.actor);
            }
            EventKind::Recv => {
                if let Some(q) = self.msgs.get_mut(&(e.a as u32, e.actor)) {
                    if let Some(snd) = q.pop_front() {
                        self.clock_mut(e.actor).join(&snd);
                    }
                }
            }
            EventKind::Read => self.access(e.actor, e.a, false),
            EventKind::Write => self.access(e.actor, e.a, true),
            _ => {}
        }
    }

    fn access(&mut self, actor: u32, var: u64, is_write: bool) {
        let held = self.held_of(actor);
        let epoch = Epoch::of(actor, self.clock_mut(actor));
        let clock = self.clocks.get(&actor).cloned().unwrap_or_default();
        let vs = self.vars.entry(var).or_insert(VarState {
            phase: VarPhase::Virgin,
            reported: false,
        });
        let next = match std::mem::replace(&mut vs.phase, VarPhase::Virgin) {
            VarPhase::Virgin => VarPhase::Exclusive(epoch, held.clone()),
            VarPhase::Exclusive(e, c) if e.actor == actor => {
                VarPhase::Exclusive(epoch, c.intersection(&held).copied().collect())
            }
            VarPhase::Exclusive(e, c) if e.happens_before(&clock) => {
                // Hand-off: the previous owner's last access is already
                // ordered before us through a pulse / condvar / fork /
                // message edge, so this is a clean ownership transfer,
                // not sharing. Candidate refinement continues.
                VarPhase::Exclusive(epoch, c.intersection(&held).copied().collect())
            }
            VarPhase::Exclusive(_, c) => {
                // Second thread arrives concurrently: refinement
                // continues from the first owner's candidates.
                let c: BTreeSet<u64> = c.intersection(&held).copied().collect();
                if is_write {
                    VarPhase::SharedModified(c)
                } else {
                    VarPhase::Shared(c)
                }
            }
            VarPhase::Shared(c) => {
                let c: BTreeSet<u64> = c.intersection(&held).copied().collect();
                if is_write {
                    VarPhase::SharedModified(c)
                } else {
                    VarPhase::Shared(c)
                }
            }
            VarPhase::SharedModified(c) => {
                VarPhase::SharedModified(c.intersection(&held).copied().collect())
            }
        };
        let violation = matches!(&next, VarPhase::SharedModified(c) if c.is_empty());
        vs.phase = next;
        if violation && !vs.reported {
            vs.reported = true;
            self.violations.push(Defect {
                kind: DefectKind::LocksetViolation,
                sites: held.iter().copied().collect(),
                var: Some(var),
                actors: vec![actor],
                detail: format!(
                    "var {var} is written by multiple threads with no common lock \
                     (candidate lockset became empty at actor {actor})"
                ),
            });
        }
    }

    /// All violations found, in detection order.
    pub fn into_violations(self) -> Vec<Defect> {
        self.violations
    }
}

/// Run the checker over a full event stream (assumed ts-sorted).
pub fn detect_lockset_violations(events: &[Event]) -> Vec<Defect> {
    let mut l = Lockset::new();
    for e in events {
        l.step(e);
    }
    l.into_violations()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::trace::{SYNC_EXCLUSIVE, SYNC_SHARED};

    fn ev(ts: u64, actor: u32, kind: EventKind, a: u64, b: u64) -> Event {
        Event {
            ts,
            actor,
            kind,
            a,
            b,
        }
    }

    const L: u64 = 100;
    const V: u64 = 7;

    #[test]
    fn single_owner_never_violates() {
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Read, V, 0),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unlocked_multi_writer_violates_once() {
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 1, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Write, V, 0),
        ]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].var, Some(V));
        assert_eq!(v[0].kind, DefectKind::LocksetViolation);
    }

    #[test]
    fn consistent_lock_keeps_candidates() {
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Acquire, L, SYNC_EXCLUSIVE),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Release, L, SYNC_EXCLUSIVE),
            ev(4, 1, EventKind::Acquire, L, SYNC_EXCLUSIVE),
            ev(5, 1, EventKind::Write, V, 0),
            ev(6, 1, EventKind::Release, L, SYNC_EXCLUSIVE),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn inconsistent_locks_violate() {
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Acquire, L, SYNC_EXCLUSIVE),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Release, L, SYNC_EXCLUSIVE),
            ev(4, 1, EventKind::Acquire, L + 1, SYNC_EXCLUSIVE),
            ev(5, 1, EventKind::Write, V, 0),
            ev(6, 1, EventKind::Release, L + 1, SYNC_EXCLUSIVE),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn read_shared_data_behind_rwlock_is_clean() {
        // Two readers under the shared side, writer under exclusive:
        // the rwlock site is in every access's held set.
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Acquire, L, SYNC_EXCLUSIVE),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Release, L, SYNC_EXCLUSIVE),
            ev(4, 1, EventKind::Acquire, L, SYNC_SHARED),
            ev(5, 1, EventKind::Read, V, 0),
            ev(6, 1, EventKind::Release, L, SYNC_SHARED),
            ev(7, 2, EventKind::Acquire, L, SYNC_SHARED),
            ev(8, 2, EventKind::Read, V, 0),
            ev(9, 2, EventKind::Release, L, SYNC_SHARED),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn read_only_sharing_never_violates() {
        // Initialise then read everywhere — Shared, never SharedModified.
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 1, EventKind::Read, V, 0),
            ev(3, 2, EventKind::Read, V, 0),
            ev(4, 3, EventKind::Read, V, 0),
        ]);
        assert!(
            v.is_empty(),
            "read-only sharing after init is the Eraser exemption"
        );
    }

    #[test]
    fn pulse_sites_do_not_count_as_protection() {
        // Both threads wrap their writes in pulse traffic on the same
        // site, but the writes are concurrent (thread 1 writes before
        // thread 0's release publishes anything): pulses must not land
        // in the held set, so the candidate set still empties.
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Acquire, L, SYNC_PULSE),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 1, EventKind::Acquire, L, SYNC_PULSE),
            ev(4, 1, EventKind::Write, V, 0),
            ev(5, 0, EventKind::Release, L, SYNC_PULSE),
            ev(6, 1, EventKind::Release, L, SYNC_PULSE),
        ]);
        assert_eq!(v.len(), 1, "semaphores are not ownership: {v:?}");
    }

    #[test]
    fn semaphore_handoff_transfers_ownership() {
        // The ad-hoc hand-off protocol: write, release the semaphore;
        // the other side acquires, then writes. No common lock, but the
        // accesses are fully ordered through the pulse edge — clean.
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 0, EventKind::Release, L, SYNC_PULSE),
            ev(3, 1, EventKind::Acquire, L, SYNC_PULSE),
            ev(4, 1, EventKind::Write, V, 0),
            ev(5, 1, EventKind::Write, V, 0),
        ]);
        assert!(v.is_empty(), "hand-off is ownership transfer: {v:?}");
    }

    #[test]
    fn condvar_handoff_transfers_ownership() {
        // Same shape through a condition variable's signal/wait edge.
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 0, EventKind::Signal, L, 1),
            ev(3, 1, EventKind::Wait, L, 2),
            ev(4, 1, EventKind::Write, V, 0),
        ]);
        assert!(v.is_empty(), "signal/wait is ownership transfer: {v:?}");
    }

    #[test]
    fn fork_join_transfers_ownership() {
        const H: u64 = 200;
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 0, EventKind::Fork, H, 0),
            ev(3, 1, EventKind::Join, H, 0),
            ev(4, 1, EventKind::Write, V, 0),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn handoff_does_not_launder_concurrent_access() {
        // Thread 1 already wrote concurrently *before* adopting the
        // hand-off edge: the variable is shared-modified for real, and
        // the late acquire must not undo that.
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Write, V, 0),
            ev(2, 1, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Release, L, SYNC_PULSE),
            ev(4, 1, EventKind::Acquire, L, SYNC_PULSE),
            ev(5, 1, EventKind::Write, V, 0),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn real_lock_edges_do_not_transfer_ownership() {
        // Thread 1 cycles the lock (creating a schedule-order edge in
        // happens-before terms) but writes *outside* it. Lock traffic is
        // the discipline under test, so it must not feed the hand-off
        // tracker: this still violates.
        let v = detect_lockset_violations(&[
            ev(1, 0, EventKind::Acquire, L, SYNC_EXCLUSIVE),
            ev(2, 0, EventKind::Write, V, 0),
            ev(3, 0, EventKind::Release, L, SYNC_EXCLUSIVE),
            ev(4, 1, EventKind::Acquire, L, SYNC_EXCLUSIVE),
            ev(5, 1, EventKind::Release, L, SYNC_EXCLUSIVE),
            ev(6, 1, EventKind::Write, V, 0),
        ]);
        assert_eq!(v.len(), 1, "lock edges are not hand-offs: {v:?}");
    }
}
