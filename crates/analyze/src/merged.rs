//! Process-aware analysis of merged multi-process traces.
//!
//! A `pdc-trace/3` snapshot concatenates per-process `pdc-trace/2`
//! slices, and two things stop the single-stream analyses from applying
//! directly:
//!
//! 1. **Logical clocks don't order across processes.** Each process
//!    timestamps events with its own counter, so a receive can carry a
//!    *smaller* `ts` than the send that caused it. [`causal_order`]
//!    rebuilds one globally consistent order: it round-robins the
//!    per-process streams (each already in-order) and holds back a
//!    `recv` until the matching `send` on its directed pair has been
//!    emitted — receive #k on pair (src, dst) is enabled by send #k.
//!    The result is re-timestamped 1..n.
//! 2. **Process-local ids collide numerically.** Lock sites, variable
//!    ids and fork/join handles are per-address-space values; process 1
//!    and process 2 can both report "site 7" meaning unrelated mutexes.
//!    Comparing them as equal would fabricate cross-process races and
//!    lock-order cycles between processes that share no memory, so
//!    those ids are namespaced by process before analysis. Collective
//!    ids and rank ids are *global* vocabulary and pass through
//!    untouched — the collective-order lint still compares ranks
//!    against each other.
//!
//! [`analyze_merged`] composes both steps with the ordinary
//! [`crate::analyze_events`] pipeline, so one CI gate covers threaded
//! and multi-process runs alike.

use crate::report::Report;
use pdc_core::merge::MergedTrace;
use pdc_core::trace::{Event, EventKind};
use std::collections::BTreeMap;

/// Process-local ids live below the user-space address-space ceiling
/// (and trace site ids are tiny counters), so the owning process fits
/// in the bits above without collision.
const PROCESS_ID_SHIFT: u32 = 48;

fn namespace_local_ids(process: u32, e: &mut Event) {
    match e.kind {
        // `a` is a per-address-space identity: lock site, variable id,
        // or published causal-history handle.
        EventKind::Acquire
        | EventKind::Release
        | EventKind::Read
        | EventKind::Write
        | EventKind::Fork
        | EventKind::Join
        | EventKind::Wait
        | EventKind::Signal
        | EventKind::ChanSend
        | EventKind::ChanRecv => {
            e.a = ((process as u64) << PROCESS_ID_SHIFT).wrapping_add(e.a);
        }
        // Ranks, collective codes, byte counts, sequence numbers: global
        // vocabulary, shared across processes on purpose.
        _ => {}
    }
}

/// Rebuild one causally consistent, re-timestamped event stream from a
/// merged trace's per-process slices.
///
/// Progress is guaranteed even on incomplete traces: when every stream
/// is blocked on a receive whose send was never recorded (e.g. dropped
/// by a full ring buffer), the lowest blocked process emits its head
/// anyway and the walk continues — the MPI lint then reports the
/// mismatch instead of the analysis hanging.
pub fn causal_order(trace: &MergedTrace) -> Vec<Event> {
    let mut queues: Vec<(u32, std::collections::VecDeque<Event>)> = trace
        .processes
        .iter()
        .map(|p| {
            let mut evs: Vec<Event> = p.events.clone();
            evs.sort_by_key(|e| e.ts);
            (p.process, evs.into())
        })
        .collect();
    let mut sends: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut recvs: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut out = Vec::new();
    let total: usize = queues.iter().map(|(_, q)| q.len()).sum();
    while out.len() < total {
        let mut progressed = false;
        for (process, queue) in &mut queues {
            while let Some(head) = queue.front() {
                if head.kind == EventKind::Recv {
                    let pair = (head.a as u32, head.actor);
                    let sent = sends.get(&pair).copied().unwrap_or(0);
                    let seen = recvs.entry(pair).or_insert(0);
                    if *seen >= sent {
                        break; // the enabling send hasn't been emitted
                    }
                    *seen += 1;
                }
                let mut e = queue.pop_front().unwrap();
                if e.kind == EventKind::Send {
                    *sends.entry((e.actor, e.a as u32)).or_insert(0) += 1;
                }
                namespace_local_ids(*process, &mut e);
                e.ts = out.len() as u64 + 1;
                out.push(e);
                progressed = true;
            }
        }
        if !progressed {
            // Every stream is blocked: the trace is incomplete. Force
            // the first blocked head out so the walk terminates and the
            // lint can name the unmatched message.
            let (process, queue) = queues
                .iter_mut()
                .find(|(_, q)| !q.is_empty())
                .expect("some queue is non-empty while out < total");
            let mut e = queue.pop_front().unwrap();
            *recvs.entry((e.a as u32, e.actor)).or_insert(0) += 1;
            namespace_local_ids(*process, &mut e);
            e.ts = out.len() as u64 + 1;
            out.push(e);
        }
    }
    out
}

/// Analyse a merged multi-process trace: causally reorder the slices,
/// namespace process-local ids, then run all four single-stream
/// analyses over the result.
pub fn analyze_merged(trace: &MergedTrace) -> Report {
    let mut report = crate::analyze_events(&causal_order(trace));
    report.dropped = trace.dropped();
    report
}

/// Shrink a merged trace around failed processes — the analysis-side
/// analogue of an MPI communicator shrink after a fault.
///
/// A process killed mid-run never snapshots its slice, and every
/// message the survivors exchanged with it is causally one-sided: a
/// `Send` whose `Recv` died with the peer, or a `Recv` whose `Send` was
/// never written down. Feeding those to [`analyze_merged`] reports
/// unmatched-message defects that describe the *fault*, not a bug in
/// the survivors. `shrink_failed` removes the failed processes' slices
/// (if present) and every survivor `Send`/`Recv` whose peer failed, so
/// the verdict judges only the communication among survivors — which a
/// correct fault-tolerant run must leave fully matched.
pub fn shrink_failed(trace: &MergedTrace, failed: &[u32]) -> MergedTrace {
    let parts = trace
        .processes
        .iter()
        .filter(|p| !failed.contains(&p.process))
        .map(|p| {
            let mut p = p.clone();
            p.events.retain(|e| {
                !matches!(e.kind, EventKind::Send | EventKind::Recv)
                    || !failed.contains(&(e.a as u32))
            });
            p
        })
        .collect();
    MergedTrace::merge(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DefectKind;
    use pdc_core::merge::ProcessTrace;

    fn ev(ts: u64, actor: u32, kind: EventKind, a: u64, b: u64) -> Event {
        Event {
            ts,
            actor,
            kind,
            a,
            b,
        }
    }

    fn proc(process: u32, events: Vec<Event>) -> ProcessTrace {
        ProcessTrace {
            process,
            counters: BTreeMap::new(),
            events,
            dropped: 0,
        }
    }

    #[test]
    fn recv_is_held_back_until_its_send() {
        // Process 1's clock says its recv happened at ts=1; process 0's
        // send carries ts=5. A naive ts-sort would put the recv first.
        let trace = MergedTrace::merge(vec![
            proc(0, vec![ev(5, 0, EventKind::Send, 1, 8)]),
            proc(1, vec![ev(1, 1, EventKind::Recv, 0, 8)]),
        ]);
        let ordered = causal_order(&trace);
        assert_eq!(ordered.len(), 2);
        assert_eq!(ordered[0].kind, EventKind::Send);
        assert_eq!(ordered[1].kind, EventKind::Recv);
        assert_eq!((ordered[0].ts, ordered[1].ts), (1, 2));
        assert!(analyze_merged(&trace).clean());
    }

    #[test]
    fn kth_recv_waits_for_kth_send() {
        // Two messages on one pair: recv #2 must not jump ahead of
        // send #2 even when the receiver's whole stream sorts earlier.
        let trace = MergedTrace::merge(vec![
            proc(
                1,
                vec![
                    ev(1, 1, EventKind::Recv, 0, 8),
                    ev(2, 1, EventKind::Recv, 0, 8),
                ],
            ),
            proc(
                0,
                vec![
                    ev(10, 0, EventKind::Send, 1, 8),
                    ev(11, 0, EventKind::Send, 1, 8),
                ],
            ),
        ]);
        let kinds: Vec<EventKind> = causal_order(&trace).iter().map(|e| e.kind).collect();
        let second_send = kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == EventKind::Send)
            .nth(1)
            .unwrap()
            .0;
        let second_recv = kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == EventKind::Recv)
            .nth(1)
            .unwrap()
            .0;
        assert!(second_send < second_recv);
        assert!(analyze_merged(&trace).clean());
    }

    #[test]
    fn colliding_local_ids_do_not_fabricate_cross_process_races() {
        // Both processes use "site 7" and "var 9" — unrelated objects in
        // separate address spaces. Process 0 locks before writing;
        // process 1 writes its own var 9 with no lock held. Without
        // namespacing this is a textbook lockset violation + race.
        let trace = MergedTrace::merge(vec![
            proc(
                0,
                vec![
                    ev(1, 0, EventKind::Acquire, 7, 1),
                    ev(2, 0, EventKind::Write, 9, 0),
                    ev(3, 0, EventKind::Release, 7, 1),
                ],
            ),
            proc(1, vec![ev(1, 1, EventKind::Write, 9, 0)]),
        ]);
        let report = analyze_merged(&trace);
        assert!(report.clean(), "{:?}", report.defects);
    }

    #[test]
    fn incomplete_trace_terminates_and_lints_dirty() {
        // A recv whose send was never recorded: the walk must emit it
        // anyway (no hang) and the MPI lint must name the hole.
        let trace = MergedTrace::merge(vec![proc(1, vec![ev(1, 1, EventKind::Recv, 0, 8)])]);
        let report = analyze_merged(&trace);
        assert_eq!(report.events_analyzed, 1);
        assert_eq!(report.count_kind(DefectKind::MpiUnmatchedRecv), 1);
    }

    #[test]
    fn collective_codes_stay_global_across_processes() {
        // Collective order compares ranks against each other, so coll
        // ids must NOT be namespaced: a genuine divergence between two
        // processes is still caught.
        let trace = MergedTrace::merge(vec![
            proc(
                0,
                vec![
                    ev(1, 0, EventKind::CollBegin, 3, 0),
                    ev(2, 0, EventKind::CollEnd, 3, 0),
                ],
            ),
            proc(
                1,
                vec![
                    ev(1, 1, EventKind::CollBegin, 5, 0),
                    ev(2, 1, EventKind::CollEnd, 5, 0),
                ],
            ),
        ]);
        let report = analyze_merged(&trace);
        assert_eq!(report.count_kind(DefectKind::MpiCollectiveOrder), 1);
    }

    #[test]
    fn shrinking_failed_processes_clears_fault_artifacts() {
        // Rank 2 was killed mid-run: its slice is missing, rank 0's
        // send to it dangles, and rank 1 holds a recv whose send died
        // unrecorded. The raw verdict blames the survivors; the shrunk
        // trace judges only survivor↔survivor traffic, which matches.
        let trace = MergedTrace::merge(vec![
            proc(
                0,
                vec![
                    ev(1, 0, EventKind::Send, 2, 8), // into the void
                    ev(2, 0, EventKind::Send, 1, 8),
                ],
            ),
            proc(
                1,
                vec![
                    ev(1, 1, EventKind::Recv, 2, 8), // from the void
                    ev(2, 1, EventKind::Recv, 0, 8),
                ],
            ),
        ]);
        let raw = analyze_merged(&trace);
        assert_eq!(raw.count_kind(DefectKind::MpiUnmatchedSend), 1);
        assert_eq!(raw.count_kind(DefectKind::MpiUnmatchedRecv), 1);

        let shrunk = shrink_failed(&trace, &[2]);
        let report = analyze_merged(&shrunk);
        assert!(report.clean(), "survivor traffic is fully matched");
        assert_eq!(report.events_analyzed, 2);

        // Shrinking also drops the failed process's own partial slice
        // when one was captured before the kill.
        let with_slice = MergedTrace::merge(vec![
            proc(0, vec![ev(1, 0, EventKind::Send, 2, 8)]),
            proc(2, vec![ev(1, 2, EventKind::Recv, 0, 8)]),
        ]);
        let shrunk = shrink_failed(&with_slice, &[2]);
        assert_eq!(shrunk.processes.len(), 1);
        assert!(analyze_merged(&shrunk).clean());
    }
}
