//! # pdc-gpu — a SIMT execution simulator
//!
//! CS40's GPGPU unit (paper Section III-A: "SIMD and stream
//! architectures, memory organization (CPU memory, GPU memory, shared
//! memory), GPU threads, synchronization, scheduling on CUDA GPUs, data
//! layout, and speedups") without the hardware: a deterministic simulator
//! of the CUDA execution model.
//!
//! Kernels are written as **barrier-separated phases** (the shape CUDA's
//! `__syncthreads()` discipline forces anyway): every thread of a block
//! runs phase `k` to completion before any thread starts phase `k+1`.
//! Within a phase, threads are grouped into warps of 32 and the
//! simulator accounts for the three costs the course teaches:
//!
//! * **Coalescing** — each warp-wide global access is split into 128-byte
//!   transactions; adjacent addresses coalesce, strided ones do not.
//! * **Divergence** — a warp issues for as long as its busiest thread;
//!   idle lanes are wasted issue slots.
//! * **Shared memory** — 32 banks; conflict-free accesses cost 1 unit,
//!   N-way conflicts serialize N×.
//!
//! * [`device`] — the simulator core.
//! * [`kernels`] — reduction (global vs shared-staged), block scan, and
//!   copy kernels (coalesced vs strided), with correctness tests and
//!   cost comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod kernels;

pub use device::{map_kernel, Device, GpuConfig, KernelStats, ThreadCtx};
