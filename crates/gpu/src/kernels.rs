//! GPU kernels: parallel reduction (three variants) and block scan.
//!
//! The CS40 lab is "parallel reductions on large arrays"; the three
//! reduction variants below reproduce the canonical CUDA optimization
//! ladder:
//!
//! 1. [`reduce_global`] — tree reduction directly in global memory:
//!    every level re-touches global, ~3× the memory traffic.
//! 2. [`reduce_shared_interleaved`] — stages into shared memory but uses
//!    interleaved (`tid % (2s) == 0`) addressing: low warp efficiency.
//! 3. [`reduce_shared_sequential`] — shared staging with sequential
//!    (`tid < s`) addressing: minimal traffic *and* minimal divergence.
//!
//! All three return the same sum; their [`KernelStats`] differ exactly
//! the way the CUDA docs say they should.

use crate::device::{Device, KernelStats, Phase, ThreadCtx};

fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Sum `input`, running the whole reduction in global memory.
/// Returns `(sum, stats)`.
pub fn reduce_global(input: &[i64], block_dim: usize) -> (i64, KernelStats) {
    assert!(!input.is_empty());
    let n = input.len();
    let mut dev = Device::new(n);
    dev.upload(0, input);
    let mut stats = KernelStats::default();
    let mut len = n;
    while len > 1 {
        let half = ceil_div(len, 2);
        let phases: Vec<Phase<'_>> = vec![Box::new(move |t: &mut ThreadCtx<'_>| {
            let i = t.gtid();
            if i < len / 2 {
                let a = t.read_global(i);
                let b = t.read_global(i + half);
                t.write_global(i, a + b);
            }
        })];
        let s = dev.launch(ceil_div(half, block_dim), block_dim, 0, &phases);
        accumulate(&mut stats, s);
        len = half;
    }
    (dev.global[0], stats)
}

/// Sum `input` with shared-memory staging and **interleaved** addressing
/// (`tid % (2*stride) == 0`) — correct but divergent.
pub fn reduce_shared_interleaved(input: &[i64], block_dim: usize) -> (i64, KernelStats) {
    reduce_shared(input, block_dim, false)
}

/// Sum `input` with shared-memory staging and **sequential** addressing
/// (`tid < stride`) — the optimized version.
pub fn reduce_shared_sequential(input: &[i64], block_dim: usize) -> (i64, KernelStats) {
    reduce_shared(input, block_dim, true)
}

fn reduce_shared(input: &[i64], block_dim: usize, sequential: bool) -> (i64, KernelStats) {
    assert!(!input.is_empty());
    assert!(block_dim.is_power_of_two(), "block size must be 2^k");
    let mut stats = KernelStats::default();
    let mut data = input.to_vec();
    while data.len() > 1 {
        let n = data.len();
        let blocks = ceil_div(n, block_dim);
        let mut dev = Device::new(n + blocks);
        dev.upload(0, &data);
        let mut phases: Vec<Phase<'_>> = Vec::new();
        // Load phase: coalesced read of each block's slice (zero-pad).
        phases.push(Box::new(move |t: &mut ThreadCtx<'_>| {
            let g = t.gtid();
            let tid = t.tid();
            let v = if g < n { t.read_global(g) } else { 0 };
            t.write_shared(tid, v);
        }));
        // Tree phases.
        if sequential {
            let mut stride = block_dim / 2;
            while stride >= 1 {
                let s = stride;
                phases.push(Box::new(move |t: &mut ThreadCtx<'_>| {
                    let tid = t.tid();
                    if tid < s {
                        let a = t.read_shared(tid);
                        let b = t.read_shared(tid + s);
                        t.write_shared(tid, a + b);
                    }
                }));
                if stride == 1 {
                    break;
                }
                stride /= 2;
            }
        } else {
            let mut stride = 1;
            while stride < block_dim {
                let s = stride;
                phases.push(Box::new(move |t: &mut ThreadCtx<'_>| {
                    let tid = t.tid();
                    if tid.is_multiple_of(2 * s) {
                        let a = t.read_shared(tid);
                        let b = t.read_shared(tid + s);
                        t.write_shared(tid, a + b);
                    }
                }));
                stride *= 2;
            }
        }
        // Write-out phase.
        phases.push(Box::new(move |t: &mut ThreadCtx<'_>| {
            if t.tid() == 0 {
                let v = t.read_shared(0);
                let b = t.bid();
                t.write_global(n + b, v);
            }
        }));
        let s = dev.launch(blocks, block_dim, block_dim, &phases);
        accumulate(&mut stats, s);
        data = dev.global[n..n + blocks].to_vec();
    }
    (data[0], stats)
}

fn accumulate(acc: &mut KernelStats, s: KernelStats) {
    acc.issue_cycles += s.issue_cycles;
    acc.executed_ops += s.executed_ops;
    acc.divergence_waste += s.divergence_waste;
    acc.global_transactions += s.global_transactions;
    acc.global_accesses += s.global_accesses;
    acc.shared_cycles += s.shared_cycles;
    acc.bank_conflict_cycles += s.bank_conflict_cycles;
}

/// Exclusive Blelloch scan of a single block-sized array in shared
/// memory (`n` = power of two ≤ block size). Returns `(scan, stats)`.
pub fn block_exclusive_scan(input: &[i64]) -> (Vec<i64>, KernelStats) {
    let n = input.len();
    assert!(n.is_power_of_two(), "scan length must be a power of two");
    let mut dev = Device::new(2 * n);
    dev.upload(0, input);
    let mut phases: Vec<Phase<'_>> = Vec::new();
    // Load.
    phases.push(Box::new(move |t: &mut ThreadCtx<'_>| {
        let tid = t.tid();
        if tid < n {
            let v = t.read_global(tid);
            t.write_shared(tid, v);
        }
    }));
    // Up-sweep.
    let mut stride = 1;
    while stride < n {
        let s = stride;
        phases.push(Box::new(move |t: &mut ThreadCtx<'_>| {
            let tid = t.tid();
            if tid < n / (2 * s) {
                let left = (2 * tid + 1) * s - 1;
                let right = (2 * tid + 2) * s - 1;
                let a = t.read_shared(left);
                let b = t.read_shared(right);
                t.write_shared(right, a + b);
            }
        }));
        stride *= 2;
    }
    // Clear root.
    phases.push(Box::new(move |t: &mut ThreadCtx<'_>| {
        if t.tid() == 0 {
            t.write_shared(n - 1, 0);
        }
    }));
    // Down-sweep.
    let mut stride = n / 2;
    while stride >= 1 {
        let s = stride;
        phases.push(Box::new(move |t: &mut ThreadCtx<'_>| {
            let tid = t.tid();
            if tid < n / (2 * s) {
                let left = (2 * tid + 1) * s - 1;
                let right = (2 * tid + 2) * s - 1;
                let l = t.read_shared(left);
                let r = t.read_shared(right);
                t.write_shared(left, r);
                t.write_shared(right, l + r);
            }
        }));
        if stride == 1 {
            break;
        }
        stride /= 2;
    }
    // Store.
    phases.push(Box::new(move |t: &mut ThreadCtx<'_>| {
        let tid = t.tid();
        if tid < n {
            let v = t.read_shared(tid);
            t.write_global(n + tid, v);
        }
    }));
    let stats = dev.launch(1, n, n, &phases);
    (dev.global[n..2 * n].to_vec(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::rng::Rng;

    fn workload(n: usize) -> Vec<i64> {
        let mut rng = Rng::new(1234);
        (0..n).map(|_| (rng.gen_range(1000) as i64) - 500).collect()
    }

    #[test]
    fn all_reductions_agree_with_serial() {
        for n in [1usize, 2, 31, 32, 100, 1024, 5000] {
            let input = workload(n);
            let want: i64 = input.iter().sum();
            let (a, _) = reduce_global(&input, 256);
            let (b, _) = reduce_shared_interleaved(&input, 256);
            let (c, _) = reduce_shared_sequential(&input, 256);
            assert_eq!(a, want, "global n={n}");
            assert_eq!(b, want, "interleaved n={n}");
            assert_eq!(c, want, "sequential n={n}");
        }
    }

    #[test]
    fn shared_staging_cuts_global_traffic() {
        let input = workload(1 << 16);
        let (_, g) = reduce_global(&input, 256);
        let (_, s) = reduce_shared_sequential(&input, 256);
        assert!(
            s.global_transactions * 2 < g.global_transactions,
            "shared {} vs global {}",
            s.global_transactions,
            g.global_transactions
        );
        let cfg = crate::device::GpuConfig::default();
        assert!(s.cycles(&cfg) < g.cycles(&cfg));
    }

    #[test]
    fn sequential_addressing_beats_interleaved_divergence() {
        let input = workload(1 << 14);
        let (_, inter) = reduce_shared_interleaved(&input, 256);
        let (_, seq) = reduce_shared_sequential(&input, 256);
        assert!(
            seq.warp_efficiency() > inter.warp_efficiency() + 0.1,
            "seq {} vs inter {}",
            seq.warp_efficiency(),
            inter.warp_efficiency()
        );
        // Interleaved also suffers bank conflicts at larger strides.
        assert!(inter.bank_conflict_cycles >= seq.bank_conflict_cycles);
    }

    #[test]
    fn block_scan_matches_serial() {
        for n in [2usize, 8, 64, 256, 1024] {
            let input = workload(n);
            let (scan, _) = block_exclusive_scan(&input);
            let mut acc = 0;
            for i in 0..n {
                assert_eq!(scan[i], acc, "n={n} i={i}");
                acc += input[i];
            }
        }
    }

    #[test]
    fn scan_issue_cycles_logarithmic_depth() {
        // Phases: load + log n up + clear + log n down + store.
        let n = 256;
        let input = workload(n);
        let (_, stats) = block_exclusive_scan(&input);
        // With n threads in n/32 warps, issue cycles stay modest (well
        // below the n·log n of a naive per-element serialization).
        assert!(stats.issue_cycles < (n as u64) * 4);
    }

    #[test]
    fn reduce_handles_non_power_of_two_sizes() {
        let input = workload(1000);
        let want: i64 = input.iter().sum();
        let (got, _) = reduce_shared_sequential(&input, 128);
        assert_eq!(got, want);
        let (got, _) = reduce_global(&input, 128);
        assert_eq!(got, want);
    }
}

/// Out-of-place matrix transpose kernels: the canonical coalescing demo.
///
/// * [`transpose_naive`] — each thread reads `a[y][x]` and writes
///   `b[x][y]`: reads coalesce, writes stride by `n` and do not.
/// * [`transpose_tiled`] — a block stages a 32×32 tile through shared
///   memory so both the global read *and* the global write are
///   row-contiguous. `pad` adds the classic +1 column that breaks the
///   32-way shared-memory bank conflict of the transposed read.
pub mod transpose {
    use crate::device::{Device, KernelStats, Phase, ThreadCtx};

    const TILE: usize = 32;

    /// Naive transpose of an `n × n` matrix (`n` divisible by 32).
    /// Returns `(transposed, stats)`.
    pub fn transpose_naive(input: &[i64], n: usize) -> (Vec<i64>, KernelStats) {
        assert_eq!(input.len(), n * n);
        assert!(n.is_multiple_of(TILE), "n must be a multiple of {TILE}");
        let mut dev = Device::new(2 * n * n);
        dev.upload(0, input);
        let blocks = (n / TILE) * (n / TILE);
        let grid_w = n / TILE;
        let phases: Vec<Phase<'_>> = vec![Box::new(move |t: &mut ThreadCtx<'_>| {
            // Block = one tile; thread = one element, row-major in tile.
            let bx = t.bid() % grid_w;
            let by = t.bid() / grid_w;
            let tx = t.tid() % TILE;
            let ty = t.tid() / TILE;
            let (x, y) = (bx * TILE + tx, by * TILE + ty);
            let v = t.read_global(y * n + x); // coalesced read
            t.write_global(n * n + x * n + y, v); // strided write
        })];
        let stats = dev.launch(blocks, TILE * TILE, 0, &phases);
        (dev.global[n * n..].to_vec(), stats)
    }

    /// Tiled transpose through shared memory. With `pad = true` the tile
    /// is stored as 32×33, eliminating bank conflicts on the transposed
    /// read. Returns `(transposed, stats)`.
    pub fn transpose_tiled(input: &[i64], n: usize, pad: bool) -> (Vec<i64>, KernelStats) {
        assert_eq!(input.len(), n * n);
        assert!(n.is_multiple_of(TILE), "n must be a multiple of {TILE}");
        let stride = if pad { TILE + 1 } else { TILE };
        let mut dev = Device::new(2 * n * n);
        dev.upload(0, input);
        let blocks = (n / TILE) * (n / TILE);
        let grid_w = n / TILE;
        let phases: Vec<Phase<'_>> = vec![
            // Phase 1: coalesced load into the shared tile.
            Box::new(move |t: &mut ThreadCtx<'_>| {
                let bx = t.bid() % grid_w;
                let by = t.bid() / grid_w;
                let tx = t.tid() % TILE;
                let ty = t.tid() / TILE;
                let v = t.read_global((by * TILE + ty) * n + bx * TILE + tx);
                t.write_shared(ty * stride + tx, v);
            }),
            // Phase 2: transposed read from shared, coalesced store to the
            // mirrored tile position.
            Box::new(move |t: &mut ThreadCtx<'_>| {
                let bx = t.bid() % grid_w;
                let by = t.bid() / grid_w;
                let tx = t.tid() % TILE;
                let ty = t.tid() / TILE;
                let v = t.read_shared(tx * stride + ty); // column read
                t.write_global(n * n + (bx * TILE + ty) * n + by * TILE + tx, v);
            }),
        ];
        let stats = dev.launch(blocks, TILE * TILE, stride * TILE, &phases);
        (dev.global[n * n..].to_vec(), stats)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::device::GpuConfig;

        fn reference(input: &[i64], n: usize) -> Vec<i64> {
            let mut out = vec![0; n * n];
            for y in 0..n {
                for x in 0..n {
                    out[x * n + y] = input[y * n + x];
                }
            }
            out
        }

        fn workload(n: usize) -> Vec<i64> {
            (0..(n * n) as i64).collect()
        }

        #[test]
        fn all_transposes_correct() {
            let n = 64;
            let input = workload(n);
            let want = reference(&input, n);
            assert_eq!(transpose_naive(&input, n).0, want);
            assert_eq!(transpose_tiled(&input, n, false).0, want);
            assert_eq!(transpose_tiled(&input, n, true).0, want);
        }

        #[test]
        fn tiled_fixes_write_coalescing() {
            let n = 128;
            let input = workload(n);
            let (_, naive) = transpose_naive(&input, n);
            let (_, tiled) = transpose_tiled(&input, n, true);
            assert!(
                tiled.global_transactions * 4 < naive.global_transactions,
                "tiled {} vs naive {}",
                tiled.global_transactions,
                naive.global_transactions
            );
            let cfg = GpuConfig::default();
            assert!(tiled.cycles(&cfg) < naive.cycles(&cfg));
        }

        #[test]
        fn padding_removes_bank_conflicts() {
            let n = 128;
            let input = workload(n);
            let (_, unpadded) = transpose_tiled(&input, n, false);
            let (_, padded) = transpose_tiled(&input, n, true);
            // Unpadded column reads hit one bank 32 ways.
            assert!(
                unpadded.bank_conflict_cycles > padded.bank_conflict_cycles * 8,
                "unpadded {} vs padded {}",
                unpadded.bank_conflict_cycles,
                padded.bank_conflict_cycles
            );
            // Same global traffic either way.
            assert_eq!(unpadded.global_transactions, padded.global_transactions);
        }
    }
}
