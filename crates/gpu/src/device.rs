//! The SIMT device: global memory, per-block shared memory, phased
//! kernels, and the warp-level cost model.

use pdc_core::metrics::Counter;
use pdc_core::trace::{EventKind, ThreadTrace, TraceSession};
use std::collections::HashSet;

/// Device cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuConfig {
    /// Threads per warp.
    pub warp_size: usize,
    /// Global-memory transaction granularity in bytes.
    pub coalesce_bytes: u64,
    /// Element size in bytes (one `i64` word).
    pub elem_bytes: u64,
    /// Cycles per global-memory transaction.
    pub global_latency: u64,
    /// Cycles per (conflict-free) shared-memory warp access.
    pub shared_latency: u64,
    /// Number of shared-memory banks.
    pub banks: usize,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            warp_size: 32,
            coalesce_bytes: 128,
            elem_bytes: 8,
            global_latency: 100,
            shared_latency: 2,
            banks: 32,
        }
    }
}

/// Cost counters for one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Warp issue steps (each = the busiest lane's op count that phase).
    pub issue_cycles: u64,
    /// Thread-ops actually executed.
    pub executed_ops: u64,
    /// Issue slots wasted to divergence (idle lanes × steps).
    pub divergence_waste: u64,
    /// Global-memory transactions after coalescing.
    pub global_transactions: u64,
    /// Raw global accesses before coalescing.
    pub global_accesses: u64,
    /// Conflict-free shared-memory warp accesses: one per lockstep
    /// step that touches shared memory, regardless of conflicts.
    pub shared_cycles: u64,
    /// Extra serialized accesses lost to bank conflicts (an `N`-way
    /// conflict adds `N − 1` on top of the one in `shared_cycles`).
    pub bank_conflict_cycles: u64,
}

impl KernelStats {
    /// Total modeled cycles under `config`: issue cycles, plus global
    /// transactions at `global_latency`, plus shared-memory accesses —
    /// conflict-free *and* the conflict-serialized extras — at
    /// `shared_latency`.
    pub fn cycles(&self, config: &GpuConfig) -> u64 {
        self.issue_cycles
            + self.global_transactions * config.global_latency
            + (self.shared_cycles + self.bank_conflict_cycles) * config.shared_latency
    }

    /// Fraction of issue slots doing useful work (1.0 = no divergence).
    pub fn warp_efficiency(&self) -> f64 {
        let total = self.executed_ops + self.divergence_waste;
        if total == 0 {
            1.0
        } else {
            self.executed_ops as f64 / total as f64
        }
    }

    /// Useful bytes per transaction byte (1.0 = perfectly coalesced).
    pub fn coalescing_efficiency(&self, config: &GpuConfig) -> f64 {
        if self.global_transactions == 0 {
            return 1.0;
        }
        (self.global_accesses * config.elem_bytes) as f64
            / (self.global_transactions * config.coalesce_bytes) as f64
    }
}

/// One recorded memory operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    GlobalRead(u64),
    GlobalWrite(u64),
    SharedRead(usize),
    SharedWrite(usize),
    Compute,
}

/// Per-thread execution context for one phase.
pub struct ThreadCtx<'a> {
    /// Thread index within the block.
    tid: usize,
    /// Block index within the grid.
    bid: usize,
    block_dim: usize,
    grid_dim: usize,
    global: &'a mut Vec<i64>,
    shared: &'a mut Vec<i64>,
    ops: Vec<Op>,
}

impl ThreadCtx<'_> {
    /// Thread index within the block (`threadIdx.x`).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Block index (`blockIdx.x`).
    pub fn bid(&self) -> usize {
        self.bid
    }

    /// Threads per block (`blockDim.x`).
    pub fn block_dim(&self) -> usize {
        self.block_dim
    }

    /// Blocks in the grid (`gridDim.x`).
    pub fn grid_dim(&self) -> usize {
        self.grid_dim
    }

    /// Global thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    pub fn gtid(&self) -> usize {
        self.bid * self.block_dim + self.tid
    }

    /// Read global memory word `idx`.
    ///
    /// # Panics
    /// Panics out of bounds.
    pub fn read_global(&mut self, idx: usize) -> i64 {
        self.ops.push(Op::GlobalRead(idx as u64));
        self.global[idx]
    }

    /// Write global memory word `idx`.
    pub fn write_global(&mut self, idx: usize, v: i64) {
        self.ops.push(Op::GlobalWrite(idx as u64));
        self.global[idx] = v;
    }

    /// Read shared-memory word `idx` (per block).
    pub fn read_shared(&mut self, idx: usize) -> i64 {
        self.ops.push(Op::SharedRead(idx));
        self.shared[idx]
    }

    /// Write shared-memory word `idx`.
    pub fn write_shared(&mut self, idx: usize, v: i64) {
        self.ops.push(Op::SharedWrite(idx));
        self.shared[idx] = v;
    }

    /// Record a pure-compute operation (an FMA, a comparison, ...).
    pub fn compute(&mut self) {
        self.ops.push(Op::Compute);
    }
}

/// A phase: one barrier-delimited piece of a kernel.
pub type Phase<'k> = Box<dyn Fn(&mut ThreadCtx<'_>) + 'k>;

/// Trace hooks for a traced device: `gpu.*` counters in the shared
/// registry plus a [`EventKind::Kernel`] event per launch.
#[derive(Debug)]
struct GpuObs {
    launches: Counter,
    issue_cycles: Counter,
    executed_ops: Counter,
    divergence_waste: Counter,
    global_accesses: Counter,
    global_transactions: Counter,
    shared_cycles: Counter,
    bank_conflict_cycles: Counter,
    thread: ThreadTrace,
    launch_seq: u64,
}

/// The simulated device.
#[derive(Debug)]
pub struct Device {
    config: GpuConfig,
    /// Global memory, in words.
    pub global: Vec<i64>,
    obs: Option<GpuObs>,
}

impl Device {
    /// A device with `words` words of zeroed global memory.
    pub fn new(words: usize) -> Self {
        Self::with_config(words, GpuConfig::default())
    }

    /// A device with explicit cost parameters.
    pub fn with_config(words: usize, config: GpuConfig) -> Self {
        Device {
            config,
            global: vec![0; words],
            obs: None,
        }
    }

    /// Publish this device's per-launch stats into `session` as
    /// `gpu.*` counters (`gpu.launches`, `gpu.issue_cycles`,
    /// `gpu.executed_ops`, `gpu.divergence_waste`,
    /// `gpu.global_accesses`, `gpu.global_transactions`,
    /// `gpu.shared_cycles`, `gpu.bank_conflict_cycles`) and record one
    /// `kernel` event per launch. Tracing is strictly additive: the
    /// returned [`KernelStats`] and all memory effects are identical
    /// with or without it.
    pub fn attach_trace(&mut self, session: &TraceSession) {
        self.obs = Some(GpuObs {
            launches: session.counter("gpu.launches"),
            issue_cycles: session.counter("gpu.issue_cycles"),
            executed_ops: session.counter("gpu.executed_ops"),
            divergence_waste: session.counter("gpu.divergence_waste"),
            global_accesses: session.counter("gpu.global_accesses"),
            global_transactions: session.counter("gpu.global_transactions"),
            shared_cycles: session.counter("gpu.shared_cycles"),
            bank_conflict_cycles: session.counter("gpu.bank_conflict_cycles"),
            thread: session.thread(0),
            launch_seq: 0,
        });
    }

    /// The cost parameters.
    pub fn config(&self) -> GpuConfig {
        self.config
    }

    /// Copy host data into global memory at `base`.
    pub fn upload(&mut self, base: usize, data: &[i64]) {
        self.global[base..base + data.len()].copy_from_slice(data);
    }

    /// Launch a phased kernel: `grid_dim` blocks × `block_dim` threads,
    /// each block owning `shared_words` of shared memory. Phases run in
    /// order with an implicit `__syncthreads()` between them; within a
    /// phase every thread of the block runs the closure once.
    ///
    /// Blocks execute sequentially (deterministic); the cost model
    /// charges per-warp as described in the crate docs.
    pub fn launch(
        &mut self,
        grid_dim: usize,
        block_dim: usize,
        shared_words: usize,
        phases: &[Phase<'_>],
    ) -> KernelStats {
        assert!(grid_dim > 0 && block_dim > 0, "empty launch");
        let mut stats = KernelStats::default();
        let cfg = self.config;
        for bid in 0..grid_dim {
            let mut shared = vec![0i64; shared_words];
            for phase in phases {
                // Run every thread, collecting its op trace.
                let mut traces: Vec<Vec<Op>> = Vec::with_capacity(block_dim);
                for tid in 0..block_dim {
                    let mut ctx = ThreadCtx {
                        tid,
                        bid,
                        block_dim,
                        grid_dim,
                        global: &mut self.global,
                        shared: &mut shared,
                        ops: Vec::new(),
                    };
                    phase(&mut ctx);
                    traces.push(ctx.ops);
                }
                // Account per warp.
                for warp in traces.chunks(cfg.warp_size) {
                    let steps = warp.iter().map(Vec::len).max().unwrap_or(0);
                    stats.issue_cycles += steps as u64;
                    let ops: u64 = warp.iter().map(|t| t.len() as u64).sum();
                    stats.executed_ops += ops;
                    stats.divergence_waste += steps as u64 * warp.len() as u64 - ops;
                    // Lockstep step k: gather each lane's k-th op.
                    for k in 0..steps {
                        let mut segments: HashSet<u64> = HashSet::new();
                        let mut bank_load = vec![0u32; cfg.banks];
                        let mut any_shared = false;
                        for lane in warp {
                            match lane.get(k) {
                                Some(Op::GlobalRead(a)) | Some(Op::GlobalWrite(a)) => {
                                    stats.global_accesses += 1;
                                    segments.insert(a * cfg.elem_bytes / cfg.coalesce_bytes);
                                }
                                Some(Op::SharedRead(i)) | Some(Op::SharedWrite(i)) => {
                                    any_shared = true;
                                    bank_load[i % cfg.banks] += 1;
                                }
                                Some(Op::Compute) | None => {}
                            }
                        }
                        stats.global_transactions += segments.len() as u64;
                        if any_shared {
                            let conflict = *bank_load.iter().max().unwrap() as u64;
                            stats.shared_cycles += 1;
                            stats.bank_conflict_cycles += conflict.saturating_sub(1);
                        }
                    }
                }
            }
        }
        if let Some(obs) = self.obs.as_mut() {
            obs.launches.inc();
            obs.issue_cycles.add(stats.issue_cycles);
            obs.executed_ops.add(stats.executed_ops);
            obs.divergence_waste.add(stats.divergence_waste);
            obs.global_accesses.add(stats.global_accesses);
            obs.global_transactions.add(stats.global_transactions);
            obs.shared_cycles.add(stats.shared_cycles);
            obs.bank_conflict_cycles.add(stats.bank_conflict_cycles);
            obs.launch_seq += 1;
            obs.thread
                .record(EventKind::Kernel, obs.launch_seq, stats.cycles(&cfg));
        }
        stats
    }
}

/// Data-parallel map on a fresh device: one simulated GPU thread per
/// element, `out[i] = f(i)`. This is the scenario seam's GpuSim-backend
/// primitive — the workload packs whatever it computes per element into
/// one `i64` word.
///
/// Launches `ceil(n / block_dim)` blocks of `block_dim` threads over a
/// device with `n` words of global memory (threads past `n` idle, as a
/// real padded launch would). With `Some(session)` the device publishes
/// `gpu.*` counters and a `kernel` event; the memory result is
/// identical either way, and — since blocks execute sequentially — the
/// output is deterministic.
///
/// # Panics
/// Panics if `block_dim == 0`.
pub fn map_kernel(
    n: usize,
    block_dim: usize,
    session: Option<&TraceSession>,
    f: &(dyn Fn(usize) -> i64 + Sync),
) -> (Vec<i64>, KernelStats) {
    assert!(block_dim > 0, "empty block");
    let mut device = Device::new(n.max(1));
    if let Some(session) = session {
        device.attach_trace(session);
    }
    let grid_dim = n.div_ceil(block_dim).max(1);
    let phase: Phase<'_> = Box::new(move |t: &mut ThreadCtx<'_>| {
        let i = t.gtid();
        if i < n {
            t.compute();
            t.write_global(i, f(i));
        }
    });
    let stats = device.launch(grid_dim, block_dim, 0, &[phase]);
    device.global.truncate(n);
    (device.global, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_kernel_matches_host_map() {
        let n = 100;
        let (out, stats) = map_kernel(n, 32, None, &|i| (i as i64) * 3 - 7);
        let host: Vec<i64> = (0..n).map(|i| (i as i64) * 3 - 7).collect();
        assert_eq!(out, host);
        assert!(stats.executed_ops > 0);
    }

    #[test]
    fn map_kernel_traced_is_identical_and_publishes_counters() {
        let session = TraceSession::new();
        let (traced, _) = map_kernel(17, 8, Some(&session), &|i| i as i64 + 1);
        let (bare, _) = map_kernel(17, 8, None, &|i| i as i64 + 1);
        assert_eq!(traced, bare);
        let snap = session.snapshot();
        assert_eq!(snap.get("gpu.launches"), 1);
        assert!(snap.get("gpu.executed_ops") > 0);
        assert!(session.events().iter().any(|e| e.kind == EventKind::Kernel));
    }

    #[test]
    fn map_kernel_empty_input() {
        let (out, _) = map_kernel(0, 16, None, &|_| unreachable!("no elements"));
        assert!(out.is_empty());
    }

    fn copy_phase<'k>(n: usize, stride: usize) -> Vec<Phase<'k>> {
        vec![Box::new(move |t: &mut ThreadCtx<'_>| {
            let i = t.gtid();
            if i < n {
                let src = (i * stride) % n;
                let v = t.read_global(src);
                t.write_global(n + i, v);
            }
        })]
    }

    #[test]
    fn copy_kernel_copies() {
        let n = 256;
        let mut dev = Device::new(2 * n);
        dev.upload(0, &(0..n as i64).collect::<Vec<_>>());
        dev.launch(n / 64, 64, 0, &copy_phase(n, 1));
        assert_eq!(
            &dev.global[n..2 * n],
            &(0..n as i64).collect::<Vec<_>>()[..]
        );
    }

    #[test]
    fn coalesced_copy_uses_minimal_transactions() {
        let n = 1024;
        let mut dev = Device::new(2 * n);
        let stats = dev.launch(n / 256, 256, 0, &copy_phase(n, 1));
        // Reads: n/16 transactions (16 words of 8B per 128B segment);
        // writes the same.
        assert_eq!(stats.global_transactions, 2 * (n as u64 / 16));
        assert!((stats.coalescing_efficiency(&dev.config()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn strided_copy_wastes_transactions() {
        let n = 1024;
        let mut dev_seq = Device::new(2 * n);
        let seq = dev_seq.launch(n / 256, 256, 0, &copy_phase(n, 1));
        let mut dev_str = Device::new(2 * n);
        // Stride 16 words = 128 bytes: every lane in its own segment.
        let strided = dev_str.launch(n / 256, 256, 0, &copy_phase(n, 16));
        assert!(
            strided.global_transactions > 8 * seq.global_transactions,
            "strided {} vs sequential {}",
            strided.global_transactions,
            seq.global_transactions
        );
        assert!(strided.coalescing_efficiency(&dev_str.config()) < 0.2);
    }

    #[test]
    fn divergence_accounted() {
        let n = 256;
        let mut dev = Device::new(n);
        // Only even lanes do work: half the issue slots are wasted.
        let phases: Vec<Phase<'_>> = vec![Box::new(move |t: &mut ThreadCtx<'_>| {
            if t.tid().is_multiple_of(2) {
                t.compute();
                t.compute();
            }
        })];
        let stats = dev.launch(1, n, 0, &phases);
        assert!((stats.warp_efficiency() - 0.5).abs() < 1e-9);
        // A uniform kernel has no waste.
        let phases: Vec<Phase<'_>> = vec![Box::new(move |t: &mut ThreadCtx<'_>| {
            t.compute();
        })];
        let stats = dev.launch(1, n, 0, &phases);
        assert_eq!(stats.divergence_waste, 0);
        assert!((stats.warp_efficiency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_memory_bank_conflicts() {
        let n = 32;
        // Conflict-free: lane i hits bank i.
        let mut dev = Device::new(1);
        let phases: Vec<Phase<'_>> = vec![Box::new(move |t: &mut ThreadCtx<'_>| {
            let tid = t.tid();
            t.write_shared(tid, tid as i64);
        })];
        let free = dev.launch(1, n, 64, &phases);
        assert_eq!(free.bank_conflict_cycles, 0);
        assert_eq!(free.shared_cycles, 1);

        // 2-way conflict: lane i hits bank (i*2) % 32 — pairs collide.
        let phases: Vec<Phase<'_>> = vec![Box::new(move |t: &mut ThreadCtx<'_>| {
            let tid = t.tid();
            t.write_shared((tid * 2) % 64, 1);
        })];
        let conflicted = dev.launch(1, n, 64, &phases);
        // One conflict-free access slot plus one serialized extra.
        assert_eq!(conflicted.shared_cycles, 1);
        assert_eq!(
            conflicted.bank_conflict_cycles, 1,
            "2-way conflict serializes"
        );
    }

    /// Regression guard for the `cycles()` formula: a layout whose only
    /// difference is bank conflicts must model as strictly more
    /// expensive. The pre-fix formula charged `shared_cycles *
    /// shared_latency` alone and priced both layouts identically.
    #[test]
    fn bank_conflicts_increase_modeled_cycles() {
        let n = 32;
        let mut dev = Device::new(1);
        let cfg = dev.config();
        // Conflict-free: lane i -> bank i.
        let phases: Vec<Phase<'_>> = vec![Box::new(move |t: &mut ThreadCtx<'_>| {
            let tid = t.tid();
            t.write_shared(tid, 1);
        })];
        let free = dev.launch(1, n, n, &phases);
        // 32-way conflict: every lane -> bank 0 (stride = #banks).
        let phases: Vec<Phase<'_>> = vec![Box::new(move |t: &mut ThreadCtx<'_>| {
            let tid = t.tid();
            t.write_shared(tid * 32, 1);
        })];
        let conflicted = dev.launch(1, n, n * 32, &phases);
        // Identical issue/op/access counts either way...
        assert_eq!(free.issue_cycles, conflicted.issue_cycles);
        assert_eq!(free.executed_ops, conflicted.executed_ops);
        assert_eq!(free.shared_cycles, conflicted.shared_cycles);
        assert_eq!(free.bank_conflict_cycles, 0);
        assert_eq!(conflicted.bank_conflict_cycles, 31);
        // ...so only the conflict term separates the modeled costs.
        assert!(
            conflicted.cycles(&cfg) > free.cycles(&cfg),
            "bank conflicts must be charged: conflicted {} vs free {}",
            conflicted.cycles(&cfg),
            free.cycles(&cfg)
        );
        assert_eq!(
            conflicted.cycles(&cfg) - free.cycles(&cfg),
            31 * cfg.shared_latency
        );
    }

    #[test]
    fn traced_launch_publishes_gpu_counters_and_kernel_events() {
        let session = TraceSession::new();
        let n = 1024;
        let mut dev = Device::new(2 * n);
        dev.attach_trace(&session);
        let s1 = dev.launch(n / 256, 256, 0, &copy_phase(n, 1));
        let s2 = dev.launch(n / 256, 256, 0, &copy_phase(n, 16));
        let snap = session.snapshot();
        assert_eq!(snap.get("gpu.launches"), 2);
        assert_eq!(
            snap.get("gpu.issue_cycles"),
            s1.issue_cycles + s2.issue_cycles
        );
        assert_eq!(
            snap.get("gpu.executed_ops"),
            s1.executed_ops + s2.executed_ops
        );
        assert_eq!(
            snap.get("gpu.global_accesses"),
            s1.global_accesses + s2.global_accesses
        );
        assert_eq!(
            snap.get("gpu.global_transactions"),
            s1.global_transactions + s2.global_transactions
        );
        let kernels: Vec<_> = session
            .events()
            .into_iter()
            .filter(|e| e.kind == EventKind::Kernel)
            .collect();
        assert_eq!(kernels.len(), 2);
        assert_eq!((kernels[0].a, kernels[1].a), (1, 2));
        let cfg = dev.config();
        assert_eq!(kernels[0].b, s1.cycles(&cfg));
        assert_eq!(kernels[1].b, s2.cycles(&cfg));
    }

    #[test]
    fn tracing_does_not_change_stats_or_memory() {
        let n = 512;
        let run = |traced: bool| {
            let mut dev = Device::new(2 * n);
            let session = TraceSession::new();
            if traced {
                dev.attach_trace(&session);
            }
            dev.upload(0, &(0..n as i64).collect::<Vec<_>>());
            let stats = dev.launch(n / 64, 64, 64, &copy_phase(n, 4));
            (stats, dev.global)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn phases_are_barrier_separated() {
        // Phase 1: thread i writes shared[i]. Phase 2: thread i reads
        // shared[(i+1) % n] — correct only with a barrier between.
        let n = 64;
        let mut dev = Device::new(n);
        let phases: Vec<Phase<'_>> = vec![
            Box::new(move |t: &mut ThreadCtx<'_>| {
                let tid = t.tid();
                t.write_shared(tid, tid as i64 * 10);
            }),
            Box::new(move |t: &mut ThreadCtx<'_>| {
                let tid = t.tid();
                let dim = t.block_dim();
                let v = t.read_shared((tid + 1) % dim);
                t.write_global(tid, v);
            }),
        ];
        dev.launch(1, n, n, &phases);
        for i in 0..n {
            assert_eq!(dev.global[i], (((i + 1) % n) as i64) * 10);
        }
    }

    #[test]
    fn cycles_weight_global_over_shared() {
        let cfg = GpuConfig::default();
        let a = KernelStats {
            global_transactions: 10,
            ..Default::default()
        };
        let b = KernelStats {
            shared_cycles: 10,
            ..Default::default()
        };
        assert!(a.cycles(&cfg) > b.cycles(&cfg) * 10);
    }

    #[test]
    fn blocks_have_private_shared_memory() {
        // Each block writes its bid into shared[0] then reads it back in
        // phase 2; cross-block contamination would break this.
        let blocks = 4;
        let mut dev = Device::new(blocks);
        let phases: Vec<Phase<'_>> = vec![
            Box::new(move |t: &mut ThreadCtx<'_>| {
                if t.tid() == 0 {
                    let b = t.bid();
                    t.write_shared(0, b as i64 + 100);
                }
            }),
            Box::new(move |t: &mut ThreadCtx<'_>| {
                if t.tid() == 0 {
                    let v = t.read_shared(0);
                    let b = t.bid();
                    t.write_global(b, v);
                }
            }),
        ];
        dev.launch(blocks, 32, 4, &phases);
        assert_eq!(dev.global, vec![100, 101, 102, 103]);
    }
}
