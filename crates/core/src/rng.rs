//! A tiny deterministic pseudo-random generator for the simulators.
//!
//! The workspace's simulators (cache traces, PRAM inputs, schedulers with
//! random replacement, ...) must be reproducible from an explicit seed, and
//! must not pull a heavyweight dependency into every crate. This module
//! implements SplitMix64 (for seeding) feeding xoshiro256++ — the same
//! construction recommended by the xoshiro authors — in ~100 lines.
//!
//! This generator is *not* cryptographically secure. It is also
//! intentionally not `rand`-compatible: bench and example code that wants
//! distributions uses the real `rand` crate; the simulators only need
//! uniform integers, floats and shuffles.

/// Deterministic xoshiro256++ generator seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit value (xoshiro256++ core step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit value (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire 2019: unbiased bounded integers without division in the
        // common case.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.gen_range((hi - lo) as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// A vector of `n` uniform `u64`s — handy for sort/selection workloads.
    pub fn u64_vec(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_u64()).collect()
    }

    /// A vector of `n` uniform `i64`s.
    pub fn i64_vec(&mut self, n: usize) -> Vec<i64> {
        (0..n).map(|_| self.next_u64() as i64).collect()
    }

    /// Choose a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose on empty slice");
        &xs[self.gen_range(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_range() {
        let mut r = Rng::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear");
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(13);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn usize_in_respects_range() {
        let mut r = Rng::new(17);
        for _ in 0..1000 {
            let x = r.usize_in(5, 9);
            assert!((5..9).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(19);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0 + 1e-9)));
    }
}
