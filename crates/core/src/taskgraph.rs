//! Task graphs (dependence DAGs) with critical-path analysis and greedy
//! list scheduling — the "task graphs, work, span" row of the paper's
//! Table III.
//!
//! A [`TaskGraph`] is a DAG whose nodes carry integer costs. From it we
//! derive work (total cost), span (critical path), and a simulated greedy
//! schedule on `p` processors, which students compare against Brent's
//! bounds.

use crate::workspan::WorkSpan;
use std::collections::BinaryHeap;

/// Identifier of a task inside a [`TaskGraph`] (dense index).
pub type TaskId = usize;

/// A directed acyclic graph of unit tasks with costs and dependencies.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    costs: Vec<u64>,
    /// Outgoing edges: `succs[u]` are tasks that depend on `u`.
    succs: Vec<Vec<TaskId>>,
    /// Number of incoming edges per task.
    indegree: Vec<usize>,
    labels: Vec<String>,
}

/// The outcome of simulating a schedule of a [`TaskGraph`] on `p` workers.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// Total simulated completion time.
    pub makespan: u64,
    /// For each task: `(worker, start_time)` it was assigned.
    pub placement: Vec<(usize, u64)>,
    /// Busy time per worker (for load-imbalance diagnostics).
    pub busy: Vec<u64>,
}

impl ScheduleResult {
    /// Fraction of total worker-time spent busy: `Σ busy / (p * makespan)`.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        let total: u64 = self.busy.iter().sum();
        total as f64 / (self.busy.len() as u64 * self.makespan) as f64
    }
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task with the given cost; returns its id.
    pub fn add_task(&mut self, cost: u64) -> TaskId {
        self.add_labeled(cost, String::new())
    }

    /// Add a task with a human-readable label (used in reports).
    pub fn add_labeled(&mut self, cost: u64, label: impl Into<String>) -> TaskId {
        let id = self.costs.len();
        self.costs.push(cost);
        self.succs.push(Vec::new());
        self.indegree.push(0);
        self.labels.push(label.into());
        id
    }

    /// Declare that `after` cannot start until `before` completes.
    ///
    /// # Panics
    /// Panics on out-of-range ids or a self-edge.
    pub fn add_dep(&mut self, before: TaskId, after: TaskId) {
        assert!(before < self.costs.len(), "unknown task {before}");
        assert!(after < self.costs.len(), "unknown task {after}");
        assert_ne!(before, after, "self-dependency on task {before}");
        self.succs[before].push(after);
        self.indegree[after] += 1;
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Cost of one task.
    pub fn cost(&self, id: TaskId) -> u64 {
        self.costs[id]
    }

    /// Label of one task (may be empty).
    pub fn label(&self, id: TaskId) -> &str {
        &self.labels[id]
    }

    /// A topological order, or `None` if the graph contains a cycle.
    pub fn topo_order(&self) -> Option<Vec<TaskId>> {
        let mut indeg = self.indegree.clone();
        let mut ready: Vec<TaskId> = (0..self.len()).filter(|&t| indeg[t] == 0).collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(t) = ready.pop() {
            order.push(t);
            for &s in &self.succs[t] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        (order.len() == self.len()).then_some(order)
    }

    /// Work and span of the DAG.
    ///
    /// Work is the cost sum; span is the maximum cost of any directed path
    /// (critical path), computed by DP over a topological order.
    ///
    /// # Panics
    /// Panics if the graph is cyclic.
    pub fn work_span(&self) -> WorkSpan {
        let order = self.topo_order().expect("task graph contains a cycle");
        let work: u64 = self.costs.iter().sum();
        // finish[t] = earliest completion of t with unlimited processors.
        let mut finish = vec![0u64; self.len()];
        let mut span = 0;
        for &t in &order {
            let start = finish[t]; // max over predecessors, accumulated below
            let f = start + self.costs[t];
            span = span.max(f);
            for &s in &self.succs[t] {
                finish[s] = finish[s].max(f);
            }
        }
        WorkSpan::new(work, span)
    }

    /// The critical path itself, as a task sequence from a source to a sink.
    ///
    /// # Panics
    /// Panics if the graph is cyclic or empty.
    pub fn critical_path(&self) -> Vec<TaskId> {
        assert!(!self.is_empty(), "critical path of empty graph");
        let order = self.topo_order().expect("task graph contains a cycle");
        let mut finish = vec![0u64; self.len()];
        let mut pred: Vec<Option<TaskId>> = vec![None; self.len()];
        for &t in &order {
            let f = finish[t] + self.costs[t];
            for &s in &self.succs[t] {
                if f > finish[s] {
                    finish[s] = f;
                    pred[s] = Some(t);
                }
            }
        }
        let mut end = 0;
        let mut best = 0;
        for (t, &fin) in finish.iter().enumerate() {
            let f = fin + self.costs[t];
            if f > best {
                best = f;
                end = t;
            }
        }
        let mut path = vec![end];
        while let Some(p) = pred[*path.last().unwrap()] {
            path.push(p);
        }
        path.reverse();
        path
    }

    /// Simulate a greedy list schedule on `p` identical workers.
    ///
    /// At every instant, any ready task is assigned to any idle worker
    /// (ready tasks are taken in id order — deterministic). This is the
    /// scheduler Brent's theorem describes, so the resulting makespan
    /// always lies within `[max(T1/p, T∞), T1/p + T∞]`.
    ///
    /// # Panics
    /// Panics if `p == 0` or the graph is cyclic.
    pub fn schedule(&self, p: usize) -> ScheduleResult {
        assert!(p > 0, "need at least one worker");
        self.topo_order().expect("task graph contains a cycle");

        let mut indeg = self.indegree.clone();
        // Min-heap of ready tasks by id for determinism.
        let mut ready: BinaryHeap<std::cmp::Reverse<TaskId>> = (0..self.len())
            .filter(|&t| indeg[t] == 0)
            .map(std::cmp::Reverse)
            .collect();
        // Min-heap of running tasks by completion time.
        let mut running: BinaryHeap<std::cmp::Reverse<(u64, TaskId, usize)>> = BinaryHeap::new();
        let mut idle: Vec<usize> = (0..p).rev().collect();
        let mut placement = vec![(0usize, 0u64); self.len()];
        let mut busy = vec![0u64; p];
        let mut now = 0u64;
        let mut done = 0usize;

        while done < self.len() {
            // Dispatch as many ready tasks as we have idle workers.
            while !ready.is_empty() && !idle.is_empty() {
                let std::cmp::Reverse(t) = ready.pop().unwrap();
                let w = idle.pop().unwrap();
                placement[t] = (w, now);
                busy[w] += self.costs[t];
                running.push(std::cmp::Reverse((now + self.costs[t], t, w)));
            }
            // Advance to the next completion.
            let std::cmp::Reverse((finish, t, w)) = running
                .pop()
                .expect("deadlock: no running tasks but work remains");
            now = finish;
            idle.push(w);
            done += 1;
            for &s in &self.succs[t] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(std::cmp::Reverse(s));
                }
            }
            // Drain any other tasks finishing at the same instant.
            while let Some(&std::cmp::Reverse((f2, _, _))) = running.peek() {
                if f2 != now {
                    break;
                }
                let std::cmp::Reverse((_, t2, w2)) = running.pop().unwrap();
                idle.push(w2);
                done += 1;
                for &s in &self.succs[t2] {
                    indeg[s] -= 1;
                    if indeg[s] == 0 {
                        ready.push(std::cmp::Reverse(s));
                    }
                }
            }
        }
        ScheduleResult {
            makespan: now,
            placement,
            busy,
        }
    }

    /// Build the fork-join DAG of a balanced binary reduction over `n`
    /// leaves with unit-cost combines — the tree students draw for
    /// parallel reduce.
    pub fn reduction_tree(n: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        assert!(n > 0);
        let mut level: Vec<TaskId> = (0..n)
            .map(|i| g.add_labeled(1, format!("leaf{i}")))
            .collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    let c = g.add_labeled(1, "combine");
                    g.add_dep(pair[0], c);
                    g.add_dep(pair[1], c);
                    next.push(c);
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        g
    }

    /// Build the DAG of parallel-recursive merge sort on `n` elements where
    /// the merge at each node is modeled as a serial task of linear cost —
    /// the "naive" parallel merge sort whose span is Θ(n), used in CS41 to
    /// motivate the parallel merge.
    pub fn mergesort_serial_merge(n: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        fn rec(g: &mut TaskGraph, n: usize) -> TaskId {
            if n <= 1 {
                return g.add_labeled(1, "base");
            }
            let l = rec(g, n / 2);
            let r = rec(g, n - n / 2);
            let m = g.add_labeled(n as u64, "merge");
            g.add_dep(l, m);
            g.add_dep(r, m);
            m
        }
        rec(&mut g, n);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        // a -> b,c -> d, costs 1,2,3,1
        let mut g = TaskGraph::new();
        let a = g.add_task(1);
        let b = g.add_task(2);
        let c = g.add_task(3);
        let d = g.add_task(1);
        g.add_dep(a, b);
        g.add_dep(a, c);
        g.add_dep(b, d);
        g.add_dep(c, d);
        g
    }

    #[test]
    fn topo_order_valid() {
        let g = diamond();
        let order = g.topo_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &t) in order.iter().enumerate() {
                p[t] = i;
            }
            p
        };
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn cycle_detected() {
        let mut g = TaskGraph::new();
        let a = g.add_task(1);
        let b = g.add_task(1);
        g.add_dep(a, b);
        g.add_dep(b, a);
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn work_span_diamond() {
        let g = diamond();
        let ws = g.work_span();
        assert_eq!(ws.work, 7);
        assert_eq!(ws.span, 5); // a(1) -> c(3) -> d(1)
    }

    #[test]
    fn critical_path_diamond() {
        let g = diamond();
        assert_eq!(g.critical_path(), vec![0, 2, 3]);
    }

    #[test]
    fn schedule_respects_brent_bounds() {
        let g = TaskGraph::reduction_tree(64);
        let ws = g.work_span();
        for p in [1usize, 2, 3, 4, 8, 16, 64] {
            let sched = g.schedule(p);
            let t = sched.makespan as f64;
            assert!(
                t >= ws.brent_lower(p) - 1e-9,
                "p={p}: makespan {t} below lower bound {}",
                ws.brent_lower(p)
            );
            assert!(
                t <= ws.brent_upper(p) + 1e-9,
                "p={p}: makespan {t} above upper bound {}",
                ws.brent_upper(p)
            );
        }
    }

    #[test]
    fn schedule_one_worker_equals_work() {
        let g = diamond();
        let sched = g.schedule(1);
        assert_eq!(sched.makespan, g.work_span().work);
        assert!((sched.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn schedule_unbounded_equals_span() {
        let g = TaskGraph::reduction_tree(128);
        let ws = g.work_span();
        let sched = g.schedule(256);
        assert_eq!(sched.makespan, ws.span);
    }

    #[test]
    fn reduction_tree_counts() {
        let g = TaskGraph::reduction_tree(8);
        let ws = g.work_span();
        // 8 leaves + 7 combines, unit cost each.
        assert_eq!(ws.work, 15);
        // leaf + 3 combine levels.
        assert_eq!(ws.span, 4);
    }

    #[test]
    fn mergesort_serial_merge_span_is_linearish() {
        let g = TaskGraph::mergesort_serial_merge(256);
        let ws = g.work_span();
        // Span dominated by the final Θ(n) merge plus the chain above it:
        // span >= n, and far below work only by a log factor.
        assert!(ws.span >= 256);
        assert!(ws.work > ws.span);
        let par = ws.parallelism();
        assert!(par < 16.0, "serial merges kill parallelism, got {par}");
    }

    #[test]
    fn placement_workers_in_range() {
        let g = TaskGraph::reduction_tree(33);
        let sched = g.schedule(4);
        assert!(sched.placement.iter().all(|&(w, _)| w < 4));
        assert_eq!(sched.busy.len(), 4);
    }
}
