//! A deterministic multicore *cost* simulator.
//!
//! The paper's CS31 scalability lab has students time Pthreads programs on
//! real multicore lab machines. This workspace must reproduce the same
//! experiment *shapes* on any host — including the single-core container
//! the benches run in — so the scalability benches drive this model
//! instead of (in addition to) the wall clock.
//!
//! The model is intentionally simple and fully documented:
//!
//! * `p` identical cores executing unit-cost abstract operations;
//! * a *parallel phase* costs `max_i(ops_i) * op_cost` (the slowest worker
//!   gates the phase — load imbalance falls out naturally);
//! * a *barrier* costs `barrier_base + barrier_per_core * p` (linear
//!   barriers; students compare against `log2(p)` tree barriers);
//! * a *critical section* of `c` ops entered by every worker serializes:
//!   it costs `p * c * op_cost` plus lock overhead per entry;
//! * a *serial phase* runs on one core while others idle.
//!
//! Total time, per-core busy time, and derived speedup/efficiency are
//! recorded in a [`CoreTrace`]. A machine built with
//! [`SimMachine::with_trace`] additionally publishes `machine.phases`,
//! `machine.barriers`, and `machine.lock_entries` counters and
//! phase/barrier/lock events into a shared pdc-trace
//! [`TraceSession`](crate::trace::TraceSession), using the same schema
//! as the real work-stealing pool — which is what lets a bench overlay
//! simulated and measured runs in one JSON document.

use crate::metrics::Counter;
use crate::trace::{self, EventKind, ThreadTrace, TraceSession};

/// How barrier cost scales with the participant count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierModel {
    /// Central-counter barrier: cost grows linearly in participants.
    Linear,
    /// Combining-tree / dissemination barrier: cost grows as ⌈log₂ p⌉.
    Tree,
}

/// Tunable cost parameters of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of cores.
    pub cores: usize,
    /// Cost of one abstract operation (arbitrary time units).
    pub op_cost: f64,
    /// Fixed cost of a barrier episode.
    pub barrier_base: f64,
    /// Additional barrier cost per participating core (Linear) or per
    /// tree level (Tree).
    pub barrier_per_core: f64,
    /// Barrier scaling model.
    pub barrier_model: BarrierModel,
    /// Overhead for one lock acquire/release pair.
    pub lock_overhead: f64,
    /// One-time cost to spawn each worker (thread-creation overhead).
    pub spawn_cost: f64,
}

impl MachineConfig {
    /// A machine with `cores` cores and curriculum-lab-like constants:
    /// cheap ops, visible sync costs.
    pub fn with_cores(cores: usize) -> Self {
        assert!(cores > 0, "machine needs at least one core");
        MachineConfig {
            cores,
            op_cost: 1.0,
            barrier_base: 50.0,
            barrier_per_core: 10.0,
            barrier_model: BarrierModel::Linear,
            lock_overhead: 25.0,
            spawn_cost: 200.0,
        }
    }

    /// A frictionless machine (zero sync/spawn cost) for isolating
    /// algorithmic effects.
    pub fn ideal(cores: usize) -> Self {
        assert!(cores > 0);
        MachineConfig {
            cores,
            op_cost: 1.0,
            barrier_base: 0.0,
            barrier_per_core: 0.0,
            barrier_model: BarrierModel::Linear,
            lock_overhead: 0.0,
            spawn_cost: 0.0,
        }
    }
}

/// Accumulated execution state of a simulated run.
#[derive(Debug, Clone)]
pub struct CoreTrace {
    config: MachineConfig,
    /// Elapsed simulated time.
    elapsed: f64,
    /// Busy time per core.
    busy: Vec<f64>,
    /// Number of parallel phases executed.
    phases: u64,
    /// Number of barrier episodes executed.
    barriers: u64,
    /// Number of critical-section entries executed.
    lock_entries: u64,
}

impl CoreTrace {
    fn new(config: MachineConfig) -> Self {
        CoreTrace {
            busy: vec![0.0; config.cores],
            config,
            elapsed: 0.0,
            phases: 0,
            barriers: 0,
            lock_entries: 0,
        }
    }

    /// Elapsed simulated time so far.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Per-core busy time.
    pub fn busy(&self) -> &[f64] {
        &self.busy
    }

    /// Parallel phases executed.
    pub fn phases(&self) -> u64 {
        self.phases
    }

    /// Barrier episodes executed.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }

    /// Critical-section entries executed.
    pub fn lock_entries(&self) -> u64 {
        self.lock_entries
    }

    /// Overall core utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.elapsed == 0.0 {
            return 1.0;
        }
        self.busy.iter().sum::<f64>() / (self.elapsed * self.config.cores as f64)
    }
}

/// The machine's pdc-trace hookup (counters + event stream).
#[derive(Debug, Clone)]
struct MachineObs {
    thread: ThreadTrace,
    phases: Counter,
    barriers: Counter,
    lock_entries: Counter,
    /// Analysis site id for the machine's modeled critical section.
    lock_site: u64,
}

/// The simulated machine: owns a [`MachineConfig`] and executes phases.
#[derive(Debug, Clone)]
pub struct SimMachine {
    trace: CoreTrace,
    obs: Option<MachineObs>,
}

impl SimMachine {
    /// Create a machine from a configuration.
    pub fn new(config: MachineConfig) -> Self {
        SimMachine {
            trace: CoreTrace::new(config),
            obs: None,
        }
    }

    /// Shorthand for `SimMachine::new(MachineConfig::with_cores(p))`.
    pub fn with_cores(p: usize) -> Self {
        Self::new(MachineConfig::with_cores(p))
    }

    /// Create a machine that publishes `machine.*` counters and
    /// phase/barrier/lock events into `session`.
    ///
    /// The simulator is one logical actor; it records as actor 0.
    /// Event kinds keep machine events distinguishable from pool
    /// (spawn/steal) and MPI (send/recv) events in a shared session.
    pub fn with_trace(config: MachineConfig, session: &TraceSession) -> Self {
        SimMachine {
            trace: CoreTrace::new(config),
            obs: Some(MachineObs {
                thread: session.thread(0),
                phases: session.counter("machine.phases"),
                barriers: session.counter("machine.barriers"),
                lock_entries: session.counter("machine.lock_entries"),
                lock_site: trace::next_site_id(),
            }),
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> MachineConfig {
        self.trace.config
    }

    /// Pay the spawn cost for starting `n` workers (serialized on the
    /// spawning core, as `pthread_create` loops are).
    pub fn spawn_workers(&mut self, n: usize) {
        let cost = self.trace.config.spawn_cost * n as f64;
        self.trace.elapsed += cost;
        self.trace.busy[0] += cost;
    }

    /// Execute a serial phase of `ops` operations on core 0.
    pub fn serial(&mut self, ops: u64) {
        let t = ops as f64 * self.trace.config.op_cost;
        self.trace.elapsed += t;
        self.trace.busy[0] += t;
    }

    /// Execute a parallel phase: worker `i` performs `ops_per_worker[i]`
    /// operations. The phase lasts as long as the slowest worker. Workers
    /// beyond `cores` time-share: effective duration is computed by
    /// list-scheduling the workers onto cores (longest-processing-time
    /// order).
    ///
    /// # Panics
    /// Panics if `ops_per_worker` is empty.
    pub fn parallel(&mut self, ops_per_worker: &[u64]) {
        assert!(!ops_per_worker.is_empty(), "parallel phase with no workers");
        let cfg = self.trace.config;
        // LPT list scheduling of workers onto cores.
        let mut loads: Vec<f64> = vec![0.0; cfg.cores];
        let mut jobs: Vec<f64> = ops_per_worker
            .iter()
            .map(|&o| o as f64 * cfg.op_cost)
            .collect();
        jobs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for j in jobs {
            // Assign to least-loaded core.
            let (idx, _) = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            loads[idx] += j;
        }
        let dur = loads.iter().cloned().fold(0.0f64, f64::max);
        self.trace.elapsed += dur;
        for (b, l) in self.trace.busy.iter_mut().zip(loads.iter()) {
            *b += l;
        }
        let seq = self.trace.phases;
        self.trace.phases += 1;
        if let Some(obs) = &self.obs {
            obs.phases.inc();
            obs.thread
                .record(EventKind::Phase, seq, ops_per_worker.len() as u64);
        }
    }

    /// Convenience: a perfectly divisible parallel phase of `total_ops`
    /// split across `workers` workers (the remainder goes to the first
    /// workers, modelling block partitioning).
    pub fn parallel_even(&mut self, total_ops: u64, workers: usize) {
        assert!(workers > 0);
        let base = total_ops / workers as u64;
        let rem = (total_ops % workers as u64) as usize;
        let ops: Vec<u64> = (0..workers).map(|i| base + u64::from(i < rem)).collect();
        self.parallel(&ops);
    }

    /// Execute a barrier among `participants` workers, costed per the
    /// configured [`BarrierModel`].
    pub fn barrier(&mut self, participants: usize) {
        let cfg = self.trace.config;
        let scale = match cfg.barrier_model {
            BarrierModel::Linear => participants as f64,
            BarrierModel::Tree => {
                (usize::BITS - participants.max(1).next_power_of_two().leading_zeros() - 1).max(1)
                    as f64
            }
        };
        let t = cfg.barrier_base + cfg.barrier_per_core * scale;
        self.trace.elapsed += t;
        let seq = self.trace.barriers;
        self.trace.barriers += 1;
        if let Some(obs) = &self.obs {
            obs.barriers.inc();
            obs.thread
                .record(EventKind::Barrier, seq, participants as u64);
        }
    }

    /// Every one of `workers` workers enters a critical section of
    /// `ops_inside` operations once: the entries serialize.
    pub fn critical_each(&mut self, workers: usize, ops_inside: u64) {
        let cfg = self.trace.config;
        let per_entry = cfg.lock_overhead + ops_inside as f64 * cfg.op_cost;
        let t = per_entry * workers as f64;
        self.trace.elapsed += t;
        let seq = self.trace.lock_entries;
        self.trace.lock_entries += workers as u64;
        // The serialized section keeps exactly one core busy at a time.
        self.trace.busy[0] += t;
        if let Some(obs) = &self.obs {
            obs.lock_entries.add(workers as u64);
            // Bracket the modeled critical section with acquire/release
            // on a stable site so `pdc-analyze` sees the machine's lock
            // discipline alongside real pdc-sync primitives.
            obs.thread
                .record(EventKind::Acquire, obs.lock_site, trace::SYNC_EXCLUSIVE);
            obs.thread.record(EventKind::Lock, seq, workers as u64);
            obs.thread
                .record(EventKind::Release, obs.lock_site, trace::SYNC_EXCLUSIVE);
        }
    }

    /// Finish the run and return the trace.
    pub fn finish(self) -> CoreTrace {
        self.trace
    }

    /// Simulate a canonical barrier-synchronized data-parallel program:
    /// `iters` iterations, each doing `ops_per_iter` total work split over
    /// `workers` workers followed by one barrier, after `serial_setup`
    /// serial operations and worker spawning. Returns total simulated time.
    ///
    /// This is exactly the structure of the parallel Game-of-Life lab, and
    /// is the model the scalability benches sweep.
    pub fn run_bsp_program(
        p: usize,
        serial_setup: u64,
        iters: u64,
        ops_per_iter: u64,
        workers: usize,
    ) -> f64 {
        let mut m = SimMachine::with_cores(p);
        m.serial(serial_setup);
        m.spawn_workers(workers);
        for _ in 0..iters {
            m.parallel_even(ops_per_iter, workers);
            m.barrier(workers);
        }
        m.finish().elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_phase_costs_ops() {
        let mut m = SimMachine::new(MachineConfig::ideal(4));
        m.serial(100);
        assert_eq!(m.finish().elapsed(), 100.0);
    }

    #[test]
    fn parallel_even_divides_work() {
        let mut m = SimMachine::new(MachineConfig::ideal(4));
        m.parallel_even(1000, 4);
        assert_eq!(m.finish().elapsed(), 250.0);
    }

    #[test]
    fn parallel_slowest_worker_gates() {
        let mut m = SimMachine::new(MachineConfig::ideal(4));
        m.parallel(&[10, 10, 10, 100]);
        assert_eq!(m.finish().elapsed(), 100.0);
    }

    #[test]
    fn oversubscription_time_shares() {
        // 8 workers of 100 ops on 2 ideal cores: 4 workers per core.
        let mut m = SimMachine::new(MachineConfig::ideal(2));
        m.parallel(&[100; 8]);
        assert_eq!(m.finish().elapsed(), 400.0);
    }

    #[test]
    fn remainder_rows_create_imbalance() {
        // 10 ops over 3 workers on ideal 3-core: 4,3,3 -> phase = 4.
        let mut m = SimMachine::new(MachineConfig::ideal(3));
        m.parallel_even(10, 3);
        assert_eq!(m.finish().elapsed(), 4.0);
    }

    #[test]
    fn tree_barrier_cheaper_at_scale() {
        let linear = MachineConfig::with_cores(64);
        let tree = MachineConfig {
            barrier_model: BarrierModel::Tree,
            ..linear
        };
        let mut a = SimMachine::new(linear);
        a.barrier(64);
        let mut b = SimMachine::new(tree);
        b.barrier(64);
        // 64 participants: linear pays 64 units, tree pays log2(64) = 6.
        assert!(b.finish().elapsed() < a.finish().elapsed() / 4.0);
    }

    #[test]
    fn barrier_cost_scales_with_participants() {
        let mut a = SimMachine::with_cores(8);
        a.barrier(2);
        let ta = a.finish().elapsed();
        let mut b = SimMachine::with_cores(8);
        b.barrier(8);
        let tb = b.finish().elapsed();
        assert!(tb > ta);
    }

    #[test]
    fn critical_sections_serialize() {
        let cfg = MachineConfig {
            lock_overhead: 0.0,
            ..MachineConfig::ideal(8)
        };
        let mut m = SimMachine::new(cfg);
        m.critical_each(8, 10);
        // 8 workers x 10 ops, fully serialized.
        assert_eq!(m.finish().elapsed(), 80.0);
    }

    #[test]
    fn bsp_program_shows_amdahl_shape() {
        // Strong scaling of a BSP program: speedup grows then saturates.
        let total = |p: usize| SimMachine::run_bsp_program(p, 1_000, 100, 100_000, p);
        let t1 = total(1);
        let mut prev_speedup = 0.0;
        for p in [2usize, 4, 8, 16] {
            let s = t1 / total(p);
            assert!(s > prev_speedup, "speedup should grow to p=16");
            prev_speedup = s;
        }
        // Efficiency at 16 cores is below 1 (sync + serial overhead).
        assert!(prev_speedup / 16.0 < 1.0);
        // And far from the ideal 16.
        assert!(prev_speedup < 16.0);
    }

    #[test]
    fn bsp_oversubscription_hurts() {
        // Same machine (4 cores), more workers than cores: barrier costs
        // rise with workers while compute time cannot drop below 4-way.
        let t4 = SimMachine::run_bsp_program(4, 0, 50, 10_000, 4);
        let t32 = SimMachine::run_bsp_program(4, 0, 50, 10_000, 32);
        assert!(t32 > t4, "oversubscription should not help: {t32} <= {t4}");
    }

    #[test]
    fn utilization_reflects_idle_cores() {
        let mut m = SimMachine::new(MachineConfig::ideal(4));
        m.serial(100); // 3 cores idle
        let tr = m.finish();
        assert!((tr.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn trace_counters() {
        let mut m = SimMachine::with_cores(2);
        m.barrier(2);
        m.barrier(2);
        m.critical_each(2, 1);
        m.parallel_even(10, 2);
        let tr = m.finish();
        assert_eq!(tr.barriers(), 2);
        assert_eq!(tr.lock_entries(), 2);
        assert_eq!(tr.phases(), 1);
    }

    #[test]
    fn traced_machine_publishes_counters_and_events() {
        use crate::trace::{EventKind, TraceSession};
        let session = TraceSession::new();
        let mut m = SimMachine::with_trace(MachineConfig::with_cores(4), &session);
        m.parallel_even(100, 4);
        m.barrier(4);
        m.parallel_even(100, 4);
        m.barrier(4);
        m.critical_each(4, 5);
        let tr = m.finish();
        let snap = session.snapshot();
        assert_eq!(snap.get("machine.phases"), tr.phases());
        assert_eq!(snap.get("machine.barriers"), 2);
        assert_eq!(snap.get("machine.lock_entries"), 4);
        let events = session.events();
        let barriers: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Barrier)
            .collect();
        assert_eq!(barriers.len(), 2);
        assert_eq!((barriers[0].a, barriers[0].b), (0, 4));
        assert_eq!((barriers[1].a, barriers[1].b), (1, 4));
        assert!(events.iter().any(|e| e.kind == EventKind::Phase));
        assert!(events.iter().any(|e| e.kind == EventKind::Lock));
        // Event order follows program order (single logical actor).
        assert!(events.windows(2).all(|w| w[0].ts < w[1].ts));
    }

    #[test]
    fn untraced_machine_costs_match_traced() {
        let session = crate::trace::TraceSession::new();
        let mut a = SimMachine::new(MachineConfig::with_cores(4));
        let mut b = SimMachine::with_trace(MachineConfig::with_cores(4), &session);
        for m in [&mut a, &mut b] {
            m.serial(10);
            m.parallel_even(1000, 4);
            m.barrier(4);
            m.critical_each(4, 3);
        }
        assert_eq!(a.finish().elapsed(), b.finish().elapsed());
    }
}
