//! pdc-trace: one observability schema for real and simulated runs.
//!
//! The same trace vocabulary covers the work-stealing pool (real
//! threads), [`SimMachine`](crate::machine::SimMachine) (simulated
//! cores), and the `pdc-mpi` rank world (message passing), so a bench
//! can overlay "what the simulator predicted" against "what the pool
//! did" in a single JSON document.
//!
//! Two layers:
//!
//! * **Counters** — named monotone totals in a [`metrics::Registry`]
//!   (see [`crate::metrics`]). Naming convention: dotted lowercase
//!   `subsystem.metric`, e.g. `pool.steals`, `machine.barriers`,
//!   `mpi.bytes`, `ft.reassignments`, `kv.conn_errors`.
//! * **Events** — a bounded per-thread [`TraceRecorder`]. Every event
//!   carries a logical timestamp drawn from one shared atomic clock, an
//!   `actor` (worker index, simulated core, or MPI rank), an
//!   [`EventKind`], and two kind-specific `u64` payload fields. When a
//!   thread's buffer fills, further events are counted in `dropped`
//!   rather than blocking or reallocating.
//!
//! [`TraceSession`] bundles a shared registry with a recorder and
//! exports both as `pdc-trace/2` JSON (hand-rolled via
//! [`report::json_escape`](crate::report::json_escape) — the build is
//! offline, so there is no serde). Schema 2 extends schema 1 with the
//! `gpu.*` / `io.*` / `cache.*` counter families, the `kernel` and
//! `coll_begin`/`coll_end` event kinds, and an optional `tables` array
//! of JSON-ified report tables (see
//! [`TraceSession::to_json_with_tables`]).

use crate::metrics::{Counter, Registry, Snapshot};
use crate::report::json_escape;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default per-thread event capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// What happened. The two payload fields of [`Event`] are named per
/// kind; see [`EventKind::field_names`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A task was submitted (`task` = sequence number, `pending` =
    /// tasks in flight after the submit).
    Spawn,
    /// A worker stole work (`victim` = queue stolen from, `tasks` =
    /// tasks obtained).
    Steal,
    /// A barrier completed (`index` = barrier sequence number,
    /// `participants` = cores/ranks that synchronised).
    Barrier,
    /// A mutual-exclusion section was entered (`index` = lock sequence
    /// number, `entries` = total entries so far).
    Lock,
    /// A message was sent (`peer` = destination, `bytes` = payload
    /// size).
    Send,
    /// A message was received (`peer` = source, `bytes` = payload
    /// size).
    Recv,
    /// A parallel phase completed (`index` = phase sequence number,
    /// `tasks` = tasks in the phase).
    Phase,
    /// Free-form marker (`a`, `b` caller-defined).
    Mark,
    /// A GPU kernel launch completed (`launch` = launch sequence
    /// number on the device, `cycles` = modeled cycle cost).
    Kernel,
    /// A rank entered a collective (`coll` = collective id code, `seq`
    /// = per-rank collective sequence number). Sends/recvs recorded by
    /// the same actor between a `coll_begin` and its matching
    /// `coll_end` belong to that collective.
    CollBegin,
    /// A rank left a collective (`coll`, `seq` match the begin mark).
    CollEnd,
}

impl EventKind {
    /// Stable lowercase name used in the JSON export.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Spawn => "spawn",
            EventKind::Steal => "steal",
            EventKind::Barrier => "barrier",
            EventKind::Lock => "lock",
            EventKind::Send => "send",
            EventKind::Recv => "recv",
            EventKind::Phase => "phase",
            EventKind::Mark => "mark",
            EventKind::Kernel => "kernel",
            EventKind::CollBegin => "coll_begin",
            EventKind::CollEnd => "coll_end",
        }
    }

    /// JSON field names for the `a`/`b` payload of this kind.
    pub fn field_names(self) -> (&'static str, &'static str) {
        match self {
            EventKind::Spawn => ("task", "pending"),
            EventKind::Steal => ("victim", "tasks"),
            EventKind::Barrier => ("index", "participants"),
            EventKind::Lock => ("index", "entries"),
            EventKind::Send => ("peer", "bytes"),
            EventKind::Recv => ("peer", "bytes"),
            EventKind::Phase => ("index", "tasks"),
            EventKind::Mark => ("a", "b"),
            EventKind::Kernel => ("launch", "cycles"),
            EventKind::CollBegin => ("coll", "seq"),
            EventKind::CollEnd => ("coll", "seq"),
        }
    }
}

/// One recorded occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Logical timestamp from the session-wide atomic clock. Orders
    /// events across threads without reading wall clocks.
    pub ts: u64,
    /// Who: pool worker index, simulated core, or MPI rank.
    pub actor: u32,
    /// What happened.
    pub kind: EventKind,
    /// First payload field; meaning per [`EventKind::field_names`].
    pub a: u64,
    /// Second payload field; meaning per [`EventKind::field_names`].
    pub b: u64,
}

impl Event {
    /// Render as one `pdc-trace/2` JSON object.
    pub fn to_json(&self) -> String {
        let (fa, fb) = self.kind.field_names();
        format!(
            "{{\"ts\":{},\"actor\":{},\"kind\":\"{}\",\"{}\":{},\"{}\":{}}}",
            self.ts,
            self.actor,
            self.kind.as_str(),
            fa,
            self.a,
            fb,
            self.b
        )
    }
}

#[derive(Debug)]
struct ThreadBuf {
    actor: u32,
    events: Mutex<Vec<Event>>,
}

#[derive(Debug)]
struct RecorderInner {
    clock: AtomicU64,
    capacity: usize,
    dropped: AtomicU64,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
}

/// Bounded multi-producer event recorder.
///
/// Each producing thread registers once via [`TraceRecorder::thread`]
/// and then records into its own buffer; the only cross-thread traffic
/// on the hot path is the `fetch_add` on the shared logical clock.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl TraceRecorder {
    /// A recorder allowing `capacity_per_thread` events per registered
    /// thread before it starts counting drops.
    pub fn new(capacity_per_thread: usize) -> Self {
        TraceRecorder {
            inner: Arc::new(RecorderInner {
                clock: AtomicU64::new(0),
                capacity: capacity_per_thread,
                dropped: AtomicU64::new(0),
                threads: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Register a producing thread (or simulated core, or rank).
    pub fn thread(&self, actor: u32) -> ThreadTrace {
        let buf = Arc::new(ThreadBuf {
            actor,
            events: Mutex::new(Vec::new()),
        });
        self.inner
            .threads
            .lock()
            .expect("trace recorder poisoned")
            .push(buf.clone());
        ThreadTrace {
            buf,
            inner: self.inner.clone(),
        }
    }

    /// Current logical time (next timestamp to be issued).
    pub fn now(&self) -> u64 {
        self.inner.clock.load(Ordering::Relaxed)
    }

    /// Events recorded so far, merged across threads and sorted by
    /// logical timestamp.
    pub fn events(&self) -> Vec<Event> {
        let threads = self.inner.threads.lock().expect("trace recorder poisoned");
        let mut out = Vec::new();
        for t in threads.iter() {
            out.extend(
                t.events
                    .lock()
                    .expect("trace buffer poisoned")
                    .iter()
                    .copied(),
            );
        }
        out.sort_by_key(|e| e.ts);
        out
    }

    /// Events discarded because a per-thread buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

/// A single thread's handle into a [`TraceRecorder`].
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    buf: Arc<ThreadBuf>,
    inner: Arc<RecorderInner>,
}

impl ThreadTrace {
    /// Record one event, stamping it with the shared logical clock.
    /// Silently counted as dropped once the buffer is full.
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        let ts = self.inner.clock.fetch_add(1, Ordering::Relaxed);
        let mut events = self.buf.events.lock().expect("trace buffer poisoned");
        if events.len() < self.inner.capacity {
            events.push(Event {
                ts,
                actor: self.buf.actor,
                kind,
                a,
                b,
            });
        } else {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The actor id this handle records as.
    pub fn actor(&self) -> u32 {
        self.buf.actor
    }
}

/// A shared registry + recorder pair: one trace for one experiment.
///
/// Cloning shares both halves, so a bench can hand the same session to
/// a `WorkStealingPool`, a `SimMachine`, and an MPI world and export
/// all their counters and events as one document.
#[derive(Debug, Clone, Default)]
pub struct TraceSession {
    registry: Arc<Registry>,
    recorder: TraceRecorder,
}

impl TraceSession {
    /// A session with the default per-thread event capacity.
    pub fn new() -> Self {
        TraceSession::default()
    }

    /// A session allowing `capacity_per_thread` events per thread.
    pub fn with_capacity(capacity_per_thread: usize) -> Self {
        TraceSession {
            registry: Arc::new(Registry::new()),
            recorder: TraceRecorder::new(capacity_per_thread),
        }
    }

    /// The shared counter registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Fetch or create a counter in the shared registry.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Register a producing thread/core/rank with the recorder.
    pub fn thread(&self, actor: u32) -> ThreadTrace {
        self.recorder.thread(actor)
    }

    /// Snapshot the shared registry.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// All events so far, sorted by logical timestamp.
    pub fn events(&self) -> Vec<Event> {
        self.recorder.events()
    }

    /// Events dropped due to full buffers.
    pub fn dropped(&self) -> u64 {
        self.recorder.dropped()
    }

    /// Export the whole session as `pdc-trace/2` JSON.
    pub fn to_json(&self) -> String {
        self.to_json_with_meta(&[])
    }

    /// Export as `pdc-trace/2` JSON with caller-supplied metadata
    /// (e.g. `[("bench", "t1_machine")]`).
    pub fn to_json_with_meta(&self, meta: &[(&str, String)]) -> String {
        self.to_json_with_tables(meta, &[])
    }

    /// Export as `pdc-trace/2` JSON with metadata plus a `tables` array
    /// of pre-serialized JSON table objects (as produced by
    /// [`Table::to_json`](crate::report::Table::to_json)), so one
    /// document carries both the counters and the printed tables they
    /// back. The array is omitted when `tables` is empty, keeping
    /// schema-1 consumers working unchanged.
    pub fn to_json_with_tables(&self, meta: &[(&str, String)], tables: &[String]) -> String {
        let mut out = String::from("{\"schema\":\"pdc-trace/2\"");
        if !meta.is_empty() {
            out.push_str(",\"meta\":{");
            for (i, (k, v)) in meta.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push('}');
        }
        if !tables.is_empty() {
            out.push_str(",\"tables\":[");
            for (i, t) in tables.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(t);
            }
            out.push(']');
        }
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(name), value));
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str(&format!("],\"dropped\":{}}}", self.dropped()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn events_get_distinct_ordered_timestamps() {
        let rec = TraceRecorder::new(64);
        let t = rec.thread(0);
        t.record(EventKind::Phase, 0, 8);
        t.record(EventKind::Barrier, 0, 4);
        t.record(EventKind::Phase, 1, 8);
        let evs = rec.events();
        assert_eq!(evs.len(), 3);
        assert!(evs.windows(2).all(|w| w[0].ts < w[1].ts));
        assert_eq!(evs[1].kind, EventKind::Barrier);
    }

    #[test]
    fn capacity_bounds_buffer_and_counts_drops() {
        let rec = TraceRecorder::new(2);
        let t = rec.thread(3);
        for i in 0..5 {
            t.record(EventKind::Mark, i, 0);
        }
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn multi_thread_merge_is_globally_ordered() {
        let rec = TraceRecorder::new(1024);
        let mut handles = Vec::new();
        for actor in 0..4u32 {
            let t = rec.thread(actor);
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    t.record(EventKind::Mark, i, 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let evs = rec.events();
        assert_eq!(evs.len(), 400);
        assert!(evs.windows(2).all(|w| w[0].ts < w[1].ts));
        // Every actor contributed.
        for actor in 0..4 {
            assert!(evs.iter().any(|e| e.actor == actor));
        }
    }

    #[test]
    fn session_json_has_schema_counters_events() {
        let s = TraceSession::with_capacity(16);
        s.counter("pool.executed").add(42);
        s.thread(1).record(EventKind::Steal, 0, 3);
        let json = s.to_json_with_meta(&[("bench", "demo".to_string())]);
        assert!(json.starts_with("{\"schema\":\"pdc-trace/2\""));
        assert!(json.contains("\"meta\":{\"bench\":\"demo\"}"));
        assert!(json.contains("\"pool.executed\":42"));
        assert!(json.contains("\"kind\":\"steal\""));
        assert!(json.contains("\"victim\":0"));
        assert!(json.contains("\"tasks\":3"));
        assert!(json.ends_with("\"dropped\":0}"));
        // No tables were supplied: the array is omitted entirely.
        assert!(!json.contains("\"tables\""));
    }

    #[test]
    fn session_json_embeds_tables() {
        let s = TraceSession::with_capacity(16);
        s.counter("gpu.launches").inc();
        let tables = vec![
            "{\"title\":\"A\",\"headers\":[\"x\"],\"rows\":[[\"1\"]]}".to_string(),
            "{\"title\":\"B\",\"headers\":[\"y\"],\"rows\":[]}".to_string(),
        ];
        let json = s.to_json_with_tables(&[], &tables);
        assert!(json.contains("\"tables\":[{\"title\":\"A\""));
        assert!(json.contains("{\"title\":\"B\""));
        assert!(json.contains("\"gpu.launches\":1"));
    }

    #[test]
    fn schema2_event_kinds_are_stable() {
        assert_eq!(EventKind::Kernel.as_str(), "kernel");
        assert_eq!(EventKind::Kernel.field_names(), ("launch", "cycles"));
        assert_eq!(EventKind::CollBegin.as_str(), "coll_begin");
        assert_eq!(EventKind::CollEnd.as_str(), "coll_end");
        assert_eq!(EventKind::CollBegin.field_names(), ("coll", "seq"));
        assert_eq!(EventKind::CollEnd.field_names(), ("coll", "seq"));
        let e = Event {
            ts: 7,
            actor: 2,
            kind: EventKind::Kernel,
            a: 1,
            b: 900,
        };
        assert_eq!(
            e.to_json(),
            "{\"ts\":7,\"actor\":2,\"kind\":\"kernel\",\"launch\":1,\"cycles\":900}"
        );
    }

    #[test]
    fn cloned_session_shares_registry_and_clock() {
        let a = TraceSession::new();
        let b = a.clone();
        a.counter("n").inc();
        b.counter("n").inc();
        assert_eq!(a.snapshot().get("n"), 2);
        b.thread(0).record(EventKind::Mark, 0, 0);
        assert_eq!(a.events().len(), 1);
    }

    #[test]
    fn event_kind_names_are_stable() {
        assert_eq!(EventKind::Send.as_str(), "send");
        assert_eq!(EventKind::Send.field_names(), ("peer", "bytes"));
        assert_eq!(EventKind::Phase.field_names(), ("index", "tasks"));
    }
}
