//! pdc-trace: one observability schema for real and simulated runs.
//!
//! The same trace vocabulary covers the work-stealing pool (real
//! threads), [`SimMachine`](crate::machine::SimMachine) (simulated
//! cores), and the `pdc-mpi` rank world (message passing), so a bench
//! can overlay "what the simulator predicted" against "what the pool
//! did" in a single JSON document.
//!
//! Two layers:
//!
//! * **Counters** — named monotone totals in a [`metrics::Registry`]
//!   (see [`crate::metrics`]). Naming convention: dotted lowercase
//!   `subsystem.metric`, e.g. `pool.steals`, `machine.barriers`,
//!   `mpi.bytes`, `ft.reassignments`, `kv.conn_errors`.
//! * **Events** — a bounded per-thread [`TraceRecorder`]. Every event
//!   carries a logical timestamp drawn from one shared atomic clock, an
//!   `actor` (worker index, simulated core, or MPI rank), an
//!   [`EventKind`], and two kind-specific `u64` payload fields. When a
//!   thread's buffer fills, further events are counted in `dropped`
//!   rather than blocking or reallocating.
//!
//! [`TraceSession`] bundles a shared registry with a recorder and
//! exports both as `pdc-trace/2` JSON (hand-rolled via
//! [`report::json_escape`](crate::report::json_escape) — the build is
//! offline, so there is no serde). Schema 2 extends schema 1 with the
//! `gpu.*` / `io.*` / `cache.*` counter families, the `kernel` and
//! `coll_begin`/`coll_end` event kinds, and an optional `tables` array
//! of JSON-ified report tables (see
//! [`TraceSession::to_json_with_tables`]).

use crate::metrics::{Counter, Registry, Snapshot};
use crate::report::json_escape;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default per-thread event capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// `mode` payload of [`EventKind::Acquire`]/[`EventKind::Release`]:
/// shared (reader-side) ownership of a site, e.g. an rwlock read guard.
pub const SYNC_SHARED: u64 = 0;
/// `mode` payload: exclusive ownership of a site (mutex, spin, ticket,
/// rwlock write guard). Only exclusive/shared acquisitions feed the
/// lockset and lock-order analyses.
pub const SYNC_EXCLUSIVE: u64 = 1;
/// `mode` payload: a synchronisation *pulse* — a semaphore permit,
/// barrier episode, condvar signal, bounded-buffer hand-off, or
/// once-cell publication. Pulses carry happens-before edges but are not
/// held locks; the lock-order analysis treats a pulse currently "held"
/// (acquired and not yet released) as a *gate* that can serialise
/// otherwise-cyclic acquisition orders.
pub const SYNC_PULSE: u64 = 2;

/// Site id meaning "never trace this primitive" (internal
/// implementation locks, e.g. a mutex's waiter-queue spinlock).
pub const SITE_UNTRACED: u64 = u64::MAX;

static NEXT_SITE: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh process-wide synchronisation site id (or fork/join
/// handle). Ids are never reused and never 0 or [`SITE_UNTRACED`].
pub fn next_site_id() -> u64 {
    NEXT_SITE.fetch_add(1, Ordering::Relaxed)
}

/// A lazily-allocated per-primitive site id.
///
/// `const`-constructible so `const fn new` primitives (spin, ticket,
/// rwlock, once-cell) can embed one; the id is drawn from
/// [`next_site_id`] on first use. [`SiteId::disabled`] yields a
/// permanently untraced site for internal locks whose events would only
/// pollute the analysis.
#[derive(Debug)]
pub struct SiteId(AtomicU64);

impl SiteId {
    /// An unallocated site; the id is assigned on first [`SiteId::get`].
    pub const fn new() -> Self {
        SiteId(AtomicU64::new(0))
    }

    /// A site that never records (always `None`).
    pub const fn disabled() -> Self {
        SiteId(AtomicU64::new(SITE_UNTRACED))
    }

    /// Whether this site is permanently untraced (never records, never
    /// allocates an id). Cheap: one relaxed load.
    pub fn is_disabled(&self) -> bool {
        self.0.load(Ordering::Relaxed) == SITE_UNTRACED
    }

    /// The site id, allocating one on first call. `None` if disabled.
    pub fn get(&self) -> Option<u64> {
        match self.0.load(Ordering::Relaxed) {
            SITE_UNTRACED => None,
            0 => {
                let id = next_site_id();
                // First caller wins; losers adopt the winner's id.
                match self
                    .0
                    .compare_exchange(0, id, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => Some(id),
                    Err(cur) => Some(cur),
                }
            }
            id => Some(id),
        }
    }
}

impl Default for SiteId {
    fn default() -> Self {
        SiteId::new()
    }
}

/// What happened. The two payload fields of [`Event`] are named per
/// kind; see [`EventKind::field_names`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A task was submitted (`task` = sequence number, `pending` =
    /// tasks in flight after the submit).
    Spawn,
    /// A worker stole work (`victim` = queue stolen from, `tasks` =
    /// tasks obtained).
    Steal,
    /// A barrier completed (`index` = barrier sequence number,
    /// `participants` = cores/ranks that synchronised).
    Barrier,
    /// A mutual-exclusion section was entered (`index` = lock sequence
    /// number, `entries` = total entries so far).
    Lock,
    /// A message was sent (`peer` = destination, `bytes` = payload
    /// size).
    Send,
    /// A message was received (`peer` = source, `bytes` = payload
    /// size).
    Recv,
    /// A parallel phase completed (`index` = phase sequence number,
    /// `tasks` = tasks in the phase).
    Phase,
    /// Free-form marker (`a`, `b` caller-defined).
    Mark,
    /// A GPU kernel launch completed (`launch` = launch sequence
    /// number on the device, `cycles` = modeled cycle cost).
    Kernel,
    /// A rank entered a collective (`coll` = collective id code, `seq`
    /// = per-rank collective sequence number). Sends/recvs recorded by
    /// the same actor between a `coll_begin` and its matching
    /// `coll_end` belong to that collective.
    CollBegin,
    /// A rank left a collective (`coll`, `seq` match the begin mark).
    CollEnd,
    /// A synchronisation site was acquired (`site` = stable per-primitive
    /// id from [`next_site_id`], `mode` = [`SYNC_SHARED`],
    /// [`SYNC_EXCLUSIVE`] or [`SYNC_PULSE`]). Recorded *after* the
    /// acquisition succeeds, so in logical-timestamp order an acquire
    /// never precedes the release that enabled it.
    Acquire,
    /// A synchronisation site was released (`site`, `mode` as for
    /// `Acquire`). Recorded *before* the releasing store, for the same
    /// ordering guarantee.
    Release,
    /// A shared variable was read (`var` = caller-chosen variable id,
    /// `aux` caller-defined).
    Read,
    /// A shared variable was written (`var`, `aux` as for `Read`).
    Write,
    /// The recording thread published its causal history under a fresh
    /// handle (`handle` = id from [`next_site_id`], `task`
    /// caller-defined) — e.g. a pool submit or the parent side of a
    /// fork-join split.
    Fork,
    /// The recording thread adopted the causal history published under
    /// `handle` (`task` caller-defined) — e.g. a worker starting a
    /// submitted task, or the parent joining a finished child.
    Join,
    /// The recording thread woke from a condition-style wait on `site`
    /// (`seq` = the notification count observed). Semantically a pulse
    /// acquire: the waiter adopts the history the matching [`Signal`]
    /// published. Recorded *after* the wakeup (and any mutex
    /// re-acquisition), so its timestamp follows the signal's.
    Wait,
    /// The recording thread signalled waiters on `site` (`seq` = the
    /// notification count after this signal). Semantically a pulse
    /// release: publishes the signaller's history to every waiter woken
    /// by this notification. Recorded *before* waiters are woken.
    Signal,
    /// A message was sent on an in-process channel (`chan` = stable
    /// channel id from [`next_site_id`], `seq` = per-channel send
    /// sequence number). Unlike [`EventKind::Send`], which pairs by
    /// (sender, peer) actor ids, channel events pair FIFO per channel:
    /// the *n*-th `chan_recv` on a channel adopts the history published
    /// by the *n*-th `chan_send`. Recorded *before* the message is
    /// enqueued.
    ChanSend,
    /// A message was received on an in-process channel (`chan`, `seq`
    /// match the send). Recorded *after* the message is dequeued.
    ChanRecv,
}

impl EventKind {
    /// Stable lowercase name used in the JSON export.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Spawn => "spawn",
            EventKind::Steal => "steal",
            EventKind::Barrier => "barrier",
            EventKind::Lock => "lock",
            EventKind::Send => "send",
            EventKind::Recv => "recv",
            EventKind::Phase => "phase",
            EventKind::Mark => "mark",
            EventKind::Kernel => "kernel",
            EventKind::CollBegin => "coll_begin",
            EventKind::CollEnd => "coll_end",
            EventKind::Acquire => "acquire",
            EventKind::Release => "release",
            EventKind::Read => "read",
            EventKind::Write => "write",
            EventKind::Fork => "fork",
            EventKind::Join => "join",
            EventKind::Wait => "wait",
            EventKind::Signal => "signal",
            EventKind::ChanSend => "chan_send",
            EventKind::ChanRecv => "chan_recv",
        }
    }

    /// Parse a stable lowercase name back into the kind (the inverse of
    /// [`EventKind::as_str`]); `None` for unknown names. Used by the
    /// `pdc-trace/2` parser in [`crate::merge`] when a parent process
    /// re-reads the snapshots its rank processes wrote to disk.
    pub fn parse_name(name: &str) -> Option<EventKind> {
        Some(match name {
            "spawn" => EventKind::Spawn,
            "steal" => EventKind::Steal,
            "barrier" => EventKind::Barrier,
            "lock" => EventKind::Lock,
            "send" => EventKind::Send,
            "recv" => EventKind::Recv,
            "phase" => EventKind::Phase,
            "mark" => EventKind::Mark,
            "kernel" => EventKind::Kernel,
            "coll_begin" => EventKind::CollBegin,
            "coll_end" => EventKind::CollEnd,
            "acquire" => EventKind::Acquire,
            "release" => EventKind::Release,
            "read" => EventKind::Read,
            "write" => EventKind::Write,
            "fork" => EventKind::Fork,
            "join" => EventKind::Join,
            "wait" => EventKind::Wait,
            "signal" => EventKind::Signal,
            "chan_send" => EventKind::ChanSend,
            "chan_recv" => EventKind::ChanRecv,
            _ => return None,
        })
    }

    /// JSON field names for the `a`/`b` payload of this kind.
    pub fn field_names(self) -> (&'static str, &'static str) {
        match self {
            EventKind::Spawn => ("task", "pending"),
            EventKind::Steal => ("victim", "tasks"),
            EventKind::Barrier => ("index", "participants"),
            EventKind::Lock => ("index", "entries"),
            EventKind::Send => ("peer", "bytes"),
            EventKind::Recv => ("peer", "bytes"),
            EventKind::Phase => ("index", "tasks"),
            EventKind::Mark => ("a", "b"),
            EventKind::Kernel => ("launch", "cycles"),
            EventKind::CollBegin => ("coll", "seq"),
            EventKind::CollEnd => ("coll", "seq"),
            EventKind::Acquire => ("site", "mode"),
            EventKind::Release => ("site", "mode"),
            EventKind::Read => ("var", "aux"),
            EventKind::Write => ("var", "aux"),
            EventKind::Fork => ("handle", "task"),
            EventKind::Join => ("handle", "task"),
            EventKind::Wait => ("site", "seq"),
            EventKind::Signal => ("site", "seq"),
            EventKind::ChanSend => ("chan", "seq"),
            EventKind::ChanRecv => ("chan", "seq"),
        }
    }
}

/// One recorded occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Logical timestamp from the session-wide atomic clock. Orders
    /// events across threads without reading wall clocks.
    pub ts: u64,
    /// Who: pool worker index, simulated core, or MPI rank.
    pub actor: u32,
    /// What happened.
    pub kind: EventKind,
    /// First payload field; meaning per [`EventKind::field_names`].
    pub a: u64,
    /// Second payload field; meaning per [`EventKind::field_names`].
    pub b: u64,
}

impl Event {
    /// Render as one `pdc-trace/2` JSON object.
    pub fn to_json(&self) -> String {
        let (fa, fb) = self.kind.field_names();
        format!(
            "{{\"ts\":{},\"actor\":{},\"kind\":\"{}\",\"{}\":{},\"{}\":{}}}",
            self.ts,
            self.actor,
            self.kind.as_str(),
            fa,
            self.a,
            fb,
            self.b
        )
    }
}

#[derive(Debug)]
struct ThreadBuf {
    actor: u32,
    events: Mutex<Vec<Event>>,
}

#[derive(Debug)]
struct RecorderInner {
    clock: AtomicU64,
    capacity: usize,
    dropped: AtomicU64,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
    auto_actor: AtomicU32,
}

impl RecorderInner {
    fn register(self: &Arc<Self>, actor: u32) -> ThreadTrace {
        let buf = Arc::new(ThreadBuf {
            actor,
            events: Mutex::new(Vec::new()),
        });
        self.threads
            .lock()
            .expect("trace recorder poisoned")
            .push(buf.clone());
        ThreadTrace {
            buf,
            inner: self.clone(),
        }
    }
}

/// First actor id handed out by [`ThreadTrace::sibling_auto`]; explicit
/// actors (worker indices, ranks, simulated cores) live far below this.
pub const AUTO_ACTOR_BASE: u32 = 1 << 20;

/// Bounded multi-producer event recorder.
///
/// Each producing thread registers once via [`TraceRecorder::thread`]
/// and then records into its own buffer; the only cross-thread traffic
/// on the hot path is the `fetch_add` on the shared logical clock.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl TraceRecorder {
    /// A recorder allowing `capacity_per_thread` events per registered
    /// thread before it starts counting drops.
    pub fn new(capacity_per_thread: usize) -> Self {
        TraceRecorder {
            inner: Arc::new(RecorderInner {
                clock: AtomicU64::new(0),
                capacity: capacity_per_thread,
                dropped: AtomicU64::new(0),
                threads: Mutex::new(Vec::new()),
                auto_actor: AtomicU32::new(AUTO_ACTOR_BASE),
            }),
        }
    }

    /// Register a producing thread (or simulated core, or rank).
    pub fn thread(&self, actor: u32) -> ThreadTrace {
        self.inner.register(actor)
    }

    /// Current logical time (next timestamp to be issued).
    pub fn now(&self) -> u64 {
        self.inner.clock.load(Ordering::Relaxed)
    }

    /// Events recorded so far, merged across threads and sorted by
    /// logical timestamp.
    pub fn events(&self) -> Vec<Event> {
        let threads = self.inner.threads.lock().expect("trace recorder poisoned");
        let mut out = Vec::new();
        for t in threads.iter() {
            out.extend(
                t.events
                    .lock()
                    .expect("trace buffer poisoned")
                    .iter()
                    .copied(),
            );
        }
        out.sort_by_key(|e| e.ts);
        out
    }

    /// Events discarded because a per-thread buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

/// A single thread's handle into a [`TraceRecorder`].
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    buf: Arc<ThreadBuf>,
    inner: Arc<RecorderInner>,
}

impl ThreadTrace {
    /// Record one event, stamping it with the shared logical clock.
    /// Silently counted as dropped once the buffer is full.
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        let ts = self.inner.clock.fetch_add(1, Ordering::Relaxed);
        let mut events = self.buf.events.lock().expect("trace buffer poisoned");
        if events.len() < self.inner.capacity {
            events.push(Event {
                ts,
                actor: self.buf.actor,
                kind,
                a,
                b,
            });
        } else {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The actor id this handle records as.
    pub fn actor(&self) -> u32 {
        self.buf.actor
    }

    /// A new handle into the same recorder under a fresh automatically
    /// allocated actor id (from [`AUTO_ACTOR_BASE`] upward) — for
    /// short-lived threads (e.g. the child of a fork-join split) that
    /// have no natural worker/rank index.
    pub fn sibling_auto(&self) -> ThreadTrace {
        let actor = self.inner.auto_actor.fetch_add(1, Ordering::Relaxed);
        self.inner.register(actor)
    }
}

// ---------------------------------------------------------------------
// Thread-local sync trace: lets pdc-sync primitives record acquire/
// release events with the correct actor without threading a handle
// through every guard signature. Runtimes that own threads (pool
// workers, MPI rank threads, fixtures) install a handle; everything is
// a no-op when none is installed.
// ---------------------------------------------------------------------

thread_local! {
    static SYNC_TRACE: RefCell<Option<ThreadTrace>> = const { RefCell::new(None) };
}

// Fast global gate: stays `false` until the first install anywhere in
// the process, so untraced programs pay one relaxed load per lock op
// instead of a thread-local lookup.
static SYNC_TRACING_EVER: AtomicBool = AtomicBool::new(false);

/// Install `trace` as this thread's sync trace, returning the previous
/// one (reinstall it to nest scopes).
pub fn install_sync_trace(trace: ThreadTrace) -> Option<ThreadTrace> {
    SYNC_TRACING_EVER.store(true, Ordering::Release);
    SYNC_TRACE.with(|c| c.borrow_mut().replace(trace))
}

/// Remove and return this thread's sync trace, if any.
pub fn clear_sync_trace() -> Option<ThreadTrace> {
    if !SYNC_TRACING_EVER.load(Ordering::Acquire) {
        return None;
    }
    SYNC_TRACE.with(|c| c.borrow_mut().take())
}

/// A clone of this thread's installed sync trace, if any.
pub fn current_sync_trace() -> Option<ThreadTrace> {
    if !SYNC_TRACING_EVER.load(Ordering::Acquire) {
        return None;
    }
    SYNC_TRACE.with(|c| c.borrow().clone())
}

/// Record `kind(a, b)` against this thread's installed sync trace.
/// Returns whether an event was recorded.
pub fn record_sync(kind: EventKind, a: u64, b: u64) -> bool {
    if !SYNC_TRACING_EVER.load(Ordering::Acquire) {
        return false;
    }
    SYNC_TRACE.with(|c| match &*c.borrow() {
        Some(t) => {
            t.record(kind, a, b);
            true
        }
        None => false,
    })
}

/// Record an [`EventKind::Acquire`]/[`EventKind::Release`] against
/// `site`, allocating the site id only if a trace is installed.
pub fn record_sync_site(kind: EventKind, site: &SiteId, mode: u64) {
    if !SYNC_TRACING_EVER.load(Ordering::Acquire) {
        return;
    }
    SYNC_TRACE.with(|c| {
        if let Some(t) = &*c.borrow() {
            if let Some(id) = site.get() {
                t.record(kind, id, mode);
            }
        }
    });
}

/// `a` payload of a [`EventKind::Mark`] carrying a step-attribution
/// weight in `b`: the recording strand performed `b` abstract unit-cost
/// operations since its previous event. The span pass
/// (`pdc_analyze::span`) weighs these marks by `b` when measuring
/// empirical work and critical-path length; every other event weighs 1.
pub const MARK_STEPS: u64 = u64::MAX - 1;

/// Attribute `steps` unit-cost operations to this thread's installed
/// sync trace (see [`MARK_STEPS`]). A no-op when no trace is installed,
/// so algorithm kernels can call it unconditionally. Returns whether an
/// event was recorded.
pub fn record_steps(steps: u64) -> bool {
    record_sync(EventKind::Mark, MARK_STEPS, steps)
}

/// Record a shared-variable read of `var` (see [`EventKind::Read`]).
pub fn record_var_read(var: u64) {
    record_sync(EventKind::Read, var, 0);
}

/// Record a shared-variable write of `var` (see [`EventKind::Write`]).
pub fn record_var_write(var: u64) {
    record_sync(EventKind::Write, var, 0);
}

/// A shared registry + recorder pair: one trace for one experiment.
///
/// Cloning shares both halves, so a bench can hand the same session to
/// a `WorkStealingPool`, a `SimMachine`, and an MPI world and export
/// all their counters and events as one document.
#[derive(Debug, Clone, Default)]
pub struct TraceSession {
    registry: Arc<Registry>,
    recorder: TraceRecorder,
}

impl TraceSession {
    /// A session with the default per-thread event capacity.
    pub fn new() -> Self {
        TraceSession::default()
    }

    /// A session allowing `capacity_per_thread` events per thread.
    pub fn with_capacity(capacity_per_thread: usize) -> Self {
        TraceSession {
            registry: Arc::new(Registry::new()),
            recorder: TraceRecorder::new(capacity_per_thread),
        }
    }

    /// The shared counter registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Fetch or create a counter in the shared registry.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Register a producing thread/core/rank with the recorder.
    pub fn thread(&self, actor: u32) -> ThreadTrace {
        self.recorder.thread(actor)
    }

    /// Snapshot the shared registry.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// All events so far, sorted by logical timestamp.
    pub fn events(&self) -> Vec<Event> {
        self.recorder.events()
    }

    /// Events dropped due to full buffers.
    pub fn dropped(&self) -> u64 {
        self.recorder.dropped()
    }

    /// Current value of the session-wide logical clock: the timestamp
    /// the next recorded event will receive. Lets controllers attribute
    /// events to execution windows without re-reading the whole stream.
    pub fn now(&self) -> u64 {
        self.recorder.now()
    }

    /// Export the whole session as `pdc-trace/2` JSON.
    pub fn to_json(&self) -> String {
        self.to_json_with_meta(&[])
    }

    /// Export as `pdc-trace/2` JSON with caller-supplied metadata
    /// (e.g. `[("bench", "t1_machine")]`).
    pub fn to_json_with_meta(&self, meta: &[(&str, String)]) -> String {
        self.to_json_with_tables(meta, &[])
    }

    /// Export as `pdc-trace/2` JSON with metadata plus a `tables` array
    /// of pre-serialized JSON table objects (as produced by
    /// [`Table::to_json`](crate::report::Table::to_json)), so one
    /// document carries both the counters and the printed tables they
    /// back. The array is omitted when `tables` is empty, keeping
    /// schema-1 consumers working unchanged.
    pub fn to_json_with_tables(&self, meta: &[(&str, String)], tables: &[String]) -> String {
        let mut out = String::from("{\"schema\":\"pdc-trace/2\"");
        if !meta.is_empty() {
            out.push_str(",\"meta\":{");
            for (i, (k, v)) in meta.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push('}');
        }
        if !tables.is_empty() {
            out.push_str(",\"tables\":[");
            for (i, t) in tables.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(t);
            }
            out.push(']');
        }
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(name), value));
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str(&format!("],\"dropped\":{}}}", self.dropped()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn events_get_distinct_ordered_timestamps() {
        let rec = TraceRecorder::new(64);
        let t = rec.thread(0);
        t.record(EventKind::Phase, 0, 8);
        t.record(EventKind::Barrier, 0, 4);
        t.record(EventKind::Phase, 1, 8);
        let evs = rec.events();
        assert_eq!(evs.len(), 3);
        assert!(evs.windows(2).all(|w| w[0].ts < w[1].ts));
        assert_eq!(evs[1].kind, EventKind::Barrier);
    }

    #[test]
    fn capacity_bounds_buffer_and_counts_drops() {
        let rec = TraceRecorder::new(2);
        let t = rec.thread(3);
        for i in 0..5 {
            t.record(EventKind::Mark, i, 0);
        }
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn multi_thread_merge_is_globally_ordered() {
        let rec = TraceRecorder::new(1024);
        let mut handles = Vec::new();
        for actor in 0..4u32 {
            let t = rec.thread(actor);
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    t.record(EventKind::Mark, i, 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let evs = rec.events();
        assert_eq!(evs.len(), 400);
        assert!(evs.windows(2).all(|w| w[0].ts < w[1].ts));
        // Every actor contributed.
        for actor in 0..4 {
            assert!(evs.iter().any(|e| e.actor == actor));
        }
    }

    #[test]
    fn session_json_has_schema_counters_events() {
        let s = TraceSession::with_capacity(16);
        s.counter("pool.executed").add(42);
        s.thread(1).record(EventKind::Steal, 0, 3);
        let json = s.to_json_with_meta(&[("bench", "demo".to_string())]);
        assert!(json.starts_with("{\"schema\":\"pdc-trace/2\""));
        assert!(json.contains("\"meta\":{\"bench\":\"demo\"}"));
        assert!(json.contains("\"pool.executed\":42"));
        assert!(json.contains("\"kind\":\"steal\""));
        assert!(json.contains("\"victim\":0"));
        assert!(json.contains("\"tasks\":3"));
        assert!(json.ends_with("\"dropped\":0}"));
        // No tables were supplied: the array is omitted entirely.
        assert!(!json.contains("\"tables\""));
    }

    #[test]
    fn session_json_embeds_tables() {
        let s = TraceSession::with_capacity(16);
        s.counter("gpu.launches").inc();
        let tables = vec![
            "{\"title\":\"A\",\"headers\":[\"x\"],\"rows\":[[\"1\"]]}".to_string(),
            "{\"title\":\"B\",\"headers\":[\"y\"],\"rows\":[]}".to_string(),
        ];
        let json = s.to_json_with_tables(&[], &tables);
        assert!(json.contains("\"tables\":[{\"title\":\"A\""));
        assert!(json.contains("{\"title\":\"B\""));
        assert!(json.contains("\"gpu.launches\":1"));
    }

    #[test]
    fn schema2_event_kinds_are_stable() {
        assert_eq!(EventKind::Kernel.as_str(), "kernel");
        assert_eq!(EventKind::Kernel.field_names(), ("launch", "cycles"));
        assert_eq!(EventKind::CollBegin.as_str(), "coll_begin");
        assert_eq!(EventKind::CollEnd.as_str(), "coll_end");
        assert_eq!(EventKind::CollBegin.field_names(), ("coll", "seq"));
        assert_eq!(EventKind::CollEnd.field_names(), ("coll", "seq"));
        let e = Event {
            ts: 7,
            actor: 2,
            kind: EventKind::Kernel,
            a: 1,
            b: 900,
        };
        assert_eq!(
            e.to_json(),
            "{\"ts\":7,\"actor\":2,\"kind\":\"kernel\",\"launch\":1,\"cycles\":900}"
        );
    }

    #[test]
    fn cloned_session_shares_registry_and_clock() {
        let a = TraceSession::new();
        let b = a.clone();
        a.counter("n").inc();
        b.counter("n").inc();
        assert_eq!(a.snapshot().get("n"), 2);
        b.thread(0).record(EventKind::Mark, 0, 0);
        assert_eq!(a.events().len(), 1);
    }

    #[test]
    fn event_kind_names_are_stable() {
        assert_eq!(EventKind::Send.as_str(), "send");
        assert_eq!(EventKind::Send.field_names(), ("peer", "bytes"));
        assert_eq!(EventKind::Phase.field_names(), ("index", "tasks"));
    }

    #[test]
    fn analysis_event_kinds_are_stable() {
        assert_eq!(EventKind::Acquire.as_str(), "acquire");
        assert_eq!(EventKind::Release.as_str(), "release");
        assert_eq!(EventKind::Read.as_str(), "read");
        assert_eq!(EventKind::Write.as_str(), "write");
        assert_eq!(EventKind::Fork.as_str(), "fork");
        assert_eq!(EventKind::Join.as_str(), "join");
        assert_eq!(EventKind::Acquire.field_names(), ("site", "mode"));
        assert_eq!(EventKind::Release.field_names(), ("site", "mode"));
        assert_eq!(EventKind::Read.field_names(), ("var", "aux"));
        assert_eq!(EventKind::Write.field_names(), ("var", "aux"));
        assert_eq!(EventKind::Fork.field_names(), ("handle", "task"));
        assert_eq!(EventKind::Join.field_names(), ("handle", "task"));
        let e = Event {
            ts: 3,
            actor: 1,
            kind: EventKind::Acquire,
            a: 9,
            b: SYNC_EXCLUSIVE,
        };
        assert_eq!(
            e.to_json(),
            "{\"ts\":3,\"actor\":1,\"kind\":\"acquire\",\"site\":9,\"mode\":1}"
        );
    }

    #[test]
    fn condition_event_kinds_are_stable() {
        assert_eq!(EventKind::Wait.as_str(), "wait");
        assert_eq!(EventKind::Signal.as_str(), "signal");
        assert_eq!(EventKind::Wait.field_names(), ("site", "seq"));
        assert_eq!(EventKind::Signal.field_names(), ("site", "seq"));
        assert_eq!(EventKind::parse_name("wait"), Some(EventKind::Wait));
        assert_eq!(EventKind::parse_name("signal"), Some(EventKind::Signal));
        let e = Event {
            ts: 4,
            actor: 2,
            kind: EventKind::Signal,
            a: 9,
            b: 1,
        };
        assert_eq!(
            e.to_json(),
            "{\"ts\":4,\"actor\":2,\"kind\":\"signal\",\"site\":9,\"seq\":1}"
        );
    }

    #[test]
    fn site_ids_are_lazy_unique_and_stable() {
        let a = SiteId::new();
        let b = SiteId::new();
        let ia = a.get().unwrap();
        assert_eq!(a.get(), Some(ia), "site id is stable across calls");
        let ib = b.get().unwrap();
        assert_ne!(ia, ib, "distinct sites get distinct ids");
        assert_ne!(ia, 0);
        assert_ne!(ia, SITE_UNTRACED);
        assert_eq!(SiteId::disabled().get(), None);
    }

    #[test]
    fn sync_trace_install_record_clear() {
        let rec = TraceRecorder::new(64);
        assert!(!record_sync(EventKind::Mark, 0, 0), "no trace installed");
        let prev = install_sync_trace(rec.thread(7));
        assert!(prev.is_none());
        assert!(record_sync(EventKind::Fork, 11, 0));
        let site = SiteId::new();
        record_sync_site(EventKind::Acquire, &site, SYNC_EXCLUSIVE);
        record_sync_site(EventKind::Release, &site, SYNC_EXCLUSIVE);
        record_var_write(42);
        let cleared = clear_sync_trace();
        assert!(cleared.is_some());
        assert!(!record_sync(EventKind::Mark, 0, 0), "cleared");
        let evs = rec.events();
        assert_eq!(evs.len(), 4);
        assert!(evs.iter().all(|e| e.actor == 7));
        assert_eq!(evs[1].kind, EventKind::Acquire);
        assert_eq!(evs[1].a, site.get().unwrap());
        assert_eq!(evs[3].kind, EventKind::Write);
        assert_eq!(evs[3].a, 42);
        // Disabled sites never record.
        install_sync_trace(rec.thread(7));
        record_sync_site(EventKind::Acquire, &SiteId::disabled(), SYNC_EXCLUSIVE);
        clear_sync_trace();
        assert_eq!(rec.events().len(), 4);
    }

    #[test]
    fn sibling_auto_allocates_fresh_actor_ids() {
        let rec = TraceRecorder::new(16);
        let t = rec.thread(0);
        let c1 = t.sibling_auto();
        let c2 = c1.sibling_auto();
        assert_eq!(c1.actor(), AUTO_ACTOR_BASE);
        assert_eq!(c2.actor(), AUTO_ACTOR_BASE + 1);
        c1.record(EventKind::Join, 1, 0);
        assert_eq!(rec.events()[0].actor, AUTO_ACTOR_BASE);
    }
}
