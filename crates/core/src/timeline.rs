//! Minimal self-contained HTML timeline for `pdc-trace/2` events — the
//! trace-viewer stub.
//!
//! One horizontal lane per actor, logical timestamps on the x-axis,
//! one colored marker per event (hover for the payload), and a shaded
//! span for each collective an actor is inside (`coll_begin` →
//! matching `coll_end`). The output is a single HTML document with
//! inline SVG and CSS — no scripts, no external assets — so a failing
//! schedule from `pdc-check` or a snapshot from `experiments --trace`
//! can be opened straight from `target/` in any browser.

use crate::trace::{Event, EventKind};
use std::collections::BTreeMap;

/// Horizontal pixels per logical timestamp step.
const STEP_MIN: u64 = 4;
const STEP_MAX: u64 = 14;
/// Lane geometry.
const LANE_H: u64 = 28;
const LANE_GAP: u64 = 8;
const LEFT_MARGIN: u64 = 90;
const TOP_MARGIN: u64 = 30;

fn kind_color(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Acquire | EventKind::Lock => "#d4791f",
        EventKind::Release => "#e3b33b",
        EventKind::Wait => "#8e5bb5",
        EventKind::Signal => "#bb6bd9",
        EventKind::Read => "#4a90d9",
        EventKind::Write => "#d0453f",
        EventKind::Fork => "#3a9b5c",
        EventKind::Join => "#2a6f41",
        EventKind::Send => "#1fa8a0",
        EventKind::Recv => "#157571",
        EventKind::CollBegin | EventKind::CollEnd => "#6b7a90",
        EventKind::Barrier | EventKind::Phase => "#8a8a8a",
        _ => "#555555",
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render `events` as a self-contained HTML timeline titled `title`.
///
/// Events need not be sorted; timestamps are compacted to consecutive
/// positions so sparse clocks do not stretch the picture. Works on any
/// `pdc-trace/2` stream, including `pdc-check` canonical traces.
pub fn render_html(title: &str, events: &[Event]) -> String {
    render_html_with_path(title, events, &[])
}

/// [`render_html`] with a critical path highlighted: `critical_ts` is
/// the ordered list of timestamps on the path (as computed by the span
/// pass). On-path events render as larger ringed markers whose hover
/// payload carries their position (`critical path i/N`), so the
/// bottleneck chain is visually distinct from off-path events in the
/// artifact CI uploads.
pub fn render_html_with_path(title: &str, events: &[Event], critical_ts: &[u64]) -> String {
    let mut events: Vec<Event> = events.to_vec();
    events.sort_by_key(|e| e.ts);
    // Compact timestamps: x-position = rank of ts among distinct ts.
    let mut ts_pos: BTreeMap<u64, u64> = BTreeMap::new();
    for e in &events {
        let next = ts_pos.len() as u64;
        ts_pos.entry(e.ts).or_insert(next);
    }
    let steps = ts_pos.len() as u64;
    let step_px = if steps == 0 {
        STEP_MAX
    } else {
        (1200 / steps.max(1)).clamp(STEP_MIN, STEP_MAX)
    };
    // Lanes: one per actor, in ascending actor order.
    let mut lanes: BTreeMap<u32, u64> = BTreeMap::new();
    for e in &events {
        let next = lanes.len() as u64;
        lanes.entry(e.actor).or_insert(next);
    }
    let width = LEFT_MARGIN + (steps + 2) * step_px + 20;
    let height = TOP_MARGIN + lanes.len() as u64 * (LANE_H + LANE_GAP) + 60;
    let x_of = |ts: u64| LEFT_MARGIN + (ts_pos[&ts] + 1) * step_px;
    let y_of = |actor: u32| TOP_MARGIN + lanes[&actor] * (LANE_H + LANE_GAP);

    let mut svg = String::new();
    // Lane backgrounds and labels.
    for (&actor, &idx) in &lanes {
        let y = TOP_MARGIN + idx * (LANE_H + LANE_GAP);
        svg.push_str(&format!(
            "<rect class=\"lane\" x=\"{LEFT_MARGIN}\" y=\"{y}\" width=\"{}\" height=\"{LANE_H}\"/>\n",
            width - LEFT_MARGIN - 10
        ));
        svg.push_str(&format!(
            "<text class=\"label\" x=\"{}\" y=\"{}\">actor {actor}</text>\n",
            LEFT_MARGIN - 8,
            y + LANE_H / 2 + 4
        ));
    }
    // Collective spans: per actor, coll_begin until the matching
    // coll_end (matched by coll id + seq; an unmatched begin extends to
    // the end of the trace — that is the hang the MPI lint flags).
    let last_x = LEFT_MARGIN + (steps + 1) * step_px;
    let mut open: BTreeMap<(u32, u64, u64), u64> = BTreeMap::new();
    let mut spans: Vec<(u32, u64, u64, u64, u64)> = Vec::new(); // actor, x0, x1, coll, seq
    for e in &events {
        match e.kind {
            EventKind::CollBegin => {
                open.insert((e.actor, e.a, e.b), x_of(e.ts));
            }
            EventKind::CollEnd => {
                if let Some(x0) = open.remove(&(e.actor, e.a, e.b)) {
                    spans.push((e.actor, x0, x_of(e.ts), e.a, e.b));
                }
            }
            _ => {}
        }
    }
    for ((actor, coll, seq), x0) in open {
        spans.push((actor, x0, last_x, coll, seq));
    }
    for (actor, x0, x1, coll, seq) in spans {
        let y = y_of(actor);
        svg.push_str(&format!(
            "<rect class=\"coll\" x=\"{x0}\" y=\"{}\" width=\"{}\" height=\"{}\"><title>collective {coll} seq {seq}</title></rect>\n",
            y + 2,
            (x1.saturating_sub(x0)).max(2),
            LANE_H - 4
        ));
    }
    // Critical-path position per timestamp (the span pass guarantees
    // distinct timestamps along the path).
    let mut path_pos: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, &ts) in critical_ts.iter().enumerate() {
        path_pos.entry(ts).or_insert(i);
    }
    // The path itself, drawn under the markers: a polyline hopping
    // lane-to-lane along the bottleneck chain.
    if critical_ts.len() > 1 {
        let mut points = String::new();
        for e in &events {
            if path_pos.contains_key(&e.ts) {
                points.push_str(&format!("{},{} ", x_of(e.ts), y_of(e.actor) + LANE_H / 2));
            }
        }
        svg.push_str(&format!(
            "<polyline class=\"critpath\" points=\"{}\"/>\n",
            points.trim_end()
        ));
    }
    // Event markers. On-path events get the `crit` class (bigger,
    // ringed, recolored by CSS) and their path index in the tooltip.
    for e in &events {
        let (fa, fb) = e.kind.field_names();
        let crit = path_pos.get(&e.ts);
        let (class, r) = if crit.is_some() {
            (" class=\"crit\"", 6)
        } else {
            ("", 4)
        };
        let crit_note = match crit {
            Some(i) => format!(" · critical path {}/{}", i + 1, critical_ts.len()),
            None => String::new(),
        };
        svg.push_str(&format!(
            "<circle{class} cx=\"{}\" cy=\"{}\" r=\"{r}\" fill=\"{}\"><title>ts {} · {} · {}={} {}={}{crit_note}</title></circle>\n",
            x_of(e.ts),
            y_of(e.actor) + LANE_H / 2,
            kind_color(e.kind),
            e.ts,
            e.kind.as_str(),
            fa,
            e.a,
            fb,
            e.b
        ));
    }
    // Legend for the kinds actually present.
    let mut seen: Vec<EventKind> = Vec::new();
    for e in &events {
        if !seen.contains(&e.kind) {
            seen.push(e.kind);
        }
    }
    let legend_y = height - 40;
    let mut lx = LEFT_MARGIN;
    let mut legend = String::new();
    for kind in seen {
        legend.push_str(&format!(
            "<circle cx=\"{lx}\" cy=\"{legend_y}\" r=\"4\" fill=\"{}\"/><text class=\"legend\" x=\"{}\" y=\"{}\">{}</text>\n",
            kind_color(kind),
            lx + 8,
            legend_y + 4,
            kind.as_str()
        ));
        lx += 12 + 7 * kind.as_str().len() as u64 + 16;
    }

    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>{title}</title><style>\n\
         body{{font:13px system-ui,sans-serif;margin:16px;background:#fafafa;color:#222}}\n\
         h1{{font-size:16px}}\n\
         .lane{{fill:#eef1f5;stroke:#d5dae2}}\n\
         .coll{{fill:#6b7a90;opacity:.25}}\n\
         .label{{text-anchor:end;fill:#444;font-size:12px}}\n\
         .legend{{fill:#444;font-size:11px}}\n\
         .crit{{stroke:#c2184a;stroke-width:2.5}}\n\
         .critpath{{fill:none;stroke:#c2184a;stroke-width:1.5;opacity:.55;stroke-dasharray:5 3}}\n\
         </style></head><body>\n\
         <h1>{title}</h1>\n\
         <p>{} events · {} actors · logical time → (hover markers for payloads; shaded bands are collective begin/end spans{})</p>\n\
         <svg width=\"{width}\" height=\"{height}\" viewBox=\"0 0 {width} {height}\">\n{svg}{legend}</svg>\n\
         </body></html>\n",
        events.len(),
        lanes.len(),
        if critical_ts.is_empty() {
            String::new()
        } else {
            format!(
                "; ringed markers joined by the dashed line are the {}-event critical path",
                critical_ts.len()
            )
        },
        title = esc(title),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, actor: u32, kind: EventKind, a: u64, b: u64) -> Event {
        Event {
            ts,
            actor,
            kind,
            a,
            b,
        }
    }

    #[test]
    fn renders_one_lane_per_actor() {
        let html = render_html(
            "two actors",
            &[
                ev(1, 0, EventKind::Write, 9, 0),
                ev(2, 3, EventKind::Read, 9, 0),
            ],
        );
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains(">actor 0</text>"));
        assert!(html.contains(">actor 3</text>"));
        assert_eq!(html.matches("class=\"lane\"").count(), 2);
        assert!(html.contains("<svg "));
        assert!(!html.contains("<script"), "must be script-free");
    }

    #[test]
    fn collective_pairs_become_spans() {
        let html = render_html(
            "colls",
            &[
                ev(1, 0, EventKind::CollBegin, 2, 0),
                ev(4, 0, EventKind::CollEnd, 2, 0),
                ev(2, 1, EventKind::CollBegin, 2, 0),
                ev(5, 1, EventKind::CollEnd, 2, 0),
            ],
        );
        assert_eq!(html.matches("class=\"coll\"").count(), 2);
        assert!(html.contains("collective 2 seq 0"));
    }

    #[test]
    fn unmatched_begin_extends_to_trace_end() {
        let html = render_html("hang", &[ev(1, 0, EventKind::CollBegin, 0, 1)]);
        assert_eq!(
            html.matches("class=\"coll\"").count(),
            1,
            "the hanging collective still renders as a span"
        );
    }

    #[test]
    fn title_is_escaped() {
        let html = render_html("<bad & title>", &[]);
        assert!(html.contains("&lt;bad &amp; title&gt;"));
        assert!(!html.contains("<bad &"));
    }

    #[test]
    fn critical_path_events_are_visually_distinct() {
        let events = [
            ev(1, 0, EventKind::Fork, 5, 0),
            ev(2, 1, EventKind::Join, 5, 0),
            ev(3, 1, EventKind::Mark, 0, 9),
            ev(4, 0, EventKind::Mark, 0, 1),
        ];
        let html = render_html_with_path("crit", &events, &[1, 2, 3]);
        // Three on-path markers, one off-path.
        assert_eq!(html.matches("class=\"crit\"").count(), 3);
        assert_eq!(html.matches("r=\"6\"").count(), 3);
        assert!(html.contains("critical path 1/3"));
        assert!(html.contains("critical path 3/3"));
        assert!(html.contains("class=\"critpath\""));
        assert!(html.contains("3-event critical path"));
        // Plain render_html never marks anything as on-path.
        let plain = render_html("plain", &events);
        assert!(!plain.contains("class=\"crit\""));
        assert!(!plain.contains("critical path"));
    }

    #[test]
    fn every_event_gets_a_marker_with_payload_tooltip() {
        let events = [
            ev(1, 0, EventKind::Acquire, 5, 1),
            ev(2, 0, EventKind::Release, 5, 1),
            ev(3, 1, EventKind::Send, 0, 64),
        ];
        let html = render_html("markers", &events);
        assert_eq!(html.matches("<title>ts ").count(), events.len());
        assert!(html.contains("acquire · site=5"));
        assert!(html.contains("peer=0 bytes=64"));
    }
}
