//! Work/span analysis (CLRS ch. 27), the theoretical backbone of the CS41
//! parallel-models unit.
//!
//! A parallel computation is characterized by its *work* `T1` (total
//! operations) and *span* `T∞` (critical-path length). Brent's theorem
//! bounds greedy-scheduler execution time on `p` processors:
//!
//! ```text
//! max(T1/p, T∞)  <=  Tp  <=  T1/p + T∞
//! ```
//!
//! [`WorkSpan`] is an accumulator the PRAM simulator, the fork-join
//! runtime, and the algorithm analyses all use. Composition follows the
//! series/parallel rules: sequential composition adds work and span;
//! parallel composition adds work but takes the max span.

/// Work and span of a (sub)computation, in abstract unit-cost operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkSpan {
    /// Total number of operations (`T1`).
    pub work: u64,
    /// Critical-path length (`T∞`).
    pub span: u64,
}

impl WorkSpan {
    /// The empty computation.
    pub const ZERO: WorkSpan = WorkSpan { work: 0, span: 0 };

    /// A strand of `ops` sequential unit operations: work = span = ops.
    pub fn strand(ops: u64) -> Self {
        WorkSpan {
            work: ops,
            span: ops,
        }
    }

    /// Construct from explicit work and span.
    ///
    /// # Panics
    /// Panics if `span > work` (impossible: the critical path is made of
    /// operations, all of which count toward work).
    pub fn new(work: u64, span: u64) -> Self {
        assert!(span <= work, "span {span} cannot exceed work {work}");
        WorkSpan { work, span }
    }

    /// Sequential composition: `self` then `next`.
    /// Work adds, span adds.
    #[must_use]
    pub fn then(self, next: WorkSpan) -> WorkSpan {
        WorkSpan {
            work: self.work + next.work,
            span: self.span + next.span,
        }
    }

    /// Parallel composition: `self` alongside `other`.
    /// Work adds, span is the max.
    #[must_use]
    pub fn beside(self, other: WorkSpan) -> WorkSpan {
        WorkSpan {
            work: self.work + other.work,
            span: self.span.max(other.span),
        }
    }

    /// Parallel composition of many branches.
    pub fn fork_join<I: IntoIterator<Item = WorkSpan>>(branches: I) -> WorkSpan {
        branches
            .into_iter()
            .fold(WorkSpan::ZERO, |acc, b| acc.beside(b))
    }

    /// Parallelism `T1 / T∞`: the maximum useful processor count.
    ///
    /// Returns `f64::INFINITY` only for the degenerate `span == 0` with
    /// positive work (which [`WorkSpan::new`] prevents); `ZERO` yields 1.0.
    pub fn parallelism(&self) -> f64 {
        if self.span == 0 {
            if self.work == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.work as f64 / self.span as f64
        }
    }

    /// Brent's theorem *upper* bound on `Tp`: `T1/p + T∞`.
    pub fn brent_upper(&self, p: usize) -> f64 {
        assert!(p > 0);
        self.work as f64 / p as f64 + self.span as f64
    }

    /// Greedy-scheduler *lower* bound on `Tp`: `max(T1/p, T∞)`.
    pub fn brent_lower(&self, p: usize) -> f64 {
        assert!(p > 0);
        (self.work as f64 / p as f64).max(self.span as f64)
    }

    /// Predicted speedup on `p` processors using the Brent upper bound —
    /// a conservative (pessimistic) model the scalability benches use.
    pub fn predicted_speedup(&self, p: usize) -> f64 {
        if self.work == 0 {
            return 1.0;
        }
        self.work as f64 / self.brent_upper(p)
    }
}

impl std::ops::Add for WorkSpan {
    type Output = WorkSpan;
    /// `+` is sequential composition (the common case in accumulators).
    fn add(self, rhs: WorkSpan) -> WorkSpan {
        self.then(rhs)
    }
}

impl std::ops::AddAssign for WorkSpan {
    fn add_assign(&mut self, rhs: WorkSpan) {
        *self = self.then(rhs);
    }
}

/// Closed-form work/span for the classic algorithms CS41 analyzes, used to
/// cross-check the simulators' measured counts.
pub mod closed_form {
    use super::WorkSpan;

    /// Parallel reduce over `n` elements (binary tree): work `n-1`,
    /// span `ceil(log2 n)`.
    pub fn reduce(n: u64) -> WorkSpan {
        if n <= 1 {
            return WorkSpan::ZERO;
        }
        WorkSpan::new(n - 1, ceil_log2(n))
    }

    /// Work-efficient parallel scan (Blelloch up-sweep + down-sweep):
    /// work ~`2(n-1)`, span ~`2 log2 n`.
    pub fn scan(n: u64) -> WorkSpan {
        if n <= 1 {
            return WorkSpan::ZERO;
        }
        WorkSpan::new(2 * (n - 1), 2 * ceil_log2(n))
    }

    /// `ceil(log2 n)` for `n >= 1`.
    pub fn ceil_log2(n: u64) -> u64 {
        assert!(n >= 1);
        64 - (n - 1).leading_zeros() as u64
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn ceil_log2_values() {
            assert_eq!(ceil_log2(1), 0);
            assert_eq!(ceil_log2(2), 1);
            assert_eq!(ceil_log2(3), 2);
            assert_eq!(ceil_log2(4), 2);
            assert_eq!(ceil_log2(5), 3);
            assert_eq!(ceil_log2(1024), 10);
            assert_eq!(ceil_log2(1025), 11);
        }

        #[test]
        fn reduce_form() {
            let ws = reduce(8);
            assert_eq!(ws.work, 7);
            assert_eq!(ws.span, 3);
            assert_eq!(reduce(1), WorkSpan::ZERO);
        }

        #[test]
        fn scan_form() {
            let ws = scan(8);
            assert_eq!(ws.work, 14);
            assert_eq!(ws.span, 6);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strand_equates_work_and_span() {
        let s = WorkSpan::strand(10);
        assert_eq!(s.work, 10);
        assert_eq!(s.span, 10);
        assert!((s.parallelism() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_parallel_composition() {
        let a = WorkSpan::strand(4);
        let b = WorkSpan::strand(6);
        let seq = a.then(b);
        assert_eq!(seq, WorkSpan::new(10, 10));
        let par = a.beside(b);
        assert_eq!(par, WorkSpan::new(10, 6));
        assert!(par.parallelism() > 1.0);
    }

    #[test]
    fn fork_join_many() {
        let branches = (0..8).map(|_| WorkSpan::strand(5));
        let ws = WorkSpan::fork_join(branches);
        assert_eq!(ws.work, 40);
        assert_eq!(ws.span, 5);
        assert!((ws.parallelism() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn brent_bounds_order() {
        let ws = WorkSpan::new(1000, 20);
        for p in [1usize, 2, 4, 8, 16, 64, 1024] {
            assert!(ws.brent_lower(p) <= ws.brent_upper(p));
        }
        // With p = 1 both bounds equal the work.
        assert_eq!(ws.brent_lower(1), 1000.0);
        assert_eq!(ws.brent_upper(1), 1020.0);
    }

    #[test]
    fn predicted_speedup_saturates_at_parallelism() {
        let ws = WorkSpan::new(10_000, 100); // parallelism = 100
        let s_small = ws.predicted_speedup(10);
        let s_huge = ws.predicted_speedup(1_000_000);
        assert!(s_small > 9.0 && s_small <= 10.0);
        // Speedup can never exceed T1/T∞.
        assert!(s_huge <= ws.parallelism() + 1e-9);
        assert!(s_huge > 0.99 * ws.parallelism() * 0.5);
    }

    #[test]
    #[should_panic(expected = "cannot exceed work")]
    fn new_rejects_span_above_work() {
        WorkSpan::new(5, 6);
    }

    #[test]
    fn add_assign_accumulates_sequentially() {
        let mut acc = WorkSpan::ZERO;
        acc += WorkSpan::strand(3);
        acc += WorkSpan::new(10, 2);
        assert_eq!(acc, WorkSpan::new(13, 5));
    }
}
