//! Work/span analysis (CLRS ch. 27), the theoretical backbone of the CS41
//! parallel-models unit.
//!
//! A parallel computation is characterized by its *work* `T1` (total
//! operations) and *span* `T∞` (critical-path length). Brent's theorem
//! bounds greedy-scheduler execution time on `p` processors:
//!
//! ```text
//! max(T1/p, T∞)  <=  Tp  <=  T1/p + T∞
//! ```
//!
//! [`WorkSpan`] is an accumulator the PRAM simulator, the fork-join
//! runtime, and the algorithm analyses all use. Composition follows the
//! series/parallel rules: sequential composition adds work and span;
//! parallel composition adds work but takes the max span.

/// Work and span of a (sub)computation, in abstract unit-cost operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkSpan {
    /// Total number of operations (`T1`).
    pub work: u64,
    /// Critical-path length (`T∞`).
    pub span: u64,
}

impl WorkSpan {
    /// The empty computation.
    pub const ZERO: WorkSpan = WorkSpan { work: 0, span: 0 };

    /// A strand of `ops` sequential unit operations: work = span = ops.
    pub fn strand(ops: u64) -> Self {
        WorkSpan {
            work: ops,
            span: ops,
        }
    }

    /// Construct from explicit work and span.
    ///
    /// # Panics
    /// Panics if `span > work` (impossible: the critical path is made of
    /// operations, all of which count toward work).
    pub fn new(work: u64, span: u64) -> Self {
        assert!(span <= work, "span {span} cannot exceed work {work}");
        WorkSpan { work, span }
    }

    /// Sequential composition: `self` then `next`.
    /// Work adds, span adds.
    #[must_use]
    pub fn then(self, next: WorkSpan) -> WorkSpan {
        WorkSpan {
            work: self.work + next.work,
            span: self.span + next.span,
        }
    }

    /// Parallel composition: `self` alongside `other`.
    /// Work adds, span is the max.
    #[must_use]
    pub fn beside(self, other: WorkSpan) -> WorkSpan {
        WorkSpan {
            work: self.work + other.work,
            span: self.span.max(other.span),
        }
    }

    /// Parallel composition of many branches.
    pub fn fork_join<I: IntoIterator<Item = WorkSpan>>(branches: I) -> WorkSpan {
        branches
            .into_iter()
            .fold(WorkSpan::ZERO, |acc, b| acc.beside(b))
    }

    /// Parallelism `T1 / T∞`: the maximum useful processor count.
    ///
    /// Returns `f64::INFINITY` only for the degenerate `span == 0` with
    /// positive work (which [`WorkSpan::new`] prevents); `ZERO` yields 1.0.
    pub fn parallelism(&self) -> f64 {
        if self.span == 0 {
            if self.work == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.work as f64 / self.span as f64
        }
    }

    /// Brent's theorem *upper* bound on `Tp`: `T1/p + T∞`.
    pub fn brent_upper(&self, p: usize) -> f64 {
        assert!(p > 0);
        self.work as f64 / p as f64 + self.span as f64
    }

    /// Greedy-scheduler *lower* bound on `Tp`: `max(T1/p, T∞)`.
    pub fn brent_lower(&self, p: usize) -> f64 {
        assert!(p > 0);
        (self.work as f64 / p as f64).max(self.span as f64)
    }

    /// Predicted speedup on `p` processors using the Brent upper bound —
    /// a conservative (pessimistic) model the scalability benches use.
    pub fn predicted_speedup(&self, p: usize) -> f64 {
        if self.work == 0 {
            return 1.0;
        }
        self.work as f64 / self.brent_upper(p)
    }
}

impl std::ops::Add for WorkSpan {
    type Output = WorkSpan;
    /// `+` is sequential composition (the common case in accumulators).
    fn add(self, rhs: WorkSpan) -> WorkSpan {
        self.then(rhs)
    }
}

impl std::ops::AddAssign for WorkSpan {
    fn add_assign(&mut self, rhs: WorkSpan) {
        *self = self.then(rhs);
    }
}

/// Closed-form work/span for the classic algorithms CS41 analyzes, used to
/// cross-check the simulators' measured counts.
pub mod closed_form {
    use super::WorkSpan;

    /// Parallel reduce over `n` elements (binary tree): work `n-1`,
    /// span `ceil(log2 n)`.
    pub fn reduce(n: u64) -> WorkSpan {
        if n <= 1 {
            return WorkSpan::ZERO;
        }
        WorkSpan::new(n - 1, ceil_log2(n))
    }

    /// Work-efficient parallel scan (Blelloch up-sweep + down-sweep):
    /// work ~`2(n-1)`, span ~`2 log2 n`.
    pub fn scan(n: u64) -> WorkSpan {
        if n <= 1 {
            return WorkSpan::ZERO;
        }
        WorkSpan::new(2 * (n - 1), 2 * ceil_log2(n))
    }

    /// `ceil(log2 n)` for `n >= 1`.
    pub fn ceil_log2(n: u64) -> u64 {
        assert!(n >= 1);
        64 - (n - 1).leading_zeros() as u64
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn ceil_log2_values() {
            assert_eq!(ceil_log2(1), 0);
            assert_eq!(ceil_log2(2), 1);
            assert_eq!(ceil_log2(3), 2);
            assert_eq!(ceil_log2(4), 2);
            assert_eq!(ceil_log2(5), 3);
            assert_eq!(ceil_log2(1024), 10);
            assert_eq!(ceil_log2(1025), 11);
        }

        #[test]
        fn reduce_form() {
            let ws = reduce(8);
            assert_eq!(ws.work, 7);
            assert_eq!(ws.span, 3);
            assert_eq!(reduce(1), WorkSpan::ZERO);
        }

        #[test]
        fn scan_form() {
            let ws = scan(8);
            assert_eq!(ws.work, 14);
            assert_eq!(ws.span, 6);
        }
    }
}

/// An asymptotic growth class Θ(f(n)), evaluable at concrete sizes so a
/// measured size sweep can be curve-fitted against a declaration.
///
/// Constant factors are deliberately absent: [`Bounds::fit`] divides
/// each measurement by `eval(n)` and checks the *ratios* stay inside a
/// band, which is exactly "measured ∈ Θ(declared)" over the observed
/// range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Theta {
    /// Θ(1).
    Const,
    /// Θ(log n).
    Log,
    /// Θ(n).
    Linear,
    /// Θ(n log n).
    NLogN,
    /// Θ(n²).
    Quadratic,
    /// Θ(log² n).
    LogSquared,
    /// Θ(log³ n) — e.g. the span of merge sort with parallel merges
    /// (CLRS 27.3).
    LogCubed,
    /// Θ(rounds · log n) — an iterative algorithm whose per-round
    /// critical path is logarithmic (e.g. a multi-round shuffle whose
    /// reduce tree is Θ(log n) deep). `rounds` is the declared
    /// iteration count, a constant of the algorithm configuration.
    RoundsLog {
        /// Declared number of iterations.
        rounds: u64,
    },
}

impl Theta {
    /// Evaluate the growth function at `n` (clamped to `n >= 2` so the
    /// logarithmic classes never return 0 and ratios stay finite).
    pub fn eval(self, n: u64) -> f64 {
        let n = n.max(2) as f64;
        let lg = n.log2();
        match self {
            Theta::Const => 1.0,
            Theta::Log => lg,
            Theta::Linear => n,
            Theta::NLogN => n * lg,
            Theta::Quadratic => n * n,
            Theta::LogSquared => lg * lg,
            Theta::LogCubed => lg * lg * lg,
            Theta::RoundsLog { rounds } => rounds.max(1) as f64 * lg,
        }
    }

    /// Stable name used in gate output and JSON.
    pub fn label(self) -> String {
        match self {
            Theta::Const => "Θ(1)".to_string(),
            Theta::Log => "Θ(log n)".to_string(),
            Theta::Linear => "Θ(n)".to_string(),
            Theta::NLogN => "Θ(n log n)".to_string(),
            Theta::Quadratic => "Θ(n²)".to_string(),
            Theta::LogSquared => "Θ(log² n)".to_string(),
            Theta::LogCubed => "Θ(log³ n)".to_string(),
            Theta::RoundsLog { rounds } => format!("Θ({rounds}·log n)"),
        }
    }
}

/// Declared asymptotic work and span of an algorithm — the registry
/// entry each algorithm in `pdc-algos` / `pdc-pram` (and each scenario)
/// publishes so measured [`WorkSpan`] sweeps can be checked against the
/// curriculum's analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Declared Θ-class of the work `T1`.
    pub work: Theta,
    /// Declared Θ-class of the span `T∞`.
    pub span: Theta,
}

/// Result of curve-fitting one measured sweep against one Θ-class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThetaFit {
    /// max ratio / min ratio over the sweep, where ratio(n) =
    /// measured(n) / θ(n). 1.0 is a perfect fit; the constant factor
    /// itself cancels out.
    pub spread: f64,
    /// Whether `spread <= tolerance` (the fit the caller asked about).
    pub ok: bool,
}

impl Bounds {
    /// Construct a declaration.
    pub const fn new(work: Theta, span: Theta) -> Self {
        Bounds { work, span }
    }

    /// Curve-fit measured `(n, WorkSpan)` samples against this
    /// declaration: for each sample the measured work (resp. span) is
    /// divided by the declared Θ evaluated at `n`, and the fit passes
    /// when the largest such ratio is within `tolerance`× the smallest
    /// — i.e. the measurement tracks the declared shape up to a
    /// constant factor. Needs ≥ 2 samples to say anything (a single
    /// point fits every curve); fewer samples yield a vacuous pass.
    pub fn fit(&self, samples: &[(u64, WorkSpan)], tolerance: f64) -> (ThetaFit, ThetaFit) {
        (
            fit_one(
                self.work,
                samples.iter().map(|(n, ws)| (*n, ws.work)),
                tolerance,
            ),
            fit_one(
                self.span,
                samples.iter().map(|(n, ws)| (*n, ws.span)),
                tolerance,
            ),
        )
    }
}

fn fit_one(theta: Theta, samples: impl Iterator<Item = (u64, u64)>, tolerance: f64) -> ThetaFit {
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    let mut count = 0usize;
    for (n, measured) in samples {
        // A zero measurement at some size cannot track any positive
        // Θ-class; treat it as ratio 0 (forces an infinite spread).
        let ratio = measured as f64 / theta.eval(n);
        min = min.min(ratio);
        max = max.max(ratio);
        count += 1;
    }
    if count < 2 {
        return ThetaFit {
            spread: 1.0,
            ok: true,
        };
    }
    let spread = if min > 0.0 { max / min } else { f64::INFINITY };
    ThetaFit {
        spread,
        ok: spread <= tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strand_equates_work_and_span() {
        let s = WorkSpan::strand(10);
        assert_eq!(s.work, 10);
        assert_eq!(s.span, 10);
        assert!((s.parallelism() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_parallel_composition() {
        let a = WorkSpan::strand(4);
        let b = WorkSpan::strand(6);
        let seq = a.then(b);
        assert_eq!(seq, WorkSpan::new(10, 10));
        let par = a.beside(b);
        assert_eq!(par, WorkSpan::new(10, 6));
        assert!(par.parallelism() > 1.0);
    }

    #[test]
    fn fork_join_many() {
        let branches = (0..8).map(|_| WorkSpan::strand(5));
        let ws = WorkSpan::fork_join(branches);
        assert_eq!(ws.work, 40);
        assert_eq!(ws.span, 5);
        assert!((ws.parallelism() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn brent_bounds_order() {
        let ws = WorkSpan::new(1000, 20);
        for p in [1usize, 2, 4, 8, 16, 64, 1024] {
            assert!(ws.brent_lower(p) <= ws.brent_upper(p));
        }
        // With p = 1 both bounds equal the work.
        assert_eq!(ws.brent_lower(1), 1000.0);
        assert_eq!(ws.brent_upper(1), 1020.0);
    }

    #[test]
    fn predicted_speedup_saturates_at_parallelism() {
        let ws = WorkSpan::new(10_000, 100); // parallelism = 100
        let s_small = ws.predicted_speedup(10);
        let s_huge = ws.predicted_speedup(1_000_000);
        assert!(s_small > 9.0 && s_small <= 10.0);
        // Speedup can never exceed T1/T∞.
        assert!(s_huge <= ws.parallelism() + 1e-9);
        assert!(s_huge > 0.99 * ws.parallelism() * 0.5);
    }

    #[test]
    #[should_panic(expected = "cannot exceed work")]
    fn new_rejects_span_above_work() {
        WorkSpan::new(5, 6);
    }

    #[test]
    fn add_assign_accumulates_sequentially() {
        let mut acc = WorkSpan::ZERO;
        acc += WorkSpan::strand(3);
        acc += WorkSpan::new(10, 2);
        assert_eq!(acc, WorkSpan::new(13, 5));
    }

    #[test]
    fn theta_eval_shapes() {
        assert_eq!(Theta::Const.eval(1_000_000), 1.0);
        assert!((Theta::Log.eval(1024) - 10.0).abs() < 1e-9);
        assert_eq!(Theta::Linear.eval(64), 64.0);
        assert!((Theta::NLogN.eval(64) - 384.0).abs() < 1e-9);
        assert_eq!(Theta::Quadratic.eval(32), 1024.0);
        assert!((Theta::RoundsLog { rounds: 5 }.eval(256) - 40.0).abs() < 1e-9);
        // Clamp: no zero/negative values from tiny n.
        assert!(Theta::Log.eval(0) > 0.0);
        assert!(Theta::Log.eval(1) > 0.0);
    }

    #[test]
    fn bounds_fit_accepts_matching_shape_and_rejects_wrong_one() {
        // Fabricate a sweep whose work is exactly 3·n·log2(n) and span
        // exactly 7·log2(n): the NLogN/Log declaration fits tightly...
        let sizes = [64u64, 256, 1024, 4096];
        let samples: Vec<(u64, WorkSpan)> = sizes
            .iter()
            .map(|&n| {
                let lg = (n as f64).log2();
                (
                    n,
                    WorkSpan::new((3.0 * n as f64 * lg) as u64, (7.0 * lg) as u64),
                )
            })
            .collect();
        let good = Bounds::new(Theta::NLogN, Theta::Log);
        let (w, s) = good.fit(&samples, 1.5);
        assert!(w.ok && s.ok, "true shape fits: {w:?} {s:?}");
        // ...while declaring the work linear drifts by a log factor
        // (log2 4096 / log2 64 = 2x) and quadratic by ~64x.
        let linear = Bounds::new(Theta::Linear, Theta::Log);
        let (w, _) = linear.fit(&samples, 1.5);
        assert!(!w.ok, "n log n is not Θ(n) over a 64x range: {w:?}");
        let quad = Bounds::new(Theta::Quadratic, Theta::Log);
        let (w, _) = quad.fit(&samples, 1.5);
        assert!(!w.ok);
    }

    #[test]
    fn bounds_fit_edge_cases() {
        let b = Bounds::new(Theta::Linear, Theta::Const);
        // Fewer than 2 samples: vacuous pass.
        let (w, s) = b.fit(&[(100, WorkSpan::new(100, 1))], 1.01);
        assert!(w.ok && s.ok);
        // A zero measurement forces an infinite spread.
        let samples = [(10u64, WorkSpan::new(0, 0)), (20, WorkSpan::new(20, 1))];
        let (w, _) = b.fit(&samples, 1e9);
        assert!(!w.ok);
        assert!(w.spread.is_infinite());
    }
}
