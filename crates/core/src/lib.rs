//! # pdc-core — performance laws, models of computation, and experiment harness
//!
//! This crate is the analytical foundation of the `pdc` workspace. It
//! implements the quantitative content that the Swarthmore curriculum
//! (Danner & Newhall, EduPar 2013) threads through CS31 and CS41:
//!
//! * [`laws`] — speedup, efficiency, Amdahl's law, Gustafson's law,
//!   the Karp–Flatt metric, and iso-efficiency analysis.
//! * [`workspan`] — the work/span (a.k.a. work/depth) framework of
//!   CLRS ch. 27, including Brent's theorem bounds.
//! * [`taskgraph`] — explicit task DAGs with critical-path analysis and a
//!   greedy list scheduler that simulates execution on `p` processors.
//! * [`machine`] — a deterministic multicore cost model used by the
//!   scalability benches so that speedup *shapes* reproduce on any host
//!   (including single-core CI boxes).
//! * [`scaling`] — strong- and weak-scaling experiment drivers.
//! * [`scenario`] — the `Scenario`×`Backend` execution seam: run one
//!   deterministic workload on several backends, digest the outcomes
//!   for cross-backend equality, and emit speedup/crossover tables.
//! * [`stats`] — small-sample statistics and a repetition-based timer.
//! * [`report`] — aligned text tables for regenerating the paper's
//!   table-style summaries, plus the JSON helpers behind the trace
//!   export.
//! * [`metrics`] / [`trace`] — the pdc-trace observability layer:
//!   named monotone counters and a bounded logical-clock event
//!   recorder shared by the thread pool, the machine simulator, and
//!   the MPI layer.
//! * [`rng`] — a tiny deterministic SplitMix64/xoshiro generator so the
//!   simulators do not need an external RNG dependency.
//!
//! Everything here is deterministic and side-effect free except for the
//! wall-clock helpers in [`stats`], which are clearly marked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod laws;
pub mod machine;
pub mod merge;
pub mod metrics;
pub mod report;
pub mod rng;
pub mod scaling;
pub mod scenario;
pub mod stats;
pub mod taskgraph;
pub mod timeline;
pub mod trace;
pub mod workspan;

pub use laws::{amdahl_speedup, efficiency, gustafson_speedup, karp_flatt, speedup};
pub use machine::{BarrierModel, CoreTrace, MachineConfig, SimMachine};
pub use metrics::{Counter, Registry, Snapshot};
pub use rng::Rng;
pub use scenario::{
    run_scenario, AnalyzeVerdict, Backend, BackendRun, Digest, Outcome, Scenario, ScenarioConfig,
    ScenarioCtx, ScenarioReport,
};
pub use taskgraph::{ScheduleResult, TaskGraph, TaskId};
pub use trace::{Event, EventKind, ThreadTrace, TraceRecorder, TraceSession};
pub use workspan::WorkSpan;
