//! Small-sample statistics and a repetition-based wall-clock timer.
//!
//! The CS31 labs teach students to time code properly: repeat runs, report
//! a robust statistic (minimum or median, not the mean of noisy runs), and
//! quote variability. [`Samples`] and [`time_op`] encode that discipline.

use std::time::{Duration, Instant};

/// A collection of numeric samples with robust summary statistics.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Construct from raw values.
    ///
    /// # Panics
    /// Panics if any value is NaN.
    pub fn from_vec(values: Vec<f64>) -> Self {
        assert!(values.iter().all(|v| !v.is_nan()), "NaN sample");
        Self { values }
    }

    /// Add one sample.
    pub fn push(&mut self, v: f64) {
        assert!(!v.is_nan(), "NaN sample");
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean.
    ///
    /// # Panics
    /// Panics on an empty sample set.
    pub fn mean(&self) -> f64 {
        assert!(!self.is_empty(), "mean of empty samples");
        self.values.iter().sum::<f64>() / self.len() as f64
    }

    /// Sample standard deviation (Bessel-corrected). Zero for n < 2.
    pub fn stddev(&self) -> f64 {
        if self.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (self.len() - 1) as f64;
        var.sqrt()
    }

    /// Median (interpolated for even counts).
    ///
    /// # Panics
    /// Panics on an empty sample set.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Minimum.
    ///
    /// # Panics
    /// Panics on an empty sample set.
    pub fn min(&self) -> f64 {
        assert!(!self.is_empty(), "min of empty samples");
        self.values.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Maximum.
    ///
    /// # Panics
    /// Panics on an empty sample set.
    pub fn max(&self) -> f64 {
        assert!(!self.is_empty(), "max of empty samples");
        self.values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Percentile in `[0, 100]` with linear interpolation.
    ///
    /// # Panics
    /// Panics on an empty sample set or an out-of-range percentile.
    pub fn percentile(&self, pct: f64) -> f64 {
        assert!(!self.is_empty(), "percentile of empty samples");
        assert!((0.0..=100.0).contains(&pct), "percentile out of range");
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = pct / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = rank - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// Coefficient of variation (stddev / mean); zero when mean is zero.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }

    /// Raw sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Timing summary returned by [`time_op`].
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Fastest observed run — the standard low-noise estimator.
    pub min: Duration,
    /// Median run.
    pub median: Duration,
    /// Mean run.
    pub mean: Duration,
    /// Number of repetitions.
    pub reps: usize,
}

/// Time `f` over `reps` repetitions (wall clock) and summarize.
///
/// One warm-up run is executed and discarded first. The closure's return
/// value is passed to `std::hint::black_box` to keep the optimizer honest.
///
/// # Panics
/// Panics if `reps == 0`.
pub fn time_op<T>(reps: usize, mut f: impl FnMut() -> T) -> Timing {
    assert!(reps > 0, "need at least one repetition");
    std::hint::black_box(f()); // warm-up
    let mut samples = Samples::new();
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed().as_secs_f64());
    }
    Timing {
        min: Duration::from_secs_f64(samples.min()),
        median: Duration::from_secs_f64(samples.median()),
        mean: Duration::from_secs_f64(samples.mean()),
        reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_minmax() {
        let s = Samples::from_vec(vec![4.0, 1.0, 3.0, 2.0]);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.median() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn odd_median_is_middle() {
        let s = Samples::from_vec(vec![9.0, 1.0, 5.0]);
        assert_eq!(s.median(), 5.0);
    }

    #[test]
    fn stddev_known_value() {
        let s = Samples::from_vec(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        // Population stddev is 2; sample (Bessel) stddev is ~2.138.
        assert!((s.stddev() - 2.1380899352993947).abs() < 1e-12);
    }

    #[test]
    fn stddev_of_singleton_is_zero() {
        let s = Samples::from_vec(vec![42.0]);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let s = Samples::from_vec(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 40.0);
        assert!((s.percentile(50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        Samples::from_vec(vec![f64::NAN]);
    }

    #[test]
    fn time_op_runs_and_orders() {
        let t = time_op(5, || (0..1000u64).sum::<u64>());
        assert_eq!(t.reps, 5);
        assert!(t.min <= t.median);
        assert!(t.min <= t.mean);
    }
}
